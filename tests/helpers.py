"""Shared model builders for the test suite.

These used to live in ``tests/conftest.py``, but importing them via
``from conftest import ...`` is fragile: whichever ``conftest.py`` pytest
loads first (``benchmarks/`` or ``tests/``) wins the ``conftest`` slot in
``sys.modules``, so collecting both directories broke the imports.  Test
modules import the builders explicitly from this module instead.
"""

from __future__ import annotations

from repro.lang import builder as b

__all__ = ["simple_observe_model", "pedestrian_walk_fixpoint", "geometric_program"]


def simple_observe_model(observed: float = 1.1, std: float = 0.25):
    """``let x = 3 * sample in observe(observed ~ N(x, std)); x`` — analytically tractable."""
    return b.let(
        "x",
        b.mul(3.0, b.sample()),
        b.seq(b.observe_normal(observed, std, b.var("x")), b.var("x")),
    )


def pedestrian_walk_fixpoint():
    """The pedestrian walk fixpoint (paper Example 5.2)."""
    return b.fix(
        "walk",
        "x",
        b.if_leq(
            b.var("x"),
            0.0,
            0.0,
            b.let(
                "step",
                b.sample(),
                b.choice(
                    0.5,
                    b.add(b.var("step"), b.app(b.var("walk"), b.add(b.var("x"), b.var("step")))),
                    b.add(b.var("step"), b.app(b.var("walk"), b.sub(b.var("x"), b.var("step")))),
                ),
            ),
        ),
    )


def geometric_program(p_stop: float = 0.5):
    """A geometric counter via recursion: rounds until a coin comes up heads."""
    loop = b.fix(
        "loop",
        "count",
        b.choice(p_stop, b.var("count"), b.app(b.var("loop"), b.add(b.var("count"), 1.0))),
    )
    return b.app(loop, 0.0)
