"""Shared model builders for the test suite.

These used to live in ``tests/conftest.py``, but importing them via
``from conftest import ...`` is fragile: whichever ``conftest.py`` pytest
loads first (``benchmarks/`` or ``tests/``) wins the ``conftest`` slot in
``sys.modules``, so collecting both directories broke the imports.  Test
modules import the builders explicitly from this module instead.
"""

from __future__ import annotations

import random

from repro.lang import builder as b

__all__ = [
    "simple_observe_model",
    "pedestrian_walk_fixpoint",
    "geometric_program",
    "random_spcf_program",
]


def simple_observe_model(observed: float = 1.1, std: float = 0.25):
    """``let x = 3 * sample in observe(observed ~ N(x, std)); x`` — analytically tractable."""
    return b.let(
        "x",
        b.mul(3.0, b.sample()),
        b.seq(b.observe_normal(observed, std, b.var("x")), b.var("x")),
    )


def pedestrian_walk_fixpoint():
    """The pedestrian walk fixpoint (paper Example 5.2)."""
    return b.fix(
        "walk",
        "x",
        b.if_leq(
            b.var("x"),
            0.0,
            0.0,
            b.let(
                "step",
                b.sample(),
                b.choice(
                    0.5,
                    b.add(b.var("step"), b.app(b.var("walk"), b.add(b.var("x"), b.var("step")))),
                    b.add(b.var("step"), b.app(b.var("walk"), b.sub(b.var("x"), b.var("step")))),
                ),
            ),
        ),
    )


def geometric_program(p_stop: float = 0.5):
    """A geometric counter via recursion: rounds until a coin comes up heads."""
    loop = b.fix(
        "loop",
        "count",
        b.choice(p_stop, b.var("count"), b.app(b.var("loop"), b.add(b.var("count"), 1.0))),
    )
    return b.app(loop, 0.0)


def random_spcf_program(
    seed: int,
    *,
    max_samples: int = 3,
    max_observes: int = 2,
    max_branches: int = 1,
    allow_recursion: bool = True,
):
    """A small random SPCF term, deterministic in ``seed`` — the fuzz vehicle.

    The generated programs cover the feature axes the differential tests
    care about while staying cheap to analyse:

    * 1–``max_samples`` uniform draws (the path's box dimensions);
    * up to ``max_observes`` score atoms — ``observe normal`` / ``observe
      uniform`` over random (often non-linear) expressions of the bound
      variables, so some programs stay linear-analysable and others force
      the box fallback;
    * up to ``max_branches`` data-dependent ``if`` branches (path splits);
    * optionally a recursive geometric counter folded into the result, so
      the symbolic execution's depth limit produces *truncated* paths.

    Expressions only combine bound variables and constants, so every seed
    yields a closed, well-typed term.
    """
    rng = random.Random(seed)
    names: list[str] = []
    #: ("let", name, value_term) bindings and ("observe", score_term)
    #: effects, in program order; folded into nested lets at the end.
    bindings: list[tuple] = []

    def atom():
        if names and rng.random() < 0.7:
            return b.var(rng.choice(names))
        return b.const(round(rng.uniform(0.1, 1.5), 3))

    def expr(depth: int):
        if depth <= 0 or rng.random() < 0.3:
            return atom()
        op = rng.choice(("add", "sub", "mul"))
        left, right = expr(depth - 1), expr(depth - 1)
        if op == "add":
            return b.add(left, right)
        if op == "sub":
            return b.sub(left, right)
        return b.mul(left, right)

    for index in range(rng.randint(1, max_samples)):
        name = f"x{index}"
        bindings.append(("let", name, b.sample()))
        names.append(name)

    for index in range(rng.randint(0, max_observes)):
        if rng.random() < 0.5:
            atom_term = b.observe_normal(
                round(rng.uniform(0.0, 1.5), 3),
                round(rng.uniform(0.2, 0.6), 3),
                expr(2),
            )
        else:
            # Wide support so the density never vanishes everywhere.
            atom_term = b.observe_uniform(-4.0, 4.0, expr(2))
        bindings.append(("observe", atom_term))

    for index in range(rng.randint(0, max_branches)):
        name = f"br{index}"
        bindings.append(
            ("let", name,
             b.if_leq(expr(1), round(rng.uniform(0.2, 0.8), 3), expr(1), expr(1))),
        )
        names.append(name)

    if allow_recursion and rng.random() < 0.4:
        bindings.append(("let", "rec", geometric_program(round(rng.uniform(0.4, 0.7), 2))))
        names.append("rec")

    result = b.var(names[0])
    for name in names[1:]:
        scale = 0.05 if name == "rec" else 1.0
        result = b.add(result, b.mul(scale, b.var(name)))

    body = result
    for entry in reversed(bindings):
        if entry[0] == "let":
            _, name, value = entry
            body = b.let(name, value, body)
        else:
            body = b.seq(entry[1], body)
    return body
