"""Golden-file regression tests for paper-figure posterior bounds.

The engine's correctness story ("guaranteed bounds") makes silent bound
*loosening* the most dangerous regression class: every refactor that drops a
constraint, mis-merges a chunk or weakens an analyzer still produces
formally-sound-looking numbers.  These tests pin the exact bounds of two
paper workloads — the pedestrian model (Example 1.1 / Figure 7) and a
recursive geometric counter — at small :class:`ExecutionLimits`, so any
change to the computed bounds is an explicit, reviewed event.

To regenerate after an *intentional* bounds change::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_golden_regression.py

and commit the refreshed ``tests/golden/*.json`` together with the change
that caused it.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.analysis import AnalysisOptions, Model
from repro.intervals import Interval
from repro.models import binary_gmm_program, cav_example_7
from repro.models.pedestrian import pedestrian_program

from helpers import geometric_program

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
_REGEN = os.environ.get("REPRO_REGEN_GOLDEN", "").lower() not in ("", "0", "false", "no")

#: Bit-level reproducibility is guaranteed only for a fixed dependency stack;
#: across NumPy/SciPy/qhull versions the volume computations may move by a few
#: ulps, so the pin uses a tight-but-not-exact tolerance.
_RTOL = 1e-9

_SCENARIOS = {
    "pedestrian_depth4": {
        "build": lambda: Model(
            pedestrian_program(),
            AnalysisOptions(max_fixpoint_depth=4, score_splits=8, workers=1, executor="serial"),
        ),
        "targets": [Interval(0.0, 1.0), Interval(1.0, 2.0), Interval(2.0, 3.0)],
        "histogram": (0.0, 3.0, 6),
    },
    "geometric_depth6": {
        "build": lambda: Model(
            geometric_program(0.5),
            AnalysisOptions(max_fixpoint_depth=6, workers=1, executor="serial"),
        ),
        "targets": [Interval(-0.5, 0.5), Interval(0.5, 1.5), Interval(1.5, 2.5)],
        "histogram": (0.0, 4.0, 4),
    },
    # A continuous-model benchmark driver workload (Fig. 5c, box semantics)…
    "binary_gmm_box24": {
        "build": lambda: Model(
            binary_gmm_program(),
            AnalysisOptions(
                splits_per_dimension=24, use_linear_semantics=False, workers=1, executor="serial"
            ),
        ),
        "targets": [Interval(-1.0, 0.0), Interval(0.0, 1.0), Interval(-3.0, 3.0)],
        "histogram": (-3.0, 3.0, 6),
    },
    # …and a recursive-model driver workload (Fig. 6a, the CAV'13 counter).
    "cav_example7_depth6": {
        "build": lambda: Model(
            cav_example_7(),
            AnalysisOptions(
                max_fixpoint_depth=6,
                score_splits=8,
                splits_per_dimension=6,
                max_boxes_per_path=4_000,
                workers=1,
                executor="serial",
            ),
        ),
        "targets": [Interval(-0.5, 0.5), Interval(0.5, 1.5), Interval(1.5, 2.5)],
        "histogram": (0.0, 6.0, 6),
    },
}


def compute_snapshot(scenario: dict) -> dict:
    """All pinned numbers of one scenario, as plain JSON-compatible data."""
    model = scenario["build"]()
    bounds = model.bounds(scenario["targets"])
    queries = [model.probability(target) for target in scenario["targets"]]
    low, high, buckets = scenario["histogram"]
    histogram = model.histogram(low, high, buckets)
    return {
        "denotation_bounds": [
            {"target": [bound.target.lo, bound.target.hi], "lower": bound.lower, "upper": bound.upper}
            for bound in bounds
        ],
        "query_bounds": [
            {"target": [query.target.lo, query.target.hi], "lower": query.lower, "upper": query.upper}
            for query in queries
        ],
        "histogram": {
            "z_lower": histogram.z_lower,
            "z_upper": histogram.z_upper,
            "buckets": [
                {"bucket": [bucket.bucket.lo, bucket.bucket.hi], "lower": bucket.lower, "upper": bucket.upper}
                for bucket in histogram.buckets
            ],
        },
    }


def golden_path(name: str) -> pathlib.Path:
    return GOLDEN_DIR / f"{name}.json"


@pytest.mark.parametrize("name", sorted(_SCENARIOS))
def test_bounds_match_golden(name):
    snapshot = compute_snapshot(_SCENARIOS[name])
    path = golden_path(name)
    if _REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2) + "\n")
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"golden file {path} is missing; run REPRO_REGEN_GOLDEN=1 pytest {__file__}"
    )
    golden = json.loads(path.read_text())

    for kind in ("denotation_bounds", "query_bounds"):
        assert len(snapshot[kind]) == len(golden[kind])
        for current, pinned in zip(snapshot[kind], golden[kind]):
            assert current["target"] == pinned["target"]
            assert current["lower"] == pytest.approx(pinned["lower"], rel=_RTOL, abs=1e-15), (
                f"{name}/{kind}: lower bound moved for target {pinned['target']}"
            )
            assert current["upper"] == pytest.approx(pinned["upper"], rel=_RTOL, abs=1e-15), (
                f"{name}/{kind}: upper bound moved for target {pinned['target']}"
            )

    assert snapshot["histogram"]["z_lower"] == pytest.approx(
        golden["histogram"]["z_lower"], rel=_RTOL, abs=1e-15
    )
    assert snapshot["histogram"]["z_upper"] == pytest.approx(
        golden["histogram"]["z_upper"], rel=_RTOL, abs=1e-15
    )
    for current, pinned in zip(snapshot["histogram"]["buckets"], golden["histogram"]["buckets"]):
        assert current["bucket"] == pinned["bucket"]
        assert current["lower"] == pytest.approx(pinned["lower"], rel=_RTOL, abs=1e-15)
        assert current["upper"] == pytest.approx(pinned["upper"], rel=_RTOL, abs=1e-15)


@pytest.mark.parametrize("name", sorted(_SCENARIOS))
def test_parallel_engine_matches_golden(name):
    """The parallel engine is held to the same pinned numbers as the serial one."""
    path = golden_path(name)
    if not path.exists():
        pytest.skip("golden file not generated yet")
    golden = json.loads(path.read_text())
    scenario = _SCENARIOS[name]
    model = scenario["build"]()
    options = model.options.with_updates(workers=2, executor="thread")
    with model:
        bounds = model.bounds(scenario["targets"], options)
    for current, pinned in zip(bounds, golden["denotation_bounds"]):
        assert current.lower == pytest.approx(pinned["lower"], rel=_RTOL, abs=1e-15)
        assert current.upper == pytest.approx(pinned["upper"], rel=_RTOL, abs=1e-15)
