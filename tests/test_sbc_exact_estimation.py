"""Tests for SBC, the exact enumeration engine and the probability-estimation baseline."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distributions import Bernoulli, Categorical
from repro.estimation import ProbabilityEstimate, ScoreFreeError, estimate_probability
from repro.exact import ExactInferenceError, UnrollLimitReached, enumerate_posterior
from repro.inference import SBCModel, importance_sampling, simulation_based_calibration
from repro.intervals import Interval
from repro.lang import builder as b
from repro.lang.ast import Sample
from repro.models import discrete_benchmark_by_name


class TestExactEnumeration:
    def test_single_bernoulli(self):
        result = enumerate_posterior(Sample(Bernoulli(0.3)))
        assert result.probability(1.0) == pytest.approx(0.3)
        assert result.probability(0.0) == pytest.approx(0.7)
        assert result.normalising_constant == pytest.approx(1.0)

    def test_conditioning_renormalises(self):
        program = b.let_many(
            [("c1", Sample(Bernoulli(0.5))), ("c2", Sample(Bernoulli(0.5))),
             ("_", b.score(b.sub(1.0, b.mul(b.var("c1"), b.var("c2")))))],
            b.var("c1"),
        )
        result = enumerate_posterior(program)
        assert result.probability(1.0) == pytest.approx(1.0 / 3.0)
        assert result.normalising_constant == pytest.approx(0.75)

    def test_soft_scores_supported(self):
        program = b.let(
            "c",
            Sample(Bernoulli(0.5)),
            b.seq(b.score(b.add(1.0, b.var("c"))), b.var("c")),
        )
        result = enumerate_posterior(program)
        assert result.probability(1.0) == pytest.approx(2.0 / 3.0)

    def test_arithmetic_and_expectation(self):
        program = b.add(Sample(Bernoulli(0.5)), b.mul(2.0, Sample(Bernoulli(0.5))))
        result = enumerate_posterior(program)
        assert sorted(result.support()) == [0.0, 1.0, 2.0, 3.0]
        assert result.expectation() == pytest.approx(1.5)

    def test_categorical_support(self):
        program = Sample(Categorical([1.0, 2.0, 4.0], [0.2, 0.3, 0.5]))
        result = enumerate_posterior(program)
        assert result.expectation() == pytest.approx(0.2 + 0.6 + 2.0)

    def test_probability_of_interval(self):
        result = enumerate_posterior(Sample(Categorical([0.0, 1.0, 2.0], [0.25, 0.25, 0.5])))
        assert result.probability_of(Interval(0.5, 2.5)) == pytest.approx(0.75)

    def test_continuous_sample_rejected(self):
        with pytest.raises(ExactInferenceError):
            enumerate_posterior(b.sample())

    def test_recursion_requires_unrolling_bound(self):
        loop = b.fix(
            "f",
            "x",
            b.if_leq(b.var("x"), 0.0, b.var("x"), b.app(b.var("f"), b.sub(b.var("x"), 1.0))),
        )
        assert enumerate_posterior(b.app(loop, 3.0), max_unroll=10).probability(0.0) == 1.0
        with pytest.raises(UnrollLimitReached):
            enumerate_posterior(b.app(loop, 100.0), max_unroll=5)

    def test_geometric_truncation_changes_posterior(self):
        """The Fig. 6a effect: truncated enumeration differs from the true distribution."""
        loop = b.fix(
            "f",
            "count",
            b.if_leq(
                Sample(Bernoulli(0.5)),
                0.0,
                b.var("count"),
                b.app(b.var("f"), b.add(b.var("count"), 1.0)),
            ),
        )
        program = b.app(loop, 0.0)
        with pytest.raises(UnrollLimitReached):
            enumerate_posterior(program, max_unroll=6)
        truncated = enumerate_posterior(program, max_unroll=6, on_limit="truncate")
        # The enumeration only sees counts up to the truncation depth, so the
        # tail mass is missing entirely.
        assert truncated.normalising_constant < 1.0
        assert max(truncated.support()) <= 6.0

    def test_zero_mass_distribution(self):
        program = b.seq(b.score(0.0), Sample(Bernoulli(0.5)))
        result = enumerate_posterior(program)
        assert result.normalising_constant == 0.0
        assert result.probability(1.0) == 0.0
        with pytest.raises(ExactInferenceError):
            result.expectation()

    def test_agrees_with_gubpi_on_suite_entry(self):
        from repro.analysis import Model

        case = discrete_benchmark_by_name("noisyOr")
        model = Model(case.program)
        exact = model.exact().probability_of(case.query_target)
        bounds = model.probability(case.query_target)
        assert bounds.contains(exact, slack=1e-9)


class TestProbabilityEstimationBaseline:
    def test_exact_on_single_path_program(self):
        program = b.sub(b.add(b.sample(), b.sample()), 1.0)
        estimate = estimate_probability(program, Interval(-math.inf, 0.0))
        assert estimate.lower == pytest.approx(0.5, abs=1e-9)
        assert estimate.upper == pytest.approx(0.5, abs=1e-9)

    def test_budget_limits_precision(self):
        """With a tiny path budget the unexplored mass widens the bounds."""
        program = b.if_leq(
            b.sample(), 0.5,
            b.if_leq(b.sample(), 0.5, 1.0, 2.0),
            b.if_leq(b.sample(), 0.5, 3.0, 4.0),
        )
        target = Interval(0.5, 1.5)
        full = estimate_probability(program, target, path_budget=10)
        limited = estimate_probability(program, target, path_budget=1)
        assert full.width < 1e-9
        assert limited.width > 0.5
        assert limited.lower <= 0.25 <= limited.upper

    def test_score_free_restriction(self):
        program = b.seq(b.observe_normal(0.0, 1.0, b.sample()), b.sample())
        with pytest.raises(ScoreFreeError):
            estimate_probability(program, Interval(0.0, 0.5))

    def test_bounds_contain_truth_for_recursive_program(self):
        from helpers import geometric_program

        estimate = estimate_probability(geometric_program(0.5), Interval(-0.5, 0.5), max_fixpoint_depth=5)
        assert estimate.lower <= 0.5 <= estimate.upper

    def test_result_dataclass_fields(self):
        program = b.sample()
        estimate = estimate_probability(program, Interval(0.0, 0.25))
        assert isinstance(estimate, ProbabilityEstimate)
        assert estimate.explored_paths == 1
        assert estimate.explored_mass == pytest.approx(1.0, abs=1e-9)
        assert estimate.seconds >= 0.0


class TestSimulationBasedCalibration:
    @staticmethod
    def _uniform_normal_model() -> SBCModel:
        def prior(rng):
            return float(rng.uniform(0.0, 1.0))

        def generate(theta, rng):
            return [float(rng.normal(theta, 0.2))]

        def build(data):
            return b.let(
                "x",
                b.sample(),
                b.seq(b.observe_normal(float(data[0]), 0.2, b.var("x")), b.var("x")),
            )

        return SBCModel("uniform-normal", prior, generate, build)

    @staticmethod
    def _is_inference(program, count, rng):
        result = importance_sampling(program, max(count * 4, 200), rng)
        return list(result.resample(count, rng))

    def test_calibrated_inference_gives_uniform_ranks(self, rng):
        sbc = simulation_based_calibration(
            self._uniform_normal_model(), self._is_inference, simulations=120, samples_per_simulation=15, rng=rng
        )
        assert len(sbc.ranks) == 120
        assert all(0 <= rank <= 15 for rank in sbc.ranks)
        assert sbc.looks_calibrated
        assert sbc.seconds > 0

    def test_broken_inference_detected(self, rng):
        def broken_inference(program, count, rng_):
            # Ignores the data entirely: posterior samples from the prior's lower half.
            return list(rng_.uniform(0.0, 0.5, size=count))

        sbc = simulation_based_calibration(
            self._uniform_normal_model(), broken_inference, simulations=120, samples_per_simulation=15, rng=rng
        )
        statistic, p_value = sbc.uniformity()
        assert p_value < 0.01
        assert not sbc.looks_calibrated

    def test_rank_histogram_shape(self, rng):
        sbc = simulation_based_calibration(
            self._uniform_normal_model(), self._is_inference, simulations=40, samples_per_simulation=7, rng=rng
        )
        histogram = sbc.rank_histogram(bins=4)
        assert histogram.sum() == 40

    def test_thinning_recorded(self, rng):
        sbc = simulation_based_calibration(
            self._uniform_normal_model(),
            self._is_inference,
            simulations=10,
            samples_per_simulation=7,
            rng=rng,
            thinning=3,
        )
        assert sbc.thinning == 3
        assert len(sbc.ranks) == 10
