"""Seeded chaos suite: deterministic fault injection across the service tier.

Every scenario here installs a :class:`repro.faults.FaultPlan` — in this
process (queue/server/transport/stream sites) or in a spawned worker's
environment (``worker.*`` sites) — and asserts that the stack *recovers*:
every recovered query's bounds are **bit-identical** to the fault-free
golden run, because retries, requeues and the degradation ladder all replay
the identical chunk body and merge in canonical path order.

Covered fault scenarios (all seeded, all deterministic):

==== ==========================================================  ==========
#    scenario                                                    layer
==== ==========================================================  ==========
1    job frame silently dropped → timeout, requeue, complete     protocol
2    resource frame truncated mid-send → requeue, bit-identical  protocol
3    every job frame delayed → only latency, bit-identical       protocol
4    resource frame slow-lorised → still delivered intact        protocol
5    worker attach failure → retry elsewhere, bit-identical      worker
6    worker job failure → error frame, healthy retry             worker
7    worker dies at job 2 of a refined streamed query →           worker
     ladder completes, partials monotone, final bit-identical
8    every worker dies at job 1 → full degradation ladder         worker
     (socket → process/serial), batch bounds bit-identical
9    heartbeats suppressed → wedged worker reaped in ~3 beats,   worker
     not the 30 s job timeout
10   shared-memory publish failure → pickle transport,           transport
     bit-identical
11   mid-stream path explosion injected → typed error surfaces   transport
12   server query fault → typed FAULT frame, connection usable   server
13   backpressure: slot held → typed BUSY with retry-after       server
14   client deadline expires server-side → typed                 server
     DEADLINE_EXCEEDED, later queries unaffected
==== ==========================================================  ==========

The fast classes at the top (plan parsing, backoff, taxonomy) run in the
tier-1 suite; network scenarios are ``slow``-marked like the rest of the
service tests and run in the ``tests-chaos`` CI job with ``-m ""``.
"""

from __future__ import annotations

import socket
import threading
import time
import warnings

import pytest

from repro import faults, intervals
from repro.analysis.config import AnalysisOptions
from repro.analysis.model import Model
from repro.faults import FaultPlan
from repro.lang import parse
from repro.service import (
    DeadlineExceeded,
    JobError,
    JobRetriesExhausted,
    ServerBusy,
    ServiceClient,
    ServiceError,
    ServiceFault,
    WorkerLost,
    WorkQueueServer,
    serve_in_background,
)
from repro.service.protocol import error_from_frame
from repro.service.worker import BoundWorker
from repro.symbolic import PathExplosionError

#: Same two-path weighted model the service suite uses — small enough to
#: run in every scenario, branchy enough to chunk.
BRANCHY_SRC = """
(let x (sample uniform 0 1)
  (let y (sample uniform 0 1)
    (if (- x y)
        (let z (score (+ 0.5 x)) (+ x y))
        (let z (score (- 1.5 x)) (* x y)))))
"""

TARGETS = (intervals.Interval(0.0, 0.5), intervals.Interval(0.5, 1.0))


def as_pairs(bounds):
    return [(entry.lower, entry.upper) for entry in bounds]


@pytest.fixture(scope="module")
def serial_bounds():
    """The fault-free golden: one serial run, exact floats."""
    model = Model(parse(BRANCHY_SRC))
    try:
        return as_pairs(model.bounds(TARGETS, AnalysisOptions()))
    finally:
        model.close()


@pytest.fixture(autouse=True)
def no_leaked_plan():
    """Every test starts and ends with fault injection disabled."""
    faults.uninstall()
    yield
    faults.uninstall()


# ---------------------------------------------------------------------------
# Fault plans (fast, tier-1)
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "seed=42; worker.job:die@2; queue.send.job:drop@1,3;"
            "a.b:delay(0.5)@3+; x:fail@*"
        )
        assert plan.seed == 42
        assert [rule.site for rule in plan.rules] == [
            "worker.job", "queue.send.job", "a.b", "x",
        ]
        assert plan.rules[0].action.kind == "die"
        assert plan.rules[2].action == faults.FaultAction("delay", 0.5)

    def test_hit_specs_select_exact_hits(self):
        plan = FaultPlan.parse("s:fail@2")
        assert [plan.decide("s") for _ in range(3)] == [
            None, faults.FaultAction("fail"), None,
        ]
        plan = FaultPlan.parse("s:fail@1,3")
        assert [plan.decide("s") is not None for _ in range(4)] == [
            True, False, True, False,
        ]
        plan = FaultPlan.parse("s:fail@3+")
        assert [plan.decide("s") is not None for _ in range(5)] == [
            False, False, True, True, True,
        ]
        plan = FaultPlan.parse("s:fail@*")
        assert all(plan.decide("s") is not None for _ in range(4))

    def test_hit_counters_are_per_site(self):
        plan = FaultPlan.parse("a:fail@2")
        assert plan.decide("b") is None  # does not advance site "a"
        assert plan.decide("a") is None
        assert plan.decide("a") is not None
        assert plan.hit_count("a") == 2
        assert plan.hit_count("b") == 1

    @pytest.mark.parametrize("bad", [
        "s:frobnicate@1",        # unknown action
        "no-colon",              # missing site:action
        "s:fail",                # missing @hits
        "s:fail@0",              # hits are 1-based
        "s:fail@0+",
        "s:fail@",
    ])
    def test_parse_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_same_seed_same_default_params(self):
        one = FaultPlan.parse("seed=7;s:delay@*")
        two = FaultPlan.parse("seed=7;s:delay@*")
        assert [one.default_param() for _ in range(5)] == [
            two.default_param() for _ in range(5)
        ]

    def test_disabled_plan_is_a_noop(self):
        assert faults.active() is None
        assert faults.decide("anything") is None

    def test_injected_installs_and_restores(self):
        with faults.injected("s:fail@1") as plan:
            assert faults.active() is plan
            assert faults.decide("s") == faults.FaultAction("fail")
        assert faults.active() is None


# ---------------------------------------------------------------------------
# Reconnect backoff (fast, tier-1) — satellite: auto-reconnect unit test
# ---------------------------------------------------------------------------

class TestReconnectBackoff:
    def test_backoff_is_seeded_and_bounded(self):
        make = lambda: BoundWorker(
            "127.0.0.1:1", jitter_seed=7,
            reconnect_delay=0.1, reconnect_max_delay=5.0,
        )
        one, two = make(), make()
        delays_one = [one._reconnect_delay(k) for k in range(1, 12)]
        delays_two = [two._reconnect_delay(k) for k in range(1, 12)]
        assert delays_one == delays_two  # same seed, same jitter draws
        for failures, delay in enumerate(delays_one, start=1):
            assert 0.0 <= delay <= min(5.0, 0.1 * 2 ** (failures - 1))

    def test_backoff_window_grows_then_caps(self):
        worker = BoundWorker(
            "127.0.0.1:1", jitter_seed=0,
            reconnect_delay=0.5, reconnect_max_delay=2.0,
        )
        # The *window* is exponential then capped; sample many draws to see
        # its upper edge (draws are uniform over [0, window]).
        window = lambda k: max(worker._reconnect_delay(k) for _ in range(200))
        assert window(1) <= 0.5
        assert window(3) <= 2.0
        assert window(10) <= 2.0  # capped, never 0.5 * 2**9

    def test_max_attempts_cap_gives_up(self):
        # A port with nothing listening: connects fail fast, and after
        # reconnect_attempts consecutive failures run() returns.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        worker = BoundWorker(
            f"127.0.0.1:{port}", reconnect_attempts=3,
            reconnect_delay=0.001, reconnect_max_delay=0.002, jitter_seed=1,
        )
        start = time.monotonic()
        worker.run()  # returns instead of looping forever
        assert time.monotonic() - start < 10.0


# ---------------------------------------------------------------------------
# Error taxonomy (fast, tier-1) — satellite: typed errors
# ---------------------------------------------------------------------------

class TestErrorTaxonomy:
    def test_wire_codes_decode_to_typed_exceptions(self):
        cases = {
            "FAULT": ServiceFault,
            "DEADLINE_EXCEEDED": DeadlineExceeded,
            "WORKER_LOST": WorkerLost,
        }
        for code, cls in cases.items():
            error = error_from_frame({"code": code, "error": "boom"})
            assert type(error) is cls
            assert "boom" in str(error)

    def test_busy_carries_retry_after(self):
        error = error_from_frame(
            {"code": "BUSY", "error": "full", "retry_after": 0.25}
        )
        assert isinstance(error, ServerBusy)
        assert error.retry_after == 0.25

    def test_untyped_and_unknown_codes_stay_plain(self):
        for frame in (
            {"exc_type": "ParseError", "error": "bad"},
            {"code": "SOMETHING_NEW", "error": "bad"},
        ):
            error = error_from_frame(frame)
            assert type(error) is ServiceError

    def test_hierarchy(self):
        assert issubclass(JobRetriesExhausted, WorkerLost)
        for cls in (ServiceFault, ServerBusy, DeadlineExceeded, WorkerLost):
            assert issubclass(cls, ServiceError)


# ---------------------------------------------------------------------------
# Protocol-layer chaos (scenarios 1–4)
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestProtocolChaos:
    def test_dropped_job_frame_times_out_and_retries(self):
        with WorkQueueServer() as queue:
            queue.spawn_local_workers(1)
            assert queue.wait_for_workers(1, timeout=30)
            with faults.injected("seed=1;queue.send.job:drop@1") as plan:
                future = queue.submit_sleep(0.01, timeout=1.0, retries=2)
                assert future.result(timeout=30) is None
                assert plan.hit_count("queue.send.job") >= 2  # retry re-sent
            assert queue.stats()["requeued"] >= 1
            assert queue.stats()["completed"] == 1

    def test_truncated_resource_frame_recovers_bit_identical(self, serial_bounds):
        model = Model(parse(BRANCHY_SRC))
        try:
            options = AnalysisOptions(
                executor="socket", workers=2, chunk_size=1,
                job_timeout=10.0, job_retries=2,
            )
            with faults.injected("seed=2;queue.send.resource:truncate@1"):
                assert as_pairs(model.bounds(TARGETS, options)) == serial_bounds
            executor = model._executors[options.executor_key()]
            assert executor._queue.stats()["requeued"] >= 1
        finally:
            model.close()

    def test_delayed_job_frames_only_add_latency(self, serial_bounds):
        model = Model(parse(BRANCHY_SRC))
        try:
            options = AnalysisOptions(executor="socket", workers=2, chunk_size=1)
            with faults.injected("seed=3;queue.send.job:delay(0.05)@*"):
                assert as_pairs(model.bounds(TARGETS, options)) == serial_bounds
            executor = model._executors[options.executor_key()]
            assert executor._queue.stats()["failed"] == 0
        finally:
            model.close()

    def test_slowloris_resource_frame_still_delivers(self, serial_bounds):
        model = Model(parse(BRANCHY_SRC))
        try:
            options = AnalysisOptions(executor="socket", workers=2, chunk_size=1)
            with faults.injected("seed=4;queue.send.resource:slowloris(0.002)@1"):
                assert as_pairs(model.bounds(TARGETS, options)) == serial_bounds
        finally:
            model.close()


# ---------------------------------------------------------------------------
# Worker-layer chaos (scenarios 5–9)
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestWorkerChaos:
    def test_attach_failure_retries_elsewhere_bit_identical(self, serial_bounds):
        model = Model(parse(BRANCHY_SRC))
        try:
            options = AnalysisOptions(
                executor="socket", workers=2, chunk_size=1,
                socket_spawn_workers=0, job_timeout=10.0, job_retries=2,
            )
            executor = model._executor_for(options)
            queue = executor._ensure_queue()
            # Only the first worker fails its first attach; the survivor
            # (and the faulted worker's own retry) are clean.
            queue.spawn_local_workers(2, faults="seed=5;worker.attach:fail@1")
            assert queue.wait_for_workers(2, timeout=30)
            assert as_pairs(model.bounds(TARGETS, options)) == serial_bounds
        finally:
            model.close()

    def test_job_fault_reports_error_and_retries(self):
        with WorkQueueServer() as queue:
            queue.spawn_local_workers(1, faults="seed=6;worker.job:fail@1")
            assert queue.wait_for_workers(1, timeout=30)
            future = queue.submit_sleep(0.01, retries=2)
            assert future.result(timeout=30) is None  # hit 2 runs clean
            assert queue.stats()["requeued"] == 1

    def test_job_fault_every_attempt_surfaces_job_error(self):
        with WorkQueueServer() as queue:
            queue.spawn_local_workers(1, faults="seed=6;worker.job:fail@*")
            assert queue.wait_for_workers(1, timeout=30)
            future = queue.submit_sleep(0.01, retries=1)
            with pytest.raises(JobError, match="FaultInjected"):
                future.result(timeout=30)

    def test_worker_dies_mid_refined_stream_partials_monotone(self):
        """Satellite: kill a worker during a refined streamed query.

        The faulted worker exits with no goodbye at its *second* job (the
        ``die`` action is the SIGKILL primitive) — between the streamed
        chunks and the refinement rounds.  The stranded and remaining work
        rides the degradation ladder; the streamed partials stay monotone
        and the final refined bounds are bit-identical to a fault-free run
        of the same options.
        """
        base = AnalysisOptions(
            chunk_size=1, stream=True, stream_cache_budget=None,
            refine="gap", refine_max_rounds=2,
        )
        golden_model = Model(parse(BRANCHY_SRC))
        try:
            golden = as_pairs(golden_model.bounds(TARGETS, base))
        finally:
            golden_model.close()

        options = base.with_updates(
            executor="socket", workers=2, socket_spawn_workers=0,
            io_timeout=1.0, job_timeout=10.0, job_retries=1,
        )
        model = Model(parse(BRANCHY_SRC))
        try:
            executor = model._executor_for(options)
            queue = executor._ensure_queue()
            queue.spawn_local_workers(1, faults="seed=7;worker.job:die@2")
            assert queue.wait_for_workers(1, timeout=30)
            partials: list[list[tuple[float, float]]] = []
            with pytest.warns(RuntimeWarning, match="degraded"):
                bounds = model.bounds(
                    TARGETS, options,
                    progress=lambda partial, done: partials.append(as_pairs(partial)),
                )
            assert as_pairs(bounds) == golden
            assert executor.degraded_chunks >= 1
            assert executor.degraded_to in ("process", "serial")
            # Streamed/refined partial lower bounds never move backwards.
            for target_index in range(len(TARGETS)):
                lowers = [p[target_index][0] for p in partials]
                lowers.append(bounds[target_index].lower)
                assert all(a <= b + 1e-12 for a, b in zip(lowers, lowers[1:]))
        finally:
            model.close()

    def test_all_workers_lost_batch_rides_full_ladder(
        self, serial_bounds, monkeypatch
    ):
        """Acceptance scenario: the socket backend is *fully* lost.

        Every spawned worker inherits a plan that kills it on its first
        job, so the queue goes workerless mid-query; after ``io_timeout``
        of reconnect grace the executor walks the ladder and completes the
        batch on the local process pool (or serial), bit-identical.
        """
        monkeypatch.setenv(faults.ENV_VAR, "seed=8;worker.job:die@1")
        model = Model(parse(BRANCHY_SRC))
        try:
            options = AnalysisOptions(
                executor="socket", workers=2, chunk_size=1,
                io_timeout=1.0, job_timeout=10.0, job_retries=1,
            )
            with pytest.warns(RuntimeWarning, match="degraded"):
                bounds = model.bounds(TARGETS, options)
            assert as_pairs(bounds) == serial_bounds
            executor = model._executors[options.executor_key()]
            assert executor.degraded_chunks >= 1
            assert executor.degraded_to in ("process", "serial")
        finally:
            model.close()

    def test_suppressed_heartbeats_reap_wedged_worker_fast(self):
        # Job timeout is a generous 30 s, but the worker's heartbeats are
        # all dropped — liveness reaping fires after ~3 missed beats, so a
        # no-retry job fails in well under the job timeout.
        with WorkQueueServer(job_timeout=30.0) as queue:
            queue.spawn_local_workers(
                1, faults="seed=9;worker.send.heartbeat:drop@*",
                heartbeat_interval=0.2,
            )
            assert queue.wait_for_workers(1, timeout=30)
            start = time.monotonic()
            future = queue.submit_sleep(10.0, retries=0)
            with pytest.raises(JobRetriesExhausted, match="stopped heartbeating"):
                future.result(timeout=30)
            assert time.monotonic() - start < 5.0  # not the 30 s timeout
            assert queue.stats()["reaped"] >= 1


# ---------------------------------------------------------------------------
# Transport-layer chaos (scenarios 10–11)
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestTransportChaos:
    def test_publish_failure_degrades_to_pickle_bit_identical(self, serial_bounds):
        model = Model(parse(BRANCHY_SRC))
        try:
            options = AnalysisOptions(executor="process", workers=2, chunk_size=1)
            with faults.injected("seed=10;transport.publish:fail@*"):
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")  # the degradation notice
                    bounds = model.bounds(TARGETS, options)
            assert as_pairs(bounds) == serial_bounds
            assert model._executors[options.executor_key()]._arena_degraded
        finally:
            model.close()

    def test_midstream_path_explosion_surfaces(self):
        model = Model(parse(BRANCHY_SRC))
        try:
            options = AnalysisOptions(
                executor="thread", workers=2, stream=True,
                stream_cache_budget=None,
            )
            with faults.injected("seed=11;stream.paths:explode@2"):
                with pytest.raises(PathExplosionError, match="injected mid-stream"):
                    model.bounds(TARGETS, options)
        finally:
            model.close()


# ---------------------------------------------------------------------------
# Server-layer chaos (scenarios 12–14)
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestServerChaos:
    def test_query_fault_is_typed_and_connection_survives(self, serial_bounds):
        with serve_in_background() as handle:
            with ServiceClient(handle.endpoint) as client:
                with faults.injected("seed=12;server.query:fail@1"):
                    with pytest.raises(ServiceFault, match="injected query failure"):
                        client.bounds(BRANCHY_SRC, [(0.0, 0.5), (0.5, 1.0)])
                    # Hit 2 does not fire: the same connection recovers.
                    reply = client.bounds(BRANCHY_SRC, [(0.0, 0.5), (0.5, 1.0)])
                assert as_pairs(reply.bounds) == serial_bounds
                assert client.ping()

    def test_backpressure_replies_busy_with_retry_after(self, serial_bounds):
        with serve_in_background(max_inflight_queries=1) as handle:
            with faults.injected("seed=13;server.query:delay(2.0)@1"):
                slow_reply = []

                def slow_query():
                    with ServiceClient(handle.endpoint) as tenant:
                        slow_reply.append(
                            tenant.bounds(BRANCHY_SRC, [(0.0, 0.5), (0.5, 1.0)])
                        )

                thread = threading.Thread(target=slow_query)
                thread.start()
                try:
                    with ServiceClient(handle.endpoint) as client:
                        # Wait until the delayed query owns the single slot.
                        deadline = time.monotonic() + 10
                        while time.monotonic() < deadline:
                            if client.stats().get("inflight", 0) >= 1:
                                break
                            time.sleep(0.01)
                        with pytest.raises(ServerBusy) as excinfo:
                            client.bounds(BRANCHY_SRC, [(0.0, 1.0)])
                        assert excinfo.value.retry_after == 0.25
                        thread.join(timeout=60)
                        # Slot released: the rejected query now succeeds.
                        retry = client.bounds(BRANCHY_SRC, [(0.0, 1.0)])
                        assert len(retry.bounds) == 1
                        assert client.stats()["rejected"] >= 1
                finally:
                    thread.join(timeout=60)
            assert slow_reply and as_pairs(slow_reply[0].bounds) == serial_bounds

    def test_deadline_exceeded_is_typed_and_isolated(self, serial_bounds):
        with serve_in_background() as handle:
            with ServiceClient(handle.endpoint) as client:
                with pytest.raises(DeadlineExceeded, match="deadline"):
                    client.bounds(
                        BRANCHY_SRC, [(0.0, 0.5), (0.5, 1.0)], deadline=1e-6
                    )
                # The same query *without* the hopeless deadline is served
                # fresh — deadline participates in the result-cache key, so
                # the abandoned run cannot poison it.
                reply = client.bounds(
                    BRANCHY_SRC, [(0.0, 0.5), (0.5, 1.0)], deadline=120.0
                )
                assert as_pairs(reply.bounds) == serial_bounds
                assert client.ping()
