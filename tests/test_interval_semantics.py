"""Tests for interval SPCF reduction and the direct interval-trace bounds.

The key properties checked here are the paper's Lemma 3.1 (interval reduction
over-approximates concrete reduction) and Theorems 4.1/4.2 (the derived
lower/upper bounds sandwich the true denotation).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import integrate, stats

from repro.intervals import Box, Interval, unit_box
from repro.lang import builder as b
from repro.semantics import (
    direct_bounds,
    grid_interval_traces,
    interval_outcomes,
    interval_value_function,
    interval_weight_function,
    lower_bound,
    upper_bound,
    value_and_weight,
)

from helpers import simple_observe_model


def _containing_box(trace: tuple[float, ...], width: float = 0.1) -> Box:
    """An interval trace containing the given concrete trace."""
    cells = []
    for value in trace:
        lo = max(0.0, value - width)
        hi = min(1.0, value + width)
        cells.append(Interval(lo, hi))
    return Box(tuple(cells))


class TestIntervalReduction:
    def test_value_and_weight_functions(self):
        program = simple_observe_model()
        trace = Box.of(Interval(0.2, 0.4))
        value = interval_value_function(program, trace)
        weight = interval_weight_function(program, trace)
        assert value.lo == pytest.approx(0.6)
        assert value.hi == pytest.approx(1.2)
        assert weight.lo >= 0.0
        assert weight.hi <= stats.norm.pdf(0, scale=0.25) + 1e-9

    def test_wrong_length_trace_gives_trivial_bounds(self):
        program = simple_observe_model()
        trace = Box.of(Interval(0.2, 0.4), Interval(0.0, 1.0))
        assert interval_weight_function(program, trace) == Interval(0.0, math.inf)
        assert interval_value_function(program, trace) == Interval(-math.inf, math.inf)

    def test_undecided_conditional_gets_stuck_in_strict_mode(self):
        program = b.if_leq(b.sample(), 0.5, 1.0, 2.0)
        trace = Box.of(Interval(0.4, 0.6))
        assert interval_value_function(program, trace) == Interval(-math.inf, math.inf)

    def test_undecided_conditional_explored_in_both_mode(self):
        program = b.if_leq(b.sample(), 0.5, 1.0, 2.0)
        trace = Box.of(Interval(0.4, 0.6))
        outcomes = interval_outcomes(program, trace, mode="both")
        values = {outcome.value for outcome in outcomes if outcome.complete}
        assert Interval.point(1.0) in values
        assert Interval.point(2.0) in values

    def test_decided_conditional(self):
        program = b.if_leq(b.sample(), 0.5, 1.0, 2.0)
        assert interval_value_function(program, Box.of(Interval(0.0, 0.3))) == Interval.point(1.0)
        assert interval_value_function(program, Box.of(Interval(0.7, 0.9))) == Interval.point(2.0)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.01, max_value=0.99))
    def test_lemma_3_1_refinement(self, draw):
        """Lemma 3.1: wt_P(s) ∈ wt^I_P(t) and val_P(s) ∈ val^I_P(t) for s ◁ t."""
        program = simple_observe_model()
        concrete = value_and_weight(program, (draw,))
        box = _containing_box((draw,))
        assert concrete.value in interval_value_function(program, box)
        assert concrete.weight in interval_weight_function(program, box)

    def test_lemma_3_1_on_branching_program(self):
        program = b.let(
            "u",
            b.sample(),
            b.if_leq(b.var("u"), 0.5, b.mul(2.0, b.var("u")), b.add(b.var("u"), 1.0)),
        )
        for draw in (0.1, 0.3, 0.49, 0.51, 0.8, 0.99):
            concrete = value_and_weight(program, (draw,))
            box = _containing_box((draw,), width=0.005)
            assert concrete.value in interval_value_function(program, box)


class TestDirectBounds:
    def _truth(self, target: Interval) -> float:
        """Ground truth ⟦P⟧(target) for the simple observe model by quadrature."""
        lo = max(0.0, target.lo / 3.0)
        hi = min(1.0, target.hi / 3.0)
        if hi <= lo:
            return 0.0
        value, _ = integrate.quad(lambda u: stats.norm.pdf(1.1, loc=3 * u, scale=0.25), lo, hi)
        return value

    @pytest.mark.parametrize("target", [Interval(0.0, 1.0), Interval(0.5, 2.0), Interval(-math.inf, math.inf)])
    def test_bounds_sandwich_truth(self, target):
        program = simple_observe_model()
        traces = grid_interval_traces(sample_count=1, parts=40)
        bounds = direct_bounds(program, traces, target)
        truth = self._truth(target)
        assert bounds.lower <= truth + 1e-9
        assert truth <= bounds.upper + 1e-9
        assert bounds.width() < 0.5

    def test_bounds_tighten_with_refinement(self):
        program = simple_observe_model()
        target = Interval(0.0, 1.5)
        coarse = direct_bounds(program, grid_interval_traces(1, 5), target)
        fine = direct_bounds(program, grid_interval_traces(1, 50), target)
        assert fine.width() < coarse.width()
        assert fine.lower >= coarse.lower - 1e-12
        assert fine.upper <= coarse.upper + 1e-12

    def test_incompatible_set_rejected(self):
        program = simple_observe_model()
        overlapping = [Box.of(Interval(0.0, 0.6)), Box.of(Interval(0.3, 1.0))]
        with pytest.raises(ValueError):
            direct_bounds(program, overlapping, Interval(0.0, 1.0))

    def test_lower_bound_of_partial_cover_is_sound(self):
        program = simple_observe_model()
        partial = [Box.of(Interval(0.0, 0.25))]
        value = lower_bound(program, partial, Interval(-math.inf, math.inf))
        assert value <= self._truth(Interval(-math.inf, math.inf))

    def test_upper_bound_infinite_for_incomplete_reduction(self):
        """A program that cannot finish on the given traces yields an infinite upper bound."""
        program = b.add(b.sample(), b.sample())
        traces = [Box.of(Interval(0.0, 1.0))]  # too short: reduction cannot complete
        assert upper_bound(program, traces, Interval(-math.inf, math.inf)) == math.inf

    def test_two_sample_grid(self):
        program = b.add(b.sample(), b.sample())
        traces = grid_interval_traces(2, 8)
        bounds = direct_bounds(program, traces, Interval(0.0, 1.0))
        assert bounds.lower <= 0.5 <= bounds.upper

    def test_discrete_like_program_bounds(self):
        """Bounds for a probabilistic choice converge up to the boundary cell.

        The cell containing the branching threshold cannot be decided by
        closed-interval reasoning (Appendix A.4), so the upper bound exceeds
        the true probability by at most that cell's width.
        """
        program = b.choice(0.25, 1.0, 0.0)
        traces = [
            Box.of(Interval(0.0, 0.25)),
            Box.of(Interval(0.25, 0.3)),
            Box.of(Interval(0.3, 1.0)),
        ]
        bounds = direct_bounds(program, traces, Interval(0.5, 1.5))
        assert bounds.lower == pytest.approx(0.25)
        assert 0.25 <= bounds.upper <= 0.3 + 1e-9
