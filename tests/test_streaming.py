"""The streaming symbolic→analysis pipeline.

Four layers of guarantees are pinned here:

* **explorer equivalence** — :meth:`SymbolicExecutor.iter_paths` generates
  exactly the path set :meth:`SymbolicExecutor.run` materialises, in the same
  canonical order, with matching statistics (property-based across programs
  and fixpoint depths);
* **bound equivalence** — streamed queries (``AnalysisOptions(stream=True)``)
  return bounds *bit-identical* to batch queries for every analyzer
  selection, worker count, chunk size and executor backend;
* **bounded memory** — the streaming pipeline's peak path buffer stays below
  the materialised path count and within the documented
  ``chunk_size × (workers × prefetch + 1)`` envelope;
* **error propagation** — a mid-stream :class:`PathExplosionError` (the
  generator raising after having yielded paths) propagates out of both the
  bare generator and the streaming analysis, serial and pooled.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    AnalysisOptions,
    AnalysisReport,
    Model,
    ParallelAnalysisExecutor,
    analyze_path_stream,
)
from repro.intervals import Interval
from repro.lang import builder as b
from repro.symbolic import (
    ExecutionLimits,
    PathExplosionError,
    StreamStats,
    SymbolicExecutor,
    intern_paths,
    stream_symbolic_paths,
    symbolic_paths,
)

from helpers import geometric_program, pedestrian_walk_fixpoint, simple_observe_model


def nonlinear_model():
    return b.mul(b.sample(), b.sample())


def pedestrian_model():
    return b.let("start", b.mul(3.0, b.sample()), b.app(pedestrian_walk_fixpoint(), b.var("start")))


_PROGRAMS = {
    "observe": simple_observe_model,
    "nonlinear": nonlinear_model,
    "geometric": lambda: geometric_program(0.5),
    "pedestrian": pedestrian_model,
}

_TARGETS = [Interval(0.0, 1.0), Interval(0.5, 2.0), Interval(-1e9, 1e9)]


# ----------------------------------------------------------------------
# Explorer equivalence: run() vs iter_paths()
# ----------------------------------------------------------------------


class TestIterPathsEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        program=st.sampled_from(sorted(_PROGRAMS)),
        depth=st.integers(min_value=1, max_value=6),
    )
    def test_same_paths_same_order_same_stats(self, program, depth):
        term = _PROGRAMS[program]()
        limits = ExecutionLimits(max_fixpoint_depth=depth)
        batch = symbolic_paths(term, limits)

        stats = StreamStats()
        streamed = tuple(SymbolicExecutor(limits).iter_paths(term, stats))

        assert streamed == batch.paths  # same paths, same canonical order
        assert stats.exhausted
        assert stats.emitted_paths == batch.path_count
        assert stats.truncated_paths == batch.truncated_paths
        assert stats.pruned_paths == batch.pruned_paths

    def test_stream_run_wraps_generator_and_stats(self):
        stream = stream_symbolic_paths(_PROGRAMS["geometric"](), ExecutionLimits(max_fixpoint_depth=5))
        assert not stream.stats.exhausted
        paths = list(stream)
        assert paths
        assert stream.stats.exhausted
        assert stream.stats.emitted_paths == len(paths)

    def test_stats_update_in_lockstep_with_consumption(self):
        stream = stream_symbolic_paths(_PROGRAMS["geometric"](), ExecutionLimits(max_fixpoint_depth=5))
        iterator = iter(stream)
        next(iterator)
        assert stream.stats.emitted_paths == 1
        assert not stream.stats.exhausted
        next(iterator)
        assert stream.stats.emitted_paths == 2

    def test_partial_consumption_can_be_abandoned(self):
        """Closing a half-consumed generator must not leak or error."""
        stream = stream_symbolic_paths(pedestrian_model(), ExecutionLimits(max_fixpoint_depth=5))
        iterator = iter(stream)
        for _ in range(3):
            next(iterator)
        iterator.close()
        assert stream.stats.emitted_paths == 3
        assert not stream.stats.exhausted


# ----------------------------------------------------------------------
# Mid-stream path explosion
# ----------------------------------------------------------------------


class TestMidStreamExplosion:
    def test_generator_yields_then_raises(self):
        limits = ExecutionLimits(max_fixpoint_depth=30, max_paths=5)
        stats = StreamStats()
        iterator = SymbolicExecutor(limits).iter_paths(geometric_program(0.5), stats)
        yielded = []
        with pytest.raises(PathExplosionError):
            for path in iterator:
                yielded.append(path)
        # The budgeted prefix was delivered before the stream blew up.
        assert 0 < len(yielded) <= 5
        assert not stats.exhausted

    def test_run_still_raises_like_the_historical_engine(self):
        with pytest.raises(PathExplosionError):
            symbolic_paths(geometric_program(0.5), ExecutionLimits(max_fixpoint_depth=30, max_paths=5))

    @pytest.mark.parametrize("kind,workers", [("serial", 1), ("thread", 2), ("process", 2)])
    def test_streamed_analysis_propagates_explosion(self, kind, workers):
        options = AnalysisOptions(
            max_fixpoint_depth=30,
            max_paths=5,
            workers=workers,
            executor=kind,
            stream=True,
            chunk_size=2,
        )
        with Model(geometric_program(0.5), options) as model:
            with pytest.raises(PathExplosionError):
                model.bounds([Interval(0.0, 1.0)])


# ----------------------------------------------------------------------
# Streamed vs batch bound bit-equality
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def batch_baselines():
    baselines = {}
    for name, build in _PROGRAMS.items():
        options = AnalysisOptions(max_fixpoint_depth=5, score_splits=8, workers=1, executor="serial")
        model = Model(build(), options)
        baselines[name] = (model, model.bounds(_TARGETS))
    return baselines


def assert_bits_equal(first, second):
    assert len(first) == len(second)
    for a, b_ in zip(first, second):
        assert a.lower == b_.lower, f"lower bounds differ: {a.lower!r} vs {b_.lower!r}"
        assert a.upper == b_.upper, f"upper bounds differ: {a.upper!r} vs {b_.upper!r}"


class TestStreamedBatchEquivalence:
    @pytest.mark.slow
    @settings(max_examples=25, deadline=None)
    @given(
        program=st.sampled_from(sorted(_PROGRAMS)),
        workers=st.integers(min_value=1, max_value=4),
        chunk_size=st.sampled_from([None, 1, 2, 7]),
        kind=st.sampled_from(["serial", "thread"]),
        prefetch=st.sampled_from([1, 2, 4]),
        analyzers=st.sampled_from([None, ("linear", "box"), ("box",)]),
    )
    def test_streamed_bounds_bit_identical(
        self, batch_baselines, program, workers, chunk_size, kind, prefetch, analyzers
    ):
        model, _ = batch_baselines[program]
        batch_options = model.options.with_updates(analyzers=analyzers)
        stream_options = batch_options.with_updates(
            stream=True, workers=workers, chunk_size=chunk_size, executor=kind, prefetch=prefetch
        )
        batch = model.bounds(_TARGETS, batch_options)
        # A fresh model so the streamed query cannot be served from the
        # baseline model's compiled-program cache.
        with Model(model.term, stream_options) as fresh:
            streamed = fresh.bounds(_TARGETS)
        assert_bits_equal(batch, streamed)

    @pytest.mark.parametrize("program", sorted(_PROGRAMS))
    def test_streamed_process_pool_bit_identical(self, batch_baselines, program):
        model, batch = batch_baselines[program]
        options = model.options.with_updates(stream=True, workers=2, executor="process", chunk_size=3)
        with Model(model.term, options) as fresh:
            assert_bits_equal(batch, fresh.bounds(_TARGETS))

    def test_streamed_query_bounds_and_histogram(self, batch_baselines):
        model, _ = batch_baselines["observe"]
        target = Interval(0.0, 1.0)
        batch_query = model.probability(target)
        batch_histogram = model.histogram(0.0, 3.0, 4)
        options = model.options.with_updates(stream=True, workers=2, executor="thread")
        with Model(model.term, options) as fresh:
            streamed_query = fresh.probability(target)
            streamed_histogram = fresh.histogram(0.0, 3.0, 4)
        assert streamed_query.lower == batch_query.lower
        assert streamed_query.upper == batch_query.upper
        assert streamed_histogram.z_lower == batch_histogram.z_lower
        assert streamed_histogram.z_upper == batch_histogram.z_upper
        for batch_bucket, stream_bucket in zip(batch_histogram.buckets, streamed_histogram.buckets):
            assert stream_bucket.lower == batch_bucket.lower
            assert stream_bucket.upper == batch_bucket.upper

    def test_streamed_query_uses_cache_when_already_compiled(self, batch_baselines):
        model, batch = batch_baselines["geometric"]
        hits_before = model.cache_hits
        streamed = model.bounds(_TARGETS, model.options.with_updates(stream=True))
        assert model.cache_hits == hits_before + 1  # served from the batch cache
        assert_bits_equal(batch, streamed)

    def test_engine_level_stream_of_plain_iterable(self, batch_baselines):
        """analyze_path_stream accepts any iterable of paths, not just generators."""
        model, batch = batch_baselines["geometric"]
        execution = symbolic_paths(model.term, model.options.execution_limits())
        streamed = analyze_path_stream(iter(execution.paths), _TARGETS, model.options)
        assert_bits_equal(batch, streamed)

    def test_streamed_report_counters_match_serial(self, batch_baselines):
        model, _ = batch_baselines["pedestrian"]
        batch_report = AnalysisReport()
        model.bounds(_TARGETS, report=batch_report)
        stream_report = AnalysisReport()
        options = model.options.with_updates(stream=True, workers=2, executor="thread", chunk_size=4)
        with Model(model.term, options) as fresh:
            fresh.bounds(_TARGETS, report=stream_report)
        assert stream_report.path_count == batch_report.path_count
        assert stream_report.truncated_paths == batch_report.truncated_paths
        assert stream_report.analyzer_paths == batch_report.analyzer_paths
        assert stream_report.first_result_seconds is not None


# ----------------------------------------------------------------------
# Bounded path buffer
# ----------------------------------------------------------------------


class TestPeakPathBuffer:
    def test_serial_streaming_is_constant_memory(self):
        options = AnalysisOptions(max_fixpoint_depth=6, stream=True, workers=1, executor="serial")
        report = AnalysisReport()
        with Model(pedestrian_model(), options) as model:
            model.bounds([Interval(0.0, 1.0)], report=report)
        assert report.path_count > 50
        assert report.peak_path_buffer == 1

    @pytest.mark.slow
    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_pooled_streaming_respects_buffer_envelope(self, kind):
        workers, prefetch, chunk_size = 2, 2, 8
        options = AnalysisOptions(
            max_fixpoint_depth=7,
            stream=True,
            workers=workers,
            prefetch=prefetch,
            chunk_size=chunk_size,
            executor=kind,
        )
        report = AnalysisReport()
        with Model(pedestrian_model(), options) as model:
            model.bounds([Interval(0.0, 1.0)], report=report)
        envelope = chunk_size * (workers * prefetch + 1)
        assert report.path_count > envelope  # the workload genuinely overflows the buffer
        assert 0 < report.peak_path_buffer <= envelope

    def test_prefetch_validation(self):
        with pytest.raises(ValueError):
            AnalysisOptions(prefetch=0)
        with pytest.raises(ValueError):
            AnalysisOptions(prefetch=-2)
        with pytest.raises(ValueError):
            AnalysisOptions(prefetch=1.5)

    def test_stream_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS_STREAM", "1")
        assert AnalysisOptions().stream
        monkeypatch.setenv("REPRO_ANALYSIS_STREAM", "0")
        assert not AnalysisOptions().stream


# ----------------------------------------------------------------------
# Expression interning (process-pool payload dedup)
# ----------------------------------------------------------------------


class TestInterning:
    def test_interning_preserves_structure_and_dedupes(self):
        execution = symbolic_paths(pedestrian_model(), ExecutionLimits(max_fixpoint_depth=6))
        interned = intern_paths(execution.paths)
        assert interned == execution.paths
        # Structurally equal results across paths collapse to one object.
        identities = {id(path.result) for path in interned}
        values = {path.result for path in interned}
        assert len(identities) == len(values)

    def test_interned_payloads_pickle_smaller(self):
        import pickle

        limits = ExecutionLimits(max_fixpoint_depth=7)
        # Streamed paths are yielded raw (un-interned); interning dedupes them.
        raw = tuple(stream_symbolic_paths(pedestrian_model(), limits))
        plain = pickle.dumps(raw)
        interned = pickle.dumps(intern_paths(raw))
        assert len(interned) < len(plain)
        # Batch execution collects through the PathTableBuilder, so its paths
        # are already maximally shared — re-interning cannot shrink them.
        execution = symbolic_paths(pedestrian_model(), limits)
        batch = pickle.dumps(execution.paths)
        assert len(pickle.dumps(intern_paths(execution.paths))) == len(batch)
        assert len(batch) < len(plain)

    def test_streaming_executor_exposes_peak_buffer_counter(self):
        execution = symbolic_paths(geometric_program(0.5), ExecutionLimits(max_fixpoint_depth=6))
        with ParallelAnalysisExecutor(workers=2, kind="thread") as executor:
            serial = ParallelAnalysisExecutor(workers=1, kind="serial")
            options = AnalysisOptions(score_splits=8, chunk_size=2)
            expected = serial.analyze(execution, _TARGETS, options)
            streamed = executor.analyze_stream(iter(execution.paths), _TARGETS, options)
            assert_bits_equal(expected, streamed)
            assert executor.peak_path_buffer > 0
