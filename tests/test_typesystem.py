"""Tests for the weight-aware interval type system (paper Section 5, Appendix D)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.intervals import Interval
from repro.lang import builder as b
from repro.semantics import simulate
from repro.typesystem import (
    ArrowIType,
    BaseIType,
    ConstraintSystem,
    ProductConstraint,
    SeedConstraint,
    WeightedIType,
    fixpoint_summary,
    generate_constraints,
    infer_weighted_type,
    is_weighted_subtype,
    is_weightless_subtype,
    solve,
    top_weighted,
    top_weightless,
)
from repro.lang.types import REAL, FunType

from helpers import pedestrian_walk_fixpoint


class TestSubtyping:
    def test_base_subtyping_is_inclusion(self):
        small = BaseIType(Interval(0.0, 1.0))
        large = BaseIType(Interval(-1.0, 2.0))
        assert is_weightless_subtype(small, large)
        assert not is_weightless_subtype(large, small)

    def test_arrow_subtyping_contravariant(self):
        narrow_arg = BaseIType(Interval(0.0, 1.0))
        wide_arg = BaseIType(Interval(-5.0, 5.0))
        result = WeightedIType(BaseIType(Interval(0.0, 1.0)), Interval(0.0, 1.0))
        f_wide = ArrowIType(wide_arg, result)
        f_narrow = ArrowIType(narrow_arg, result)
        # A function accepting a wider argument is a subtype of one accepting a narrower one.
        assert is_weightless_subtype(f_wide, f_narrow)
        assert not is_weightless_subtype(f_narrow, f_wide)

    def test_weighted_subtyping_requires_weight_inclusion(self):
        small = WeightedIType(BaseIType(Interval(0.0, 1.0)), Interval(1.0, 1.0))
        large = WeightedIType(BaseIType(Interval(0.0, 1.0)), Interval(0.0, 2.0))
        assert is_weighted_subtype(small, large)
        assert not is_weighted_subtype(large, small)

    def test_top_types(self):
        assert top_weightless(REAL) == BaseIType(Interval(-math.inf, math.inf))
        arrow = top_weightless(FunType(REAL, REAL))
        assert isinstance(arrow, ArrowIType)
        assert top_weighted(REAL).weight == Interval(0.0, math.inf)


class TestConstraintGenerationAndSolver:
    def test_constant_program(self):
        weighted = infer_weighted_type(b.const(3.0))
        assert weighted.wtype == BaseIType(Interval.point(3.0))
        assert weighted.weight == Interval.point(1.0)

    def test_sample_has_unit_interval(self):
        weighted = infer_weighted_type(b.sample())
        assert weighted.wtype == BaseIType(Interval(0.0, 1.0))

    def test_arithmetic_propagates(self):
        weighted = infer_weighted_type(b.add(b.mul(2.0, b.sample()), 1.0))
        assert weighted.wtype == BaseIType(Interval(1.0, 3.0))

    def test_score_bounds_weight(self):
        weighted = infer_weighted_type(b.seq(b.score(b.sample()), 0.0))
        assert weighted.weight == Interval(0.0, 1.0)

    def test_paper_example_5_1_shape(self):
        """Example 5.1: a score of a sample gives weight [0,1] and value within [0, 20]."""
        term = b.seq(b.score(b.sample()), b.mul(5.0, b.mul(4.0, b.sample())))
        weighted = infer_weighted_type(term)
        assert weighted.wtype == BaseIType(Interval(0.0, 20.0))
        assert weighted.weight == Interval(0.0, 1.0)

    def test_if_joins_branches(self):
        term = b.if_leq(b.sample(), 0.5, 1.0, 3.0)
        weighted = infer_weighted_type(term)
        assert weighted.wtype == BaseIType(Interval(1.0, 3.0))

    def test_branch_weights_join(self):
        term = b.if_leq(b.sample(), 0.5, b.score(2.0), b.score(4.0))
        weighted = infer_weighted_type(term)
        assert weighted.weight.contains_interval(Interval(2.0, 4.0))

    def test_solver_terminates_on_widening_example(self):
        """The Appendix D.3 divergence example: ν3 ⊒ ν3 + ν2 must terminate via widening."""
        term = b.app(
            b.fix("f", "x", b.app(b.var("f"), b.add(b.var("x"), 1.0))),
            0.0,
        )
        weighted = infer_weighted_type(term)
        assert weighted.wtype.interval.hi == math.inf

    def test_constraint_system_structure(self):
        system = generate_constraints(b.score(b.sample()))
        assert isinstance(system, ConstraintSystem)
        assert any(isinstance(c, SeedConstraint) for c in system.constraints)
        assert any(isinstance(c, ProductConstraint) for c in system.constraints)
        solution = solve(system)
        assert solution.stats.iterations > 0

    def test_open_term_with_environment(self):
        term = b.add(b.var("x"), 1.0)
        weighted = infer_weighted_type(term, {"x": BaseIType(Interval(0.0, 2.0))})
        assert weighted.wtype == BaseIType(Interval(1.0, 3.0))


class TestSoundness:
    """Theorem 5.1: inferred intervals contain the value and weight of every run."""

    @pytest.mark.parametrize("seed", range(5))
    def test_inferred_type_contains_concrete_runs(self, seed):
        term = b.let(
            "x",
            b.sample(),
            b.seq(
                b.score(b.add(b.var("x"), 0.5)),
                b.if_leq(b.var("x"), 0.5, b.mul(2.0, b.var("x")), b.add(b.var("x"), 3.0)),
            ),
        )
        weighted = infer_weighted_type(term)
        rng = np.random.default_rng(seed)
        for _ in range(50):
            run = simulate(term, rng)
            assert run.value in weighted.wtype.interval
            assert run.weight in weighted.weight

    def test_pedestrian_walk_summary_matches_paper(self):
        """Example 5.2 / 6.2: the walk types as [a,b] -> ⟨[0,∞] / [1,1]⟩."""
        summary = fixpoint_summary(pedestrian_walk_fixpoint(), Interval(-1.0, 4.0))
        assert summary.value == Interval(0.0, math.inf)
        assert summary.weight == Interval.point(1.0)

    def test_scoring_fixpoint_weight_widens(self):
        loop = b.fix(
            "f",
            "x",
            b.if_leq(b.var("x"), 0.0, 1.0, b.seq(b.score(2.0), b.app(b.var("f"), b.sub(b.var("x"), 1.0)))),
        )
        summary = fixpoint_summary(loop, Interval(0.0, 5.0))
        assert summary.weight.lo >= 1.0
        assert summary.weight.hi == math.inf
        assert 1.0 in summary.value

    def test_fixpoint_summary_concrete_soundness(self, rng):
        """The approxFix summary bounds actual terminating calls."""
        loop = b.fix(
            "f",
            "x",
            b.if_leq(
                b.var("x"),
                0.0,
                b.var("x"),
                b.seq(b.score(0.5), b.app(b.var("f"), b.sub(b.var("x"), b.sample()))),
            ),
        )
        summary = fixpoint_summary(loop, Interval(0.0, 2.0))
        program = b.app(loop, b.mul(2.0, b.sample()))
        for _ in range(50):
            run = simulate(program, rng)
            assert run.value in summary.value
            assert run.weight in summary.weight

    def test_higher_order_argument_falls_back(self):
        term = b.lam("x", b.var("x"))
        summary = fixpoint_summary(term, Interval(0.0, 1.0))
        assert Interval(0.0, 1.0).contains_interval(Interval(0.0, 1.0))
        assert summary.weight.contains_interval(Interval.point(1.0))

    def test_non_function_rejected(self):
        from repro.typesystem import TypeInferenceError

        with pytest.raises(TypeInferenceError):
            fixpoint_summary(b.const(1.0), Interval(0.0, 1.0))
