"""Tests for the distribution library: densities, CDFs, quantiles, interval bounds."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.distributions import (
    Bernoulli,
    Beta,
    Binomial,
    Categorical,
    Cauchy,
    DiscreteUniform,
    Exponential,
    Gamma,
    Geometric,
    Normal,
    Poisson,
    Uniform,
)
from repro.intervals import Interval

CONTINUOUS = [
    Uniform(0.0, 1.0),
    Uniform(-2.0, 3.0),
    Normal(0.0, 1.0),
    Normal(1.1, 0.1),
    Beta(2.0, 5.0),
    Beta(1.0, 1.0),
    Exponential(2.0),
    Gamma(3.0, 2.0),
    Cauchy(0.0, 1.0),
]

DISCRETE = [
    Bernoulli(0.3),
    Categorical([0.0, 1.0, 2.0], [0.2, 0.3, 0.5]),
    DiscreteUniform(1, 6),
    Binomial(5, 0.4),
    Poisson(2.5),
    Geometric(0.3),
]


class TestValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Uniform(1.0, 1.0)
        with pytest.raises(ValueError):
            Normal(0.0, 0.0)
        with pytest.raises(ValueError):
            Beta(0.0, 1.0)
        with pytest.raises(ValueError):
            Exponential(-1.0)
        with pytest.raises(ValueError):
            Bernoulli(1.5)
        with pytest.raises(ValueError):
            Categorical([1.0], [])
        with pytest.raises(ValueError):
            DiscreteUniform(3, 2)

    def test_equality_and_hash(self):
        assert Normal(0.0, 1.0) == Normal(0.0, 1.0)
        assert Normal(0.0, 1.0) != Normal(0.0, 2.0)
        assert hash(Uniform(0.0, 1.0)) == hash(Uniform(0.0, 1.0))


@pytest.mark.parametrize("dist", CONTINUOUS, ids=lambda d: repr(d))
class TestContinuousConsistency:
    def test_cdf_monotone_and_normalised(self, dist):
        support = dist.support()
        lo = support.lo if math.isfinite(support.lo) else -50.0
        hi = support.hi if math.isfinite(support.hi) else 50.0
        xs = np.linspace(lo, hi, 51)
        cdfs = [dist.cdf(float(x)) for x in xs]
        assert all(b >= a - 1e-12 for a, b in zip(cdfs, cdfs[1:]))
        assert cdfs[0] >= -1e-9
        assert cdfs[-1] <= 1.0 + 1e-9

    def test_quantile_inverts_cdf(self, dist):
        for p in (0.1, 0.25, 0.5, 0.75, 0.9):
            x = dist.quantile(p)
            assert dist.cdf(x) == pytest.approx(p, abs=5e-3)

    def test_pdf_nonnegative(self, dist):
        for x in np.linspace(-5, 5, 21):
            assert dist.pdf(float(x)) >= 0.0

    def test_measure_matches_cdf(self, dist):
        interval = Interval(0.1, 0.7)
        assert dist.measure(interval) == pytest.approx(dist.cdf(0.7) - dist.cdf(0.1), abs=1e-9)

    def test_pdf_integrates_to_one(self, dist):
        """Riemann-sum check that the density integrates to ~1 over the bulk of the support."""
        lo = dist.quantile(1e-3)
        hi = dist.quantile(1.0 - 1e-3)
        xs = np.linspace(lo, hi, 4001)
        values = np.array([dist.pdf(float(x)) for x in xs])
        values = np.nan_to_num(values, posinf=0.0)
        integral = float(np.trapezoid(values, xs))
        assert integral == pytest.approx(0.998, abs=0.05)

    def test_sampling_within_support(self, dist):
        rng = np.random.default_rng(0)
        support = dist.support()
        for _ in range(100):
            assert dist.sample(rng) in support

    def test_pdf_interval_sound(self, dist):
        rng = np.random.default_rng(1)
        for _ in range(50):
            a, b_ = sorted(rng.uniform(-4, 4, size=2))
            interval = Interval(float(a), float(b_))
            bounds = dist.pdf_interval(interval)
            for x in np.linspace(a, b_, 9):
                value = dist.pdf(float(x))
                if math.isfinite(value):
                    assert bounds.lo - 1e-9 <= value <= bounds.hi + 1e-9


@pytest.mark.parametrize("dist", DISCRETE, ids=lambda d: repr(d))
class TestDiscreteConsistency:
    def test_pmf_sums_to_one(self, dist):
        total = sum(dist.pdf(v) for v in dist.support_values())
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_measure_counts_support(self, dist):
        values = dist.support_values()
        full = Interval(min(values), max(values))
        assert dist.measure(full) == pytest.approx(1.0, abs=1e-6)

    def test_cdf_step_function(self, dist):
        values = sorted(dist.support_values())
        running = 0.0
        for value in values:
            running += dist.pdf(value)
            assert dist.cdf(value) == pytest.approx(running, abs=1e-9)

    def test_sampling_hits_support(self, dist):
        rng = np.random.default_rng(2)
        support = set(dist.support_values())
        for _ in range(200):
            assert dist.sample(rng) in support

    def test_pmf_interval_sound(self, dist):
        bounds = dist.pdf_interval(Interval(-0.5, 1.5))
        for value in (0.0, 1.0):
            assert bounds.lo - 1e-12 <= dist.pdf(value) <= bounds.hi + 1e-12


class TestNormalSpecifics:
    def test_pdf_closed_form(self):
        dist = Normal(1.1, 0.1)
        assert dist.pdf(0.9) == pytest.approx(0.5399096651318806 / 0.1 * 0.1, rel=1e-9)

    def test_log_pdf(self):
        dist = Normal(0.0, 2.0)
        assert dist.log_pdf(0.3) == pytest.approx(math.log(dist.pdf(0.3)))

    def test_pdf_interval_peak(self):
        dist = Normal(0.0, 1.0)
        bounds = dist.pdf_interval(Interval(-0.5, 2.0))
        assert bounds.hi == pytest.approx(dist.pdf(0.0))
        assert bounds.lo == pytest.approx(dist.pdf(2.0))

    def test_pdf_interval_params_sound(self):
        rng = np.random.default_rng(3)
        mean_interval = Interval(0.0, 2.0)
        std_interval = Interval(0.5, 1.5)
        value_interval = Interval(-1.0, 1.0)
        bounds = Normal.pdf_interval_params(mean_interval, std_interval, value_interval)
        for _ in range(200):
            mean = rng.uniform(mean_interval.lo, mean_interval.hi)
            std = rng.uniform(std_interval.lo, std_interval.hi)
            value = rng.uniform(value_interval.lo, value_interval.hi)
            assert bounds.lo - 1e-9 <= Normal(mean, std).pdf(value) <= bounds.hi + 1e-9

    def test_pdf_interval_params_unbounded_mean(self):
        bounds = Normal.pdf_interval_params(
            Interval(0.0, math.inf), Interval.point(0.1), Interval.point(1.1)
        )
        assert bounds.hi == pytest.approx(Normal(1.1, 0.1).pdf(1.1))
        assert bounds.lo == 0.0


class TestBetaSpecifics:
    def test_unbounded_density_near_boundary(self):
        dist = Beta(0.5, 0.5)
        bounds = dist.pdf_interval(Interval(0.0, 0.1))
        assert math.isinf(bounds.hi)

    def test_mode_inside(self):
        dist = Beta(2.0, 2.0)
        bounds = dist.pdf_interval(Interval(0.0, 1.0))
        assert bounds.hi == pytest.approx(dist.pdf(0.5))


class TestQuantileIntervals:
    def test_uniform_quantile_interval(self):
        dist = Uniform(0.0, 2.0)
        assert dist.quantile_interval(Interval(0.25, 0.75)) == Interval(0.5, 1.5)

    def test_normal_quantile_interval_contains_median(self):
        dist = Normal(0.0, 1.0)
        interval = dist.quantile_interval(Interval(0.4, 0.6))
        assert 0.0 in interval

    def test_empty_probability_interval(self):
        assert Uniform(0.0, 1.0).quantile_interval(Interval.empty()).is_empty
