"""Tests for boxes (interval traces) and their combinatorics."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.intervals import Box, Interval, compatible_set, grid_boxes, unit_box


class TestBoxBasics:
    def test_dimension_and_volume(self):
        box = Box.of(Interval(0.0, 1.0), Interval(0.0, 0.5))
        assert box.dimension == 2
        assert box.volume() == pytest.approx(0.5)

    def test_empty_box(self):
        box = Box.of(Interval(0.0, 1.0), Interval.empty())
        assert box.is_empty
        assert box.volume() == 0.0

    def test_zero_dimensional_volume_is_one(self):
        assert Box.of().volume() == 1.0

    def test_contains_point(self):
        box = unit_box(3)
        assert box.contains_point((0.2, 0.5, 1.0))
        assert not box.contains_point((0.2, 1.5, 1.0))
        assert not box.contains_point((0.2, 0.5))

    def test_contains_box(self):
        outer = unit_box(2)
        inner = Box.of(Interval(0.2, 0.4), Interval(0.1, 0.9))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_intersect(self):
        first = Box.of(Interval(0.0, 0.6), Interval(0.0, 1.0))
        second = Box.of(Interval(0.4, 1.0), Interval(0.5, 1.0))
        intersection = first.intersect(second)
        assert intersection[0] == Interval(0.4, 0.6)
        assert intersection[1] == Interval(0.5, 1.0)

    def test_intersect_dimension_mismatch(self):
        with pytest.raises(ValueError):
            unit_box(2).intersect(unit_box(3))

    def test_extend_and_replace(self):
        box = unit_box(1).extend(Interval(0.0, 0.5))
        assert box.dimension == 2
        replaced = box.replace(0, Interval(0.25, 0.75))
        assert replaced[0] == Interval(0.25, 0.75)

    def test_corners(self):
        corners = set(Box.of(Interval(0.0, 1.0), Interval(2.0, 3.0)).corners())
        assert corners == {(0.0, 2.0), (0.0, 3.0), (1.0, 2.0), (1.0, 3.0)}


class TestCompatibility:
    def test_paper_example_3_1(self):
        """Example 3.1(ii): {⟨[0,0.6]⟩, ⟨[0.3,1]⟩} is not compatible."""
        first = Box.of(Interval(0.0, 0.6))
        second = Box.of(Interval(0.3, 1.0))
        assert not first.compatible_with(second)

    def test_compatible_prefixes(self):
        """Example 3.1(iii): repeated [1/2,1] prefixes ending in [0,1/2] are compatible."""
        half = Interval(0.5, 1.0)
        low = Interval(0.0, 0.5)
        t1 = Box.of(low)
        t2 = Box.of(half, low)
        t3 = Box.of(half, half, low)
        assert compatible_set([t1, t2, t3])

    def test_grid_is_compatible(self):
        cells = grid_boxes(unit_box(2), 3)
        assert len(cells) == 9
        assert compatible_set(cells)

    def test_incompatible_overlapping_set(self):
        assert not compatible_set([Box.of(Interval(0.0, 0.6)), Box.of(Interval(0.5, 1.0))])


class TestGrids:
    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4))
    def test_grid_volume_sums_to_one(self, dimension, parts):
        cells = grid_boxes(unit_box(dimension), parts)
        assert len(cells) == parts**dimension
        assert sum(cell.volume() for cell in cells) == pytest.approx(1.0)

    def test_grid_with_per_dimension_parts(self):
        cells = list(unit_box(2).grid([2, 3]))
        assert len(cells) == 6

    def test_grid_dimension_mismatch(self):
        with pytest.raises(ValueError):
            list(unit_box(2).grid([2]))

    def test_split_dimension(self):
        pieces = unit_box(2).split_dimension(1, 4)
        assert len(pieces) == 4
        assert all(piece[0] == Interval(0.0, 1.0) for piece in pieces)
