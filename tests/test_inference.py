"""Tests for the stochastic inference baselines (IS, MH, HMC) and diagnostics."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import stats

from repro.inference import (
    autocorrelation,
    effective_sample_size,
    hmc,
    hmc_truncated_program,
    importance_sampling,
    metropolis_hastings,
    rank_statistic,
    suggested_thinning,
)
from repro.intervals import Interval
from repro.lang import builder as b

from helpers import simple_observe_model


def conjugate_uniform_normal(observed=0.7, std=0.2):
    """x ~ U(0,1); observe(observed ~ N(x, std)); posterior is a truncated normal."""
    return b.let(
        "x",
        b.sample(),
        b.seq(b.observe_normal(observed, std, b.var("x")), b.var("x")),
    )


def truncated_normal_probability(target: Interval, observed=0.7, std=0.2) -> float:
    normaliser = stats.norm.cdf(1.0, loc=observed, scale=std) - stats.norm.cdf(0.0, loc=observed, scale=std)
    lo = max(0.0, target.lo)
    hi = min(1.0, target.hi)
    mass = stats.norm.cdf(hi, loc=observed, scale=std) - stats.norm.cdf(lo, loc=observed, scale=std)
    return float(mass / normaliser)


class TestImportanceSampling:
    def test_posterior_probability_estimate(self, rng):
        program = conjugate_uniform_normal()
        result = importance_sampling(program, 30_000, rng)
        target = Interval(0.5, 0.9)
        assert result.estimate_probability(target) == pytest.approx(
            truncated_normal_probability(target), abs=0.02
        )

    def test_posterior_mean(self, rng):
        program = conjugate_uniform_normal()
        result = importance_sampling(program, 30_000, rng)
        # Mean of a Normal(0.7, 0.2) truncated to [0, 1].
        a, b_ = (0.0 - 0.7) / 0.2, (1.0 - 0.7) / 0.2
        truth = float(stats.truncnorm.mean(a, b_, loc=0.7, scale=0.2))
        assert result.posterior_mean() == pytest.approx(truth, abs=0.02)

    def test_evidence_estimate(self, rng):
        program = conjugate_uniform_normal()
        result = importance_sampling(program, 30_000, rng)
        truth = stats.norm.cdf(1.0, loc=0.7, scale=0.2) - stats.norm.cdf(0.0, loc=0.7, scale=0.2)
        assert result.evidence_estimate() == pytest.approx(truth, abs=0.03)

    def test_effective_sample_size_bounds(self, rng):
        result = importance_sampling(simple_observe_model(), 2_000, rng)
        ess = result.effective_sample_size()
        assert 0 < ess <= 2_000

    def test_normalised_weights_sum_to_one(self, rng):
        result = importance_sampling(simple_observe_model(), 500, rng)
        assert result.normalised_weights().sum() == pytest.approx(1.0)

    def test_resample_and_histogram(self, rng):
        result = importance_sampling(conjugate_uniform_normal(), 5_000, rng)
        samples = result.resample(1_000, rng)
        assert samples.shape == (1_000,)
        assert np.all((samples >= 0.0) & (samples <= 1.0))
        histogram = result.posterior_histogram([0.0, 0.5, 1.0])
        assert histogram.sum() == pytest.approx(1.0, abs=1e-9)

    def test_all_zero_weights_cannot_resample(self, rng):
        program = b.seq(b.score(0.0), b.sample())
        result = importance_sampling(program, 50, rng)
        with pytest.raises(ValueError):
            result.resample(10, rng)


class TestMetropolisHastings:
    def test_posterior_mean_on_conjugate_model(self, rng):
        program = conjugate_uniform_normal()
        result = metropolis_hastings(program, num_samples=4_000, rng=rng, burn_in=500, thinning=2)
        assert result.values.mean() == pytest.approx(0.7, abs=0.05)
        assert 0.0 < result.acceptance_rate <= 1.0

    def test_samples_respect_support(self, rng):
        program = conjugate_uniform_normal()
        result = metropolis_hastings(program, num_samples=500, rng=rng, burn_in=100)
        assert np.all((result.values >= 0.0) & (result.values <= 1.0))

    def test_variable_dimension_program(self, rng):
        """MH must handle traces whose length changes across proposals."""
        from helpers import geometric_program

        result = metropolis_hastings(geometric_program(0.5), num_samples=2_000, rng=rng, burn_in=200)
        # Geometric(1/2) over {0, 1, 2, ...} has mean 1.
        assert result.values.mean() == pytest.approx(1.0, abs=0.2)


class TestHMC:
    def test_standard_normal_target(self, rng):
        result = hmc(
            lambda x: float(-0.5 * np.dot(x, x)),
            initial=[0.5],
            num_samples=2_000,
            rng=rng,
            step_size=0.2,
            leapfrog_steps=10,
            gradient=lambda x: -x,
        )
        samples = result.first_coordinate()
        assert samples.mean() == pytest.approx(0.0, abs=0.1)
        assert samples.std() == pytest.approx(1.0, abs=0.15)
        assert result.acceptance_rate > 0.5

    def test_numeric_gradient_matches_analytic(self, rng):
        result = hmc(
            lambda x: float(-0.5 * np.dot(x, x)),
            initial=[0.3, -0.2],
            num_samples=500,
            rng=rng,
            step_size=0.2,
            leapfrog_steps=10,
        )
        assert result.samples.shape == (500, 2)
        assert abs(result.samples.mean()) < 0.2

    def test_mode_collapse_on_bimodal_target(self, rng):
        """HMC with a small step size stays in one mode of a well-separated mixture."""

        def log_density(x):
            value = 0.5 * math.exp(-0.5 * ((x[0] - 4.0) / 0.3) ** 2) + 0.5 * math.exp(
                -0.5 * ((x[0] + 4.0) / 0.3) ** 2
            )
            return math.log(value) if value > 0 else -math.inf

        result = hmc(log_density, initial=[4.0], num_samples=1_000, rng=rng, step_size=0.05, leapfrog_steps=5)
        samples = result.first_coordinate()
        assert np.mean(samples > 0) > 0.99  # never visits the mode at -4

    def test_truncated_program_hmc_runs(self, rng):
        program = conjugate_uniform_normal()
        result, values = hmc_truncated_program(
            program, trace_dimension=1, num_samples=300, rng=rng, step_size=0.3, leapfrog_steps=10, burn_in=100
        )
        values = values[~np.isnan(values)]
        assert len(values) > 0
        assert np.all((values >= 0.0) & (values <= 1.0))
        assert values.mean() == pytest.approx(0.7, abs=0.1)


class TestDiagnostics:
    def test_autocorrelation_of_iid_series(self, rng):
        series = rng.normal(size=4_000)
        rho = autocorrelation(series, max_lag=10)
        assert rho[0] == pytest.approx(1.0)
        assert abs(rho[1]) < 0.1

    def test_autocorrelation_of_correlated_series(self, rng):
        noise = rng.normal(size=4_000)
        series = np.cumsum(noise)  # strongly autocorrelated random walk
        rho = autocorrelation(series, max_lag=5)
        assert rho[1] > 0.9

    def test_effective_sample_size_ordering(self, rng):
        iid = rng.normal(size=2_000)
        walk = np.cumsum(rng.normal(size=2_000))
        assert effective_sample_size(iid) > effective_sample_size(walk)

    def test_suggested_thinning(self, rng):
        iid = rng.normal(size=1_000)
        assert suggested_thinning(iid) <= 2
        walk = np.cumsum(rng.normal(size=1_000))
        assert suggested_thinning(walk) > 5

    def test_rank_statistic(self):
        assert rank_statistic(0.5, [0.1, 0.4, 0.6, 0.9]) == 2
        assert rank_statistic(0.0, [0.1, 0.4]) == 0

    def test_edge_cases(self):
        assert effective_sample_size([]) == 0.0
        assert autocorrelation([]).size == 0
        assert suggested_thinning([]) == 1
