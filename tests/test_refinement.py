"""Property net for gap-directed anytime refinement (:mod:`repro.analysis.refine`).

Refinement is an *anytime* contract on top of an engine whose headline
guarantee is soundness, so the net pins three families of properties:

* **Monotone narrowing** — every refinement round's bounds are contained in
  the previous round's (hypothesis-driven over windows, budgets and round
  counts, plus the pure clamp algebra that makes it true);
* **Containment** — the final refined bound always sits inside the coarse
  uniform seed bound, and the seed bound is bit-identical to a
  ``refine="off"`` run of the same options;
* **Opt-out identity** — ``refine="off"`` queries reproduce the pinned
  golden bounds bit-for-bit across executor backends, payload transports
  and the columnar knob, so shipping the scheduler cannot move a single
  float for anyone who does not turn it on.
"""

from __future__ import annotations

import functools
import json
import math
import pathlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import geometric_program
from repro import AnalysisOptions, Interval, Model
from repro.analysis import RefinementScheduler, analyze_execution, refine_execution
from repro.analysis.config import REFINE_KINDS
from repro.analysis.engine import AnalysisReport, PathContribution
from repro.analysis.model import CompiledProgram
from repro.analysis.refine import _clamped, _path_gap, level_options
from repro.lang import builder as b
from repro.symbolic import ExecutionLimits

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

TARGETS = (Interval(0.0, 1.0), Interval(-math.inf, math.inf))

#: Deliberately tiny budgets: refinement levels scale *from* the base, so
#: small bases keep every hypothesis example in the low milliseconds.
TINY = dict(
    splits_per_dimension=2,
    max_boxes_per_path=36,
    score_splits=2,
    max_score_combinations=4,
)


def branchy_term():
    """Two paths (one linear, one box-fallback), two dimensions, one score atom."""
    return b.let(
        "x", b.sample(),
        b.let(
            "y", b.sample(),
            b.seq(
                b.observe_normal(0.8, 0.3, b.mul(b.var("x"), b.var("y"))),
                b.if_leq(
                    b.var("x"), 0.5,
                    b.add(b.var("x"), b.var("y")),
                    b.mul(b.var("x"), b.var("y")),
                ),
            ),
        ),
    )


@functools.lru_cache(maxsize=None)
def compiled(name: str) -> CompiledProgram:
    """Shared compilations so hypothesis examples only pay for analysis."""
    if name == "branchy":
        return CompiledProgram.compile(branchy_term(), ExecutionLimits(max_fixpoint_depth=4))
    if name == "geometric":
        return CompiledProgram.compile(
            geometric_program(0.5), ExecutionLimits(max_fixpoint_depth=3)
        )
    raise KeyError(name)


def as_pairs(bounds):
    return [(bound.lower, bound.upper) for bound in bounds]


def assert_contained(inner, outer):
    for narrow, wide in zip(inner, outer):
        assert narrow.lower >= wide.lower
        assert narrow.upper <= wide.upper


# ---------------------------------------------------------------------------
# The clamp algebra — what makes per-round narrowing monotone and sound.
# ---------------------------------------------------------------------------

finite = st.floats(min_value=0.0, max_value=16.0, allow_nan=False)
bound_pair = st.tuples(finite, finite).map(lambda p: (min(p), max(p)))


def contribution(pairs, truncated=False, name="box"):
    return PathContribution(analyzer_name=name, truncated=truncated, contributions=tuple(pairs))


@settings(max_examples=150, deadline=None)
@given(
    pairs=st.lists(st.tuples(bound_pair, bound_pair), min_size=1, max_size=4),
    truncated=st.booleans(),
)
def test_clamped_never_widens_and_never_grows_gap(pairs, truncated):
    previous = contribution([p for p, _ in pairs], truncated=truncated)
    refined = contribution([r for _, r in pairs], truncated=truncated, name="linear")
    merged = _clamped(previous, refined)
    assert merged.truncated is previous.truncated
    assert merged.analyzer_name == "linear"
    for (old_lower, old_upper), (new_lower, new_upper) in zip(
        previous.contributions, merged.contributions
    ):
        # Contained in the previous record (the monotonicity workhorse)…
        assert new_lower >= old_lower
        assert new_upper <= old_upper
        # …and still a valid interval.
        assert new_lower <= new_upper
    assert _path_gap(merged) <= _path_gap(previous)


@settings(max_examples=150, deadline=None)
@given(pairs=st.lists(bound_pair, min_size=1, max_size=4))
def test_clamped_keeps_previous_on_empty_intersection(pairs):
    previous = contribution(pairs)
    # Shift every refined interval strictly above the previous one so the
    # intersection is empty — the clamp must fall back to the previous
    # record rather than fabricate an inverted interval.
    refined = contribution([(hi + 1.0, hi + 2.0) for _, hi in pairs])
    merged = _clamped(previous, refined)
    assert merged.contributions == previous.contributions


@settings(max_examples=150, deadline=None)
@given(pairs=st.lists(bound_pair, min_size=1, max_size=4))
def test_path_gap_zeroes_truncated_lower_bounds(pairs):
    live = contribution(pairs, truncated=False)
    cut = contribution(pairs, truncated=True)
    assert _path_gap(live) == pytest.approx(sum(hi - lo for lo, hi in pairs))
    # A truncated path's entire upper contribution counts as gap.
    assert _path_gap(cut) == pytest.approx(sum(hi for _, hi in pairs))
    assert _path_gap(cut) >= _path_gap(live)


@settings(max_examples=150, deadline=None)
@given(
    level=st.integers(min_value=0, max_value=12),
    splits=st.integers(min_value=1, max_value=16),
    boxes=st.integers(min_value=1, max_value=50_000),
    score_splits=st.integers(min_value=1, max_value=64),
    combos=st.integers(min_value=1, max_value=8_192),
)
def test_level_options_scale_monotonically_and_stay_capped(
    level, splits, boxes, score_splits, combos
):
    base = AnalysisOptions(
        splits_per_dimension=splits,
        max_boxes_per_path=boxes,
        score_splits=score_splits,
        max_score_combinations=combos,
        refine="gap",
    )
    scaled = level_options(base, level)
    # Level options parameterise plain sweeps — never nested refinement.
    assert scaled.refine == "off"
    assert scaled.splits_per_dimension == splits * (1 << level)
    # Budgets never drop below the base and never exceed base-or-ceiling.
    assert base.max_boxes_per_path <= scaled.max_boxes_per_path <= max(boxes, 262_144)
    assert base.score_splits <= scaled.score_splits <= max(score_splits, 256)
    assert base.max_score_combinations <= scaled.max_score_combinations <= max(combos, 32_768)
    if level > 0:
        finer = level_options(base, level - 1)
        assert scaled.splits_per_dimension >= finer.splits_per_dimension
        assert scaled.max_boxes_per_path >= finer.max_boxes_per_path
        assert scaled.score_splits >= finer.score_splits
        assert scaled.max_score_combinations >= finer.max_score_combinations


# ---------------------------------------------------------------------------
# Scheduler properties over a real compiled program.
# ---------------------------------------------------------------------------

windows = st.tuples(
    st.floats(min_value=-0.5, max_value=1.0, allow_nan=False),
    st.floats(min_value=0.1, max_value=2.0, allow_nan=False),
).map(lambda p: Interval(p[0], p[0] + p[1]))


@settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(window=windows, rounds=st.integers(min_value=1, max_value=4),
       splits=st.integers(min_value=2, max_value=3))
def test_rounds_narrow_monotonically_from_the_seed(window, rounds, splits):
    program = compiled("branchy")
    targets = (window, Interval(-math.inf, math.inf))
    options = AnalysisOptions(
        refine="gap", analyzers=("box",), **dict(TINY, splits_per_dimension=splits)
    )
    scheduler = RefinementScheduler(program.execution, targets, options)
    seed = scheduler.seed()
    # The seed is bit-identical to a refine="off" sweep of the same options.
    off = analyze_execution(
        program.execution, targets, options.with_updates(refine="off")
    )
    assert as_pairs(seed) == as_pairs(off)
    previous = seed
    for _ in range(rounds):
        bounds = scheduler.refine_round()
        if bounds is None:
            break
        assert_contained(bounds, previous)
        previous = bounds
    assert_contained(previous, seed)


@settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(window=windows, rounds=st.integers(min_value=1, max_value=3))
def test_fixed_round_count_is_deterministic(window, rounds):
    program = compiled("branchy")
    targets = (window, Interval(-math.inf, math.inf))
    options = AnalysisOptions(
        refine="gap", refine_max_rounds=rounds, analyzers=("box",), **TINY
    )
    first = refine_execution(program.execution, targets, options)
    second = refine_execution(program.execution, targets, options)
    assert as_pairs(first) == as_pairs(second)


@settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(window=windows)
def test_truncated_paths_refine_contained(window):
    """Truncated-path programs keep the containment contract."""
    program = compiled("geometric")
    assert program.execution.truncated_paths > 0
    targets = (window, Interval(-math.inf, math.inf))
    options = AnalysisOptions(refine="gap", **TINY)
    scheduler = RefinementScheduler(program.execution, targets, options)
    seed = scheduler.seed()
    final = scheduler.run()
    assert_contained(final, seed)


def test_scheduler_requires_seed_before_inspection():
    program = compiled("branchy")
    scheduler = RefinementScheduler(
        program.execution, TARGETS, AnalysisOptions(refine="gap", **TINY)
    )
    with pytest.raises(RuntimeError, match="seed"):
        scheduler.contributions
    with pytest.raises(RuntimeError, match="seed"):
        scheduler.bounds


def test_heap_drains_and_rounds_stop():
    program = compiled("branchy")
    options = AnalysisOptions(
        refine="gap", refine_max_rounds=None, analyzers=("box",), **TINY
    )
    scheduler = RefinementScheduler(program.execution, TARGETS, options)
    scheduler.seed()
    rounds = 0
    while scheduler.refine_round() is not None:
        rounds += 1
        assert rounds < 200, "scheduler failed to retire saturated paths"
    # Once drained it stays drained.
    assert scheduler.refine_round() is None


# ---------------------------------------------------------------------------
# Engine / Model integration.
# ---------------------------------------------------------------------------

class TestEngineIntegration:
    def test_refined_bounds_contained_in_unrefined(self):
        program = compiled("branchy")
        options = AnalysisOptions(refine="gap", **TINY)
        off = analyze_execution(program.execution, TARGETS, options.with_updates(refine="off"))
        refined = analyze_execution(program.execution, TARGETS, options)
        assert_contained(refined, off)

    def test_report_counts_refinement_work(self):
        program = compiled("branchy")
        report = AnalysisReport()
        analyze_execution(
            program.execution, TARGETS, AnalysisOptions(refine="gap", **TINY), report
        )
        assert report.refine_rounds > 0
        assert report.refine_paths > 0
        assert report.refine_seconds > 0.0
        # Path attribution happens exactly once per path.
        assert sum(report.analyzer_paths.values()) == program.path_count

        off_report = AnalysisReport()
        analyze_execution(
            program.execution, TARGETS, AnalysisOptions(refine="off", **TINY), off_report
        )
        assert off_report.refine_rounds == 0
        assert off_report.refine_paths == 0
        assert off_report.refine_seconds == 0.0

    def test_progress_fires_per_round_with_narrowing_bounds(self):
        program = compiled("branchy")
        seen = []
        refine_execution(
            program.execution, TARGETS, AnalysisOptions(refine="gap", **TINY),
            progress=lambda bounds, paths: seen.append((as_pairs(bounds), paths)),
        )
        assert seen, "refinement ran no rounds on a program with positive gap"
        for (earlier, _), (later, _) in zip(seen, seen[1:]):
            for (wide_lo, wide_hi), (narrow_lo, narrow_hi) in zip(earlier, later):
                assert narrow_lo >= wide_lo
                assert narrow_hi <= wide_hi
        assert all(paths == program.path_count for _, paths in seen)

    def test_width_target_met_at_seed_runs_zero_rounds(self):
        program = compiled("branchy")
        report = AnalysisReport()
        options = AnalysisOptions(refine="gap", refine_width_target=1e9, **TINY)
        bounds = analyze_execution(program.execution, TARGETS, options, report)
        assert report.refine_rounds == 0
        off = analyze_execution(program.execution, TARGETS, options.with_updates(refine="off"))
        assert as_pairs(bounds) == as_pairs(off)

    def test_exhausted_time_budget_still_returns_seed_bounds(self):
        program = compiled("branchy")
        report = AnalysisReport()
        options = AnalysisOptions(refine="gap", refine_time_budget=1e-9, **TINY)
        bounds = analyze_execution(program.execution, TARGETS, options, report)
        assert report.refine_rounds == 0
        off = analyze_execution(program.execution, TARGETS, options.with_updates(refine="off"))
        assert as_pairs(bounds) == as_pairs(off)

    def test_env_variable_sets_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS_REFINE", "gap")
        assert AnalysisOptions().refine_enabled
        # An explicit knob always beats the environment.
        assert not AnalysisOptions(refine="off").refine_enabled
        monkeypatch.delenv("REPRO_ANALYSIS_REFINE")
        assert not AnalysisOptions().refine_enabled

    def test_validation_rejects_bad_knobs(self):
        assert REFINE_KINDS == ("off", "gap")
        with pytest.raises(ValueError, match="refine"):
            AnalysisOptions(refine="always")
        with pytest.raises(ValueError):
            AnalysisOptions(refine_time_budget=-1.0)
        with pytest.raises(ValueError):
            AnalysisOptions(refine_width_target=-0.5)
        with pytest.raises(ValueError):
            AnalysisOptions(refine_max_rounds=0)
        with pytest.raises(ValueError):
            level_options(AnalysisOptions(), -1)

    def test_model_bounds_refined_contained_and_deterministic(self):
        with Model(branchy_term()) as model:
            options = AnalysisOptions(refine="gap", max_fixpoint_depth=4, **TINY)
            off = model.bounds(TARGETS, options.with_updates(refine="off"))
            first = model.bounds(TARGETS, options)
            second = model.bounds(TARGETS, options)
            assert_contained(first, off)
            assert as_pairs(first) == as_pairs(second)

    def test_streamed_refinement_matches_batch(self):
        options = AnalysisOptions(refine="gap", max_fixpoint_depth=4, **TINY)
        with Model(branchy_term()) as batch_model:
            batch = batch_model.bounds(TARGETS, options)
        partials = []
        with Model(branchy_term()) as stream_model:
            streamed = stream_model.bounds(
                TARGETS, options.with_updates(stream=True),
                progress=lambda bounds, paths: partials.append(as_pairs(bounds)),
            )
        assert as_pairs(streamed) == as_pairs(batch)
        # The first progress call is the streamed first-bound preview; every
        # call after it is a sound refinement partial, narrowing monotonically
        # down to exactly the final bounds.
        assert len(partials) >= 2
        assert partials[-1] == as_pairs(streamed)
        for earlier, later in zip(partials[1:], partials[2:]):
            for (wide_lo, wide_hi), (narrow_lo, narrow_hi) in zip(earlier, later):
                assert narrow_lo >= wide_lo
                assert narrow_hi <= wide_hi


# ---------------------------------------------------------------------------
# refine="off" stays bit-identical to the pinned goldens, on every backend.
# ---------------------------------------------------------------------------

_GOLDEN_RTOL = 1e-9  # mirrors test_golden_regression (qhull/numpy ulp drift)

_BACKEND_LEGS = [
    pytest.param("serial", None, True, id="serial-columnar"),
    pytest.param("serial", None, False, id="serial-materialised"),
    pytest.param("thread", None, True, id="thread-columnar"),
    pytest.param("process", "arena", True, id="process-arena", marks=pytest.mark.slow),
    pytest.param("process", "pickle", True, id="process-pickle", marks=pytest.mark.slow),
    pytest.param("socket", None, True, id="socket-columnar", marks=pytest.mark.slow),
]


@pytest.mark.parametrize("executor, transport, columnar", _BACKEND_LEGS)
def test_refine_off_matches_golden_on_every_backend(executor, transport, columnar, monkeypatch):
    path = GOLDEN_DIR / "geometric_depth6.json"
    if not path.exists():
        pytest.skip("golden file not generated yet")
    golden = json.loads(path.read_text())
    # Even with the environment demanding refinement, an explicit off wins —
    # and must reproduce the pinned floats.
    monkeypatch.setenv("REPRO_ANALYSIS_REFINE", "gap")
    options = AnalysisOptions(
        max_fixpoint_depth=6,
        refine="off",
        executor=executor,
        workers=1 if executor == "serial" else 2,
        payload_transport=transport,
        columnar=columnar,
    )
    targets = [Interval(-0.5, 0.5), Interval(0.5, 1.5), Interval(1.5, 2.5)]
    with Model(geometric_program(0.5), options) as model:
        bounds = model.bounds(targets)
    for current, pinned in zip(bounds, golden["denotation_bounds"]):
        assert current.lower == pytest.approx(pinned["lower"], rel=_GOLDEN_RTOL, abs=1e-15)
        assert current.upper == pytest.approx(pinned["upper"], rel=_GOLDEN_RTOL, abs=1e-15)


@pytest.mark.slow
@pytest.mark.parametrize("executor, transport", [
    ("thread", None),
    ("process", "arena"),
    ("process", "pickle"),
    ("socket", None),
])
def test_refined_bounds_bit_identical_across_backends(executor, transport):
    """Fixed round counts make refined bounds backend-independent."""
    options = AnalysisOptions(
        refine="gap", refine_max_rounds=3, max_fixpoint_depth=4,
        analyzers=("box",), **TINY
    )
    with Model(branchy_term(), options) as model:
        serial = as_pairs(model.bounds(TARGETS))
    parallel_options = options.with_updates(
        executor=executor, workers=2, payload_transport=transport
    )
    with Model(branchy_term(), parallel_options) as model:
        parallel = as_pairs(model.bounds(TARGETS))
    assert parallel == serial
