"""The benchmark-comparison script (``benchmarks/compare_bench.py``).

The script diffs two ``BENCH_*.json`` artifact sets and exits non-zero on
wall-clock regressions beyond a threshold; CI runs it against the committed
``benchmarks/results`` baseline.  Pinned here: timing-leaf extraction over
nested payloads, the regression rule (relative threshold AND absolute
floor), tiny-mode mismatch skipping, one-sided drivers, and the CLI exit
codes.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

_SCRIPT = pathlib.Path(__file__).parent.parent / "benchmarks" / "compare_bench.py"
_spec = importlib.util.spec_from_file_location("compare_bench", _SCRIPT)
compare_bench = importlib.util.module_from_spec(_spec)
# Must be importable by name while executing: the script's @dataclass
# resolves its (PEP 563) string annotations through sys.modules.
sys.modules.setdefault("compare_bench", compare_bench)
_spec.loader.exec_module(compare_bench)


def _write_record(directory: pathlib.Path, driver: str, metrics: dict, tiny: bool = False):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{driver}.json").write_text(
        json.dumps({"driver": driver, "tiny": tiny, "metrics": metrics})
    )


class TestTimingLeaves:
    def test_nested_extraction(self):
        metrics = {
            "batch_seconds": 1.5,
            "bounds": {"lower": 0.1},  # not a timing
            "runs": [
                {"stream_seconds": 0.5, "time_to_first_bound": 0.01, "depth": 4},
                {"stream_seconds": 0.7},
            ],
        }
        leaves = dict(compare_bench.timing_leaves(metrics))
        assert leaves == {
            "batch_seconds": 1.5,
            "runs[0].stream_seconds": 0.5,
            "runs[0].time_to_first_bound": 0.01,
            "runs[1].stream_seconds": 0.7,
        }

    def test_non_numeric_timing_ignored(self):
        assert dict(compare_bench.timing_leaves({"batch_seconds": "n/a"})) == {}


class TestComparison:
    def test_no_regression(self, tmp_path):
        _write_record(tmp_path / "base", "driver", {"batch_seconds": 1.0})
        _write_record(tmp_path / "cand", "driver", {"batch_seconds": 1.1})
        regressions, lines = compare_bench.compare_dirs(
            tmp_path / "base", tmp_path / "cand", threshold=0.25
        )
        assert regressions == []
        assert any("No wall-clock regressions" in line for line in lines)

    def test_regression_flagged(self, tmp_path):
        _write_record(tmp_path / "base", "driver", {"batch_seconds": 1.0})
        _write_record(tmp_path / "cand", "driver", {"batch_seconds": 2.0})
        regressions, lines = compare_bench.compare_dirs(
            tmp_path / "base", tmp_path / "cand", threshold=0.25
        )
        assert len(regressions) == 1
        assert regressions[0].metric == "batch_seconds"
        assert regressions[0].ratio == pytest.approx(2.0)
        assert any("REGRESSED" in line for line in lines)

    def test_absolute_floor_filters_noise(self, tmp_path):
        # 10x slower but only 9 ms absolute: below the floor, not a failure.
        _write_record(tmp_path / "base", "driver", {"batch_seconds": 0.001})
        _write_record(tmp_path / "cand", "driver", {"batch_seconds": 0.010})
        regressions, _ = compare_bench.compare_dirs(
            tmp_path / "base", tmp_path / "cand", threshold=0.25, min_seconds=0.05
        )
        assert regressions == []

    def test_tiny_mode_mismatch_skipped(self, tmp_path):
        _write_record(tmp_path / "base", "driver", {"batch_seconds": 1.0}, tiny=False)
        _write_record(tmp_path / "cand", "driver", {"batch_seconds": 99.0}, tiny=True)
        regressions, lines = compare_bench.compare_dirs(tmp_path / "base", tmp_path / "cand")
        assert regressions == []
        assert any("tiny-mode mismatch" in line for line in lines)

    def test_one_sided_drivers_reported_not_failed(self, tmp_path):
        _write_record(tmp_path / "base", "removed", {"batch_seconds": 1.0})
        _write_record(tmp_path / "cand", "added", {"batch_seconds": 1.0})
        regressions, lines = compare_bench.compare_dirs(tmp_path / "base", tmp_path / "cand")
        assert regressions == []
        assert any("baseline only" in line for line in lines)
        assert any("new (no baseline)" in line for line in lines)


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        _write_record(tmp_path / "base", "driver", {"batch_seconds": 1.0})
        _write_record(tmp_path / "cand", "driver", {"batch_seconds": 1.05})
        assert compare_bench.main([str(tmp_path / "base"), str(tmp_path / "cand")]) == 0
        _write_record(tmp_path / "cand", "driver", {"batch_seconds": 5.0})
        assert compare_bench.main([str(tmp_path / "base"), str(tmp_path / "cand")]) == 1
        capsys.readouterr()

    def test_missing_directory(self, tmp_path, capsys):
        assert compare_bench.main([str(tmp_path / "nope"), str(tmp_path / "nope")]) == 2
        capsys.readouterr()
