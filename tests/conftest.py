"""Shared fixtures for the test suite.

Model builders live in :mod:`tests.helpers`; import them explicitly
(``from helpers import ...``) rather than from this conftest.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)
