"""The parallel bound engine: chunked fan-out, bit-identical merging, pools.

Three layers of guarantees are pinned here:

* **soundness/equivalence** — serial and parallel runs return *bit-identical*
  ``DenotationBounds`` / ``QueryBounds`` for every worker count, chunk size,
  executor backend and analyzer selection (property-based below);
* **determinism** — :func:`partition_paths` depends only on the path set and
  the knobs, never on timing;
* **robustness** — worker exceptions (including
  :class:`~repro.symbolic.PathExplosionError`) propagate to the caller, the
  analyzer registry stays serialization-safe, and the parallel knobs are
  validated eagerly.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    AnalysisOptions,
    AnalysisReport,
    Model,
    ParallelAnalysisExecutor,
    UnknownAnalyzerError,
    analyzer_specs,
    ensure_analyzers_registered,
    get_analyzer,
    partition_paths,
    register_analyzer,
    unregister_analyzer,
)
from repro.analysis.parallel import ChunkPayload, analyze_chunk
from repro.intervals import Interval
from repro.lang import builder as b
from repro.symbolic import ExecutionLimits, PathExplosionError, symbolic_paths

from helpers import geometric_program, simple_observe_model


def nonlinear_model():
    """``sample · sample`` — handled by the box analyzer."""
    return b.mul(b.sample(), b.sample())


_PROGRAMS = {
    "observe": simple_observe_model,
    "nonlinear": nonlinear_model,
    "geometric": lambda: geometric_program(0.5),
}

_TARGETS = [Interval(0.0, 1.0), Interval(0.5, 2.0), Interval(-1e9, 1e9)]


@pytest.fixture(scope="module")
def serial_baselines():
    """Serial bounds for every test program, computed once."""
    baselines = {}
    for name, build in _PROGRAMS.items():
        options = AnalysisOptions(max_fixpoint_depth=5, score_splits=8, workers=1, executor="serial")
        model = Model(build(), options)
        baselines[name] = (model, model.bounds(_TARGETS))
    return baselines


def assert_bits_equal(first, second):
    assert len(first) == len(second)
    for a, b_ in zip(first, second):
        assert a.lower == b_.lower, f"lower bounds differ: {a.lower!r} vs {b_.lower!r}"
        assert a.upper == b_.upper, f"upper bounds differ: {a.upper!r} vs {b_.upper!r}"


# ----------------------------------------------------------------------
# Property-based serial/parallel equivalence
# ----------------------------------------------------------------------


class TestSerialParallelEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        program=st.sampled_from(sorted(_PROGRAMS)),
        workers=st.integers(min_value=2, max_value=4),
        chunk_size=st.sampled_from([None, 1, 2, 3, 7]),
        kind=st.sampled_from(["serial", "thread"]),
        analyzers=st.sampled_from([None, ("linear", "box"), ("box",)]),
    )
    def test_bounds_bit_identical(self, serial_baselines, program, workers, chunk_size, kind, analyzers):
        model, _ = serial_baselines[program]
        serial_options = model.options.with_updates(analyzers=analyzers)
        parallel_options = serial_options.with_updates(
            workers=workers, chunk_size=chunk_size, executor=kind
        )
        serial = model.bounds(_TARGETS, serial_options)
        parallel = model.bounds(_TARGETS, parallel_options)
        assert_bits_equal(serial, parallel)

    @pytest.mark.parametrize("program", sorted(_PROGRAMS))
    @pytest.mark.parametrize("workers,chunk_size", [(2, None), (3, 2)])
    def test_process_pool_bit_identical(self, serial_baselines, program, workers, chunk_size):
        model, serial = serial_baselines[program]
        options = model.options.with_updates(
            workers=workers, chunk_size=chunk_size, executor="process"
        )
        try:
            assert_bits_equal(serial, model.bounds(_TARGETS, options))
        finally:
            model.close()

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_query_bounds_bit_identical(self, serial_baselines, kind):
        model, _ = serial_baselines["observe"]
        target = Interval(0.0, 1.0)
        serial = model.probability(target)
        parallel = model.probability(
            target, model.options.with_updates(workers=2, executor=kind)
        )
        try:
            assert serial.lower == parallel.lower
            assert serial.upper == parallel.upper
            assert serial.unnormalised.lower == parallel.unnormalised.lower
            assert serial.unnormalised.upper == parallel.unnormalised.upper
            assert serial.normalising_constant.upper == parallel.normalising_constant.upper
        finally:
            model.close()

    def test_vectorized_and_scalar_boxes_agree(self, serial_baselines):
        """The vectorised sweep is a performance path, not a semantic one."""
        model, _ = serial_baselines["nonlinear"]
        vec = model.bounds(_TARGETS, model.options.with_updates(analyzers=("box",)))
        scalar = model.bounds(
            _TARGETS, model.options.with_updates(analyzers=("box",), vectorized_boxes=False)
        )
        for a, b_ in zip(vec, scalar):
            assert a.lower == pytest.approx(b_.lower, rel=1e-12, abs=1e-15)
            assert a.upper == pytest.approx(b_.upper, rel=1e-12, abs=1e-15)

    def test_report_counters_match_serial(self, serial_baselines):
        model, _ = serial_baselines["geometric"]
        serial_report = AnalysisReport()
        parallel_report = AnalysisReport()
        model.bounds(_TARGETS, report=serial_report)
        model.bounds(
            _TARGETS,
            model.options.with_updates(workers=3, executor="thread"),
            report=parallel_report,
        )
        assert parallel_report.path_count == serial_report.path_count
        assert parallel_report.truncated_paths == serial_report.truncated_paths
        assert parallel_report.analyzer_paths == serial_report.analyzer_paths


# ----------------------------------------------------------------------
# Deterministic partitioning
# ----------------------------------------------------------------------


class TestPartitionPaths:
    @pytest.fixture(scope="class")
    def paths(self):
        execution = symbolic_paths(geometric_program(0.5), ExecutionLimits(max_fixpoint_depth=7))
        return execution.paths

    def test_partition_covers_each_path_once(self, paths):
        chunks = partition_paths(paths, workers=3)
        covered = [index for chunk in chunks for index in chunk]
        assert covered == list(range(len(paths)))

    def test_partition_is_deterministic(self, paths):
        assert partition_paths(paths, workers=3) == partition_paths(paths, workers=3)

    def test_explicit_chunk_size(self, paths):
        chunks = partition_paths(paths, workers=2, chunk_size=3)
        assert all(len(chunk) <= 3 for chunk in chunks)
        assert sum(len(chunk) for chunk in chunks) == len(paths)

    def test_empty_path_set(self):
        assert partition_paths([], workers=4) == []

    def test_cost_balancing_prefers_chunks_over_length(self, paths):
        # More workers → at least as many chunks (until one path per chunk).
        few = partition_paths(paths, workers=1)
        many = partition_paths(paths, workers=4)
        assert len(many) >= len(few)


# ----------------------------------------------------------------------
# Option validation (parallel knobs)
# ----------------------------------------------------------------------


class TestParallelOptionValidation:
    @pytest.mark.parametrize("workers", [0, -1, 1.5, True, "2"])
    def test_rejects_bad_workers(self, workers):
        with pytest.raises(ValueError):
            AnalysisOptions(workers=workers)

    @pytest.mark.parametrize("chunk_size", [0, -3, 2.5, True])
    def test_rejects_bad_chunk_size(self, chunk_size):
        with pytest.raises(ValueError):
            AnalysisOptions(chunk_size=chunk_size)

    @pytest.mark.parametrize("executor", ["fork", "", "threads", "PROCESS"])
    def test_rejects_bad_executor_names(self, executor):
        with pytest.raises(ValueError):
            AnalysisOptions(executor=executor)

    def test_executor_derived_from_workers(self):
        assert AnalysisOptions(workers=1, executor=None).effective_executor == "serial"
        assert AnalysisOptions(workers=2, executor=None).effective_executor == "process"
        assert not AnalysisOptions(workers=1, executor=None).parallel
        assert AnalysisOptions(workers=1, executor="thread").parallel

    def test_executor_key_identifies_pools(self):
        first = AnalysisOptions(workers=2, executor="thread")
        second = AnalysisOptions(workers=2, executor="thread", score_splits=64)
        assert first.executor_key() == second.executor_key()
        assert first.executor_key() != AnalysisOptions(workers=3, executor="thread").executor_key()

    def test_executor_constructor_validation(self):
        with pytest.raises(ValueError):
            ParallelAnalysisExecutor(workers=0, kind="thread")
        with pytest.raises(ValueError):
            ParallelAnalysisExecutor(workers=2, kind="fibers")
        with pytest.raises(ValueError):
            ParallelAnalysisExecutor(workers=2, kind="thread", chunk_size=0)

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS_WORKERS", "3")
        monkeypatch.setenv("REPRO_ANALYSIS_EXECUTOR", "thread")
        options = AnalysisOptions()
        assert options.workers == 3
        assert options.effective_executor == "thread"
        monkeypatch.setenv("REPRO_ANALYSIS_WORKERS", "zero")
        with pytest.raises(ValueError):
            AnalysisOptions()


# ----------------------------------------------------------------------
# Worker failure propagation
# ----------------------------------------------------------------------


class ExplodingAnalyzer:
    """Module-level (hence spec-importable) analyzer that always explodes."""

    name = "exploding"

    def applicable(self, path, options):
        return True

    def analyze(self, path, targets, options):
        raise PathExplosionError("path budget exhausted inside a worker")


class ShortBatchAnalyzer:
    """Broken batch analyzer: returns fewer rows than paths."""

    name = "short-batch"

    def applicable(self, path, options):
        return True

    def analyze(self, path, targets, options):
        return [(0.0, 1.0) for _ in targets]

    def analyze_batch(self, paths, targets, options):
        return [self.analyze(paths[0], targets, options)]  # drops all but one path


@pytest.fixture
def exploding_analyzer():
    register_analyzer("exploding", ExplodingAnalyzer, replace=True)
    yield
    unregister_analyzer("exploding")


class TestWorkerFailurePropagation:
    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_path_explosion_error_propagates(self, exploding_analyzer, kind):
        # The geometric program yields several paths, so the work is really
        # fanned out over multiple chunks (one-chunk runs execute inline).
        options = AnalysisOptions(
            max_fixpoint_depth=6, workers=2, executor=kind, analyzers=("exploding",)
        )
        with Model(geometric_program(0.5), options) as model:
            with pytest.raises(PathExplosionError, match="inside a worker"):
                model.bounds([Interval(0.0, 1.0)])

    def test_short_batch_results_rejected(self):
        """An analyze_batch shortfall must fail loudly, never drop paths."""
        register_analyzer("short-batch", ShortBatchAnalyzer, replace=True)
        try:
            options = AnalysisOptions(
                max_fixpoint_depth=5, workers=2, executor="thread", analyzers=("short-batch",)
            )
            with Model(geometric_program(0.5), options) as model:
                with pytest.raises(RuntimeError, match="one result per path"):
                    model.bounds([Interval(0.0, 1.0)])
        finally:
            unregister_analyzer("short-batch")

    def test_path_explosion_error_survives_pickling(self):
        error = PathExplosionError("too many paths")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, PathExplosionError)
        assert clone.args == error.args

    def test_unknown_analyzer_fails_fast_in_parent(self):
        options = AnalysisOptions(workers=2, executor="process", analyzers=("no-such",))
        with Model(simple_observe_model(), options) as model:
            with pytest.raises(UnknownAnalyzerError):
                model.bounds([Interval(0.0, 1.0)])

    def test_no_applicable_analyzer_propagates(self):
        class Never:
            name = "never"

            def applicable(self, path, options):
                return False

            def analyze(self, path, targets, options):  # pragma: no cover
                raise AssertionError

        register_analyzer("never", Never, replace=True)
        try:
            options = AnalysisOptions(workers=2, executor="thread", analyzers=("never",))
            with Model(simple_observe_model(), options) as model:
                with pytest.raises(RuntimeError, match="no analyzer"):
                    model.bounds([Interval(0.0, 1.0)])
        finally:
            unregister_analyzer("never")


# ----------------------------------------------------------------------
# Serialization-safe registry
# ----------------------------------------------------------------------


class TestRegistrySerializationSafety:
    def test_specs_are_picklable_and_reload(self):
        (spec,) = analyzer_specs(["box"])
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        from repro.analysis.box_analyzer import BoxPathAnalyzer

        assert clone.load() is BoxPathAnalyzer

    def test_ensure_registered_rematerialises_custom_analyzer(self):
        register_analyzer("exploding", ExplodingAnalyzer, replace=True)
        specs = analyzer_specs(["exploding"])
        unregister_analyzer("exploding")
        with pytest.raises(UnknownAnalyzerError):
            get_analyzer("exploding")
        try:
            ensure_analyzers_registered(specs)
            assert isinstance(get_analyzer("exploding"), ExplodingAnalyzer)
        finally:
            unregister_analyzer("exploding")

    def test_local_class_specs_refuse_process_transfer(self):
        class Local:
            name = "local"

            def applicable(self, path, options):
                return True

            def analyze(self, path, targets, options):
                return [(0.0, 0.0) for _ in targets]

        register_analyzer("local", Local, replace=True)
        try:
            (spec,) = analyzer_specs(["local"])
            with pytest.raises(UnknownAnalyzerError, match="local class"):
                spec.load()
        finally:
            unregister_analyzer("local")

    def test_specs_for_unknown_name_raise(self):
        with pytest.raises(UnknownAnalyzerError):
            analyzer_specs(["definitely-not-registered"])

    def test_builtin_override_reaches_spawned_workers(self):
        """A ``replace=True`` override of a built-in name must win in workers.

        Simulates a spawn-start-method worker: the parent overrides "box",
        ships specs, and the worker's registry already holds the *built-in*
        registration from import time.  ensure_analyzers_registered must
        replace it with the parent's class, not silently keep the built-in.
        """
        from repro.analysis.box_analyzer import BoxPathAnalyzer

        register_analyzer("box", ExplodingAnalyzer, replace=True)
        try:
            specs = analyzer_specs(["box"])
            # Worker state: the import-time built-in registration.
            register_analyzer("box", BoxPathAnalyzer, replace=True)
            ensure_analyzers_registered(specs)
            assert isinstance(get_analyzer("box"), ExplodingAnalyzer)
        finally:
            register_analyzer("box", BoxPathAnalyzer, replace=True)

    def test_chunk_payloads_are_picklable(self):
        execution = symbolic_paths(simple_observe_model(), ExecutionLimits())
        payload = ChunkPayload(
            index=0,
            paths=execution.paths,
            targets=(Interval(0.0, 1.0),),
            options=AnalysisOptions(),
            specs=analyzer_specs(("linear", "box")),
        )
        clone = pickle.loads(pickle.dumps(payload))
        index, contributions = analyze_chunk(clone)
        assert index == 0
        assert len(contributions) == len(execution.paths)


# ----------------------------------------------------------------------
# Pool lifecycle and reuse through Model
# ----------------------------------------------------------------------


class TestExecutorLifecycle:
    def test_model_reuses_pool_across_queries(self):
        options = AnalysisOptions(workers=2, executor="thread", score_splits=8)
        with Model(simple_observe_model(), options) as model:
            model.probability(Interval(0.0, 1.0))
            model.probability(Interval(1.0, 2.0))
            model.histogram(0.0, 3.0, 4)
            assert model.executor_count == 1
            executor = model._executor_for(options)
            assert executor.chunks_dispatched > 0
            assert executor.paths_analyzed > 0
        assert model.executor_count == 0

    def test_distinct_parallel_knobs_get_distinct_pools(self):
        with Model(simple_observe_model(), AnalysisOptions(score_splits=8)) as model:
            model.bound(Interval(0.0, 1.0), model.options.with_updates(workers=2, executor="thread"))
            model.bound(Interval(0.0, 1.0), model.options.with_updates(workers=3, executor="thread"))
            assert model.executor_count == 2

    def test_chunk_size_sweep_shares_one_pool(self):
        """chunk_size is a per-call knob, not a pool identity.

        The chunk_size=1 query comes first deliberately: the pool must not
        bake the first query's chunk_size in and leak it into the later
        chunk_size=None queries (which are documented to cost-balance).
        """
        with Model(geometric_program(0.5), AnalysisOptions(max_fixpoint_depth=6)) as model:
            for chunk_size in (1, None, 2, 4):
                options = model.options.with_updates(
                    workers=2, executor="thread", chunk_size=chunk_size
                )
                model.bound(Interval(0.0, 1.0), options)
            assert model.executor_count == 1
            assert model._executor_for(options).chunk_size is None

    def test_shared_executor_reused_for_direct_engine_calls(self):
        from repro.analysis import (
            analyze_execution,
            close_shared_executors,
            shared_executor,
        )

        options = AnalysisOptions(max_fixpoint_depth=6, workers=2, executor="thread")
        execution = symbolic_paths(geometric_program(0.5), options.execution_limits())
        try:
            first = shared_executor(options)
            analyze_execution(execution, [Interval(0.0, 1.0)], options)
            assert shared_executor(options) is first
            assert first.chunks_dispatched > 0
        finally:
            close_shared_executors()
        # Closed shared pools re-create on demand.
        fresh = shared_executor(options)
        assert fresh is not first
        close_shared_executors()

    def test_dropped_model_finalizes_its_pools(self):
        """A Model GC'd without close() must not leak worker processes."""
        import gc

        options = AnalysisOptions(max_fixpoint_depth=6, workers=2, executor="thread")
        model = Model(geometric_program(0.5), options)
        model.bound(Interval(0.0, 1.0))
        executor = model._executor_for(options)
        assert not executor._closed
        del model
        gc.collect()
        assert executor._closed

    def test_closed_executor_rejects_use(self):
        executor = ParallelAnalysisExecutor(workers=2, kind="thread")
        executor.close()
        execution = symbolic_paths(b.sample(), ExecutionLimits())
        with pytest.raises(RuntimeError, match="closed"):
            executor.analyze(execution, [Interval(0.0, 1.0)], AnalysisOptions())

    def test_close_is_idempotent_and_reopens_lazily(self):
        options = AnalysisOptions(workers=2, executor="thread", score_splits=8)
        model = Model(simple_observe_model(), options)
        first = model.bound(Interval(0.0, 1.0))
        model.close()
        model.close()
        second = model.bound(Interval(0.0, 1.0))
        assert first.lower == second.lower and first.upper == second.upper
        model.close()

    def test_executor_context_manager(self):
        execution = symbolic_paths(simple_observe_model(), ExecutionLimits())
        with ParallelAnalysisExecutor(workers=2, kind="thread") as executor:
            serial = ParallelAnalysisExecutor(workers=2, kind="serial")
            expected = serial.analyze(execution, _TARGETS, AnalysisOptions(score_splits=8))
            actual = executor.analyze(execution, _TARGETS, AnalysisOptions(score_splits=8))
            assert_bits_equal(expected, actual)


# ----------------------------------------------------------------------
# Picklable paths (process-pool payload contract)
# ----------------------------------------------------------------------


class TestPathPicklability:
    @pytest.mark.parametrize("program", sorted(_PROGRAMS))
    def test_execution_results_round_trip(self, program):
        execution = symbolic_paths(_PROGRAMS[program](), ExecutionLimits(max_fixpoint_depth=5))
        clone = pickle.loads(pickle.dumps(execution))
        assert clone.paths == execution.paths
        assert clone.truncated_paths == execution.truncated_paths

    def test_cost_hints_are_deterministic_and_positive(self):
        execution = symbolic_paths(geometric_program(0.5), ExecutionLimits(max_fixpoint_depth=6))
        hints = [path.analysis_cost_hint() for path in execution.paths]
        assert all(hint > 0 for hint in hints)
        assert hints == [path.analysis_cost_hint() for path in execution.paths]
