"""Durability suite: crash-safe journal, checkpointed refinement, warm restarts.

The scenarios mirror the operational story of ``--state-dir``:

==== ==========================================================  ==========
#    scenario                                                    layer
==== ==========================================================  ==========
1    journal round-trips records + blobs bit-exactly             journal
2    torn tail / bit flip: replay keeps the intact prefix,       journal
     never raises, reopen truncates the damage
3    property test: random histories × random corruption →       journal
     replay never raises, recovers an exact prefix
4    queue WAL replay never resurrects completed jobs and        queue
     always requeues incomplete ones (property-tested)
5    work queue restarted from its journal re-registers          queue
     resources and requeues pending jobs with original ids
6    frame CRC: corrupt/truncate faults surface as typed         protocol
     errors; unflagged v1 frames still decode
7    refinement checkpoint round-trip: resume from round k       refine
     is bit-identical to the uninterrupted run
8    warm restart: repeat query served from the persistent       server
     result store with zero program-cache misses; corrupted
     entries are CRC-detected, dropped and recomputed
9    kill -9 after round 2 of a streamed refined query →         server
     client auto-resumes against the restarted server, final
     bounds bit-identical, ≤1 round repeated
10   SIGTERM drains and marks the journal clean                  server
==== ==========================================================  ==========

Fast journal/store/checkpoint classes run in tier-1; the subprocess
scenarios are ``slow``-marked and run in the ``tests-durability`` CI job.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro import faults, intervals
from repro.analysis.config import AnalysisOptions
from repro.analysis.model import Model
from repro.analysis.refine import RefinementScheduler
from repro.lang import parse
from repro.service import (
    FrameCorrupted,
    Journal,
    ServiceClient,
    StateStore,
    WorkQueueServer,
    replay_queue_journal,
    serve_in_background,
)
from repro.service import journal as journal_module
from repro.service.journal import MAGIC, register_temp, _sweep_temps
from repro.service.protocol import ConnectionClosed, recv_frame, send_frame

BRANCHY_SRC = """
(let x (sample uniform 0 1)
  (let y (sample uniform 0 1)
    (if (- x y)
        (let z (score (+ 0.5 x)) (+ x y))
        (let z (score (- 1.5 x)) (* x y)))))
"""

TARGETS = (intervals.Interval(0.0, 0.5), intervals.Interval(0.5, 1.0))

REFINE_OPTIONS = {
    "refine": "gap",
    "refine_max_rounds": 4,
    "executor": "serial",
    "stream": False,
}


def as_pairs(bounds):
    return [(entry.lower, entry.upper) for entry in bounds]


@pytest.fixture(autouse=True)
def no_leaked_plan():
    """Every test starts and ends with fault injection disabled."""
    faults.uninstall()
    yield
    faults.uninstall()


# ---------------------------------------------------------------------------
# 1–3: the journal itself
# ---------------------------------------------------------------------------
class TestJournal:
    def test_round_trip_records_and_blobs(self, tmp_path):
        path = tmp_path / "test.wal"
        journal = Journal(path)
        records = [
            ({"type": "enqueue", "job_id": 1, "weight": 0.1 + 0.2}, b""),
            ({"type": "resource", "key": "abc"}, b"\x00\xff" * 100),
            ({"type": "complete", "job_id": 1}, b""),
        ]
        for header, blob in records:
            journal.append(header, blob, sync=True)
        journal.close()
        replay = Journal.replay(path)
        assert not replay.torn
        assert replay.dropped_bytes == 0
        assert [(h, b) for h, b in replay] == records
        # Floats survive exactly (JSON repr round-trips doubles).
        assert replay.records[0][0]["weight"] == 0.1 + 0.2

    def test_torn_tail_keeps_prefix_and_reopen_truncates(self, tmp_path):
        path = tmp_path / "torn.wal"
        journal = Journal(path)
        journal.append({"type": "a", "n": 1}, sync=True)
        journal.append({"type": "b", "n": 2}, b"payload", sync=True)
        journal.close()
        # Chop the file mid-way through the last record.
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 4])
        replay = Journal.replay(path)
        assert replay.torn
        assert [h["type"] for h, _ in replay] == ["a"]
        assert replay.dropped_bytes > 0
        # Reopening truncates the torn tail and appends continue cleanly.
        journal = Journal(path)
        journal.append({"type": "c", "n": 3}, sync=True)
        journal.close()
        replay = Journal.replay(path)
        assert not replay.torn
        assert [h["type"] for h, _ in replay] == ["a", "c"]
        assert not list(tmp_path.glob("*.tmp"))

    def test_bit_flip_stops_replay_at_damage(self, tmp_path):
        path = tmp_path / "flip.wal"
        journal = Journal(path)
        for n in range(3):
            journal.append({"type": "rec", "n": n}, sync=True)
        journal.close()
        data = bytearray(path.read_bytes())
        # Flip a byte inside the second record's body.
        replay = Journal.replay(path)
        first_end = len(MAGIC) + (replay.valid_size - len(MAGIC)) // 3
        data[first_end + 20] ^= 0xFF
        path.write_bytes(bytes(data))
        replay = Journal.replay(path)
        assert replay.torn
        assert [h["n"] for h, _ in replay] == [0]

    def test_missing_and_foreign_files_replay_empty(self, tmp_path):
        assert len(Journal.replay(tmp_path / "nope.wal")) == 0
        bad = tmp_path / "foreign.bin"
        bad.write_bytes(b"not a journal at all")
        replay = Journal.replay(bad)
        assert replay.torn and len(replay) == 0

    def test_torn_fault_site_wedges_journal(self, tmp_path):
        path = tmp_path / "fault.wal"
        journal = Journal(path)
        with faults.injected("journal.write:torn@2"):
            journal.append({"type": "ok", "n": 1})
            journal.append({"type": "doomed", "n": 2})  # half reaches disk
            journal.append({"type": "after", "n": 3})  # dropped: wedged
        journal.close()
        replay = Journal.replay(path)
        assert replay.torn
        assert [h["type"] for h, _ in replay] == ["ok"]
        # The next incarnation truncates and runs normally.
        journal = Journal(path)
        journal.append({"type": "recovered"}, sync=True)
        journal.close()
        replay = Journal.replay(path)
        assert not replay.torn
        assert [h["type"] for h, _ in replay] == ["ok", "recovered"]

    def test_fail_fault_raises(self, tmp_path):
        journal = Journal(tmp_path / "raise.wal")
        with faults.injected("journal.write:fail@1"):
            with pytest.raises(faults.FaultInjected):
                journal.append({"type": "x"})
        journal.close()

    @settings(max_examples=60, deadline=None)
    @given(
        history=st.lists(
            st.tuples(
                st.dictionaries(
                    st.sampled_from(["type", "job_id", "n", "w"]),
                    st.one_of(
                        st.integers(-1000, 1000),
                        st.floats(allow_nan=False, allow_infinity=True),
                        st.text(max_size=8),
                    ),
                    max_size=3,
                ),
                st.binary(max_size=64),
            ),
            max_size=8,
        ),
        damage=st.one_of(
            st.none(),
            st.tuples(st.integers(0, 10_000), st.integers(0, 255)),
            st.integers(0, 10_000),
        ),
    )
    def test_replay_never_raises_and_recovers_a_prefix(
        self, tmp_path_factory, history, damage
    ):
        path = tmp_path_factory.mktemp("wal") / "prop.wal"
        journal = Journal(path)
        for header, blob in history:
            journal.append(header, blob)
        journal.close()
        pristine = Journal.replay(path)
        assert [(h, b) for h, b in pristine] == list(history)
        data = bytearray(path.read_bytes())
        if isinstance(damage, tuple) and data:
            offset, flip = damage
            data[offset % len(data)] ^= flip
            path.write_bytes(bytes(data))
        elif isinstance(damage, int):
            path.write_bytes(bytes(data[: damage % (len(data) + 1)]))
        replay = Journal.replay(path)  # must never raise
        recovered = [(h, b) for h, b in replay]
        # Whatever survives is an exact prefix of what was appended —
        # records are accepted whole or not at all (a flipped byte that
        # leaves the CRC intact is impossible for a single-byte flip).
        if damage is None:
            assert recovered == list(history)
        else:
            assert recovered == list(history)[: len(recovered)]


class TestTempSweep:
    def test_registered_strays_are_swept(self, tmp_path):
        stray = tmp_path / "entry.bin.tmp"
        stray.write_bytes(b"half-written")
        register_temp(stray)
        _sweep_temps()
        assert not stray.exists()
        with journal_module._TEMPS_LOCK:
            assert str(stray) not in journal_module._LIVE_TEMPS


# ---------------------------------------------------------------------------
# 4–5: work-queue recovery
# ---------------------------------------------------------------------------
class TestQueueJournalReplay:
    def _journal(self, tmp_path, events):
        path = tmp_path / "queue.wal"
        journal = Journal(path)
        for header, blob in events:
            journal.append(header, blob)
        journal.close()
        return Journal.replay(path)

    def test_completed_jobs_are_not_requeued(self, tmp_path):
        recovery = replay_queue_journal(self._journal(tmp_path, [
            ({"type": "resource", "key": "tbl", "kind": "table"}, b"image"),
            ({"type": "enqueue", "job_id": 1, "spec": {"kind": "sleep"}}, b""),
            ({"type": "enqueue", "job_id": 2, "spec": {"kind": "sleep"}}, b""),
            ({"type": "dispatch", "job_id": 1, "attempt": 1}, b""),
            ({"type": "complete", "job_id": 1}, b""),
        ]))
        assert not recovery.clean
        assert recovery.completed == {1}
        assert [job["job_id"] for job in recovery.pending] == [2]
        assert recovery.resources["tbl"] == ("table", b"image")

    def test_clean_marker_is_positional(self, tmp_path):
        # A clean shutdown fails what was pending *then*; jobs enqueued by a
        # later incarnation of the same journal are still recovered.
        recovery = replay_queue_journal(self._journal(tmp_path, [
            ({"type": "enqueue", "job_id": 1, "spec": {}}, b""),
            ({"type": "clean"}, b""),
            ({"type": "enqueue", "job_id": 2, "spec": {}}, b""),
        ]))
        assert not recovery.clean  # the last record is not the marker
        assert 1 in recovery.failed
        assert [job["job_id"] for job in recovery.pending] == [2]
        recovery = replay_queue_journal(self._journal(tmp_path, [
            ({"type": "enqueue", "job_id": 1, "spec": {}}, b""),
            ({"type": "complete", "job_id": 1}, b""),
            ({"type": "clean"}, b""),
        ]))
        assert recovery.clean and not recovery.pending

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(1, 5), st.sampled_from(["dispatch", "complete", "failed"])),
            max_size=12,
        )
    )
    def test_replay_partitions_jobs_exactly(self, tmp_path_factory, events):
        # Enqueue jobs 1..5, then apply a random event history; every job
        # must end up in exactly one of {pending, completed, failed}, and
        # completed/failed jobs are never resurrected.
        path = tmp_path_factory.mktemp("q") / "prop.wal"
        journal = Journal(path)
        for job_id in range(1, 6):
            journal.append({"type": "enqueue", "job_id": job_id, "spec": {}})
        for job_id, kind in events:
            header = {"type": kind, "job_id": job_id}
            if kind == "dispatch":
                header["attempt"] = 1
            journal.append(header)
        journal.close()
        recovery = replay_queue_journal(Journal.replay(path))
        pending_ids = {job["job_id"] for job in recovery.pending}
        assert pending_ids.isdisjoint(recovery.completed)
        assert pending_ids.isdisjoint(recovery.failed)
        done = {j for j, k in events if k == "complete"}
        failed = {j for j, k in events if k == "failed"} - done
        assert recovery.completed == done
        assert pending_ids == set(range(1, 6)) - done - recovery.failed
        for job_id in failed:
            assert job_id in recovery.failed

    def test_torn_journal_replays_without_raising(self, tmp_path):
        path = tmp_path / "torn.wal"
        journal = Journal(path)
        journal.append({"type": "enqueue", "job_id": 1, "spec": {}}, sync=True)
        journal.close()
        data = path.read_bytes()
        path.write_bytes(data + b"\x00\x01garbage-tail")
        recovery = replay_queue_journal(Journal.replay(path))
        assert recovery.torn
        assert [job["job_id"] for job in recovery.pending] == [1]


class TestQueueRecovery:
    def test_restart_requeues_pending_jobs_with_original_ids(self, tmp_path):
        wal = str(tmp_path / "queue.wal")
        queue = WorkQueueServer(journal_path=wal)
        try:
            queue.add_resource("tbl", b"table-bytes", "table")
            futures = [queue.submit_sleep(0.01) for _ in range(3)]
        finally:
            # Simulate the crash: copy the journal *before* the close(),
            # which fails pending jobs and appends the clean marker.
            crashed = tmp_path / "crashed.wal"
            crashed.write_bytes(Path(wal).read_bytes())
            queue.close()
        del futures
        restarted = WorkQueueServer(journal_path=str(crashed))
        try:
            assert restarted.jobs_recovered == 3
            assert sorted(restarted.recovered_jobs) == [0, 1, 2]
            assert restarted.stats()["pending"] == 3
            assert restarted._resources["tbl"] == ("table", b"table-bytes")
            # Fresh submissions continue numbering past the recovered ids.
            future = restarted.submit_sleep(0.01)
            assert restarted.stats()["pending"] == 4
            del future
        finally:
            restarted.close()

    @pytest.mark.slow
    def test_recovered_jobs_complete_on_spawned_worker(self, tmp_path):
        wal = str(tmp_path / "queue.wal")
        queue = WorkQueueServer(journal_path=wal)
        try:
            queue.submit_sleep(0.01)
            queue.submit_sleep(0.01)
        finally:
            crashed = tmp_path / "crashed.wal"
            crashed.write_bytes(Path(wal).read_bytes())
            queue.close()
        restarted = WorkQueueServer(journal_path=str(crashed))
        try:
            assert restarted.jobs_recovered == 2
            restarted.spawn_local_workers(1)
            for future in restarted.recovered_jobs.values():
                future.result(timeout=60)
            # The completion counter (and its journal record) lands just
            # after the future resolves — poll briefly.
            deadline = time.time() + 10.0
            while restarted.stats()["completed"] < 2 and time.time() < deadline:
                time.sleep(0.02)
            assert restarted.stats()["completed"] == 2
        finally:
            restarted.close()
        # A third incarnation sees the completions: nothing is resurrected.
        final = WorkQueueServer(journal_path=str(crashed))
        try:
            assert final.jobs_recovered == 0
        finally:
            final.close()


# ---------------------------------------------------------------------------
# 6: frame CRC on the wire
# ---------------------------------------------------------------------------
class TestFrameCRC:
    def _pair(self):
        left, right = socket.socketpair()
        left.settimeout(5.0)
        right.settimeout(5.0)
        return left, right

    def test_corrupt_fault_raises_frame_corrupted(self):
        left, right = self._pair()
        try:
            with faults.injected("wire.test:corrupt@1"):
                send_frame(left, {"type": "bounds", "n": 7}, b"blob" * 10,
                           site="wire.test")
            with pytest.raises(FrameCorrupted):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_truncate_fault_raises_connection_closed(self):
        left, right = self._pair()
        try:
            with faults.injected("wire.test:truncate@1"):
                send_frame(left, {"type": "bounds", "n": 7}, b"blob" * 100,
                           site="wire.test")
            with pytest.raises(ConnectionClosed):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_v1_unflagged_frames_still_decode(self):
        # Backward tolerance: a peer speaking the pre-CRC frame format.
        left, right = self._pair()
        try:
            payload = json.dumps({"type": "ping"}).encode()
            left.sendall(struct.pack("!IQ", len(payload), 0) + payload)
            header, blob = recv_frame(right)
            assert header == {"type": "ping"} and blob == b""
        finally:
            left.close()
            right.close()

    def test_clean_frames_round_trip_with_crc(self):
        left, right = self._pair()
        try:
            send_frame(left, {"type": "result", "x": 0.1 + 0.2}, b"\x01\x02")
            header, blob = recv_frame(right)
            assert header["x"] == 0.1 + 0.2 and blob == b"\x01\x02"
        finally:
            left.close()
            right.close()


# ---------------------------------------------------------------------------
# 7: refinement checkpoints
# ---------------------------------------------------------------------------
class TestRefinementCheckpoint:
    def _scheduler(self, model, options):
        compiled = model.compile(options)
        return RefinementScheduler(compiled.execution, TARGETS, options)

    def test_resume_is_bit_identical(self):
        options = AnalysisOptions(refine="gap", refine_max_rounds=4)
        with Model(parse(BRANCHY_SRC)) as model:
            # Uninterrupted reference.
            reference = self._scheduler(model, options)
            full = as_pairs(reference.run())
            assert reference.rounds_run == 4
            # Interrupted at round 2 → checkpoint → restore → continue.
            interrupted = self._scheduler(model, options)
            interrupted.seed()
            interrupted.refine_round()
            interrupted.refine_round()
            blob = interrupted.to_bytes()
            compiled = model.compile(options)
            restored = RefinementScheduler.from_bytes(
                blob, compiled.execution, TARGETS, options
            )
            assert restored.rounds_run == 2
            assert as_pairs(restored.run()) == full
            assert restored.rounds_run == 4

    def test_checkpoint_rejects_mismatched_query(self):
        options = AnalysisOptions(refine="gap", refine_max_rounds=1)
        with Model(parse(BRANCHY_SRC)) as model:
            scheduler = self._scheduler(model, options)
            scheduler.seed()
            scheduler.refine_round()
            blob = scheduler.to_bytes()
            compiled = model.compile(options)
            with pytest.raises(ValueError):
                RefinementScheduler.from_bytes(
                    blob, compiled.execution,
                    (intervals.Interval(0.0, 9.0),), options,
                )
            state = json.loads(blob.decode())
            state["version"] = 99
            with pytest.raises(ValueError):
                RefinementScheduler.from_bytes(
                    json.dumps(state).encode(), compiled.execution,
                    TARGETS, options,
                )

    def test_checkpoint_before_seed_raises(self):
        options = AnalysisOptions(refine="gap")
        with Model(parse(BRANCHY_SRC)) as model:
            scheduler = self._scheduler(model, options)
            with pytest.raises(RuntimeError):
                scheduler.to_bytes()


# ---------------------------------------------------------------------------
# 8: warm restarts of the bounds server
# ---------------------------------------------------------------------------
class TestWarmRestart:
    def test_repeat_query_served_from_result_store(self, tmp_path):
        state = str(tmp_path / "state")
        with serve_in_background(state_dir=state) as handle:
            with ServiceClient(handle.endpoint) as client:
                cold = client.bounds(BRANCHY_SRC, TARGETS, options=REFINE_OPTIONS)
                reference = as_pairs(cold.bounds)
                assert cold.result_cache == "miss"
            handle.stop_gracefully()
        # Restarted server: the repeat query must come from the persistent
        # result store without ever touching the program cache.
        with serve_in_background(state_dir=state) as handle:
            with ServiceClient(handle.endpoint) as client:
                warm = client.bounds(BRANCHY_SRC, TARGETS, options=REFINE_OPTIONS)
                assert warm.result_cache == "hit"
                assert as_pairs(warm.bounds) == reference
                stats = client.stats()
                assert stats["cache"]["misses"] == 0
                assert stats["cache"]["hits"] == 0
                durability = stats["durability"]
                assert durability["result_store_hits"] == 1
                assert durability["journal_clean"] is True
                assert durability["journal_records_replayed"] >= 1

    def test_warm_program_load_skips_recompilation(self, tmp_path):
        state = str(tmp_path / "state")
        with serve_in_background(state_dir=state) as handle:
            with ServiceClient(handle.endpoint) as client:
                cold = client.bounds(BRANCHY_SRC, TARGETS, options=REFINE_OPTIONS)
                reference_paths = cold.paths
            handle.stop_gracefully()
        with serve_in_background(state_dir=state) as handle:
            with ServiceClient(handle.endpoint) as client:
                # Different targets → result-store miss, but the compiled
                # program comes back from its stored path-table image.
                other = client.bounds(
                    BRANCHY_SRC, [(0.0, 0.25)], options=REFINE_OPTIONS
                )
                assert other.paths == reference_paths
                stats = client.stats()
                assert stats["durability"]["program_store_hits"] == 1

    def test_corrupted_result_entry_is_dropped_and_recomputed(self, tmp_path):
        state = tmp_path / "state"
        with serve_in_background(state_dir=str(state)) as handle:
            with ServiceClient(handle.endpoint) as client:
                cold = client.bounds(BRANCHY_SRC, TARGETS, options=REFINE_OPTIONS)
                reference = as_pairs(cold.bounds)
            handle.stop_gracefully()
        for entry in (state / "results").glob("*.json"):
            data = bytearray(entry.read_bytes())
            data[len(data) // 2] ^= 0xFF
            entry.write_bytes(bytes(data))
        with serve_in_background(state_dir=str(state)) as handle:
            with ServiceClient(handle.endpoint) as client:
                recomputed = client.bounds(BRANCHY_SRC, TARGETS, options=REFINE_OPTIONS)
                assert recomputed.result_cache == "miss"
                assert as_pairs(recomputed.bounds) == reference
                stats = client.stats()
                assert stats["durability"]["store"]["corrupt_dropped"] >= 1

    def test_corrupted_program_image_falls_back_to_recompile(self, tmp_path):
        state = tmp_path / "state"
        with serve_in_background(state_dir=str(state)) as handle:
            with ServiceClient(handle.endpoint) as client:
                cold = client.bounds(BRANCHY_SRC, TARGETS, options=REFINE_OPTIONS)
                reference = as_pairs(cold.bounds)
            handle.stop_gracefully()
        for entry in (state / "programs").glob("*.bin"):
            data = bytearray(entry.read_bytes())
            data[len(data) // 2] ^= 0xFF
            entry.write_bytes(bytes(data))
        # Remove the stored result too, so the query must actually compile.
        for entry in (state / "results").glob("*.json"):
            entry.unlink()
        with serve_in_background(state_dir=str(state)) as handle:
            with ServiceClient(handle.endpoint) as client:
                recomputed = client.bounds(BRANCHY_SRC, TARGETS, options=REFINE_OPTIONS)
                assert as_pairs(recomputed.bounds) == reference
                stats = client.stats()
                assert stats["durability"]["program_store_hits"] == 0
                assert stats["durability"]["store"]["corrupt_dropped"] >= 1

    def test_server_ack_crash_leaves_result_servable(self, tmp_path):
        # In-process stand-in for the crash-between-complete-and-ack window:
        # the result is persisted and journaled before the reply frame, so a
        # same-process re-issue after a *connection* loss is served from the
        # store (the subprocess suite covers the real os._exit).
        state = str(tmp_path / "state")
        with serve_in_background(state_dir=state) as handle:
            with ServiceClient(handle.endpoint) as client:
                first = client.bounds(
                    BRANCHY_SRC, TARGETS, options=REFINE_OPTIONS, query_id="ack-1"
                )
            with ServiceClient(handle.endpoint) as client:
                again = client.bounds(
                    BRANCHY_SRC, TARGETS, options=REFINE_OPTIONS, query_id="ack-1"
                )
                assert again.result_cache == "hit"
                assert as_pairs(again.bounds) == as_pairs(first.bounds)


# ---------------------------------------------------------------------------
# 9–10: whole-process crash, resume, graceful shutdown (subprocess)
# ---------------------------------------------------------------------------
def _start_server(state_dir, bind="127.0.0.1:0", fault_plan=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    if fault_plan:
        env[faults.ENV_VAR] = fault_plan
    else:
        env.pop(faults.ENV_VAR, None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service.server",
         "--bind", bind, "--state-dir", str(state_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on (\S+)", line)
    if not match:
        proc.kill()
        raise AssertionError(f"server did not start: {line!r}")
    return proc, match.group(1)


@pytest.mark.slow
class TestCrashResume:
    def test_kill9_after_round2_resumes_bit_identically(self, tmp_path):
        options = dict(REFINE_OPTIONS)  # 4 rounds of gap refinement
        # Fault-free reference run (its own state dir).
        proc, endpoint = _start_server(tmp_path / "ref")
        try:
            with ServiceClient(endpoint, timeout=120) as client:
                reference = client.bounds(
                    BRANCHY_SRC, TARGETS, options=options, stream=True
                )
        finally:
            proc.terminate()
            proc.wait(timeout=30)
        assert reference.refine_rounds >= 3
        reference_bounds = as_pairs(reference.bounds)

        # Crashing run: the server dies (os._exit) right after journaling
        # its second completed refinement round.
        state = tmp_path / "state"
        proc, endpoint = _start_server(
            state, fault_plan="seed=7;server.crash:die@2"
        )
        port = endpoint.rsplit(":", 1)[1]
        outcome = {}

        def query():
            try:
                with ServiceClient(endpoint, timeout=120) as client:
                    outcome["reply"] = client.bounds(
                        BRANCHY_SRC, TARGETS, options=options, stream=True,
                        query_id="crash-1", resume_retries=60,
                        resume_backoff=0.1,
                    )
            except Exception as error:  # surfaced in the main thread
                outcome["error"] = error

        thread = threading.Thread(target=query)
        thread.start()
        assert proc.wait(timeout=120) != 0  # the injected crash fired
        # Restart on the same port and state dir; the client auto-resumes.
        proc2, endpoint2 = _start_server(state, bind=f"127.0.0.1:{port}")
        try:
            thread.join(timeout=180)
            assert not thread.is_alive()
            assert "error" not in outcome, outcome.get("error")
            reply = outcome["reply"]
            assert as_pairs(reply.bounds) == reference_bounds
            assert reply.refine_rounds == reference.refine_rounds
            # The client holds every partial exactly once.
            assert len(reply.partials) == len(reference.partials)
            with ServiceClient(endpoint2, timeout=30) as client:
                durability = client.stats()["durability"]
            assert durability["rounds_resumed"] == 2
            # At most one round recomputed beyond the uninterrupted total.
            assert (
                durability["rounds_resumed"] + durability["rounds_recomputed"]
                <= reference.refine_rounds + 1
            )
            assert durability["partials_replayed"] >= 1
        finally:
            proc2.terminate()
            proc2.wait(timeout=30)

    def test_sigterm_drains_and_marks_journal_clean(self, tmp_path):
        state = tmp_path / "state"
        proc, endpoint = _start_server(state)
        try:
            with ServiceClient(endpoint, timeout=120) as client:
                client.bounds(BRANCHY_SRC, TARGETS, options=REFINE_OPTIONS)
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        replay = Journal.replay(state / "server.wal")
        assert not replay.torn
        assert replay.records[-1][0]["type"] == "clean"
        # The restarted server reports the clean shutdown and serves the
        # persisted result without recomputing.
        proc, endpoint = _start_server(state)
        try:
            with ServiceClient(endpoint, timeout=60) as client:
                warm = client.bounds(BRANCHY_SRC, TARGETS, options=REFINE_OPTIONS)
                assert warm.result_cache == "hit"
                stats = client.stats()
                assert stats["durability"]["journal_clean"] is True
        finally:
            proc.terminate()
            proc.wait(timeout=30)

    def test_stats_cli_prints_durability_telemetry(self, tmp_path):
        proc, endpoint = _start_server(tmp_path / "state")
        try:
            env = dict(os.environ)
            env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
            env.pop(faults.ENV_VAR, None)
            printed = subprocess.run(
                [sys.executable, "-m", "repro.service.client",
                 "--stats", endpoint],
                capture_output=True, text=True, timeout=60, env=env,
            )
            assert printed.returncode == 0, printed.stderr
            stats = json.loads(printed.stdout)
            assert stats["durability"]["enabled"] is True
            assert "workers_reaped" in stats["executors"]
            assert "degraded_chunks" in stats["executors"]
        finally:
            proc.terminate()
            proc.wait(timeout=30)


# ---------------------------------------------------------------------------
# State-store unit coverage
# ---------------------------------------------------------------------------
class TestStateStore:
    def test_result_round_trip_and_corruption(self, tmp_path):
        store = StateStore(tmp_path)
        store.save_result("k1", {"bounds": [0.1 + 0.2], "type": "result"})
        assert store.load_result("k1")["bounds"] == [0.1 + 0.2]
        entry = tmp_path / "results" / "k1.json"
        data = bytearray(entry.read_bytes())
        data[-1] ^= 0xFF
        entry.write_bytes(bytes(data))
        assert store.load_result("k1") is None
        assert not entry.exists()  # dropped, not served
        assert store.stats()["corrupt_dropped"] == 1

    def test_program_round_trip(self, tmp_path):
        store = StateStore(tmp_path)
        store.save_program("hash1", b"IMAGEBYTES", {"truncated_paths": 2})
        meta, image = store.load_program("hash1")
        assert meta["truncated_paths"] == 2 and image == b"IMAGEBYTES"
        assert store.has_program("hash1")
        assert store.load_program("missing") is None

    def test_checkpoint_lifecycle(self, tmp_path):
        store = StateStore(tmp_path)
        store.save_checkpoint("q1", b"state-bytes")
        assert store.load_checkpoint("q1") == b"state-bytes"
        store.drop_checkpoint("q1")
        assert store.load_checkpoint("q1") is None
        store.drop_checkpoint("q1")  # idempotent

    def test_lru_prune_keeps_newest(self, tmp_path):
        store = StateStore(tmp_path, result_limit=3)
        for n in range(6):
            store.save_result(f"k{n}", {"n": n})
            now = time.time() - 100 + n  # strictly increasing, all in the past
            os.utime(tmp_path / "results" / f"k{n}.json", (now, now))
        survivors = sorted(p.stem for p in (tmp_path / "results").glob("*.json"))
        assert len(survivors) <= 4  # pruned on each save past the limit
        assert "k5" in survivors
