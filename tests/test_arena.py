"""Zero-copy arena transport: encoding, dispatch, lifecycle, cache tee.

Four layers of guarantees are pinned here:

* **round-trip exactness** — arena encode/decode reproduces any path set
  exactly (property-based over random path shapes, plus real programs),
  including DAG sharing, interval constants and deep expressions;
* **transport equivalence** — the ``"arena"`` process transport returns
  bounds *bit-identical* to the ``"pickle"`` transport and to serial runs,
  for every backend and chunk size;
* **lifecycle** — shared-memory segments are unlinked on pool close and on a
  mid-stream :class:`~repro.symbolic.PathExplosionError`; in-process
  backends never intern (nothing is pickled);
* **cache tee** — a streamed query materialises its paths into the
  compiled-program cache under the memory budget (second query is a cache
  hit), and budget overflow degrades to uncached streaming.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    AnalysisOptions,
    Model,
    ParallelAnalysisExecutor,
    shared_memory_available,
)
from repro.distributions import Bernoulli, Beta, Exponential, Normal, Uniform
from repro.intervals import Interval
from repro.lang import builder as b
from repro.symbolic import (
    ArenaFormatError,
    ExecutionLimits,
    PathArena,
    PathExplosionError,
    PathInterner,
    Relation,
    SConst,
    SPrim,
    SVar,
    SymConstraint,
    SymbolicPath,
    encode_paths,
    symbolic_paths,
)

from helpers import geometric_program, pedestrian_walk_fixpoint, simple_observe_model

_TARGETS = [Interval(0.0, 1.0), Interval(0.5, 2.0), Interval.reals()]


def roundtrip(paths) -> tuple[SymbolicPath, ...]:
    return PathArena.from_buffer(encode_paths(paths)).decode_all()


def assert_bits_equal(first, second):
    assert len(first) == len(second)
    for a, b_ in zip(first, second):
        assert a.lower == b_.lower, f"lower bounds differ: {a.lower!r} vs {b_.lower!r}"
        assert a.upper == b_.upper, f"upper bounds differ: {a.upper!r} vs {b_.upper!r}"


# ----------------------------------------------------------------------
# Encode/decode round trips
# ----------------------------------------------------------------------

_DISTS = st.sampled_from(
    [Uniform(0.0, 1.0), Uniform(-2.0, 3.0), Normal(0.0, 1.0), Beta(2.0, 3.0),
     Exponential(1.5), Bernoulli(0.25)]
)
_FLOATS = st.floats(allow_nan=False, allow_infinity=True, width=64)


def _expr_strategy(variable_count: int):
    leaves = [st.builds(lambda lo, hi: SConst(Interval(min(lo, hi), max(lo, hi))), _FLOATS, _FLOATS)]
    if variable_count > 0:
        leaves.append(st.builds(SVar, st.integers(0, variable_count - 1)))
    leaf = st.one_of(*leaves)
    unary = st.sampled_from(["neg", "abs", "exp", "log", "sqrt", "square"])
    binary = st.sampled_from(["add", "sub", "mul", "min", "max"])
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            st.builds(lambda op, arg: SPrim(op, (arg,)), unary, children),
            st.builds(lambda op, lhs, rhs: SPrim(op, (lhs, rhs)), binary, children, children),
        ),
        max_leaves=8,
    )


@st.composite
def _paths_strategy(draw):
    count = draw(st.integers(0, 4))
    paths = []
    for _ in range(count):
        variable_count = draw(st.integers(0, 3))
        distributions = tuple(draw(_DISTS) for _ in range(variable_count))
        expr = _expr_strategy(variable_count)
        constraints = tuple(
            SymConstraint(draw(expr), draw(st.sampled_from(Relation.ALL)))
            for _ in range(draw(st.integers(0, 3)))
        )
        scores = tuple(draw(expr) for _ in range(draw(st.integers(0, 2))))
        paths.append(
            SymbolicPath(
                result=draw(expr),
                variable_count=variable_count,
                distributions=distributions,
                constraints=constraints,
                scores=scores,
                truncated=draw(st.booleans()),
            )
        )
    return tuple(paths)


class TestArenaRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(paths=_paths_strategy())
    def test_random_path_shapes(self, paths):
        assert roundtrip(paths) == paths

    @pytest.mark.parametrize(
        "build,depth",
        [(simple_observe_model, 4), (pedestrian_walk_fixpoint, 5), (geometric_program, 9)],
    )
    def test_real_programs(self, build, depth):
        term = build() if build is not pedestrian_walk_fixpoint else b.app(build(), 1.0)
        paths = symbolic_paths(term, ExecutionLimits(max_fixpoint_depth=depth)).paths
        assert roundtrip(paths) == paths

    def test_empty_path_set(self):
        assert roundtrip(()) == ()

    def test_zero_variable_path(self):
        paths = symbolic_paths(b.add(1.0, 2.0)).paths
        assert paths[0].variable_count == 0
        assert roundtrip(paths) == paths

    def test_interval_constants_and_flags_survive(self):
        path = SymbolicPath(
            result=SConst(Interval(-float("inf"), float("inf"))),
            variable_count=0,
            distributions=(),
            constraints=(SymConstraint(SConst(Interval(0.25, 0.75)), Relation.LT),),
            scores=(SConst(Interval.point(2.5)),),
            truncated=True,
        )
        (decoded,) = roundtrip([path])
        assert decoded == path
        assert decoded.truncated

    def test_shared_subtrees_decode_to_shared_objects(self):
        shared = SPrim("add", (SVar(0), SConst(Interval.point(1.0))))
        path = SymbolicPath(
            result=SPrim("mul", (shared, shared)),
            variable_count=1,
            distributions=(Uniform(0.0, 1.0),),
            constraints=(SymConstraint(shared, Relation.LEQ),),
            scores=(shared,),
            truncated=False,
        )
        (decoded,) = roundtrip([path])
        assert decoded == path
        # Interning happens at encode time, so the decoded DAG is maximally
        # shared even though the constraint/score/result rebuilt it thrice.
        assert decoded.result.args[0] is decoded.result.args[1]
        assert decoded.result.args[0] is decoded.scores[0]

    def test_deep_expression_does_not_recurse(self):
        expr = SConst(Interval.point(0.0))
        for _ in range(5_000):  # far beyond the interpreter recursion limit
            expr = SPrim("neg", (expr,))
        path = SymbolicPath(
            result=expr, variable_count=0, distributions=(), constraints=(), scores=()
        )
        assert roundtrip([path]) == (path,)

    def test_bad_magic_rejected(self):
        with pytest.raises(ArenaFormatError):
            PathArena.from_buffer(b"not an arena image at all")

    def test_truncated_image_rejected(self):
        image = encode_paths(symbolic_paths(simple_observe_model()).paths)
        with pytest.raises(ArenaFormatError):
            PathArena.from_buffer(image[: len(image) // 2])

    def test_decode_range_and_bounds_check(self):
        paths = symbolic_paths(geometric_program(), ExecutionLimits(max_fixpoint_depth=6)).paths
        arena = PathArena.from_buffer(encode_paths(paths))
        assert arena.decode_range(2, 5) == paths[2:5]
        with pytest.raises(IndexError):
            arena.decode_path(len(paths))


# ----------------------------------------------------------------------
# Transport equivalence
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def serial_baseline():
    """Serial bounds of the (single-path) observe model — the tee reference."""
    options = AnalysisOptions(max_fixpoint_depth=5, score_splits=8, workers=1, executor="serial")
    model = Model(simple_observe_model(), options)
    return model, model.bounds(_TARGETS)


@pytest.fixture(scope="module")
def geometric_baseline():
    """Serial bounds of a multi-path program — exercises real pool dispatch."""
    options = AnalysisOptions(max_fixpoint_depth=9, workers=1, executor="serial")
    model = Model(geometric_program(), options)
    return model, model.bounds(_TARGETS)


@pytest.mark.skipif(not shared_memory_available(), reason="no multiprocessing.shared_memory")
class TestArenaTransportEquivalence:
    @pytest.mark.parametrize("chunk_size", [None, 1, 3])
    def test_process_pool_bit_identical(self, geometric_baseline, chunk_size):
        model, serial = geometric_baseline
        options = model.options.with_updates(
            workers=2, executor="process", chunk_size=chunk_size, payload_transport="arena"
        )
        with Model(model.term, options) as parallel_model:
            assert_bits_equal(serial, parallel_model.bounds(_TARGETS))

    def test_arena_matches_pickle_transport(self, geometric_baseline):
        model, _ = geometric_baseline
        results = {}
        for transport in ("pickle", "arena"):
            options = model.options.with_updates(
                workers=2, executor="process", chunk_size=2, payload_transport=transport
            )
            with Model(model.term, options) as parallel_model:
                results[transport] = parallel_model.bounds(_TARGETS)
        assert_bits_equal(results["pickle"], results["arena"])

    def test_in_process_backends_ignore_transport(self, geometric_baseline):
        model, serial = geometric_baseline
        for kind in ("serial", "thread"):
            options = model.options.with_updates(
                workers=2, executor=kind, payload_transport="arena"
            )
            assert_bits_equal(serial, model.bounds(_TARGETS, options))

    def test_streamed_arena_bit_identical(self, geometric_baseline):
        model, serial = geometric_baseline
        options = model.options.with_updates(
            workers=2, executor="process", chunk_size=2, stream=True, payload_transport="arena"
        )
        with Model(model.term, options) as stream_model:
            assert_bits_equal(serial, stream_model.bounds(_TARGETS))

    def test_segment_reused_across_queries(self, geometric_baseline):
        model, serial = geometric_baseline
        options = model.options.with_updates(
            workers=2, executor="process", chunk_size=2, payload_transport="arena"
        )
        with Model(model.term, options) as parallel_model:
            parallel_model.bounds(_TARGETS)
            executor = next(iter(parallel_model._executors.values()))
            assert executor.arena_segments_created == 1
            assert_bits_equal(serial, parallel_model.bounds(_TARGETS))
            assert executor.arena_segments_created == 1  # cache hit, no re-encode


# ----------------------------------------------------------------------
# Segment lifecycle
# ----------------------------------------------------------------------


def _attach_raises(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    handle.close()
    return False


@pytest.mark.skipif(not shared_memory_available(), reason="no multiprocessing.shared_memory")
class TestSegmentLifecycle:
    def test_segments_unlinked_on_close(self):
        options = AnalysisOptions(
            max_fixpoint_depth=9, workers=2, executor="process",
            chunk_size=2, payload_transport="arena",
        )
        model = Model(geometric_program(), options)
        model.bounds(_TARGETS)
        executor = next(iter(model._executors.values()))
        names = executor.arena_segment_names()
        assert names, "arena dispatch published no segment"
        model.close()
        assert executor.arena_segment_names() == ()
        for name in names:
            assert _attach_raises(name), f"segment {name} leaked past close()"

    def test_stream_segments_unlinked_after_query(self, monkeypatch):
        from repro.analysis import parallel as parallel_module

        created = []
        real_create = parallel_module.create_arena_segment

        def recording_create(paths, intern=True):
            segment = real_create(paths, intern=intern)
            if segment is not None:
                created.append(segment)
            return segment

        monkeypatch.setattr(parallel_module, "create_arena_segment", recording_create)
        options = AnalysisOptions(
            max_fixpoint_depth=9, workers=2, executor="process",
            chunk_size=2, stream=True, payload_transport="arena",
        )
        with Model(geometric_program(), options) as model:
            model.bounds(_TARGETS)
        assert created, "streamed arena dispatch created no per-chunk segments"
        assert all(segment.closed for segment in created)
        for segment in created:
            assert _attach_raises(segment.name)

    def test_stream_segments_unlinked_on_path_explosion(self, monkeypatch):
        from repro.analysis import parallel as parallel_module

        created = []
        real_create = parallel_module.create_arena_segment

        def recording_create(paths, intern=True):
            segment = real_create(paths, intern=intern)
            if segment is not None:
                created.append(segment)
            return segment

        monkeypatch.setattr(parallel_module, "create_arena_segment", recording_create)
        options = AnalysisOptions(
            max_fixpoint_depth=12, max_paths=6, workers=2, executor="process",
            chunk_size=1, stream=True, payload_transport="arena",
        )
        with Model(geometric_program(), options) as model:
            with pytest.raises(PathExplosionError):
                model.bounds(_TARGETS)
        assert created, "the explosion fired before any chunk was dispatched"
        assert all(segment.closed for segment in created)
        for segment in created:
            assert _attach_raises(segment.name)

    def test_failed_segment_creation_degrades_once(self, monkeypatch, geometric_baseline):
        from repro.analysis import parallel as parallel_module

        model, serial = geometric_baseline
        calls = []

        def failing_publish(image, paths):
            calls.append(len(paths))
            return None  # e.g. exhausted /dev/shm

        def failing_create(paths, intern=True):
            calls.append(len(paths))
            return None

        # Batch dispatch publishes the compiled table's bytes; both the
        # image and the encode entry points must degrade identically.
        monkeypatch.setattr(parallel_module, "publish_arena_image", failing_publish)
        monkeypatch.setattr(parallel_module, "create_arena_segment", failing_create)
        options = model.options.with_updates(
            workers=2, executor="process", chunk_size=2, payload_transport="arena"
        )
        with Model(model.term, options) as parallel_model:
            assert_bits_equal(serial, parallel_model.bounds(_TARGETS))  # pickle fallback
            assert_bits_equal(serial, parallel_model.bounds(_TARGETS))
        # The first failure flips the executor to degraded: the second query
        # must not re-encode (and re-fail) the arena image.
        assert len(calls) == 1

    def test_executor_close_is_idempotent_with_arenas(self):
        executor = ParallelAnalysisExecutor(workers=2, kind="process")
        paths = symbolic_paths(simple_observe_model()).paths
        assert executor.prime_arena(paths)
        names = executor.arena_segment_names()
        executor.close()
        executor.close()
        for name in names:
            assert _attach_raises(name)


# ----------------------------------------------------------------------
# In-process backends never intern
# ----------------------------------------------------------------------


class TestInternSkip:
    @pytest.mark.parametrize("kind", ["serial", "thread"])
    def test_in_process_batch_never_interns(self, monkeypatch, kind):
        from repro.analysis import parallel as parallel_module

        def forbidden(*args, **kwargs):
            raise AssertionError("intern_paths called for an in-process backend")

        monkeypatch.setattr(parallel_module, "intern_paths", forbidden)
        options = AnalysisOptions(
            max_fixpoint_depth=5, score_splits=8, workers=2, executor=kind, chunk_size=2
        )
        model = Model(simple_observe_model(), options)
        model.bounds(_TARGETS)
        model.close()

    def test_serial_stream_never_interns(self, monkeypatch):
        from repro.analysis import parallel as parallel_module

        def forbidden(*args, **kwargs):
            raise AssertionError("intern_paths called for serial streaming")

        monkeypatch.setattr(parallel_module, "intern_paths", forbidden)
        options = AnalysisOptions(
            max_fixpoint_depth=5, score_splits=8, workers=1, executor="serial",
            chunk_size=2, stream=True, stream_cache_budget=None,
        )
        Model(simple_observe_model(), options).bounds(_TARGETS)

    def test_single_chunk_process_run_never_interns(self, monkeypatch):
        from repro.analysis import parallel as parallel_module

        def forbidden(*args, **kwargs):
            raise AssertionError("intern_paths called for an inline single-chunk run")

        monkeypatch.setattr(parallel_module, "intern_paths", forbidden)
        # One path -> one chunk -> inline run even under the process backend.
        options = AnalysisOptions(workers=2, executor="process")
        model = Model(b.mul(3.0, b.sample()), options)
        model.bounds([Interval(0.0, 1.0)])
        model.close()


# ----------------------------------------------------------------------
# Streamed-query cache tee
# ----------------------------------------------------------------------


class TestStreamCacheTee:
    def _options(self, **changes):
        base = AnalysisOptions(
            max_fixpoint_depth=5, score_splits=8, workers=1, executor="serial", stream=True
        )
        return base.with_updates(**changes) if changes else base

    def test_second_streamed_query_served_from_cache(self, serial_baseline):
        _, serial = serial_baseline
        model = Model(simple_observe_model(), self._options())
        first = model.bounds(_TARGETS)
        assert model.cache_info()["entries"] == 1
        assert model.compile_count == 0  # teed, not recompiled
        second = model.bounds(_TARGETS)
        assert model.cache_hits == 1
        assert_bits_equal(serial, first)
        assert_bits_equal(serial, second)

    def test_teed_execution_matches_batch_compile(self):
        model = Model(simple_observe_model(), self._options())
        model.bounds(_TARGETS)
        teed = model._compiled[model.options.execution_limits()].execution
        batch = symbolic_paths(model.term, model.options.execution_limits())
        assert teed.paths == batch.paths
        assert teed.truncated_paths == batch.truncated_paths
        assert teed.pruned_paths == batch.pruned_paths

    def test_budget_overflow_degrades_to_uncached_streaming(self, serial_baseline):
        _, serial = serial_baseline
        model = Model(simple_observe_model(), self._options(stream_cache_budget=1))
        bounds = model.bounds(_TARGETS)
        assert model.cache_info()["entries"] == 0
        assert_bits_equal(serial, bounds)

    def test_tee_disabled_by_none_budget(self, serial_baseline):
        _, serial = serial_baseline
        model = Model(simple_observe_model(), self._options(stream_cache_budget=None))
        bounds = model.bounds(_TARGETS)
        assert model.cache_info()["entries"] == 0
        assert_bits_equal(serial, bounds)

    def test_explosion_mid_stream_caches_nothing(self):
        options = self._options(max_fixpoint_depth=12, max_paths=6)
        model = Model(geometric_program(), options)
        with pytest.raises(PathExplosionError):
            model.bounds(_TARGETS)
        assert model.cache_info()["entries"] == 0

    @pytest.mark.skipif(not shared_memory_available(), reason="no multiprocessing.shared_memory")
    def test_tee_primes_arena_segment_on_pool(self, geometric_baseline):
        _, serial = geometric_baseline
        options = self._options(
            max_fixpoint_depth=9, score_splits=32, workers=2, executor="process",
            chunk_size=2, payload_transport="arena",
        )
        with Model(geometric_program(), options) as model:
            first = model.bounds(_TARGETS)
            assert model.cache_info()["entries"] == 1
            executor = next(iter(model._executors.values()))
            cached_paths = model._compiled[options.execution_limits()].execution.paths
            assert executor.arena_segment_names(), "tee did not prime the arena"
            created_before = executor.arena_segments_created
            second = model.bounds(_TARGETS)
            # The second (batch, cache-hit) query dispatches over the primed
            # segment without re-encoding.
            assert executor.arena_segments_created == created_before
            assert len(cached_paths) > 0
        assert_bits_equal(serial, first)
        assert_bits_equal(serial, second)


# ----------------------------------------------------------------------
# Knob plumbing
# ----------------------------------------------------------------------


class TestTransportKnobs:
    def test_default_transport_is_arena(self, monkeypatch):
        monkeypatch.delenv("REPRO_ANALYSIS_TRANSPORT", raising=False)
        assert AnalysisOptions().effective_transport == "arena"

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS_TRANSPORT", "pickle")
        assert AnalysisOptions().effective_transport == "pickle"
        monkeypatch.setenv("REPRO_ANALYSIS_TRANSPORT", "")
        assert AnalysisOptions().effective_transport == "arena"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="payload_transport"):
            AnalysisOptions(payload_transport="carrier-pigeon")

    @pytest.mark.parametrize("budget", [-1, True, 1.5])
    def test_bad_budget_rejected(self, budget):
        with pytest.raises(ValueError, match="stream_cache_budget"):
            AnalysisOptions(stream_cache_budget=budget)

    def test_zero_budget_disables_tee(self):
        assert not AnalysisOptions(stream_cache_budget=0).stream_cache_enabled
        assert not AnalysisOptions(stream_cache_budget=None).stream_cache_enabled
        assert AnalysisOptions().stream_cache_enabled

    def test_interner_tracks_arena_footprint(self):
        interner = PathInterner()
        paths = symbolic_paths(geometric_program(), ExecutionLimits(max_fixpoint_depth=6)).paths
        sizes = []
        for path in paths:
            interner.add(path)
            sizes.append(interner.approximate_arena_bytes())
        assert sizes == sorted(sizes)  # monotone in paths added
        assert len(interner) == len(paths)
        interner.clear()
        assert len(interner) == 0
