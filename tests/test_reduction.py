"""Tests for the concrete trace semantics (small-step and big-step)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributions import Normal, Uniform
from repro.lang import builder as b
from repro.lang.ast import Const, Sample
from repro.semantics import (
    NotTerminatedError,
    StuckError,
    replay,
    run,
    simulate,
    value_and_weight,
)
from repro.semantics.sampler import EvaluationError

from helpers import pedestrian_walk_fixpoint, simple_observe_model


class TestSmallStep:
    def test_constant_program(self):
        result = value_and_weight(Const(2.0), ())
        assert result.value == 2.0
        assert result.weight == 1.0

    def test_sample_consumes_trace(self):
        result = value_and_weight(b.mul(3.0, b.sample()), (0.5,))
        assert result.value == pytest.approx(1.5)

    def test_score_multiplies_weight(self):
        program = b.seq(b.score(0.3), b.seq(b.score(0.5), 7.0))
        result = value_and_weight(program, ())
        assert result.weight == pytest.approx(0.15)
        assert result.value == 7.0

    def test_negative_score_is_stuck(self):
        with pytest.raises(StuckError):
            value_and_weight(b.score(-1.0), ())

    def test_if_branches_on_nonpositive(self):
        assert value_and_weight(b.if_leq(0.0, 0.0, 1.0, 2.0), ()).value == 1.0
        assert value_and_weight(b.if_leq(1.0, 0.0, 1.0, 2.0), ()).value == 2.0

    def test_trace_must_be_consumed_exactly(self):
        with pytest.raises(NotTerminatedError):
            value_and_weight(Const(1.0), (0.3,))
        with pytest.raises(StuckError):
            value_and_weight(b.add(b.sample(), b.sample()), (0.3,))

    def test_trace_entries_must_be_unit(self):
        with pytest.raises(StuckError):
            value_and_weight(b.sample(), (1.5,))

    def test_nonuniform_sample_uses_quantile(self):
        program = Sample(Uniform(2.0, 4.0))
        result = value_and_weight(program, (0.25,))
        assert result.value == pytest.approx(2.5)

    def test_recursion_unfolds(self):
        countdown = b.fix(
            "f", "x", b.if_leq(b.var("x"), 0.0, b.var("x"), b.app(b.var("f"), b.sub(b.var("x"), 1.0)))
        )
        assert value_and_weight(b.app(countdown, 3.0), ()).value == 0.0

    def test_paper_example_2_1(self):
        """Example 2.1: the pedestrian on trace ⟨0.1, 0.2, 0.4, 0.7, 0.8⟩."""
        walk = pedestrian_walk_fixpoint()
        program = b.let(
            "start",
            b.mul(3.0, b.sample()),
            b.let(
                "distance",
                b.app(walk, b.var("start")),
                b.seq(b.observe_normal(1.1, 0.1, b.var("distance")), b.var("start")),
            ),
        )
        result = value_and_weight(program, (0.1, 0.2, 0.4, 0.7, 0.8))
        assert result.value == pytest.approx(0.3)
        assert result.weight == pytest.approx(Normal(1.1, 0.1).pdf(0.9))

    def test_run_returns_terminal_configuration(self):
        config = run(b.add(1.0, 2.0), ())
        assert isinstance(config.term, Const)
        assert config.term.value == 3.0


class TestBigStepAgreement:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.001, max_value=0.999), min_size=5, max_size=5))
    def test_small_step_and_replay_agree_on_observe_model(self, trace):
        program = simple_observe_model()
        small = value_and_weight(program, tuple(trace[:1]))
        big = replay(program, tuple(trace[:1]))
        assert small.value == pytest.approx(big.value)
        assert small.weight == pytest.approx(big.weight, rel=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**20))
    def test_simulate_then_replay_roundtrip(self, seed):
        program = simple_observe_model()
        rng = np.random.default_rng(seed)
        forward = simulate(program, rng)
        replayed = replay(program, forward.trace)
        assert replayed.value == pytest.approx(forward.value)
        assert replayed.log_weight == pytest.approx(forward.log_weight)

    def test_simulate_pedestrian_agrees_with_small_step(self, rng):
        from repro.models import pedestrian_bounded_program

        # The bounded variant guarantees finite runs (the unbounded walk has
        # infinite *expected* running time, so a test run could be arbitrarily
        # long); the reference interpreter is only exercised on short traces.
        program = pedestrian_bounded_program(max_distance=4.0)
        checked = 0
        while checked < 8:
            forward = simulate(program, rng)
            if len(forward.trace) > 25:
                continue
            reference = value_and_weight(program, forward.trace)
            assert reference.value == pytest.approx(forward.value)
            assert reference.weight == pytest.approx(forward.weight, rel=1e-9)
            checked += 1

    def test_replay_requires_exact_consumption(self):
        program = b.sample()
        with pytest.raises(Exception):
            replay(program, (0.5, 0.5))
        result = replay(program, (0.5, 0.5), require_exact=False)
        assert result.value == 0.5

    def test_zero_score_gives_zero_weight(self):
        program = b.seq(b.score(0.0), 1.0)
        result = replay(program, ())
        assert result.weight == 0.0
        assert result.log_weight == -math.inf

    def test_evaluation_error_on_non_function_application(self):
        program = b.app(Const(1.0), Const(2.0))
        with pytest.raises(EvaluationError):
            replay(program, ())

    def test_interval_literal_rejected_concretely(self):
        program = b.interval_const(0.0, 1.0)
        with pytest.raises(EvaluationError):
            replay(program, ())
