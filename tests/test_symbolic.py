"""Tests for symbolic values, linear forms and symbolic execution."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.intervals import Interval
from repro.lang import builder as b
from repro.symbolic import (
    ExecutionLimits,
    LinearForm,
    PathExplosionError,
    Relation,
    SConst,
    SPrim,
    SVar,
    SymConstraint,
    decompose_score,
    evaluate,
    evaluate_interval,
    evaluate_with_atoms,
    extract_linear,
    sample_variables,
    symbolic_paths,
    uses_variables_at_most_once,
)

from helpers import pedestrian_walk_fixpoint, geometric_program


def _linear_expr():
    # 3·α0 − α1 + 2
    return SPrim(
        "add",
        (
            SPrim("sub", (SPrim("mul", (SConst(Interval.point(3.0)), SVar(0))), SVar(1))),
            SConst(Interval.point(2.0)),
        ),
    )


class TestSymbolicValues:
    def test_concrete_evaluation(self):
        assert evaluate(_linear_expr(), [0.5, 1.0]) == pytest.approx(2.5)

    def test_concrete_evaluation_rejects_intervals(self):
        with pytest.raises(ValueError):
            evaluate(SConst(Interval(0.0, 1.0)), [])

    def test_interval_evaluation_sound(self):
        expr = _linear_expr()
        bounds = evaluate_interval(expr, [Interval(0.0, 1.0), Interval(0.0, 1.0)])
        rng = np.random.default_rng(0)
        for _ in range(100):
            point = rng.random(2)
            assert evaluate(expr, point) in bounds

    def test_sample_variables_and_single_use(self):
        expr = _linear_expr()
        assert sample_variables(expr) == {0, 1}
        assert uses_variables_at_most_once(expr)
        squared = SPrim("mul", (SVar(0), SVar(0)))
        assert not uses_variables_at_most_once(squared)

    def test_evaluate_with_atoms(self):
        from repro.symbolic import SAtom

        template = SPrim("normal_pdf", (SConst(Interval.point(0.0)), SConst(Interval.point(1.0)), SAtom(0)))
        bounds = evaluate_with_atoms(template, [Interval(-0.5, 0.5)])
        assert bounds.hi == pytest.approx(1.0 / math.sqrt(2 * math.pi))


class TestLinearForms:
    def test_extract_linear_on_linear_expression(self):
        form = extract_linear(_linear_expr())
        assert form is not None
        assert form.coefficient_dict == {0: 3.0, 1: -1.0}
        assert form.constant == Interval.point(2.0)

    def test_extract_linear_rejects_products_of_variables(self):
        assert extract_linear(SPrim("mul", (SVar(0), SVar(1)))) is None

    def test_extract_linear_scaling_and_division(self):
        expr = SPrim("div", (SPrim("mul", (SConst(Interval.point(2.0)), SVar(0))), SConst(Interval.point(4.0))))
        form = extract_linear(expr)
        assert form.coefficient_dict == {0: 0.5}

    def test_extract_linear_constant_folding_through_primitives(self):
        expr = SPrim("exp", (SConst(Interval.point(0.0)),))
        form = extract_linear(expr)
        assert form is not None and form.is_constant
        assert 1.0 in form.constant

    def test_linear_form_arithmetic(self):
        first = LinearForm.from_dict({0: 1.0, 1: 2.0}, Interval.point(1.0))
        second = LinearForm.from_dict({1: -2.0}, Interval.point(0.5))
        combined = first.add(second)
        assert combined.coefficient_dict == {0: 1.0}
        assert combined.constant == Interval.point(1.5)
        assert combined.scale(2.0).coefficient_dict == {0: 2.0}

    def test_linear_form_evaluation_matches_dense(self):
        form = LinearForm.from_dict({0: 2.0, 2: -1.0}, Interval.point(0.25))
        assert form.evaluate([1.0, 99.0, 3.0]) == pytest.approx(-0.75)
        assert form.as_dense(3) == [2.0, 0.0, -1.0]
        with pytest.raises(ValueError):
            form.as_dense(2)

    def test_decompose_score_linear_atom(self):
        expr = SPrim(
            "normal_pdf",
            (SConst(Interval.point(1.1)), SConst(Interval.point(0.1)), SPrim("add", (SVar(0), SVar(1)))),
        )
        decomposition = decompose_score(expr)
        assert len(decomposition.atoms) == 1
        assert decomposition.atoms[0].coefficient_dict == {0: 1.0, 1: 1.0}

    def test_decompose_score_shares_atoms(self):
        atoms: list[LinearForm] = []
        expr = SPrim("add", (SVar(0), SVar(1)))
        decompose_score(SPrim("exp", (expr,)), atoms)
        decompose_score(SPrim("log", (expr,)), atoms)
        assert len(atoms) == 1

    def test_decompose_whole_linear_expression(self):
        decomposition = decompose_score(_linear_expr())
        assert decomposition.is_linear


class TestSymbolicExecution:
    def test_straight_line_program_single_path(self):
        program = b.add(b.mul(2.0, b.sample()), b.sample())
        result = symbolic_paths(program)
        assert len(result.paths) == 1
        path = result.paths[0]
        assert path.variable_count == 2
        assert path.is_linear
        assert not path.truncated

    def test_branching_produces_two_paths(self):
        program = b.if_leq(b.sample(), 0.5, 1.0, 2.0)
        result = symbolic_paths(program)
        assert len(result.paths) == 2
        relations = {path.constraints[0].relation for path in result.paths}
        assert relations == {Relation.LEQ, Relation.GT}

    def test_constant_guard_folds(self):
        program = b.if_leq(1.0, 2.0, b.sample(), b.score(0.0))
        result = symbolic_paths(program)
        assert len(result.paths) == 1
        assert not result.paths[0].constraints

    def test_zero_score_path_pruned(self):
        program = b.if_leq(b.sample(), 0.5, b.seq(b.score(0.0), 1.0), 2.0)
        result = symbolic_paths(program)
        assert len(result.paths) == 1
        assert result.pruned_paths == 1

    def test_score_recorded(self):
        program = b.seq(b.observe_normal(0.0, 1.0, b.sample()), 1.0)
        result = symbolic_paths(program)
        assert len(result.paths[0].scores) == 1

    def test_geometric_program_paths(self):
        result = symbolic_paths(geometric_program(0.5), ExecutionLimits(max_fixpoint_depth=4))
        values = set()
        for path in result.paths:
            if not path.truncated:
                assert isinstance(path.result, SConst)
                values.add(path.result.interval.lo)
        assert {0.0, 1.0, 2.0, 3.0}.issubset(values)
        assert result.truncated_paths >= 1

    def test_pedestrian_paths_match_paper_structure(self):
        """Example 6.1/6.2: linear constraints, normal-pdf scores, approxFix summaries."""
        walk = pedestrian_walk_fixpoint()
        program = b.let(
            "start",
            b.mul(3.0, b.sample()),
            b.let(
                "distance",
                b.app(walk, b.var("start")),
                b.seq(b.observe_normal(1.1, 0.1, b.var("distance")), b.var("start")),
            ),
        )
        result = symbolic_paths(program, ExecutionLimits(max_fixpoint_depth=3))
        assert result.truncated_paths > 0
        for path in result.paths:
            assert path.is_linear
            assert path.satisfies_single_use_assumption()
            assert len(path.scores) == 1

    def test_path_explosion_raises(self):
        program = geometric_program(0.5)
        with pytest.raises(PathExplosionError):
            symbolic_paths(program, ExecutionLimits(max_fixpoint_depth=30, max_paths=5))

    def test_single_use_assumption_violated_detected(self):
        program = b.let("s", b.sample(), b.if_leq(b.sub(b.var("s"), b.var("s")), 0.0, 0.0, 1.0))
        result = symbolic_paths(program)
        assert any(not path.satisfies_single_use_assumption() for path in result.paths)

    def test_monte_carlo_cross_check_of_paths(self, rng):
        """Theorem 6.1 sanity check: summed path estimates match a direct estimate."""
        from repro.semantics import simulate

        program = b.let(
            "u",
            b.sample(),
            b.seq(
                b.observe_normal(0.5, 0.2, b.var("u")),
                b.if_leq(b.var("u"), 0.4, b.mul(2.0, b.var("u")), b.var("u")),
            ),
        )
        result = symbolic_paths(program)
        target = Interval(0.0, 0.8)
        path_total = sum(
            path.monte_carlo_estimate(target, 4000, rng) for path in result.paths
        )
        direct = 0.0
        samples = 4000
        for _ in range(samples):
            run = simulate(program, rng)
            if run.value in target:
                direct += run.weight
        direct /= samples
        assert path_total == pytest.approx(direct, rel=0.2)


class TestSymbolicPathAPI:
    def test_constraint_relations(self):
        constraint = SymConstraint(SVar(0), Relation.LEQ)
        assert constraint.holds(-0.1) and constraint.holds(0.0) and not constraint.holds(0.1)
        assert constraint.holds_forall(Interval(-1.0, 0.0))
        assert not constraint.holds_forall(Interval(-1.0, 0.5))
        assert constraint.holds_exists(Interval(-1.0, 0.5))
        assert not constraint.holds_exists(Interval(0.5, 1.0))

    def test_invalid_relation_rejected(self):
        with pytest.raises(ValueError):
            SymConstraint(SVar(0), "bogus")

    def test_describe_and_domains(self):
        program = b.add(b.sample(), b.sample())
        path = symbolic_paths(program).paths[0]
        assert "n=2" in path.describe()
        assert path.variable_domains() == [Interval(0.0, 1.0), Interval(0.0, 1.0)]
        assert path.result_interval() == Interval(0.0, 2.0)
