"""Tests for the s-expression parser and the simple type system."""

from __future__ import annotations

import pytest

from repro.distributions import Normal
from repro.lang import (
    App,
    Const,
    Fix,
    If,
    Lam,
    ParseError,
    Prim,
    Sample,
    Score,
    TypeError_,
    Var,
    infer_types,
    parse,
    type_of_program,
)
from repro.lang import builder as b
from repro.lang.types import REAL, FunType, RealType


class TestParser:
    def test_parse_number_and_symbol(self):
        assert parse("1.5") == Const(1.5)
        assert parse("x") == Var("x")

    def test_parse_arithmetic(self):
        term = parse("(+ 1 (* 2 3))")
        assert isinstance(term, Prim) and term.op == "add"
        assert isinstance(term.args[1], Prim) and term.args[1].op == "mul"

    def test_parse_let_and_lambda(self):
        term = parse("(let x (sample) (lam y (+ x y)))")
        assert isinstance(term, App)
        assert isinstance(term.func, Lam)

    def test_parse_fix_if_score(self):
        term = parse("(fix f x (if x 0 (score (f (- x 1)))))")
        assert isinstance(term, Fix)
        assert isinstance(term.body, If)

    def test_parse_sample_with_distribution(self):
        term = parse("(sample normal 0 1)")
        assert isinstance(term, Sample)
        assert term.dist == Normal(0.0, 1.0)

    def test_parse_observe(self):
        term = parse("(observe normal 1.1 0.1 x)")
        assert isinstance(term, Score)
        assert isinstance(term.arg, Prim) and term.arg.op == "normal_pdf"

    def test_parse_choice_and_interval(self):
        term = parse("(choice 0.5 1 0)")
        assert isinstance(term, If)
        interval = parse("(interval 0 1)")
        from repro.lang import IntervalConst

        assert isinstance(interval, IntervalConst)

    def test_parse_application_fallback(self):
        term = parse("(f 1 2)")
        assert isinstance(term, App)
        assert isinstance(term.func, App)
        assert term.func.func == Var("f")

    def test_parse_roundtrip_evaluates(self):
        """A parsed program runs in the concrete semantics."""
        from repro.semantics import value_and_weight

        program = parse("(let x (sample) (+ x 1))")
        result = value_and_weight(program, (0.25,))
        assert result.value == pytest.approx(1.25)

    @pytest.mark.parametrize(
        "source",
        ["", "(let x)", "(", ")", "(sample wrongdist 1)", "(if 1 2)", "(interval 1)", "(let 3 4 5)"],
    )
    def test_parse_errors(self, source):
        with pytest.raises(ParseError):
            parse(source)

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse("(+ 1 2) extra")


class TestSimpleTypes:
    def test_ground_program(self):
        assert type_of_program(b.add(b.sample(), 1.0)) == REAL

    def test_lambda_type(self):
        term = b.lam("x", b.add(b.var("x"), 1.0))
        assert type_of_program(term) == FunType(REAL, REAL)

    def test_fix_type(self):
        term = b.fix("f", "x", b.if_leq(b.var("x"), 0.0, 0.0, b.app(b.var("f"), b.sub(b.var("x"), 1.0))))
        assert type_of_program(term) == FunType(REAL, REAL)

    def test_higher_order(self):
        term = b.lam("f", b.app(b.var("f"), 1.0))
        inferred = type_of_program(term)
        assert inferred == FunType(FunType(REAL, REAL), REAL)

    def test_curried_fix(self):
        term = b.fix("f", "x", b.lam("y", b.add(b.var("x"), b.var("y"))))
        assert type_of_program(term) == FunType(REAL, FunType(REAL, REAL))

    def test_annotations_track_parameters(self):
        term = b.lam("x", b.score(b.var("x")))
        annotations = infer_types(term)
        assert annotations.param_type_at(()) == REAL

    def test_unbound_variable_rejected(self):
        with pytest.raises(TypeError_):
            infer_types(b.var("ghost"))

    def test_self_application_rejected(self):
        term = b.lam("x", b.app(b.var("x"), b.var("x")))
        with pytest.raises(TypeError_):
            infer_types(term)

    def test_branch_type_mismatch_rejected(self):
        term = If(Const(0.0), Lam("x", Var("x")), Const(1.0))
        with pytest.raises(TypeError_):
            infer_types(term)

    def test_score_requires_ground_argument(self):
        term = Score(Lam("x", Var("x")))
        with pytest.raises(TypeError_):
            infer_types(term)

    def test_environment_for_open_terms(self):
        term = b.add(b.var("x"), 1.0)
        annotations = infer_types(term, {"x": REAL})
        assert annotations.root_type == REAL

    def test_pedestrian_program_is_typable(self):
        from repro.models import pedestrian_program

        assert type_of_program(pedestrian_program()) == REAL

    def test_all_benchmark_models_typable(self):
        from repro.models import discrete_suite, probest_suite, recursive_suite

        for benchmark in probest_suite():
            assert type_of_program(benchmark.program) == REAL
        for benchmark in discrete_suite():
            assert type_of_program(benchmark.program) == REAL
        for benchmark in recursive_suite():
            assert type_of_program(benchmark.program) == REAL
