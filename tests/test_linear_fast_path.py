"""The linear analyzer's batched fast path, pinned against its scalar history.

The PR that introduced the batched LP kernels, the cross-path
:class:`~repro.analysis.linear_analyzer.GeometryCache` and the whole-array
density liftings claims every one of them is a pure reorganisation: the
floats cannot move.  This suite makes each claim a property:

* :func:`repro.analysis.linear_analyzer._integrate` (batched sweep, cached
  volumes, compiled templates) is bit-identical to
  :func:`~repro.analysis.linear_analyzer._integrate_reference`, the
  pre-batching per-combination loop kept as the oracle;
* the prepared HiGHS kernel returns the exact floats of the
  ``scipy.optimize.linprog`` wrapper it replaces;
* the ``uniform_pdf`` / ``beta_pdf`` array liftings agree cell by cell with
  the generic per-Interval lifting (including the agreement on *when* to
  abandon the sweep);
* compiled template programs evaluate to the same arrays as the tree-walking
  evaluator;
* end-to-end bounds are invariant under chunk size, executor backend and
  payload transport — the observable consequence of the geometry cache's
  exact-bytes keying (a hit returns the identical float64s a fresh
  computation would, so partitioning cannot matter).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import AnalysisOptions, Model, analyze_path_linear
from repro.analysis.linear_analyzer import (
    GeometryCache,
    _integrate,
    _integrate_reference,
    linear_analysis_applicable,
)
from repro.analysis.vectorize import (
    ScalarFallback,
    TableProgramEvaluator,
    _beta_pdf_cells,
    _uniform_pdf_cells,
    checked_cells,
    compile_expr_roots,
)
from repro.intervals import Interval, get_primitive
from repro.models import pedestrian_program
from repro.polytope import Polytope, kernel_available
from repro.symbolic import symbolic_paths
from repro.symbolic.execute import ExecutionLimits
from repro.symbolic.linear import decompose_score
from repro.symbolic.value import SConst, SPrim, SVar

TARGETS = (Interval(0.0, 1.0), Interval.reals())


def _point(value: float) -> SConst:
    return SConst(Interval.point(value))


def _linear01() -> SPrim:
    """``α₀ + 2·α₁`` — a two-variable linear argument for score primitives."""
    return SPrim("add", (SVar(0), SPrim("mul", (_point(2.0), SVar(1)))))


# A small family of score expressions over the two polytope variables; each
# exercises a different template shape (pdf primitives over a linear atom, a
# bare linear score, a product of two scores).
def _score_exprs(mu: float, sigma: float, width: float):
    return [
        [SPrim("normal_pdf", (_point(mu), _point(sigma), _linear01()))],
        [SPrim("uniform_pdf", (_point(0.0), _point(width), SPrim("sub", (SVar(0), SVar(1)))))],
        [SPrim("beta_pdf", (_point(sigma), _point(width), SVar(0)))],
        [SPrim("add", (SVar(0), SVar(1)))],
        [
            SPrim("normal_pdf", (_point(mu), _point(sigma), SVar(0))),
            SPrim("uniform_pdf", (_point(0.0), _point(width), SVar(1))),
        ],
    ]


class TestIntegrateMatchesReference:
    @settings(max_examples=40, deadline=None)
    @given(
        shape=st.integers(min_value=0, max_value=4),
        mu=st.floats(min_value=-1.0, max_value=1.0),
        sigma=st.floats(min_value=0.3, max_value=2.0),
        width=st.floats(min_value=0.5, max_value=2.0),
        cut=st.floats(min_value=0.3, max_value=1.8),
        splits=st.integers(min_value=1, max_value=5),
    )
    def test_bit_identical(self, shape, mu, sigma, width, cut, splits):
        polytope = Polytope.from_box([Interval(0.0, 1.0)] * 2).add_constraints(
            [[1.0, 1.0]], [cut]
        )
        atoms = []
        templates = [
            decompose_score(expr, atoms)
            for expr in _score_exprs(mu, sigma, width)[shape]
        ]
        options = AnalysisOptions(score_splits=splits, max_score_combinations=64)
        cache = GeometryCache()
        for is_lower in (True, False):
            reference = _integrate_reference(
                polytope, templates, list(atoms), 1.0, options, is_lower
            )
            batched = _integrate(
                polytope, templates, list(atoms), 1.0, options, cache, is_lower
            )
            assert batched == reference or (math.isnan(batched) and math.isnan(reference))
            # A warm cache must reproduce the same float exactly — hits return
            # the identical float64s a fresh computation would.
            warm = _integrate(
                polytope, templates, list(atoms), 1.0, options, cache, is_lower
            )
            assert warm == batched or (math.isnan(warm) and math.isnan(batched))

    def test_scalar_fallback_route_matches(self):
        # vectorized_scores=False forces the scalar per-combination weights
        # inside _integrate; the skips differ but the floats may not.
        polytope = Polytope.from_box([Interval(0.0, 1.0)] * 2)
        atoms = []
        templates = [decompose_score(_score_exprs(0.0, 1.0, 1.0)[0][0], atoms)]
        for vectorized in (True, False):
            options = AnalysisOptions(score_splits=4, vectorized_scores=vectorized)
            for is_lower in (True, False):
                assert _integrate(
                    polytope, templates, list(atoms), 1.0, options, GeometryCache(), is_lower
                ) == _integrate_reference(
                    polytope, templates, list(atoms), 1.0, options, is_lower
                )


@pytest.mark.skipif(not kernel_available(), reason="direct HiGHS kernel unavailable")
class TestPreparedKernelMatchesLinprog:
    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        dimension=st.integers(min_value=1, max_value=4),
    )
    def test_bound_linear_differential(self, data, dimension):
        from scipy.optimize import linprog

        box = Polytope.from_box([Interval(0.0, 1.0)] * dimension)
        row = [
            data.draw(st.floats(min_value=-3.0, max_value=3.0))
            for _ in range(dimension)
        ]
        rhs = data.draw(st.floats(min_value=-0.5, max_value=3.0))
        polytope = box.add_constraints([row], [rhs]) if any(row) else box
        objective = np.array(
            [data.draw(st.floats(min_value=-2.0, max_value=2.0)) for _ in range(dimension)]
        )
        bound = polytope.bound_linear(objective)
        values = []
        for sign in (1.0, -1.0):
            result = linprog(
                sign * objective,
                A_ub=polytope.a,
                b_ub=polytope.b,
                bounds=[(None, None)] * dimension,
                method="highs",
            )
            values.append(None if result.status == 2 or not result.success else float(sign * result.fun))
        if values[0] is None or values[1] is None:
            assert bound is None
        else:
            lo, hi = sorted(values)
            assert bound is not None
            assert (bound.lo, bound.hi) == (lo, hi)


# -- density liftings ---------------------------------------------------

def _cells_reference(op, args, count):
    """The generic per-cell lifting (``evaluate_cells``' fallback), or
    ``None`` when it abandons the sweep."""
    primitive = get_primitive(op)
    out_lo = np.empty(count)
    out_hi = np.empty(count)
    for cell in range(count):
        try:
            intervals = [
                Interval(float(alo[cell]), float(ahi[cell])) for alo, ahi in args
            ]
            value = primitive.apply_interval(*intervals)
        except ValueError:
            return None
        if value.is_empty:
            return None
        out_lo[cell] = value.lo
        out_hi[cell] = value.hi
    return out_lo, out_hi


def _lifted(kernel, args, count):
    try:
        return kernel(args, count)
    except ScalarFallback:
        return None


_ENDPOINT = st.floats(min_value=-4.0, max_value=4.0).map(lambda v: round(v, 3))


@st.composite
def _interval_column(draw, count):
    lo = np.empty(count)
    hi = np.empty(count)
    for cell in range(count):
        a = draw(_ENDPOINT)
        b = draw(st.one_of(st.just(a), _ENDPOINT))
        lo[cell], hi[cell] = min(a, b), max(a, b)
    return lo, hi


class TestDensityLiftings:
    # The array kernels must reproduce the generic per-Interval lifting cell
    # by cell on every *non-empty* argument grid (empty cells cannot occur in
    # a score sweep — atom chunks and constants are never empty — and carry
    # their own pinned convention below).

    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), count=st.integers(min_value=1, max_value=6))
    def test_uniform_pdf_cells(self, data, count):
        args = [data.draw(_interval_column(count)) for _ in range(3)]
        lifted = _lifted(_uniform_pdf_cells, args, count)
        reference = _cells_reference("uniform_pdf", args, count)
        if lifted is None:
            # The sweep may abandon conservatively; the analyzer then runs
            # the scalar loop, so no float can be wrong — nothing to check.
            return
        assert reference is not None, "lifting produced values where the scalar loop aborts"
        assert np.array_equal(lifted[0], reference[0])
        assert np.array_equal(lifted[1], reference[1])

    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), count=st.integers(min_value=1, max_value=6))
    def test_beta_pdf_cells(self, data, count):
        point_params = data.draw(st.booleans())
        args = [data.draw(_interval_column(count)) for _ in range(2)]
        if point_params:
            args = [(lo, lo.copy()) for lo, _ in args]
        args.append(data.draw(_interval_column(count)))
        lifted = _lifted(_beta_pdf_cells, args, count)
        reference = _cells_reference("beta_pdf", args, count)
        if lifted is None:
            return
        assert reference is not None, "lifting produced values where the scalar loop aborts"
        assert np.array_equal(lifted[0], reference[0])
        assert np.array_equal(lifted[1], reference[1])

    def test_empty_argument_convention(self):
        # An empty argument (the (inf, -inf) representation) marks a cell the
        # analyzer's scalar route would collapse to the point 0 via the
        # ``meet([0, ∞))``-then-empty check; the kernels follow the
        # ``_normal_pdf_cells`` precedent and emit exactly that point without
        # abandoning the sweep.
        empty = (np.array([math.inf]), np.array([-math.inf]))
        unit = (np.array([0.0]), np.array([1.0]))
        lo, hi = _uniform_pdf_cells([empty, unit, unit], 1)
        assert lo[0] == 0.0 and hi[0] == 0.0


class TestCompiledTemplates:
    @settings(max_examples=30, deadline=None)
    @given(
        shape=st.integers(min_value=0, max_value=4),
        mu=st.floats(min_value=-1.0, max_value=1.0),
        sigma=st.floats(min_value=0.3, max_value=2.0),
        width=st.floats(min_value=0.5, max_value=2.0),
        count=st.integers(min_value=2, max_value=9),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_program_matches_tree_walk(self, shape, mu, sigma, width, count, seed):
        rng = np.random.default_rng(seed)
        atoms = []
        templates = [
            decompose_score(expr, atoms)
            for expr in _score_exprs(mu, sigma, width)[shape]
        ]
        roots = [decomposition.template for decomposition in templates]
        try:
            program, positions = compile_expr_roots(roots)
        except ScalarFallback:
            return
        lo = rng.uniform(-2.0, 2.0, size=(count, max(1, len(atoms))))
        hi = lo + rng.uniform(0.0, 1.0, size=lo.shape)

        def atom_leaf(leaf):
            return lo[:, leaf.index], hi[:, leaf.index]

        evaluator = TableProgramEvaluator(
            program, count, atom_leaf=lambda index: (lo[:, index], hi[:, index])
        )
        for root, position in zip(roots, positions):
            try:
                want = checked_cells(root, count, atom_leaf=atom_leaf)
            except ScalarFallback:
                with pytest.raises(ScalarFallback):
                    evaluator.eval_to(position)
                continue
            got = evaluator.eval_to(position)
            assert np.array_equal(got[0], want[0])
            assert np.array_equal(got[1], want[1])


class TestGeometryCacheSharing:
    def test_shared_cache_never_moves_a_bound(self):
        limits = ExecutionLimits(max_fixpoint_depth=3)
        paths = [
            path
            for path in symbolic_paths(pedestrian_program(), limits).paths
            if linear_analysis_applicable(path)
        ]
        assert paths, "pedestrian workload lost its linear paths"
        options = AnalysisOptions(score_splits=4)
        targets = list(TARGETS)
        fresh = [analyze_path_linear(path, targets, options) for path in paths]
        shared = GeometryCache()
        warm = [analyze_path_linear(path, targets, options, shared) for path in paths]
        assert warm == fresh
        stats = shared.stats()
        assert stats["volume_hits"] > 0, "cross-path sharing never hit"
        # A second pass over the same paths is fully warm and still identical.
        again = [analyze_path_linear(path, targets, options, shared) for path in paths]
        assert again == fresh

    def test_distinct_polytopes_never_collide(self):
        # The rounding-key regression: two polytopes whose H-representations
        # agree to 12 decimals but not exactly must get distinct volumes.
        cache = GeometryCache()
        box = Polytope.from_box([Interval(0.0, 1.0)] * 2)
        nudged = Polytope.from_box([Interval(0.0, 1.0 + 1e-13), Interval(0.0, 1.0)])
        assert box.cache_key() != nudged.cache_key()
        cache.volume(box)
        cache.volume(nudged)
        stats = cache.stats()
        assert stats["volume_misses"] == 2 and stats["unique_volumes"] == 2
        # Exact re-lookup of the first polytope is a hit — and returns the
        # very same Interval object it stored.
        assert cache.volume(box) is cache.volumes[box.cache_key()]
        assert cache.stats()["volume_hits"] == 1


class TestBoundsInvariance:
    @pytest.mark.parametrize("chunk_size", [2, 8])
    @pytest.mark.parametrize(
        "executor,transport",
        [("serial", None), ("thread", None), ("process", "arena"), ("process", "pickle")],
    )
    def test_chunking_backend_transport(self, chunk_size, executor, transport):
        options = AnalysisOptions(
            max_fixpoint_depth=3,
            score_splits=4,
            workers=1 if executor == "serial" else 2,
            executor=executor,
            chunk_size=chunk_size,
            payload_transport=transport,
        )
        with Model(pedestrian_program(), options) as model:
            bounds = model.bounds(list(TARGETS))
        key = [(b.lower, b.upper) for b in bounds]
        baseline = getattr(type(self), "_baseline", None)
        if baseline is None:
            type(self)._baseline = key
        else:
            assert key == baseline, (
                f"bounds moved under chunk_size={chunk_size}, "
                f"executor={executor}, transport={transport}"
            )
