"""End-to-end tests of the bounds-as-a-service tier.

Covers the four layers of :mod:`repro.service`:

* the frame protocol and its exact float round-trip,
* the canonical program hash (term fingerprint + execution limits),
* the TCP work queue behind ``AnalysisOptions(executor="socket")`` —
  bit-identical bounds, worker-kill requeue, job timeout and bounded
  retry exhaustion,
* the asyncio bounds server — concurrent clients, shared program cache,
  streamed anytime partial bounds.

All network tests bind loopback ephemeral ports and spawn their worker
subprocesses with the current interpreter, so they run anywhere the
tier-1 suite runs.
"""

from __future__ import annotations

import math
import signal
import socket
import threading
import time

import pytest

from helpers import simple_observe_model
from repro import intervals
from repro.analysis.config import AnalysisOptions, parse_endpoint
from repro.analysis.engine import DenotationBounds
from repro.analysis.model import Model, program_hash
from repro.lang import parse
from repro.symbolic import ExecutionLimits, fingerprint_term
from repro.service import (
    JobRetriesExhausted,
    QueueClosed,
    ServiceClient,
    ServiceError,
    WorkerLost,
    WorkQueueServer,
    serve_in_background,
)
from repro.service.protocol import (
    bounds_from_wire,
    bounds_to_wire,
    hash_bytes,
    recv_frame,
    send_frame,
)

#: A two-branch model with enough paths to chunk (score keeps it weighted).
BRANCHY_SRC = """
(let x (sample uniform 0 1)
  (let y (sample uniform 0 1)
    (if (- x y)
        (let z (score (+ 0.5 x)) (+ x y))
        (let z (score (- 1.5 x)) (* x y)))))
"""

TARGETS = (intervals.Interval(0.0, 0.5), intervals.Interval(0.5, 1.0))


def as_pairs(bounds):
    return [(entry.lower, entry.upper) for entry in bounds]


@pytest.fixture(scope="module")
def serial_bounds():
    model = Model(parse(BRANCHY_SRC))
    try:
        return as_pairs(model.bounds(TARGETS, AnalysisOptions()))
    finally:
        model.close()


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_frame_round_trip(self):
        parent, child = socket.socketpair()
        try:
            blob = bytes(range(256)) * 3
            send_frame(parent, {"type": "job", "x": 1.5}, blob)
            header, received = recv_frame(child)
            assert header == {"type": "job", "x": 1.5}
            assert received == blob
        finally:
            parent.close()
            child.close()

    def test_bounds_wire_round_trip_is_exact(self):
        original = [
            DenotationBounds(
                target=intervals.Interval(0.1, 0.30000000000000004),
                lower=0.1365661622288767,
                upper=0.22933959973163995,
            ),
            DenotationBounds(
                target=intervals.Interval(-math.inf, math.inf),
                lower=0.0,
                upper=math.inf,
            ),
        ]
        import json

        decoded = bounds_from_wire(json.loads(json.dumps(bounds_to_wire(original))))
        for before, after in zip(original, decoded):
            assert after.lower == before.lower  # bit-identical, not approx
            assert after.upper == before.upper
            assert after.target == before.target

    def test_hash_bytes_is_content_addressed(self):
        assert hash_bytes(b"abc") == hash_bytes(b"abc")
        assert hash_bytes(b"abc") != hash_bytes(b"abd")

    def test_parse_endpoint(self):
        assert parse_endpoint("127.0.0.1:0") == ("127.0.0.1", 0)
        with pytest.raises(ValueError):
            parse_endpoint("no-port")
        with pytest.raises(ValueError):
            parse_endpoint("host:70000")


# ---------------------------------------------------------------------------
# Program hash
# ---------------------------------------------------------------------------

class TestProgramHash:
    def test_fingerprint_ignores_spelling(self):
        one = parse(BRANCHY_SRC)
        two = parse("   " + BRANCHY_SRC.replace("\n", "  "))
        assert fingerprint_term(one) == fingerprint_term(two)

    def test_fingerprint_distinguishes_constants(self):
        base = parse("(+ (sample uniform 0 1) 0.1)")
        other = parse("(+ (sample uniform 0 1) 0.2)")
        assert fingerprint_term(base) != fingerprint_term(other)

    def test_fingerprint_distinguishes_structure(self):
        assert fingerprint_term(parse("(+ 1 2)")) != fingerprint_term(parse("(- 1 2)"))
        assert fingerprint_term(parse("(lam x x)")) != fingerprint_term(parse("(lam y y)"))

    def test_program_hash_includes_limits(self):
        term = simple_observe_model()
        assert program_hash(term) == program_hash(term, ExecutionLimits())
        assert program_hash(term, ExecutionLimits(max_fixpoint_depth=3)) != program_hash(term)

    def test_compiled_program_hash_property(self):
        model = Model(simple_observe_model())
        try:
            compiled = model.compile()
            assert compiled.program_hash == program_hash(
                simple_observe_model(), compiled.limits
            )
        finally:
            model.close()


# ---------------------------------------------------------------------------
# Work queue
# ---------------------------------------------------------------------------

class TestWorkQueue:
    @pytest.mark.slow
    def test_sleep_jobs_complete(self):
        with WorkQueueServer() as queue:
            queue.spawn_local_workers(2)
            assert queue.wait_for_workers(2, timeout=30)
            futures = [queue.submit_sleep(0.02) for _ in range(6)]
            for future in futures:
                assert future.result(timeout=30) is None
            stats = queue.stats()
            assert stats["completed"] == 6
            assert stats["failed"] == 0

    @pytest.mark.slow
    def test_timeout_retries_then_exhausts(self):
        with WorkQueueServer() as queue:
            queue.spawn_local_workers(1)
            assert queue.wait_for_workers(1, timeout=30)
            future = queue.submit_sleep(1.0, timeout=0.2, retries=1)
            with pytest.raises(JobRetriesExhausted, match="2 attempts") as excinfo:
                future.result(timeout=30)
            # Typed taxonomy: retry exhaustion is an infrastructure loss,
            # so callers can branch on the WorkerLost base class.
            assert isinstance(excinfo.value, WorkerLost)
            assert queue.stats()["requeued"] == 1
            assert queue.stats()["failed"] == 1

    @pytest.mark.slow
    def test_worker_kill_requeues_to_surviving_worker(self):
        with WorkQueueServer() as queue:
            queue.spawn_local_workers(2)
            assert queue.wait_for_workers(2, timeout=30)
            # Two long jobs occupy both workers; two short ones queue behind.
            futures = [queue.submit_sleep(0.5) for _ in range(2)]
            futures += [queue.submit_sleep(0.01) for _ in range(2)]
            deadline = time.monotonic() + 10
            while queue.stats()["running"] < 2 and time.monotonic() < deadline:
                time.sleep(0.005)
            victim = queue._spawned[0]
            victim.send_signal(signal.SIGKILL)
            # Every job still completes: the killed worker's in-flight job is
            # requeued and the survivor drains the queue.
            for future in futures:
                assert future.result(timeout=30) is None
            stats = queue.stats()
            assert stats["completed"] == 4
            assert stats["requeued"] >= 1
            assert stats["failed"] == 0

    def test_close_fails_pending_jobs(self):
        queue = WorkQueueServer()  # no workers at all
        future = queue.submit_sleep(0.01)
        queue.close()
        with pytest.raises(QueueClosed):
            future.result(timeout=5)
        with pytest.raises(QueueClosed):
            queue.submit_sleep(0.01)

    def test_resources_must_be_registered(self):
        with WorkQueueServer() as queue:
            with pytest.raises(KeyError):
                queue.submit_chunk(
                    index=0, table="missing", start=0, stop=1, context="missing"
                )


# ---------------------------------------------------------------------------
# Socket executor
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestSocketExecutor:
    def test_batch_bounds_bit_identical_to_serial(self, serial_bounds):
        model = Model(parse(BRANCHY_SRC))
        try:
            options = AnalysisOptions(executor="socket", workers=2, chunk_size=1)
            assert as_pairs(model.bounds(TARGETS, options)) == serial_bounds
            executor = model._executors[options.executor_key()]
            first_resources = executor._queue.stats()["resources"]
            if not options.refine_enabled:
                # One table + one context (refinement mode registers one
                # extra content-addressed context per refinement level).
                assert first_resources == 2
            # Second query reuses every content-addressed resource.
            assert as_pairs(model.bounds(TARGETS, options)) == serial_bounds
            stats = executor._queue.stats()
            assert stats["failed"] == 0
            assert stats["resources"] == first_resources
        finally:
            model.close()

    def test_streamed_bounds_and_anytime_partial(self, serial_bounds):
        model = Model(parse(BRANCHY_SRC))
        try:
            options = AnalysisOptions(
                executor="socket", workers=2, chunk_size=1, stream=True,
                stream_cache_budget=None,
            )
            partials = []
            bounds = model.bounds(
                TARGETS, options,
                progress=lambda partial, done: partials.append((done, as_pairs(partial))),
            )
            assert as_pairs(bounds) == serial_bounds
            if AnalysisOptions().refine_enabled:
                # Refinement mode adds one partial per refinement round on
                # top of the first-chunk partial.
                assert len(partials) >= 1
            else:
                assert len(partials) == 1  # the anytime hook fires exactly once
            done, partial = partials[0]
            assert 1 <= done <= 2
            for (lower, _upper), (full_lower, _full_upper) in zip(partial, serial_bounds):
                assert lower <= full_lower + 1e-12  # partial lowers are sound
        finally:
            model.close()

    def test_serial_streamed_progress_fires_too(self, serial_bounds):
        model = Model(parse(BRANCHY_SRC))
        try:
            options = AnalysisOptions(stream=True, stream_cache_budget=None)
            partials = []
            bounds = model.bounds(
                TARGETS, options,
                progress=lambda partial, done: partials.append(done),
            )
            assert as_pairs(bounds) == serial_bounds
            assert partials and partials[0] >= 1
        finally:
            model.close()

    def test_executor_key_separates_endpoints(self):
        base = AnalysisOptions(executor="socket", workers=2)
        other = base.with_updates(socket_endpoint="127.0.0.1:7777")
        assert base.executor_key() != other.executor_key()
        assert base.executor_key() != AnalysisOptions(executor="process", workers=2).executor_key()


# ---------------------------------------------------------------------------
# Bounds server
# ---------------------------------------------------------------------------

class TestBoundsServer:
    def test_bounds_cache_and_concurrent_clients(self, serial_bounds):
        with serve_in_background() as handle:
            with ServiceClient(handle.endpoint) as client:
                assert client.ping()
                first = client.bounds(BRANCHY_SRC, [(0.0, 0.5), (0.5, 1.0)])
                assert as_pairs(first.bounds) == serial_bounds  # exact over the wire
                assert first.cache == "miss"
                assert first.paths >= 2

                # A differently-spelled copy of the same program hits the
                # shared cache through the canonical program hash.
                respelled = "  " + BRANCHY_SRC.replace("\n", " ")
                second = client.bounds(respelled, [(0.0, 0.5), (0.5, 1.0)])
                assert second.cache == "hit"
                assert second.program_hash == first.program_hash
                assert as_pairs(second.bounds) == serial_bounds

                # Concurrent tenants: all served, all bit-identical, all hits.
                replies = []

                def query():
                    with ServiceClient(handle.endpoint) as tenant:
                        replies.append(tenant.bounds(BRANCHY_SRC, [(0.0, 0.5), (0.5, 1.0)]))

                threads = [threading.Thread(target=query) for _ in range(4)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60)
                assert len(replies) == 4
                assert all(as_pairs(reply.bounds) == serial_bounds for reply in replies)
                assert all(reply.cache_hit for reply in replies)

                stats = client.stats()
                assert stats["cache"]["misses"] == 1
                assert stats["cache"]["hits"] == 5
                model_info = next(iter(stats["cache"]["models"].values()))
                assert model_info["program_cache_hits"] == 5
                assert model_info["program_cache_misses"] == 1

    def test_result_cache_serves_repeat_queries(self, serial_bounds):
        with serve_in_background() as handle:
            with ServiceClient(handle.endpoint) as client:
                cold = client.bounds(BRANCHY_SRC, [(0.0, 0.5), (0.5, 1.0)])
                assert cold.result_cache == "miss"
                # The identical query again: no analyzer run, same floats.
                repeat = client.bounds(BRANCHY_SRC, [(0.0, 0.5), (0.5, 1.0)])
                assert repeat.result_cache == "hit"
                assert repeat.cache == "hit"
                assert as_pairs(repeat.bounds) == serial_bounds
                assert repeat.paths == cold.paths
                assert repeat.program_hash == cold.program_hash
                # Different targets are a different query: computed fresh.
                other = client.bounds(BRANCHY_SRC, [(0.0, 1.0)])
                assert other.result_cache == "miss"
                stats = client.stats()
                assert stats["results"]["entries"] == 2
                assert stats["results"]["hits"] == 1
                assert stats["results"]["misses"] == 2

    def test_result_cache_can_be_disabled(self, serial_bounds):
        with serve_in_background(result_cache_limit=0) as handle:
            with ServiceClient(handle.endpoint) as client:
                client.bounds(BRANCHY_SRC, [(0.0, 0.5), (0.5, 1.0)])
                repeat = client.bounds(BRANCHY_SRC, [(0.0, 0.5), (0.5, 1.0)])
                assert repeat.result_cache == "miss"
                assert repeat.cache == "hit"  # the program cache still works
                assert as_pairs(repeat.bounds) == serial_bounds
                assert client.stats()["results"] == {
                    "entries": 0, "limit": 0, "hits": 0, "misses": 0,
                }

    def test_streamed_query_emits_partial_before_result(self, serial_bounds):
        with serve_in_background() as handle:
            with ServiceClient(handle.endpoint) as client:
                seen = []
                reply = client.bounds(
                    BRANCHY_SRC, [(0.0, 0.5), (0.5, 1.0)], stream=True,
                    options={"stream_cache_budget": None},
                    on_partial=lambda bounds, done: seen.append((done, as_pairs(bounds))),
                )
                assert as_pairs(reply.bounds) == serial_bounds
                assert [(done, as_pairs(bounds)) for bounds, done in reply.partials] == seen
                if AnalysisOptions().refine_enabled:
                    # One extra partial frame per refinement round.
                    assert len(seen) >= 1
                else:
                    assert len(seen) == 1
                done, partial = seen[0]
                assert done >= 1
                for (lower, _), (full_lower, _) in zip(partial, serial_bounds):
                    assert lower <= full_lower + 1e-12

    def test_error_frame_keeps_connection_usable(self):
        with serve_in_background() as handle:
            with ServiceClient(handle.endpoint) as client:
                with pytest.raises(ServiceError, match="ParseError"):
                    client.bounds("(oops", [(0.0, 1.0)])
                with pytest.raises(ServiceError, match="unknown analysis options"):
                    client.bounds(BRANCHY_SRC, [(0.0, 1.0)], options={"bogus_knob": 1})
                assert client.ping()

    def test_cache_info_counters_track_stream_tee(self):
        model = Model(simple_observe_model())
        try:
            info = model.cache_info()
            assert info["stream_tee_primes"] == 0
            model.bounds([intervals.Interval(0.0, 3.0)], AnalysisOptions(stream=True))
            info = model.cache_info()
            assert info["stream_tee_primes"] == 1
            assert info["entries"] == 1
            model.note_program_cache(hit=True)
            model.note_program_cache(hit=False)
            info = model.cache_info()
            assert info["program_cache_hits"] == 1
            assert info["program_cache_misses"] == 1
        finally:
            model.close()
