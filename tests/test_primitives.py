"""Property tests for the primitive registry and its interval liftings."""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given, strategies as st

from repro.intervals import Interval, Primitive, PrimitiveRegistry, REGISTRY, get_primitive

moderate_floats = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


@st.composite
def interval_and_point(draw):
    # Normalise signed zeros: 0.0 == -0.0 so the swap below never reorders
    # them, but hypothesis rejects min_value=0.0 with max_value=-0.0.
    lo = draw(moderate_floats) + 0.0
    hi = draw(moderate_floats) + 0.0
    if lo > hi:
        lo, hi = hi, lo
    point = draw(st.floats(min_value=lo, max_value=hi, allow_nan=False))
    return Interval(lo, hi), point


class TestRegistry:
    def test_known_primitives_present(self):
        for name in ("add", "sub", "mul", "div", "neg", "abs", "min", "max", "exp", "log",
                     "sqrt", "square", "sigmoid", "normal_pdf", "uniform_pdf", "beta_pdf"):
            assert name in REGISTRY

    def test_unknown_primitive_raises(self):
        with pytest.raises(KeyError):
            get_primitive("definitely-not-a-primitive")

    def test_duplicate_registration_rejected(self):
        registry = PrimitiveRegistry()
        primitive = Primitive("p", 1, lambda x: x, lambda x: x)
        registry.register(primitive)
        with pytest.raises(ValueError):
            registry.register(primitive)
        registry.register(Primitive("p", 1, lambda x: x, lambda x: x), overwrite=True)

    def test_arity_checked_by_prim_nodes(self):
        from repro.lang.ast import Const, Prim

        with pytest.raises(ValueError):
            Prim("add", (Const(1.0),))

    def test_empty_argument_propagates(self):
        assert get_primitive("add").apply_interval(Interval.empty(), Interval(0.0, 1.0)).is_empty


class TestIntervalSoundness:
    """For every primitive: ``f(x, y) ∈ f^I(X, Y)`` whenever ``x ∈ X``, ``y ∈ Y``."""

    @pytest.mark.parametrize("name", ["add", "sub", "mul", "min", "max"])
    @given(interval_and_point(), interval_and_point())
    def test_binary_arithmetic_sound(self, name, first, second):
        (ix, x), (iy, y) = first, second
        primitive = get_primitive(name)
        result = primitive.apply_interval(ix, iy)
        value = primitive(x, y)
        assert result.lo - 1e-9 <= value <= result.hi + 1e-9

    @pytest.mark.parametrize("name", ["neg", "abs", "square", "sigmoid", "exp", "floor"])
    @given(interval_and_point())
    def test_unary_sound(self, name, pair):
        interval, x = pair
        primitive = get_primitive(name)
        result = primitive.apply_interval(interval)
        value = primitive(x)
        if math.isfinite(value):
            assert result.lo - 1e-9 <= value <= result.hi + 1e-6 * max(1.0, abs(value))

    @given(interval_and_point())
    def test_log_sound_on_positive(self, pair):
        interval, x = pair
        assume(x > 1e-6)
        primitive = get_primitive("log")
        result = primitive.apply_interval(interval)
        assert result.lo - 1e-9 <= math.log(x) <= result.hi + 1e-9

    @given(interval_and_point(), interval_and_point())
    def test_div_sound(self, first, second):
        (ix, x), (iy, y) = first, second
        assume(abs(y) > 1e-6)
        primitive = get_primitive("div")
        result = primitive.apply_interval(ix, iy)
        assert result.lo - 1e-6 <= x / y <= result.hi + 1e-6

    @given(interval_and_point(), st.integers(min_value=0, max_value=4))
    def test_pow_nat_sound(self, pair, exponent):
        interval, x = pair
        primitive = get_primitive("pow_nat")
        result = primitive.apply_interval(interval, Interval.point(float(exponent)))
        assert result.lo - 1e-6 * max(1.0, abs(x) ** exponent) <= x**exponent <= result.hi + 1e-6 * max(
            1.0, abs(x) ** exponent
        )

    def test_exp_handles_infinite_endpoints(self):
        result = get_primitive("exp").apply_interval(Interval(-math.inf, 0.0))
        assert result == Interval(0.0, 1.0)

    def test_sigmoid_range(self):
        result = get_primitive("sigmoid").apply_interval(Interval(-math.inf, math.inf))
        assert result == Interval(0.0, 1.0)


class TestDensityPrimitives:
    @given(
        st.floats(min_value=-5, max_value=5, allow_nan=False),
        st.floats(min_value=0.1, max_value=3, allow_nan=False),
        interval_and_point(),
    )
    def test_normal_pdf_sound(self, mean, std, pair):
        interval, x = pair
        primitive = get_primitive("normal_pdf")
        bounds = primitive.apply_interval(Interval.point(mean), Interval.point(std), interval)
        value = primitive(mean, std, x)
        assert bounds.lo - 1e-9 <= value <= bounds.hi + 1e-9

    def test_normal_pdf_peak_inside_interval(self):
        primitive = get_primitive("normal_pdf")
        bounds = primitive.apply_interval(
            Interval.point(0.0), Interval.point(1.0), Interval(-1.0, 1.0)
        )
        peak = 1.0 / math.sqrt(2 * math.pi)
        assert bounds.hi == pytest.approx(peak)

    def test_normal_pdf_with_interval_mean(self):
        """Interval mean (from approxFix): bounds must contain all point instances."""
        primitive = get_primitive("normal_pdf")
        bounds = primitive.apply_interval(
            Interval(0.0, math.inf), Interval.point(0.1), Interval.point(1.1)
        )
        for mean in (0.0, 0.5, 1.1, 2.0, 10.0):
            assert bounds.lo - 1e-12 <= primitive(mean, 0.1, 1.1) <= bounds.hi + 1e-12

    @given(
        st.floats(min_value=0.1, max_value=5, allow_nan=False),
        interval_and_point(),
    )
    def test_exponential_pdf_sound(self, rate, pair):
        interval, x = pair
        primitive = get_primitive("exponential_pdf")
        bounds = primitive.apply_interval(Interval.point(rate), interval)
        assert bounds.lo - 1e-9 <= primitive(rate, x) <= bounds.hi + 1e-9

    def test_uniform_pdf_values(self):
        primitive = get_primitive("uniform_pdf")
        assert primitive(0.0, 2.0, 1.0) == pytest.approx(0.5)
        assert primitive(0.0, 2.0, 3.0) == 0.0
        bounds = primitive.apply_interval(
            Interval.point(0.0), Interval.point(2.0), Interval(1.0, 3.0)
        )
        assert bounds.lo == 0.0
        assert bounds.hi == pytest.approx(0.5)

    def test_bernoulli_pmf(self):
        primitive = get_primitive("bernoulli_pmf")
        assert primitive(0.3, 1.0) == pytest.approx(0.3)
        assert primitive(0.3, 0.0) == pytest.approx(0.7)
        assert primitive(0.3, 0.5) == 0.0
        bounds = primitive.apply_interval(Interval.point(0.3), Interval(0.0, 1.0))
        assert bounds.hi == pytest.approx(0.7)
