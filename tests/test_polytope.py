"""Tests for the convex polytope substrate (LPs, vertex enumeration, volumes)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.intervals import Interval
from repro.polytope import (
    Polytope,
    PolytopeError,
    bound_form,
    enumerate_vertices,
    form_rows,
    volume_by_enumeration,
)
from repro.symbolic import LinearForm


def unit_cube(dimension: int) -> Polytope:
    return Polytope.from_box([Interval(0.0, 1.0)] * dimension)


class TestBasics:
    def test_dimension_and_constraints(self):
        cube = unit_cube(3)
        assert cube.dimension == 3
        assert cube.constraint_count == 6

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(PolytopeError):
            Polytope(np.zeros((2, 2)), np.zeros(3))

    def test_contains(self):
        cube = unit_cube(2)
        assert cube.contains((0.5, 0.5))
        assert not cube.contains((1.5, 0.5))

    def test_emptiness(self):
        cube = unit_cube(2)
        assert not cube.is_empty()
        empty = cube.add_constraints([[1.0, 0.0], [-1.0, 0.0]], [0.2, -0.8])
        assert empty.is_empty()

    def test_zero_dimensional(self):
        point = Polytope.from_box([])
        assert not point.is_empty()
        assert point.volume_bounds() == Interval.point(1.0)
        infeasible = Polytope(np.zeros((1, 0)), np.array([-1.0]))
        assert infeasible.is_empty()
        assert infeasible.volume_bounds() == Interval.point(0.0)

    def test_empty_box_is_empty(self):
        box = Polytope.from_box([Interval.empty(), Interval(0.0, 1.0)])
        assert box.is_empty()


class TestLinearProgramming:
    def test_bound_linear_on_cube(self):
        cube = unit_cube(3)
        assert cube.bound_linear([1.0, 1.0, 1.0]) == Interval(0.0, 3.0)
        assert cube.bound_linear([1.0, -1.0, 0.0], constant=2.0) == Interval(1.0, 3.0)

    def test_bound_linear_empty_polytope(self):
        empty = unit_cube(1).add_constraints([[1.0], [-1.0]], [0.2, -0.8])
        assert empty.bound_linear([1.0]) is None

    def test_chebyshev_center_of_cube(self):
        center, radius = unit_cube(2).chebyshev_center()
        assert center == pytest.approx([0.5, 0.5])
        assert radius == pytest.approx(0.5)

    def test_bound_form_includes_interval_constant(self):
        cube = unit_cube(2)
        form = LinearForm.from_dict({0: 1.0, 1: 1.0}, Interval(0.0, 0.5))
        assert bound_form(cube, form) == Interval(0.0, 2.5)


class TestVolumes:
    def test_cube_volume(self):
        volume = unit_cube(4).volume_bounds()
        assert volume.is_point
        assert volume.lo == pytest.approx(1.0)

    def test_scaled_box_volume(self):
        box = Polytope.from_box([Interval(0.0, 2.0), Interval(-1.0, 1.0)])
        assert box.volume_bounds().lo == pytest.approx(4.0)

    @pytest.mark.parametrize("dimension", [1, 2, 3, 4, 5, 6])
    def test_simplex_volume(self, dimension):
        simplex = unit_cube(dimension).add_constraints([[1.0] * dimension], [1.0])
        expected = 1.0 / math.factorial(dimension)
        assert simplex.volume_bounds().lo == pytest.approx(expected, rel=1e-6)

    def test_halfspace_cut_volume(self):
        half = unit_cube(2).add_constraints([[1.0, -1.0]], [0.0])  # x <= y
        assert half.volume_bounds().lo == pytest.approx(0.5)

    def test_degenerate_volume_zero(self):
        flat = unit_cube(2).add_constraints([[1.0, 0.0], [-1.0, 0.0]], [0.5, -0.5])
        assert flat.volume_bounds() == Interval.point(0.0)

    def test_empty_volume_zero(self):
        empty = unit_cube(3).add_constraints([[1.0, 0.0, 0.0], [-1.0, 0.0, 0.0]], [0.2, -0.9])
        assert empty.volume_bounds() == Interval.point(0.0)

    def test_one_dimensional_volume(self):
        segment = unit_cube(1).add_constraints([[1.0]], [0.25])
        volume = segment.volume_bounds()
        assert volume.is_point
        assert volume.lo == pytest.approx(0.25)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=0, max_value=10_000))
    def test_qhull_volume_matches_brute_force(self, dimension, seed):
        """The production volume path agrees with the brute-force oracle."""
        rng = np.random.default_rng(seed)
        cube = unit_cube(dimension)
        rows = rng.normal(size=(2, dimension))
        rhs = rng.uniform(0.2, 1.0, size=2)
        polytope = cube.add_constraints(rows.tolist(), rhs.tolist())
        fast = polytope.volume_bounds()
        slow = volume_by_enumeration(polytope)
        if slow is None:
            pytest.skip("brute-force enumeration failed (degenerate hull)")
        assert fast.lo == pytest.approx(slow, abs=1e-6)

    def test_monte_carlo_volume_agreement(self):
        rng = np.random.default_rng(42)
        polytope = unit_cube(3).add_constraints([[1.0, 1.0, 1.0], [-1.0, 0.5, 0.0]], [1.5, 0.1])
        points = rng.random((200_000, 3))
        inside = np.mean(np.all(points @ polytope.a[6:].T <= polytope.b[6:], axis=1))
        assert polytope.volume_bounds().lo == pytest.approx(float(inside), abs=0.01)


class TestVertexEnumeration:
    def test_cube_vertices(self):
        vertices = enumerate_vertices(unit_cube(2))
        assert len(vertices) == 4

    def test_triangle_vertices(self):
        triangle = unit_cube(2).add_constraints([[1.0, 1.0]], [1.0])
        vertices = enumerate_vertices(triangle)
        assert len(vertices) == 3

    def test_qhull_vertices_match_brute_force(self):
        polytope = unit_cube(3).add_constraints([[1.0, 1.0, 1.0]], [1.5])
        fast = polytope.vertices()
        slow = enumerate_vertices(polytope)
        assert fast is not None
        assert len(fast) == len(slow)


class TestFormRows:
    def test_universal_vs_existential_upper(self):
        form = LinearForm.from_dict({0: 1.0}, Interval(0.0, 1.0))
        rows_univ, rhs_univ = form_rows(form, 1, upper=2.0, for_lower_bound=True)
        rows_exist, rhs_exist = form_rows(form, 1, upper=2.0, for_lower_bound=False)
        assert rhs_univ[0] == pytest.approx(1.0)  # x + 1 <= 2
        assert rhs_exist[0] == pytest.approx(2.0)  # x + 0 <= 2

    def test_lower_restriction(self):
        form = LinearForm.from_dict({0: 1.0}, Interval.point(0.0))
        rows, rhs = form_rows(form, 1, lower=0.5, for_lower_bound=True)
        assert rows[0] == [-1.0]
        assert rhs[0] == pytest.approx(-0.5)
