"""Tests for the Model facade, the compiled-program cache and the analyzer registry."""

from __future__ import annotations

import numpy as np
import pytest

import repro.analysis.model as model_module
from repro.analysis import (
    AnalysisOptions,
    AnalysisReport,
    CompiledProgram,
    Model,
    UnknownAnalyzerError,
    available_analyzers,
    bound_denotation,
    bound_posterior_histogram,
    bound_query,
    get_analyzer,
    register_analyzer,
    unregister_analyzer,
)
from repro.estimation import ProbabilityEstimate
from repro.exact import ExactDistribution
from repro.inference import HMCResult, ImportanceResult, MHResult
from repro.intervals import Interval
from repro.lang import builder as b
from repro.models import pedestrian_program

from helpers import geometric_program, simple_observe_model


@pytest.fixture
def counted_execution(monkeypatch):
    """Count how often the Model facade actually runs symbolic execution."""
    calls = {"count": 0}
    original = model_module.symbolic_paths

    def counting(term, limits=None):
        calls["count"] += 1
        return original(term, limits)

    monkeypatch.setattr(model_module, "symbolic_paths", counting)
    return calls


class TestCompiledProgramCache:
    def test_one_execution_across_bound_histogram_probability(self, counted_execution):
        model = Model(simple_observe_model(), AnalysisOptions(score_splits=16))
        model.bound(Interval(0.0, 1.0))
        model.histogram(0.0, 3.0, 4)
        model.probability(Interval(0.0, 1.0))
        assert counted_execution["count"] == 1
        assert model.compile_count == 1
        assert model.cache_hits == 2
        assert model.cache_info() == {
            "entries": 1,
            "compilations": 1,
            "hits": 2,
            "stream_tee_primes": 0,
            "program_cache_hits": 0,
            "program_cache_misses": 0,
        }

    def test_analysis_only_options_share_the_cache(self, counted_execution):
        model = Model(simple_observe_model())
        model.probability(Interval(0.0, 1.0), AnalysisOptions(score_splits=8))
        model.probability(Interval(0.0, 1.0), AnalysisOptions(score_splits=64))
        model.probability(Interval(0.0, 1.0), AnalysisOptions(use_linear_semantics=False))
        assert counted_execution["count"] == 1

    def test_execution_options_invalidate_the_cache(self, counted_execution):
        model = Model(geometric_program())
        model.probability(Interval(-0.5, 0.5), AnalysisOptions(max_fixpoint_depth=3))
        model.probability(Interval(-0.5, 0.5), AnalysisOptions(max_fixpoint_depth=5))
        assert counted_execution["count"] == 2
        # ... but a repeated configuration is served from the cache again.
        model.probability(Interval(-0.5, 0.5), AnalysisOptions(max_fixpoint_depth=3))
        assert counted_execution["count"] == 2

    def test_clear_cache_recompiles(self, counted_execution):
        model = Model(b.sample())
        model.bound(Interval(0.0, 0.5))
        model.clear_cache()
        model.bound(Interval(0.0, 0.5))
        assert counted_execution["count"] == 2

    def test_with_options_shares_the_cache(self, counted_execution):
        model = Model(simple_observe_model(), AnalysisOptions(score_splits=8))
        model.bound(Interval(0.0, 1.0))
        boxy = model.with_options(use_linear_semantics=False)
        boxy.bound(Interval(0.0, 1.0))
        assert counted_execution["count"] == 1

    def test_report_counts_cache_hits(self):
        model = Model(b.sample())
        report = AnalysisReport()
        model.bound(Interval(0.0, 0.5), report=report)
        assert report.compile_cache_hits == 0
        model.bound(Interval(0.5, 1.0), report=report)
        assert report.compile_cache_hits == 1

    def test_compiled_program_is_reusable(self):
        model = Model(b.sample())
        compiled = model.compile()
        assert isinstance(compiled, CompiledProgram)
        assert compiled.path_count == 1
        assert compiled.exact
        bounds = compiled.analyze([Interval(0.0, 0.25)])
        assert bounds[0].lower == pytest.approx(0.25)

    def test_model_requires_a_term(self):
        with pytest.raises(TypeError):
            Model("not a term")

    def test_parse_constructor(self):
        model = Model.parse("(sample)")
        bounds = model.bound(Interval(0.0, 0.5))
        assert bounds.lower == pytest.approx(0.5)


class TestAnalyzerRegistry:
    def test_builtins_registered(self):
        assert {"linear", "box"} <= set(available_analyzers())

    def test_get_analyzer_returns_shared_instance(self):
        assert get_analyzer("box") is get_analyzer("box")
        assert get_analyzer("box").name == "box"

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownAnalyzerError, match="no-such-analyzer"):
            get_analyzer("no-such-analyzer")

    def test_unknown_name_in_options_raises_at_query_time(self):
        model = Model(b.sample(), AnalysisOptions(analyzers=("no-such-analyzer",)))
        with pytest.raises(UnknownAnalyzerError):
            model.bound(Interval(0.0, 1.0))

    def test_duplicate_registration_rejected(self):
        from repro.analysis import BoxPathAnalyzer

        with pytest.raises(ValueError, match="already registered"):
            register_analyzer("box", BoxPathAnalyzer)

    def test_invalid_registration_rejected(self):
        class NotAnAnalyzer:
            pass

        with pytest.raises(TypeError):
            register_analyzer("broken", NotAnAnalyzer)
        with pytest.raises(ValueError):
            register_analyzer("", NotAnAnalyzer)

    def test_custom_analyzer_plugs_into_the_engine(self):
        from repro.analysis import analyze_path_boxes

        analyzed = []

        class RecordingAnalyzer:
            name = "recording"

            def applicable(self, path, options):
                return True

            def analyze(self, path, targets, options):
                analyzed.append(path)
                return analyze_path_boxes(path, targets, options)

        register_analyzer("recording", RecordingAnalyzer, replace=True)
        try:
            model = Model(b.sample())
            report = AnalysisReport()
            # The analyzer records calls through a closure, which only works
            # in-process: pin the serial engine even when the environment
            # defaults to a worker pool (REPRO_ANALYSIS_WORKERS).
            bounds = model.bound(
                Interval(0.0, 0.5),
                AnalysisOptions(analyzers=("recording",), workers=1, executor="serial"),
                report=report,
            )
            assert len(analyzed) == 1
            assert report.analyzer_paths == {"recording": 1}
            assert bounds.lower == pytest.approx(0.5)
        finally:
            unregister_analyzer("recording")


class TestAnalysisOptionsValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "max_fixpoint_depth",
            "max_paths",
            "splits_per_dimension",
            "max_boxes_per_path",
            "score_splits",
            "max_score_combinations",
        ],
    )
    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_non_positive_knobs_rejected(self, field, bad):
        with pytest.raises(ValueError, match=field):
            AnalysisOptions(**{field: bad})

    def test_empty_analyzer_list_rejected(self):
        with pytest.raises(ValueError):
            AnalysisOptions(analyzers=())

    def test_string_analyzers_rejected(self):
        with pytest.raises(ValueError):
            AnalysisOptions(analyzers="linear")

    def test_analyzer_list_normalised_to_tuple(self):
        options = AnalysisOptions(analyzers=["box"])
        assert options.analyzers == ("box",)
        assert options.analyzer_names == ("box",)

    def test_analyzer_names_derived_from_legacy_flag(self):
        assert AnalysisOptions().analyzer_names == ("linear", "box")
        assert AnalysisOptions(use_linear_semantics=False).analyzer_names == ("box",)

    def test_execution_limits_projection(self):
        options = AnalysisOptions(max_fixpoint_depth=3, max_paths=10)
        limits = options.execution_limits()
        assert limits.max_fixpoint_depth == 3
        assert limits.max_paths == 10
        # Equal projections are the cache key: analysis-only changes share it.
        assert options.with_updates(score_splits=999).execution_limits() == limits


class TestUnifiedBaselines:
    def test_sample_methods_return_existing_dataclasses(self, rng):
        model = Model(simple_observe_model())
        importance = model.sample(200, method="importance", rng=rng)
        assert isinstance(importance, ImportanceResult)
        assert importance.size == 200
        mh = model.sample(50, method="mh", rng=rng)
        assert isinstance(mh, MHResult)
        assert mh.values.shape == (50,)
        hmc_result, values = model.sample(
            20, method="hmc", rng=rng, trace_dimension=1, burn_in=10
        )
        assert isinstance(hmc_result, HMCResult)
        assert values.shape == (20,)

    def test_unknown_sampler_rejected(self):
        with pytest.raises(LookupError, match="unknown sampler"):
            Model(b.sample()).sample(10, method="quantum")

    def test_exact_baseline(self):
        from repro.distributions import Bernoulli
        from repro.lang.ast import Sample

        model = Model(Sample(Bernoulli(0.3)))
        result = model.exact()
        assert isinstance(result, ExactDistribution)
        assert result.probability(1.0) == pytest.approx(0.3)

    def test_estimate_baseline(self):
        model = Model(b.sample())
        estimate = model.estimate(Interval(0.0, 0.25))
        assert isinstance(estimate, ProbabilityEstimate)
        assert estimate.lower <= 0.25 <= estimate.upper


class TestDeprecatedShims:
    """The free functions survive as thin delegating shims (Example 5.2 parity)."""

    def test_bound_query_matches_model_on_example_52(self):
        # The paper's Example 5.2 pedestrian model, at a reduced depth so the
        # parity check stays fast.
        options = AnalysisOptions(max_fixpoint_depth=3, score_splits=8)
        program = pedestrian_program()
        target = Interval(0.0, 1.0)
        new = Model(program, options).probability(target)
        with pytest.deprecated_call():
            old = bound_query(program, target, options)
        assert old.lower == new.lower
        assert old.upper == new.upper
        assert old.normalising_constant.lower == new.normalising_constant.lower
        assert old.normalising_constant.upper == new.normalising_constant.upper

    def test_bound_denotation_shim(self):
        with pytest.deprecated_call():
            bounds = bound_denotation(b.sample(), [Interval(0.0, 0.5)])
        assert bounds[0].lower == pytest.approx(0.5)
        assert bounds[0].upper == pytest.approx(0.5)

    def test_bound_posterior_histogram_shim(self):
        with pytest.deprecated_call():
            histogram = bound_posterior_histogram(b.sample(), 0.0, 1.0, 4)
        new = Model(b.sample()).histogram(0.0, 1.0, 4)
        assert histogram.z_lower == new.z_lower
        assert histogram.z_upper == new.z_upper
        assert [bb.lower for bb in histogram.buckets] == [bb.lower for bb in new.buckets]
