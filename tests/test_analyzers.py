"""Tests for the two path analysers (box splitting and linear/polytope)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import integrate, stats

from repro.analysis import (
    AnalysisOptions,
    analyze_path_boxes,
    analyze_path_linear,
    linear_analysis_applicable,
    split_domain,
)
from repro.distributions import Bernoulli, Categorical, Normal, Uniform
from repro.intervals import Interval
from repro.lang import builder as b
from repro.symbolic import symbolic_paths

EVERYTHING = Interval(-math.inf, math.inf)


def single_path(program):
    result = symbolic_paths(program)
    assert len(result.paths) == 1
    return result.paths[0]


class TestSplitDomain:
    def test_uniform_split(self):
        cells = split_domain(Uniform(0.0, 1.0), 4)
        assert len(cells) == 4
        assert cells[0] == Interval(0.0, 0.25)

    def test_discrete_point_cells(self):
        cells = split_domain(Bernoulli(0.3), 4)
        assert cells == [Interval.point(0.0), Interval.point(1.0)]
        cells = split_domain(Categorical([2.0, 5.0], [0.5, 0.5]), 10)
        assert cells == [Interval.point(2.0), Interval.point(5.0)]

    def test_normal_quantile_split_has_equal_mass(self):
        dist = Normal(0.0, 1.0)
        cells = split_domain(dist, 8)
        assert len(cells) == 8
        for cell in cells:
            assert dist.measure(cell) == pytest.approx(1.0 / 8.0, abs=1e-9)
        assert math.isinf(cells[0].lo) and math.isinf(cells[-1].hi)

    def test_single_part(self):
        assert split_domain(Uniform(0.0, 1.0), 1) == [Interval(0.0, 1.0)]


class TestLinearApplicability:
    def test_applicable_for_uniform_linear_paths(self):
        path = single_path(b.add(b.mul(2.0, b.sample()), b.sample()))
        assert linear_analysis_applicable(path)

    def test_not_applicable_for_normal_prior(self):
        from repro.lang.ast import Sample

        path = single_path(Sample(Normal(0.0, 1.0)))
        assert not linear_analysis_applicable(path)

    def test_not_applicable_for_nonlinear_result(self):
        path = single_path(b.mul(b.sample(), b.sample()))
        assert not linear_analysis_applicable(path)


class TestScoreFreeExactness:
    """Score-free linear paths: both analysers must bracket the exact volume."""

    def test_triangle_probability_linear(self):
        program = b.sub(b.add(b.sample(), b.sample()), 1.0)  # x + y - 1
        path = single_path(program)
        options = AnalysisOptions()
        ((lower, upper),) = analyze_path_linear(path, [Interval(-math.inf, 0.0)], options)
        assert lower == pytest.approx(0.5, abs=1e-9)
        assert upper == pytest.approx(0.5, abs=1e-9)

    def test_triangle_probability_boxes(self):
        program = b.sub(b.add(b.sample(), b.sample()), 1.0)
        path = single_path(program)
        options = AnalysisOptions(splits_per_dimension=16)
        ((lower, upper),) = analyze_path_boxes(path, [Interval(-math.inf, 0.0)], options)
        assert lower <= 0.5 <= upper
        assert upper - lower < 0.2

    def test_linear_beats_boxes_on_score_free_path(self):
        """The Section 6.4 claim: direct linear splitting is tighter than box splitting."""
        program = b.sub(b.add(b.sample(), b.add(b.sample(), b.sample())), 1.5)
        path = single_path(program)
        options = AnalysisOptions(splits_per_dimension=8)
        target = [Interval(-math.inf, 0.0)]
        ((lin_lower, lin_upper),) = analyze_path_linear(path, target, options)
        ((box_lower, box_upper),) = analyze_path_boxes(path, target, options)
        assert (lin_upper - lin_lower) < (box_upper - box_lower)
        assert box_lower - 1e-9 <= lin_lower and lin_upper <= box_upper + 1e-9

    def test_total_mass_is_one(self):
        program = b.add(b.sample(), b.sample())
        path = single_path(program)
        ((lower, upper),) = analyze_path_linear(path, [EVERYTHING], AnalysisOptions())
        assert lower == pytest.approx(1.0, abs=1e-9)
        assert upper == pytest.approx(1.0, abs=1e-9)

    def test_multiple_targets_partition(self):
        program = b.sample()
        path = single_path(program)
        targets = [Interval(0.0, 0.25), Interval(0.25, 0.75), Interval(0.75, 1.0)]
        results = analyze_path_linear(path, targets, AnalysisOptions())
        masses = [upper for _, upper in results]
        assert masses == pytest.approx([0.25, 0.5, 0.25], abs=1e-9)


class TestScoredPaths:
    def _observe_path(self, std=0.25):
        program = b.let(
            "x",
            b.mul(3.0, b.sample()),
            b.seq(b.observe_normal(1.1, std, b.var("x")), b.var("x")),
        )
        return single_path(program)

    def _truth(self, target: Interval, std=0.25) -> float:
        lo = max(0.0, target.lo / 3.0)
        hi = min(1.0, target.hi / 3.0) if math.isfinite(target.hi) else 1.0
        value, _ = integrate.quad(lambda u: stats.norm.pdf(1.1, loc=3 * u, scale=std), lo, hi)
        return value

    @pytest.mark.parametrize("target", [Interval(0.0, 1.0), Interval(1.0, 2.0), EVERYTHING])
    def test_linear_analyzer_brackets_truth(self, target):
        path = self._observe_path()
        options = AnalysisOptions(score_splits=64)
        ((lower, upper),) = analyze_path_linear(path, [target], options)
        truth = self._truth(target)
        assert lower <= truth + 1e-9
        assert truth <= upper + 1e-9
        assert upper - lower < 0.15

    @pytest.mark.parametrize("target", [Interval(0.0, 1.0), EVERYTHING])
    def test_box_analyzer_brackets_truth(self, target):
        path = self._observe_path()
        options = AnalysisOptions(splits_per_dimension=64)
        ((lower, upper),) = analyze_path_boxes(path, [target], options)
        truth = self._truth(target)
        assert lower <= truth + 1e-9
        assert truth <= upper + 1e-9

    def test_more_splits_tighten_linear_bounds(self):
        path = self._observe_path()
        coarse = analyze_path_linear(path, [EVERYTHING], AnalysisOptions(score_splits=8))[0]
        fine = analyze_path_linear(path, [EVERYTHING], AnalysisOptions(score_splits=128))[0]
        assert (fine[1] - fine[0]) < (coarse[1] - coarse[0])

    def test_more_splits_tighten_box_bounds(self):
        path = self._observe_path()
        coarse = analyze_path_boxes(path, [EVERYTHING], AnalysisOptions(splits_per_dimension=8))[0]
        fine = analyze_path_boxes(path, [EVERYTHING], AnalysisOptions(splits_per_dimension=64))[0]
        assert (fine[1] - fine[0]) < (coarse[1] - coarse[0])

    def test_normal_prior_path_via_boxes(self):
        """A native Normal prior with an observation — handled by box splitting."""
        from repro.lang.ast import Sample

        program = b.let(
            "mu",
            Sample(Normal(0.0, 2.0)),
            b.seq(b.observe_normal(1.0, 0.5, b.var("mu")), b.var("mu")),
        )
        path = single_path(program)
        options = AnalysisOptions(splits_per_dimension=64)
        ((lower, upper),) = analyze_path_boxes(path, [EVERYTHING], options)
        truth, _ = integrate.quad(
            lambda m: stats.norm.pdf(m, scale=2.0) * stats.norm.pdf(1.0, loc=m, scale=0.5),
            -12.0,
            12.0,
        )
        assert lower <= truth + 1e-9 <= upper + 2e-9

    def test_unsatisfiable_constraints_give_zero(self):
        program = b.if_leq(b.sample(), 0.5, b.seq(b.score(2.0), 1.0), 2.0)
        paths = symbolic_paths(program).paths
        then_path = next(p for p in paths if p.scores)
        # Restrict the result to a region the then-branch cannot reach.
        result = analyze_path_linear(then_path, [Interval(5.0, 6.0)], AnalysisOptions())
        assert result[0] == (0.0, 0.0)


class TestDiscretePaths:
    def test_bernoulli_point_cells_exact(self):
        from repro.lang.ast import Sample

        program = b.if_leq(Sample(Bernoulli(0.3)), 0.0, 10.0, 20.0)
        paths = symbolic_paths(program).paths
        totals = {"low": 0.0, "high": 0.0}
        for path in paths:
            ((lower, upper),) = analyze_path_boxes(path, [Interval(5.0, 15.0)], AnalysisOptions())
            assert lower == pytest.approx(upper)
            totals["low"] += lower
            totals["high"] += upper
        assert totals["low"] == pytest.approx(0.7)

    def test_zero_dimensional_path(self):
        program = b.seq(b.score(2.0), 5.0)
        path = single_path(program)
        ((lower, upper),) = analyze_path_boxes(path, [Interval(4.0, 6.0)], AnalysisOptions())
        assert lower == pytest.approx(2.0)
        assert upper == pytest.approx(2.0)
        ((lower2, upper2),) = analyze_path_boxes(path, [Interval(6.0, 7.0)], AnalysisOptions())
        assert (lower2, upper2) == (0.0, 0.0)
