"""The opt-in vectorised transcendentals (``vectorized_transcendentals``).

NumPy's ``exp``/``log`` may differ from libm's in the last ulp, which is why
the knob is **off by default** (golden pins assume libm).  Pinned here:

* with the knob off, vectorised sweeps keep reproducing the scalar loop's
  floats bit-for-bit (the pre-existing guarantee);
* with the knob on, every cell's bounds agree with the scalar interval
  lifting within a tight relative tolerance, and edge cases (``±inf``,
  non-positive ``log`` arguments, overflow) match exactly;
* end-to-end engine bounds with the knob on stay within the same relative
  tolerance of the scalar reference — sound and only ulp-shifted.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import AnalysisOptions, Model
from repro.analysis.vectorize import checked_cells
from repro.intervals import Interval, get_primitive
from repro.lang import builder as b
from repro.symbolic import SPrim, SVar

_REL_TOL = 1e-12

_ENDPOINTS = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


def _agree(vectorised: float, scalar: float) -> bool:
    if math.isinf(scalar) or scalar == 0.0:
        return vectorised == scalar
    return math.isclose(vectorised, scalar, rel_tol=_REL_TOL, abs_tol=0.0)


class TestCellwiseTolerance:
    @pytest.mark.parametrize("op", ["exp", "log"])
    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_numpy_matches_scalar_lifting(self, op, data):
        endpoints = sorted(
            data.draw(st.lists(_ENDPOINTS, min_size=2, max_size=2), label="endpoints")
        )
        cell = Interval(endpoints[0], endpoints[1])
        expr = SPrim(op, (SVar(0),))
        lo, hi = checked_cells(
            expr,
            1,
            var_leaf=lambda leaf: (np.array([cell.lo]), np.array([cell.hi])),
            transcendentals=True,
        )
        reference = get_primitive(op).apply_interval(cell)
        assert _agree(float(lo[0]), reference.lo)
        assert _agree(float(hi[0]), reference.hi)

    @pytest.mark.parametrize(
        "op,cell",
        [
            ("exp", Interval(-math.inf, 0.0)),
            ("exp", Interval(0.0, math.inf)),
            ("exp", Interval(700.0, 1000.0)),  # overflow saturates to inf
            ("log", Interval(-2.0, -1.0)),  # non-positive -> -inf
            ("log", Interval(-1.0, 4.0)),
            ("log", Interval(0.0, math.inf)),
        ],
    )
    def test_edge_cases_match_exactly(self, op, cell):
        expr = SPrim(op, (SVar(0),))
        lo, hi = checked_cells(
            expr,
            1,
            var_leaf=lambda leaf: (np.array([cell.lo]), np.array([cell.hi])),
            transcendentals=True,
        )
        reference = get_primitive(op).apply_interval(cell)
        assert float(lo[0]) == reference.lo
        assert float(hi[0]) == reference.hi


def _exp_score_model():
    """Two samples under smooth exp/log scores — exercises both analysers."""
    return b.let(
        "x",
        b.sample(),
        b.let(
            "y",
            b.sample(),
            b.seq(
                b.score(b.exp(b.neg(b.mul(2.0, b.var("x"))))),
                b.seq(
                    b.score(b.log(b.add(1.5, b.var("y")))),
                    b.add(b.var("x"), b.var("y")),
                ),
            ),
        ),
    )


class TestEndToEnd:
    _TARGETS = [Interval(0.0, 1.0), Interval.reals()]

    def test_knob_off_is_bit_identical_to_scalar(self):
        scalar = Model(
            _exp_score_model(),
            AnalysisOptions(vectorized_boxes=False, vectorized_scores=False),
        ).bounds(self._TARGETS)
        vectorised = Model(_exp_score_model(), AnalysisOptions()).bounds(self._TARGETS)
        for a, b_ in zip(scalar, vectorised):
            assert a.lower == b_.lower
            assert a.upper == b_.upper

    def test_knob_on_stays_within_tolerance(self):
        scalar = Model(
            _exp_score_model(),
            AnalysisOptions(vectorized_boxes=False, vectorized_scores=False),
        ).bounds(self._TARGETS)
        fast = Model(
            _exp_score_model(), AnalysisOptions(vectorized_transcendentals=True)
        ).bounds(self._TARGETS)
        for a, b_ in zip(scalar, fast):
            assert b_.lower == pytest.approx(a.lower, rel=1e-9)
            assert b_.upper == pytest.approx(a.upper, rel=1e-9)

    def test_knob_defaults_off(self):
        assert AnalysisOptions().vectorized_transcendentals is False
