"""Unit and property tests for interval arithmetic."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.intervals import EMPTY, REALS, UNIT, Interval


finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


@st.composite
def intervals(draw, min_value=-1e6, max_value=1e6):
    lo = draw(st.floats(min_value=min_value, max_value=max_value, allow_nan=False))
    hi = draw(st.floats(min_value=min_value, max_value=max_value, allow_nan=False))
    if lo > hi:
        lo, hi = hi, lo
    return Interval(lo, hi)


@st.composite
def interval_with_point(draw):
    interval = draw(intervals())
    if interval.is_point:
        return interval, interval.lo
    point = draw(st.floats(min_value=interval.lo, max_value=interval.hi, allow_nan=False))
    return interval, point


class TestConstruction:
    def test_point(self):
        interval = Interval.point(2.5)
        assert interval.lo == interval.hi == 2.5
        assert interval.is_point

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            Interval(1.0, 0.0)

    def test_nan_raises(self):
        with pytest.raises(ValueError):
            Interval(math.nan, 1.0)

    def test_empty_is_empty(self):
        assert EMPTY.is_empty
        assert not UNIT.is_empty

    def test_hull_of(self):
        assert Interval.hull_of([3.0, -1.0, 2.0]) == Interval(-1.0, 3.0)
        assert Interval.hull_of([]).is_empty

    def test_width_and_midpoint(self):
        assert Interval(1.0, 3.0).width == 2.0
        assert Interval(1.0, 3.0).midpoint == 2.0
        assert Interval(0.0, math.inf).width == math.inf

    def test_midpoint_of_empty_raises(self):
        with pytest.raises(ValueError):
            _ = EMPTY.midpoint


class TestMembershipAndOrder:
    def test_contains_value(self):
        assert 0.5 in UNIT
        assert 1.0 in UNIT
        assert 1.5 not in UNIT
        assert 0.0 not in EMPTY

    def test_contains_interval(self):
        assert UNIT.contains_interval(Interval(0.2, 0.8))
        assert not Interval(0.2, 0.8).contains_interval(UNIT)
        assert UNIT.contains_interval(EMPTY)
        assert not EMPTY.contains_interval(UNIT)

    def test_intersects(self):
        assert Interval(0.0, 1.0).intersects(Interval(1.0, 2.0))
        assert not Interval(0.0, 1.0).intersects(Interval(1.5, 2.0))
        assert not EMPTY.intersects(UNIT)

    def test_almost_disjoint(self):
        assert Interval(0.0, 1.0).almost_disjoint(Interval(1.0, 2.0))
        assert not Interval(0.0, 1.5).almost_disjoint(Interval(1.0, 2.0))

    def test_sign_predicates(self):
        assert Interval(0.5, 1.0).strictly_positive()
        assert not Interval(0.0, 1.0).strictly_positive()
        assert Interval(-2.0, 0.0).non_positive()


class TestLattice:
    def test_join_meet_basic(self):
        a, c = Interval(0.0, 1.0), Interval(0.5, 2.0)
        assert a.join(c) == Interval(0.0, 2.0)
        assert a.meet(c) == Interval(0.5, 1.0)

    def test_meet_disjoint_is_empty(self):
        assert Interval(0.0, 1.0).meet(Interval(2.0, 3.0)).is_empty

    def test_join_with_empty(self):
        assert UNIT.join(EMPTY) == UNIT
        assert EMPTY.join(UNIT) == UNIT

    @given(intervals(), intervals())
    def test_join_is_upper_bound(self, a, c):
        joined = a.join(c)
        assert joined.contains_interval(a)
        assert joined.contains_interval(c)

    @given(intervals(), intervals())
    def test_meet_is_lower_bound(self, a, c):
        met = a.meet(c)
        assert a.contains_interval(met)
        assert c.contains_interval(met)

    @given(intervals(), intervals())
    def test_widen_over_approximates_join(self, a, c):
        widened = a.widen(c)
        assert widened.contains_interval(a.join(c))

    def test_widening_stabilises(self):
        current = Interval(0.0, 0.0)
        for step in range(1, 200):
            current = current.widen(Interval(0.0, float(step)))
        assert current == Interval(0.0, math.inf)


class TestArithmeticSoundness:
    @given(interval_with_point(), interval_with_point())
    def test_addition_sound(self, first, second):
        (a, x), (c, y) = first, second
        assert x + y in a + c

    @given(interval_with_point(), interval_with_point())
    def test_subtraction_sound(self, first, second):
        (a, x), (c, y) = first, second
        assert x - y in a - c

    @given(interval_with_point(), interval_with_point())
    def test_multiplication_sound(self, first, second):
        (a, x), (c, y) = first, second
        result = a * c
        assert result.lo <= x * y <= result.hi or math.isclose(x * y, result.lo) or math.isclose(x * y, result.hi)

    @given(interval_with_point())
    def test_negation_and_abs_sound(self, first):
        a, x = first
        assert -x in -a
        assert abs(x) in a.abs()

    @given(interval_with_point(), interval_with_point())
    def test_min_max_sound(self, first, second):
        (a, x), (c, y) = first, second
        assert min(x, y) in a.min_with(c)
        assert max(x, y) in a.max_with(c)

    def test_division_by_interval_containing_zero(self):
        assert (Interval(1.0, 2.0) / Interval(-1.0, 1.0)) == REALS
        assert (Interval(0.0, 0.0) / Interval(-1.0, 1.0)) == Interval.point(0.0)

    def test_division_exact(self):
        assert Interval(1.0, 2.0) / Interval(2.0, 4.0) == Interval(0.25, 1.0)

    def test_zero_times_infinity_is_zero(self):
        assert Interval(0.0, 0.0) * Interval(0.0, math.inf) == Interval.point(0.0)

    def test_scalar_promotion(self):
        assert Interval(1.0, 2.0) + 1.0 == Interval(2.0, 3.0)
        assert 2.0 * Interval(1.0, 2.0) == Interval(2.0, 4.0)
        assert 1.0 - Interval(0.0, 1.0) == Interval(0.0, 1.0)

    def test_empty_propagates(self):
        assert (EMPTY + UNIT).is_empty
        assert (UNIT * EMPTY).is_empty


class TestSplitting:
    def test_split_into_equal_parts(self):
        parts = Interval(0.0, 1.0).split(4)
        assert len(parts) == 4
        assert parts[0] == Interval(0.0, 0.25)
        assert parts[-1].hi == 1.0

    def test_split_point_interval(self):
        assert Interval.point(1.0).split(5) == [Interval.point(1.0)]

    def test_split_unbounded_raises(self):
        with pytest.raises(ValueError):
            Interval(0.0, math.inf).split(2)

    def test_split_invalid_count(self):
        with pytest.raises(ValueError):
            UNIT.split(0)

    @given(intervals(min_value=-100, max_value=100), st.integers(min_value=1, max_value=10))
    def test_split_covers_interval(self, interval, parts):
        pieces = interval.split(parts)
        assert pieces[0].lo == interval.lo
        assert pieces[-1].hi == pytest.approx(interval.hi)
        for left, right in zip(pieces, pieces[1:]):
            assert left.hi == pytest.approx(right.lo)

    def test_sample_points(self):
        points = list(Interval(0.0, 1.0).sample_points(3))
        assert points == [0.0, 0.5, 1.0]


class TestMonotoneImage:
    def test_increasing(self):
        assert Interval(0.0, 1.0).monotone_image(math.exp) == Interval(1.0, math.exp(1.0))

    def test_decreasing(self):
        image = Interval(1.0, 2.0).monotone_image(lambda x: -x, increasing=False)
        assert image == Interval(-2.0, -1.0)

    def test_clamp_nonnegative(self):
        assert Interval(-1.0, 2.0).clamp_nonnegative() == Interval(0.0, 2.0)
        assert Interval(-3.0, -1.0).clamp_nonnegative().is_empty
