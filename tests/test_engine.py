"""End-to-end tests for the GuBPI engine (Algorithm 1) via the Model facade."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import integrate, stats

from repro.analysis import AnalysisOptions, AnalysisReport, Model
from repro.intervals import Interval
from repro.lang import builder as b
from repro.models import discrete_suite

from helpers import geometric_program, simple_observe_model


class TestBoundDenotation:
    def test_deterministic_program(self):
        bounds = Model(b.const(2.0)).bounds([Interval(1.5, 2.5), Interval(3.0, 4.0)])
        assert bounds[0].lower == pytest.approx(1.0)
        assert bounds[0].upper == pytest.approx(1.0)
        assert bounds[1].lower == bounds[1].upper == 0.0

    def test_uniform_program_exact(self):
        bounds = Model(b.sample()).bounds([Interval(0.2, 0.5)])
        assert bounds[0].lower == pytest.approx(0.3, abs=1e-9)
        assert bounds[0].upper == pytest.approx(0.3, abs=1e-9)

    def test_report_collected(self):
        report = AnalysisReport()
        Model(b.if_leq(b.sample(), 0.5, 1.0, 2.0)).bounds([Interval(0.0, 3.0)], report=report)
        assert report.path_count == 2
        assert report.linear_paths == 2
        assert report.analyzer_paths == {"linear": 2}
        assert report.seconds > 0

    def test_observe_model_brackets_quadrature(self):
        model = Model(simple_observe_model(), AnalysisOptions(score_splits=64))
        target = Interval(0.0, 1.0)
        bounds = model.bound(target)
        truth, _ = integrate.quad(lambda u: stats.norm.pdf(1.1, loc=3 * u, scale=0.25), 0.0, 1.0 / 3.0)
        assert bounds.lower <= truth <= bounds.upper
        assert bounds.width < 0.1

    def test_box_fallback_engaged_for_nonlinear(self):
        model = Model(b.mul(b.sample(), b.sample()))
        report = AnalysisReport()
        bounds = model.bound(Interval(0.0, 0.25), report=report)
        assert report.box_paths == 1
        # P(U·V <= 1/4) = 1/4 (1 + ln 4)
        truth = 0.25 * (1 + math.log(4.0))
        assert bounds.lower <= truth <= bounds.upper

    def test_linear_semantics_can_be_disabled(self):
        model = Model(b.add(b.sample(), b.sample()))
        report = AnalysisReport()
        model.bounds(
            [Interval(0.0, 1.0)],
            AnalysisOptions(use_linear_semantics=False),
            report=report,
        )
        assert report.linear_paths == 0
        assert report.box_paths == 1

    def test_analyzer_selected_by_name(self):
        model = Model(b.add(b.sample(), b.sample()))
        report = AnalysisReport()
        model.bounds([Interval(0.0, 1.0)], AnalysisOptions(analyzers=("box",)), report=report)
        assert report.analyzer_paths == {"box": 1}


class TestBoundQuery:
    def test_normalised_bounds_in_unit_interval(self):
        query = Model(simple_observe_model()).probability(Interval(0.0, 1.0))
        assert 0.0 <= query.lower <= query.upper <= 1.0

    def test_query_matches_quadrature(self):
        model = Model(simple_observe_model(), AnalysisOptions(score_splits=128))
        query = model.probability(Interval(0.0, 1.0))
        numerator, _ = integrate.quad(
            lambda u: stats.norm.pdf(1.1, loc=3 * u, scale=0.25), 0.0, 1.0 / 3.0
        )
        denominator, _ = integrate.quad(
            lambda u: stats.norm.pdf(1.1, loc=3 * u, scale=0.25), 0.0, 1.0
        )
        truth = numerator / denominator
        assert query.contains(truth)
        assert query.width < 0.2

    def test_query_of_impossible_event(self):
        query = Model(b.sample()).probability(Interval(2.0, 3.0))
        assert query.lower == 0.0
        assert query.upper == 0.0

    def test_query_of_certain_event(self):
        query = Model(b.sample()).probability(Interval(-1.0, 2.0))
        assert query.lower == pytest.approx(1.0)
        assert query.upper == pytest.approx(1.0)

    def test_agreement_with_importance_sampling(self, rng):
        program = b.let(
            "x",
            b.sample(),
            b.seq(b.observe_normal(0.7, 0.2, b.var("x")), b.var("x")),
        )
        target = Interval(0.5, 1.0)
        model = Model(program, AnalysisOptions(score_splits=96))
        query = model.probability(target)
        is_result = model.sample(20_000, method="importance", rng=rng)
        estimate = is_result.estimate_probability(target)
        assert query.lower - 0.02 <= estimate <= query.upper + 0.02

    def test_geometric_program_query(self):
        """P(count = 0) for a geometric(1/2) counter is 1/2; recursion is summarised."""
        model = Model(geometric_program(0.5), AnalysisOptions(max_fixpoint_depth=8))
        query = model.probability(Interval(-0.5, 0.5))
        assert query.lower <= 0.5 <= query.upper
        assert query.lower > 0.45
        assert query.upper < 0.55

    def test_geometric_bounds_tighten_with_depth(self):
        model = Model(geometric_program(0.5))
        target = Interval(-0.5, 0.5)
        shallow = model.probability(target, AnalysisOptions(max_fixpoint_depth=3))
        deep = model.probability(target, AnalysisOptions(max_fixpoint_depth=10))
        assert deep.width <= shallow.width + 1e-12


class TestDiscreteAgreement:
    """Table 2 consistency: tight bounds equal to exact enumeration."""

    @pytest.mark.parametrize("case", discrete_suite(), ids=lambda bm: bm.name)
    def test_bounds_agree_with_enumeration(self, case):
        model = Model(case.program)
        exact = model.exact().probability_of(case.query_target)
        query = model.probability(case.query_target)
        assert query.contains(exact, slack=1e-6)
        assert query.width < 1e-6


class TestHistograms:
    def test_histogram_bounds_cover_posterior(self):
        model = Model(simple_observe_model(), AnalysisOptions(score_splits=64))
        histogram = model.histogram(0.0, 3.0, 6)
        assert len(histogram.buckets) == 6
        assert histogram.z_lower <= histogram.z_upper
        lower_mass, upper_mass = histogram.covered_mass_bounds()
        assert lower_mass <= 1.0 + 1e-9
        assert upper_mass >= 0.99  # nearly all posterior mass lies in [0, 3]

    def test_histogram_validates_correct_sampler(self, rng):
        model = Model(simple_observe_model(), AnalysisOptions(score_splits=64))
        histogram = model.histogram(0.0, 3.0, 6)
        is_result = model.sample(20_000, method="importance", rng=rng)
        samples = is_result.resample(10_000, rng)
        report = histogram.validate_samples(samples, tolerance=0.02)
        assert report.consistent

    def test_histogram_flags_wrong_sampler(self, rng):
        model = Model(simple_observe_model(), AnalysisOptions(score_splits=64))
        histogram = model.histogram(0.0, 3.0, 6)
        wrong_samples = rng.uniform(2.0, 3.0, size=5_000)  # mass far from the posterior
        report = histogram.validate_samples(wrong_samples, tolerance=0.02)
        assert not report.consistent
        assert report.violations > 0
        assert report.details

    def test_histogram_normalised_density(self):
        histogram = Model(b.sample()).histogram(0.0, 1.0, 4)
        densities = histogram.normalised_density_bounds()
        for lower, upper in densities:
            assert lower <= 1.0 + 1e-9 <= upper + 1e-6

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            Model(b.sample()).histogram(0.0, 1.0, 0)
        with pytest.raises(ValueError):
            Model(b.sample()).histogram(1.0, 0.0, 4)

    def test_empty_validation_report(self):
        histogram = Model(b.sample()).histogram(0.0, 1.0, 4)
        report = histogram.validate_samples([])
        assert report.checked == 0
        assert report.consistent
