"""End-to-end tests for the GuBPI engine (Algorithm 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import integrate, stats

from repro.analysis import (
    AnalysisOptions,
    AnalysisReport,
    bound_denotation,
    bound_posterior_histogram,
    bound_query,
)
from repro.exact import enumerate_posterior
from repro.inference import importance_sampling
from repro.intervals import Interval
from repro.lang import builder as b
from repro.models import discrete_suite

from conftest import geometric_program, simple_observe_model


class TestBoundDenotation:
    def test_deterministic_program(self):
        bounds = bound_denotation(b.const(2.0), [Interval(1.5, 2.5), Interval(3.0, 4.0)])
        assert bounds[0].lower == pytest.approx(1.0)
        assert bounds[0].upper == pytest.approx(1.0)
        assert bounds[1].lower == bounds[1].upper == 0.0

    def test_uniform_program_exact(self):
        bounds = bound_denotation(b.sample(), [Interval(0.2, 0.5)])
        assert bounds[0].lower == pytest.approx(0.3, abs=1e-9)
        assert bounds[0].upper == pytest.approx(0.3, abs=1e-9)

    def test_report_collected(self):
        report = AnalysisReport()
        bound_denotation(b.if_leq(b.sample(), 0.5, 1.0, 2.0), [Interval(0.0, 3.0)], report=report)
        assert report.path_count == 2
        assert report.linear_paths == 2
        assert report.seconds > 0

    def test_observe_model_brackets_quadrature(self):
        program = simple_observe_model()
        target = Interval(0.0, 1.0)
        bounds = bound_denotation(program, [target], AnalysisOptions(score_splits=64))[0]
        truth, _ = integrate.quad(lambda u: stats.norm.pdf(1.1, loc=3 * u, scale=0.25), 0.0, 1.0 / 3.0)
        assert bounds.lower <= truth <= bounds.upper
        assert bounds.width < 0.1

    def test_box_fallback_engaged_for_nonlinear(self):
        program = b.mul(b.sample(), b.sample())
        report = AnalysisReport()
        bounds = bound_denotation(program, [Interval(0.0, 0.25)], report=report)[0]
        assert report.box_paths == 1
        # P(U·V <= 1/4) = 1/4 (1 + ln 4)
        truth = 0.25 * (1 + math.log(4.0))
        assert bounds.lower <= truth <= bounds.upper

    def test_linear_semantics_can_be_disabled(self):
        program = b.add(b.sample(), b.sample())
        report = AnalysisReport()
        bound_denotation(
            program,
            [Interval(0.0, 1.0)],
            AnalysisOptions(use_linear_semantics=False),
            report=report,
        )
        assert report.linear_paths == 0
        assert report.box_paths == 1


class TestBoundQuery:
    def test_normalised_bounds_in_unit_interval(self):
        query = bound_query(simple_observe_model(), Interval(0.0, 1.0))
        assert 0.0 <= query.lower <= query.upper <= 1.0

    def test_query_matches_quadrature(self):
        program = simple_observe_model()
        query = bound_query(program, Interval(0.0, 1.0), AnalysisOptions(score_splits=128))
        numerator, _ = integrate.quad(
            lambda u: stats.norm.pdf(1.1, loc=3 * u, scale=0.25), 0.0, 1.0 / 3.0
        )
        denominator, _ = integrate.quad(
            lambda u: stats.norm.pdf(1.1, loc=3 * u, scale=0.25), 0.0, 1.0
        )
        truth = numerator / denominator
        assert query.contains(truth)
        assert query.width < 0.2

    def test_query_of_impossible_event(self):
        query = bound_query(b.sample(), Interval(2.0, 3.0))
        assert query.lower == 0.0
        assert query.upper == 0.0

    def test_query_of_certain_event(self):
        query = bound_query(b.sample(), Interval(-1.0, 2.0))
        assert query.lower == pytest.approx(1.0)
        assert query.upper == pytest.approx(1.0)

    def test_agreement_with_importance_sampling(self, rng):
        program = b.let(
            "x",
            b.sample(),
            b.seq(b.observe_normal(0.7, 0.2, b.var("x")), b.var("x")),
        )
        target = Interval(0.5, 1.0)
        query = bound_query(program, target, AnalysisOptions(score_splits=96))
        is_result = importance_sampling(program, 20_000, rng)
        estimate = is_result.estimate_probability(target)
        assert query.lower - 0.02 <= estimate <= query.upper + 0.02

    def test_geometric_program_query(self):
        """P(count = 0) for a geometric(1/2) counter is 1/2; recursion is summarised."""
        program = geometric_program(0.5)
        query = bound_query(program, Interval(-0.5, 0.5), AnalysisOptions(max_fixpoint_depth=8))
        assert query.lower <= 0.5 <= query.upper
        assert query.lower > 0.45
        assert query.upper < 0.55

    def test_geometric_bounds_tighten_with_depth(self):
        program = geometric_program(0.5)
        target = Interval(-0.5, 0.5)
        shallow = bound_query(program, target, AnalysisOptions(max_fixpoint_depth=3))
        deep = bound_query(program, target, AnalysisOptions(max_fixpoint_depth=10))
        assert deep.width <= shallow.width + 1e-12


class TestDiscreteAgreement:
    """Table 2 consistency: tight bounds equal to exact enumeration."""

    @pytest.mark.parametrize("case", discrete_suite(), ids=lambda bm: bm.name)
    def test_bounds_agree_with_enumeration(self, case):
        exact = enumerate_posterior(case.program).probability_of(case.query_target)
        query = bound_query(case.program, case.query_target)
        assert query.contains(exact, slack=1e-6)
        assert query.width < 1e-6


class TestHistograms:
    def test_histogram_bounds_cover_posterior(self):
        program = simple_observe_model()
        histogram = bound_posterior_histogram(program, 0.0, 3.0, 6, AnalysisOptions(score_splits=64))
        assert len(histogram.buckets) == 6
        assert histogram.z_lower <= histogram.z_upper
        lower_mass, upper_mass = histogram.covered_mass_bounds()
        assert lower_mass <= 1.0 + 1e-9
        assert upper_mass >= 0.99  # nearly all posterior mass lies in [0, 3]

    def test_histogram_validates_correct_sampler(self, rng):
        program = simple_observe_model()
        histogram = bound_posterior_histogram(program, 0.0, 3.0, 6, AnalysisOptions(score_splits=64))
        is_result = importance_sampling(program, 20_000, rng)
        samples = is_result.resample(10_000, rng)
        report = histogram.validate_samples(samples, tolerance=0.02)
        assert report.consistent

    def test_histogram_flags_wrong_sampler(self, rng):
        program = simple_observe_model()
        histogram = bound_posterior_histogram(program, 0.0, 3.0, 6, AnalysisOptions(score_splits=64))
        wrong_samples = rng.uniform(2.0, 3.0, size=5_000)  # mass far from the posterior
        report = histogram.validate_samples(wrong_samples, tolerance=0.02)
        assert not report.consistent
        assert report.violations > 0
        assert report.details

    def test_histogram_normalised_density(self):
        histogram = bound_posterior_histogram(b.sample(), 0.0, 1.0, 4)
        densities = histogram.normalised_density_bounds()
        for lower, upper in densities:
            assert lower <= 1.0 + 1e-9 <= upper + 1e-6

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            bound_posterior_histogram(b.sample(), 0.0, 1.0, 0)
        with pytest.raises(ValueError):
            bound_posterior_histogram(b.sample(), 1.0, 0.0, 4)

    def test_empty_validation_report(self):
        histogram = bound_posterior_histogram(b.sample(), 0.0, 1.0, 4)
        report = histogram.validate_samples([])
        assert report.checked == 0
        assert report.consistent
