"""The columnar path-set core: PathTable building, fast-path bit-equality, routing.

Four layers of guarantees are pinned here:

* **builder equivalence** — the incremental :class:`PathTableBuilder` (the
  collector behind batch execution and the streamed-query cache tee)
  produces byte-identical images and equal decoded paths to one-shot batch
  encoding, and ``SymbolicExecutionResult.table()`` finalises the collector
  without re-walking;
* **fast-path bit-equality** — ``analyze_table`` of the box and linear
  analyzers returns exactly the floats of ``analyze`` / ``analyze_batch``
  over the decoded paths (property-based over random path shapes plus real
  programs, across chunk slices);
* **routing** — the columnar chunk loop feeds table slices to analyzers
  that implement ``analyze_table`` and transparently materialises
  ``SymbolicPath`` objects for analyzers that do not;
* **end-to-end equivalence** — ``columnar=True`` and ``columnar=False``
  bounds are bit-identical across backends, transports and chunk sizes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    AnalysisOptions,
    Model,
    register_analyzer,
    unregister_analyzer,
)
from repro.analysis.box_analyzer import BoxPathAnalyzer, analyze_table_boxes
from repro.analysis.linear_analyzer import (
    LinearPathAnalyzer,
    analyze_table_linear,
    linear_analysis_applicable,
    linear_table_applicable,
)
from repro.analysis.parallel import _analyze_paths_resolved, _analyze_table_range
from repro.distributions import Bernoulli, Beta, Exponential, Normal, Uniform
from repro.intervals import Interval
from repro.lang import builder as b
from repro.symbolic import (
    ExecutionLimits,
    PathTable,
    PathTableBuilder,
    Relation,
    SConst,
    SPrim,
    SVar,
    SymConstraint,
    SymbolicPath,
    encode_paths,
    symbolic_paths,
)

from helpers import geometric_program, pedestrian_walk_fixpoint, simple_observe_model

_TARGETS = (Interval(0.0, 1.0), Interval(0.5, 2.0), Interval.reals())


def assert_bits_equal(first, second):
    assert len(first) == len(second)
    for a, b_ in zip(first, second):
        assert a.lower == b_.lower, f"lower bounds differ: {a.lower!r} vs {b_.lower!r}"
        assert a.upper == b_.upper, f"upper bounds differ: {a.upper!r} vs {b_.upper!r}"


# ----------------------------------------------------------------------
# Path strategies (mirroring tests/test_arena.py, plus a linear-friendly one)
# ----------------------------------------------------------------------

_DISTS = st.sampled_from(
    [Uniform(0.0, 1.0), Uniform(-2.0, 3.0), Normal(0.0, 1.0), Beta(2.0, 3.0),
     Exponential(1.5), Bernoulli(0.25)]
)
_FLOATS = st.floats(allow_nan=False, allow_infinity=True, width=64)
_SMALL = st.floats(min_value=-4.0, max_value=4.0, allow_nan=False)


def _expr_strategy(variable_count: int):
    leaves = [st.builds(lambda lo, hi: SConst(Interval(min(lo, hi), max(lo, hi))), _FLOATS, _FLOATS)]
    if variable_count > 0:
        leaves.append(st.builds(SVar, st.integers(0, variable_count - 1)))
    leaf = st.one_of(*leaves)
    unary = st.sampled_from(["neg", "abs", "exp", "log", "sqrt", "square"])
    binary = st.sampled_from(["add", "sub", "mul", "min", "max"])
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            st.builds(lambda op, arg: SPrim(op, (arg,)), unary, children),
            st.builds(lambda op, lhs, rhs: SPrim(op, (lhs, rhs)), binary, children, children),
        ),
        max_leaves=6,
    )


def _linear_expr_strategy(variable_count: int):
    """Interval-linear expressions: sums/differences of scaled variables."""
    leaves = [st.builds(lambda v: SConst(Interval.point(v)), _SMALL)]
    if variable_count > 0:
        leaves.append(st.builds(SVar, st.integers(0, variable_count - 1)))
    leaf = st.one_of(*leaves)
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            st.builds(lambda lhs, rhs: SPrim("add", (lhs, rhs)), children, children),
            st.builds(lambda lhs, rhs: SPrim("sub", (lhs, rhs)), children, children),
            st.builds(
                lambda scale, arg: SPrim("mul", (SConst(Interval.point(scale)), arg)),
                _SMALL,
                children,
            ),
        ),
        max_leaves=5,
    )


@st.composite
def _paths_strategy(draw, linear: bool = False):
    count = draw(st.integers(1, 4))
    paths = []
    for _ in range(count):
        variable_count = draw(st.integers(1, 3))
        if linear:
            distributions = tuple(
                draw(st.sampled_from([Uniform(0.0, 1.0), Uniform(-2.0, 3.0)]))
                for _ in range(variable_count)
            )
            expr = _linear_expr_strategy(variable_count)
        else:
            distributions = tuple(draw(_DISTS) for _ in range(variable_count))
            expr = _expr_strategy(variable_count)
        constraints = tuple(
            SymConstraint(draw(expr), draw(st.sampled_from(Relation.ALL)))
            for _ in range(draw(st.integers(0, 2)))
        )
        scores = tuple(draw(expr) for _ in range(draw(st.integers(0, 2))))
        paths.append(
            SymbolicPath(
                result=draw(expr),
                variable_count=variable_count,
                distributions=distributions,
                constraints=constraints,
                scores=scores,
                truncated=draw(st.booleans()),
            )
        )
    return tuple(paths)


_FAST_OPTIONS = AnalysisOptions(
    splits_per_dimension=3, max_boxes_per_path=64, score_splits=4,
    max_score_combinations=64, workers=1, executor="serial",
)


def _outcome(compute):
    """Result-or-error of one analysis route.

    Random expression shapes can legitimately crash the engine (e.g. an
    ``exp`` overflow meeting an infinite grid cell raises from the scalar
    interval loop, columnar or not); the bit-equality contract is that both
    routes behave *identically* — same floats or the same error class.
    """
    try:
        return ("ok", compute())
    except Exception as error:  # noqa: BLE001 - comparing error behaviour
        return ("error", type(error).__name__)


# ----------------------------------------------------------------------
# Builder equivalence
# ----------------------------------------------------------------------


class TestPathTableBuilder:
    def test_incremental_build_matches_batch_encode(self):
        paths = symbolic_paths(
            geometric_program(), ExecutionLimits(max_fixpoint_depth=6)
        ).paths
        builder = PathTableBuilder()
        for path in paths:
            builder.append(path)
        assert builder.to_bytes() == encode_paths(paths)
        assert builder.build().decode_all() == paths
        assert PathTable.from_paths(paths).decode_all() == paths

    def test_roundtrip_through_bytes(self):
        paths = symbolic_paths(simple_observe_model()).paths
        table = PathTable.from_paths(paths)
        reread = PathTable.from_buffer(table.to_bytes())
        assert reread.decode_all() == paths
        assert reread.to_bytes() == table.to_bytes()

    def test_estimate_is_monotone(self):
        paths = symbolic_paths(
            geometric_program(), ExecutionLimits(max_fixpoint_depth=6)
        ).paths
        builder = PathTableBuilder()
        sizes = []
        for path in paths:
            builder.append(path)
            sizes.append(builder.nbytes_estimate)
        assert sizes == sorted(sizes)
        builder.clear()
        assert len(builder) == 0

    def test_execution_result_table_is_cached(self):
        execution = symbolic_paths(
            geometric_program(), ExecutionLimits(max_fixpoint_depth=6)
        )
        table = execution.table()
        assert table is execution.table()  # one table per compiled program
        assert table.decode_all() == execution.paths
        assert table.path_count == execution.path_count

    def test_columnar_accessors_agree_with_decode(self):
        execution = symbolic_paths(
            b.app(pedestrian_walk_fixpoint(), 1.0),
            ExecutionLimits(max_fixpoint_depth=4),
        )
        table = execution.table()
        for index, path in enumerate(execution.paths):
            assert table.variable_count(index) == path.variable_count
            assert table.path_distributions(index) == path.distributions
            assert table.is_truncated(index) == path.truncated
            expr_ids, rel_ids = table.constraint_ids(index)
            assert len(expr_ids) == len(path.constraints)
            for expr_id, rel_id, constraint in zip(expr_ids, rel_ids, path.constraints):
                assert table.decode_expr(int(expr_id)) == constraint.expr
                assert Relation.ALL[int(rel_id)] == constraint.relation
            assert [
                table.decode_expr(int(score_id)) for score_id in table.score_ids(index)
            ] == list(path.scores)
            assert table.decode_expr(table.result_id(index)) == path.result


# ----------------------------------------------------------------------
# Fast-path bit-equality
# ----------------------------------------------------------------------


class TestColumnarBitEquality:
    @settings(max_examples=40, deadline=None)
    @given(paths=_paths_strategy())
    def test_box_table_matches_materialised(self, paths):
        table = PathTable.from_paths(paths)
        analyzer = BoxPathAnalyzer()
        per_path = _outcome(
            lambda: [analyzer.analyze(path, _TARGETS, _FAST_OPTIONS) for path in paths]
        )
        batch = _outcome(lambda: analyzer.analyze_batch(paths, _TARGETS, _FAST_OPTIONS))
        columnar = _outcome(
            lambda: analyzer.analyze_table(table, range(len(paths)), _TARGETS, _FAST_OPTIONS)
        )
        assert columnar == per_path == batch

    @settings(max_examples=40, deadline=None)
    @given(paths=_paths_strategy(linear=True))
    def test_linear_table_matches_materialised(self, paths):
        table = PathTable.from_paths(paths)
        analyzer = LinearPathAnalyzer()
        for index, path in enumerate(paths):
            applicable = linear_analysis_applicable(path)
            assert linear_table_applicable(table, index, _FAST_OPTIONS) == applicable
            if not applicable:
                continue
            assert _outcome(
                lambda: analyze_table_linear(table, index, _TARGETS, _FAST_OPTIONS)
            ) == _outcome(lambda: analyzer.analyze(path, _TARGETS, _FAST_OPTIONS))

    @settings(max_examples=25, deadline=None)
    @given(paths=_paths_strategy(), chunk_size=st.integers(1, 4))
    def test_table_range_matches_materialised_loop_across_chunks(self, paths, chunk_size):
        """The full columnar chunk loop == the materialised chunk loop."""
        table = PathTable.from_paths(paths)
        analyzers = (LinearPathAnalyzer(), BoxPathAnalyzer())
        for start in range(0, len(paths), chunk_size):
            stop = min(start + chunk_size, len(paths))
            columnar = _outcome(
                lambda: _analyze_table_range(
                    table, start, stop, _TARGETS, _FAST_OPTIONS, analyzers
                )
            )
            materialised = _outcome(
                lambda: _analyze_paths_resolved(
                    paths[start:stop], _TARGETS, _FAST_OPTIONS, analyzers
                )
            )
            assert columnar == materialised

    @pytest.mark.parametrize(
        "build,depth",
        [(simple_observe_model, 4), (geometric_program, 8)],
    )
    def test_real_programs_table_range(self, build, depth):
        execution = symbolic_paths(build(), ExecutionLimits(max_fixpoint_depth=depth))
        table = execution.table()
        analyzers = (LinearPathAnalyzer(), BoxPathAnalyzer())
        options = AnalysisOptions(max_fixpoint_depth=depth, score_splits=8)
        columnar = _analyze_table_range(
            table, 0, len(execution.paths), _TARGETS, options, analyzers
        )
        materialised = _analyze_paths_resolved(
            execution.paths, _TARGETS, options, analyzers
        )
        assert columnar == materialised

    def test_pedestrian_depth5_box_only(self):
        term = b.app(pedestrian_walk_fixpoint(), 1.0)
        execution = symbolic_paths(term, ExecutionLimits(max_fixpoint_depth=5))
        table = execution.table()
        options = AnalysisOptions(max_fixpoint_depth=5, analyzers=("box",))
        for index, path in enumerate(execution.paths):
            assert analyze_table_boxes(table, index, _TARGETS, options) == (
                BoxPathAnalyzer().analyze(path, _TARGETS, options)
            )


class TestNormalPdfKernel:
    """The whole-array ``normal_pdf`` lifting replicates the scalar one exactly."""

    _ENDPOINTS = st.one_of(
        st.floats(allow_nan=False, width=64),
        st.sampled_from([0.0, -0.0, 1e-300, 1e300, float("inf"), -float("inf")]),
    )

    @settings(max_examples=300, deadline=None)
    @given(data=st.data())
    def test_kernel_matches_scalar_lifting(self, data):
        import numpy as np

        from repro.analysis.vectorize import ScalarFallback, _normal_pdf_cells
        from repro.distributions.continuous import Normal

        count = data.draw(st.integers(1, 5))
        args = []
        for _ in range(3):
            los, his = [], []
            for _ in range(count):
                a = data.draw(self._ENDPOINTS)
                b = data.draw(self._ENDPOINTS)
                los.append(min(a, b))
                his.append(max(a, b))
            args.append((np.array(los), np.array(his)))
        reference = []
        reference_failed = False
        for cell in range(count):
            try:
                intervals = [
                    Interval(float(column[0][cell]), float(column[1][cell]))
                    for column in args
                ]
                bounds = Normal.pdf_interval_params(*intervals)
                reference.append((bounds.lo, bounds.hi))
            except (ValueError, OverflowError):
                reference_failed = True
                break
        try:
            lo, hi = _normal_pdf_cells(args, count)
            kernel = list(zip(lo.tolist(), hi.tolist()))
            kernel_failed = False
        except (ScalarFallback, OverflowError):
            kernel_failed = True
        # Both routes must agree on success, and on success agree bit-for-bit
        # (an anomaly on either side sends both to the scalar loop / error).
        assert kernel_failed == reference_failed
        if not reference_failed:
            assert kernel == reference


# ----------------------------------------------------------------------
# Routing: analyzers without analyze_table still get materialised paths
# ----------------------------------------------------------------------


class RecordingAnalyzer:
    """A registry-compatible analyzer *without* the columnar hooks."""

    name = "recording"
    seen: list = []

    def applicable(self, path, options) -> bool:
        assert isinstance(path, SymbolicPath), "routing must materialise for applicable()"
        return True

    def analyze(self, path, targets, options):
        assert isinstance(path, SymbolicPath), "analysis must materialise for analyze()"
        RecordingAnalyzer.seen.append(path)
        return [(0.0, 0.0) for _ in targets]


class TableOnlyAnalyzer:
    """An analyzer whose columnar hook records what it is handed."""

    name = "table-only"
    tables: list = []

    def applicable(self, path, options) -> bool:
        return True

    def analyze(self, path, targets, options):
        return [(0.0, 0.0) for _ in targets]

    def applicable_table(self, table, index, options) -> bool:
        return True

    def analyze_table(self, table, indices, targets, options):
        assert isinstance(table, PathTable)
        TableOnlyAnalyzer.tables.append((table, tuple(indices)))
        return [[(0.0, 0.0) for _ in targets] for _ in indices]


class TestColumnarRouting:
    def test_analyzer_without_table_hook_gets_decoded_paths(self):
        paths = symbolic_paths(
            geometric_program(), ExecutionLimits(max_fixpoint_depth=6)
        ).paths
        table = PathTable.from_paths(paths)
        RecordingAnalyzer.seen = []
        contributions = _analyze_table_range(
            table, 0, len(paths), _TARGETS, _FAST_OPTIONS, (RecordingAnalyzer(),)
        )
        assert len(contributions) == len(paths)
        assert [path for path in RecordingAnalyzer.seen] == list(paths)
        assert all(c.analyzer_name == "recording" for c in contributions)

    def test_analyzer_with_table_hook_gets_the_table(self):
        paths = symbolic_paths(
            geometric_program(), ExecutionLimits(max_fixpoint_depth=6)
        ).paths
        table = PathTable.from_paths(paths)
        TableOnlyAnalyzer.tables = []
        contributions = _analyze_table_range(
            table, 0, len(paths), _TARGETS, _FAST_OPTIONS, (TableOnlyAnalyzer(),)
        )
        assert len(contributions) == len(paths)
        ((seen_table, indices),) = TableOnlyAnalyzer.tables
        assert seen_table is table
        assert indices == tuple(range(len(paths)))

    def test_registered_analyzer_without_hook_runs_end_to_end(self):
        register_analyzer("recording", RecordingAnalyzer, replace=True)
        try:
            RecordingAnalyzer.seen = []
            options = AnalysisOptions(
                max_fixpoint_depth=6, workers=2, executor="thread",
                chunk_size=2, analyzers=("recording",), columnar=True,
            )
            with Model(geometric_program(), options) as model:
                bounds = model.bounds(list(_TARGETS))
            assert all(bound.lower == 0.0 and bound.upper == 0.0 for bound in bounds)
            assert RecordingAnalyzer.seen, "analyzer never received materialised paths"
        finally:
            unregister_analyzer("recording")

    def test_truncated_flags_survive_the_columnar_route(self):
        path = SymbolicPath(
            result=SVar(0), variable_count=1, distributions=(Uniform(0.0, 1.0),),
            constraints=(), scores=(), truncated=True,
        )
        table = PathTable.from_paths((path,))
        (contribution,) = _analyze_table_range(
            table, 0, 1, _TARGETS, _FAST_OPTIONS, (BoxPathAnalyzer(),)
        )
        assert contribution.truncated


# ----------------------------------------------------------------------
# End-to-end equivalence (columnar knob never moves a bound)
# ----------------------------------------------------------------------


class TestColumnarEndToEnd:
    @pytest.fixture(scope="class")
    def reference(self):
        options = AnalysisOptions(
            max_fixpoint_depth=9, workers=1, executor="serial", columnar=False
        )
        model = Model(geometric_program(), options)
        return model, model.bounds(list(_TARGETS))

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("chunk_size", [None, 2])
    def test_columnar_matches_materialised(self, reference, executor, chunk_size):
        model, expected = reference
        for columnar in (True, False):
            options = model.options.with_updates(
                workers=2, executor=executor, chunk_size=chunk_size, columnar=columnar
            )
            with Model(model.term, options) as candidate:
                assert_bits_equal(expected, candidate.bounds(list(_TARGETS)))

    def test_columnar_env_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_ANALYSIS_COLUMNAR", raising=False)
        assert AnalysisOptions().columnar
        monkeypatch.setenv("REPRO_ANALYSIS_COLUMNAR", "0")
        assert not AnalysisOptions().columnar
        monkeypatch.setenv("REPRO_ANALYSIS_COLUMNAR", "1")
        assert AnalysisOptions().columnar

    def test_grid_cache_is_safe_under_thread_contention(self):
        """Regression: concurrent grid-LRU eviction must never raise.

        The thread backend shares one PathTable (and its scratch caches)
        across pool threads; with more distinct distribution signatures than
        the LRU cap, a racing eviction used to turn a cache hit into a
        ``KeyError`` and crash the query.
        """
        import concurrent.futures

        from repro.analysis.box_analyzer import _GRID_CACHE_CAP, _table_cell_arrays

        signatures = _GRID_CACHE_CAP + 4
        paths = tuple(
            SymbolicPath(
                result=SVar(0),
                variable_count=count,
                distributions=(Uniform(0.0, 1.0),) * count,
                constraints=(),
                scores=(),
            )
            for count in range(1, signatures + 1)
        )
        table = PathTable.from_paths(paths)
        options = AnalysisOptions(splits_per_dimension=2, max_boxes_per_path=64)

        def hammer(seed: int) -> int:
            for step in range(300):
                index = (seed + step) % len(paths)
                arrays = _table_cell_arrays(
                    table, index, table.path_distributions(index), options
                )
                assert arrays is not None
            return seed

        with concurrent.futures.ThreadPoolExecutor(max_workers=6) as pool:
            futures = [pool.submit(hammer, seed) for seed in range(6)]
            results = [future.result() for future in futures]
        assert results == list(range(6))

    def test_release_worker_arenas_clears_resolved_contexts(self):
        from repro.analysis.parallel import _RESOLVED_CONTEXTS
        from repro.analysis.transport import release_worker_arenas

        _RESOLVED_CONTEXTS["context-segment-name"] = ((), None, ())
        release_worker_arenas()
        assert not _RESOLVED_CONTEXTS

    def test_streamed_columnar_matches(self, reference):
        model, expected = reference
        options = model.options.with_updates(
            workers=2, executor="process", chunk_size=2, stream=True, columnar=True
        )
        with Model(model.term, options) as candidate:
            assert_bits_equal(expected, candidate.bounds(list(_TARGETS)))
