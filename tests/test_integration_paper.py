"""Integration tests that replay the paper's headline scenarios at small scale."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import AnalysisOptions, AnalysisReport, Model
from repro.intervals import Interval
from repro.models import (
    benchmark_by_name,
    cav_example_7,
    discrete_benchmark_by_name,
    pedestrian_bounded_program,
    pedestrian_program,
)


@pytest.mark.slow
class TestPedestrianEndToEnd:
    # One Model for the whole class: both tests query the same options, so the
    # second histogram is served entirely from the compiled-program cache.
    @pytest.fixture(scope="class")
    def pedestrian_model(self):
        return Model(pedestrian_program(), AnalysisOptions(max_fixpoint_depth=4, score_splits=16))

    def test_bounds_contain_importance_sampling(self, pedestrian_model, rng):
        report = AnalysisReport()
        histogram = pedestrian_model.histogram(0.0, 3.0, 4, report=report)

        assert report.truncated_paths > 0
        assert report.linear_paths == report.path_count  # every pedestrian path is linear

        is_result = Model(pedestrian_bounded_program()).sample(4_000, method="importance", rng=rng)
        samples = is_result.resample(4_000, rng)
        validation = histogram.validate_samples(samples, tolerance=0.03)
        assert validation.consistent

    def test_bounds_reject_a_grossly_wrong_posterior(self, pedestrian_model, rng):
        histogram = pedestrian_model.histogram(0.0, 3.0, 4)
        assert pedestrian_model.cache_hits >= 1  # symbolic execution ran once for the class
        wrong = rng.uniform(2.5, 3.0, size=3_000)  # nearly all mass far from the posterior
        # At this reduced depth the normalised lower bounds are small, so the
        # check uses a zero tolerance: any bucket frequency strictly below its
        # guaranteed lower bound is a genuine violation.
        assert not histogram.validate_samples(wrong, tolerance=0.0).consistent


class TestTable1Scenario:
    def test_gubpi_tighter_than_baseline_on_branching_program(self):
        entry = benchmark_by_name("beauquier-3", "Q1")
        model = Model(entry.program)
        bounds = model.probability(entry.target)
        baseline = model.estimate(entry.target, path_budget=3)
        assert bounds.width <= baseline.width + 1e-9
        assert bounds.lower <= 0.5 <= bounds.upper

    def test_herman_exact_value(self):
        entry = benchmark_by_name("herman-3", "Q1")
        bounds = Model(entry.program).probability(entry.target)
        assert bounds.lower == pytest.approx(0.375, abs=1e-6)
        assert bounds.upper == pytest.approx(0.375, abs=1e-6)


class TestTable2Scenario:
    def test_grass_model_agreement_and_value(self):
        case = discrete_benchmark_by_name("grass")
        model = Model(case.program)
        exact = model.exact().probability_of(case.query_target)
        bounds = model.probability(case.query_target)
        assert bounds.contains(exact, slack=1e-9)
        assert 0.6 < exact < 0.8


class TestFig6Scenario:
    def test_unbounded_geometric_vs_truncated_exact(self):
        model = Model(cav_example_7(), AnalysisOptions(max_fixpoint_depth=12))
        bounds = model.probability(Interval(-0.5, 0.5))
        assert bounds.lower <= 0.2 <= bounds.upper
        truncated = model.exact(max_unroll=4, on_limit="truncate")
        # The truncated exact answer differs from the unbounded program's true value.
        assert truncated.probability(0.0) > 0.2 + 0.01


class TestSoundnessSweep:
    """Randomised soundness check: engine bounds contain Monte Carlo estimates."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_linear_models(self, seed):
        rng = np.random.default_rng(seed)
        from repro.lang import builder as b

        threshold = float(rng.uniform(0.3, 1.7))
        observed = float(rng.uniform(0.2, 1.2))
        program = b.let(
            "a",
            b.sample(),
            b.let(
                "c",
                b.sample(),
                b.seq(
                    b.observe_normal(observed, 0.3, b.add(b.var("a"), b.var("c"))),
                    b.if_leq(b.add(b.var("a"), b.var("c")), threshold, b.var("a"), b.add(b.var("a"), 1.0)),
                ),
            ),
        )
        target = Interval(0.0, 1.0)
        model = Model(program, AnalysisOptions(score_splits=48))
        query = model.probability(target)
        estimate = model.sample(20_000, method="importance", rng=rng).estimate_probability(target)
        assert query.lower - 0.03 <= estimate <= query.upper + 0.03
