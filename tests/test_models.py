"""Tests for the benchmark model suites: well-formedness and basic statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exact import enumerate_posterior
from repro.inference import importance_sampling
from repro.intervals import Interval
from repro.lang import type_of_program
from repro.lang.types import REAL
from repro.models import (
    binary_gmm_2d_log_density,
    binary_gmm_2d_program,
    binary_gmm_log_density,
    binary_gmm_program,
    binary_gmm_sbc_model,
    coin_bias_program,
    discrete_suite,
    max_of_normals_program,
    neals_funnel_log_density,
    neals_funnel_program,
    pedestrian_bounded_program,
    pedestrian_program,
    pedestrian_sbc_model,
    probest_suite,
    recursive_suite,
    simulate_pedestrian_distance,
)
from repro.semantics import simulate


class TestSuitesWellFormed:
    def test_probest_suite_complete(self):
        suite = probest_suite()
        assert len(suite) == 18
        names = {entry.name for entry in suite}
        assert {"tug-of-war", "beauquier-3", "herman-3", "ex-fig6", "example4"} <= names
        for entry in suite:
            assert type_of_program(entry.program) == REAL
            assert entry.paper_gubpi[0] <= entry.paper_gubpi[1]

    def test_discrete_suite_complete(self):
        suite = discrete_suite()
        assert len(suite) == 12
        for entry in suite:
            assert type_of_program(entry.program) == REAL

    def test_recursive_suite_complete(self):
        suite = recursive_suite()
        assert len(suite) == 6
        for entry in suite:
            assert type_of_program(entry.program) == REAL
            assert entry.histogram_low < entry.histogram_high

    def test_lookup_helpers(self):
        from repro.models import benchmark_by_name, discrete_benchmark_by_name

        assert benchmark_by_name("herman-3", "Q1").name == "herman-3"
        assert discrete_benchmark_by_name("grass").name == "grass"
        with pytest.raises(KeyError):
            benchmark_by_name("nope", "Q1")
        with pytest.raises(KeyError):
            discrete_benchmark_by_name("nope")


class TestProbestModelsSimulate:
    @pytest.mark.parametrize("entry", probest_suite(), ids=lambda e: e.identifier)
    def test_score_free_and_runnable(self, entry, rng):
        run = simulate(entry.program, rng)
        assert run.weight == 1.0  # the suite is score-free
        assert math.isfinite(run.value)

    def test_herman_immediate_stabilisation_probability(self, rng):
        from repro.models import benchmark_by_name

        entry = benchmark_by_name("herman-3", "Q1")
        hits = 0
        runs = 4_000
        for _ in range(runs):
            if simulate(entry.program, rng).value < 0.5:
                hits += 1
        assert hits / runs == pytest.approx(0.375, abs=0.03)


class TestDiscreteModels:
    def test_known_posteriors(self):
        expectations = {
            "twoCoins": 1.0 / 3.0,
            "bertrand": 2.0 / 3.0,
            "ev-model1": 0.9,
        }
        for name, expected in expectations.items():
            from repro.models import discrete_benchmark_by_name

            case = discrete_benchmark_by_name(name)
            result = enumerate_posterior(case.program)
            assert result.probability_of(case.query_target) == pytest.approx(expected, abs=1e-9)

    def test_burglar_alarm_posterior_is_small_but_positive(self):
        from repro.models import discrete_benchmark_by_name

        case = discrete_benchmark_by_name("burglarAlarm")
        posterior = enumerate_posterior(case.program).probability_of(case.query_target)
        assert 0.001 < posterior < 0.1

    @pytest.mark.parametrize("entry", discrete_suite(), ids=lambda e: e.name)
    def test_posterior_well_defined(self, entry):
        result = enumerate_posterior(entry.program)
        assert result.normalising_constant > 0
        total = sum(result.as_normalised_dict().values())
        assert total == pytest.approx(1.0)


class TestPedestrian:
    def test_programs_typecheck(self):
        assert type_of_program(pedestrian_program()) == REAL
        assert type_of_program(pedestrian_bounded_program()) == REAL

    def test_bounded_walk_terminates_quickly(self, rng):
        program = pedestrian_bounded_program(max_distance=5.0)
        for _ in range(20):
            run = simulate(program, rng)
            assert 0.0 <= run.value <= 3.0

    def test_simulated_distance_consistent_with_start(self, rng):
        for start in (0.0, 0.5, 2.0):
            distance = simulate_pedestrian_distance(start, rng)
            assert distance >= 0.0
            if start == 0.0:
                assert distance == 0.0

    def test_sbc_model_round_trip(self, rng):
        model = pedestrian_sbc_model()
        theta = model.prior_sampler(rng)
        assert 0.0 <= theta <= 3.0
        data = model.data_generator(theta, rng)
        program = model.program_builder(data)
        assert type_of_program(program) == REAL

    def test_posterior_concentrates_near_observed_distance(self, rng):
        """IS on the pedestrian should put most mass on starts below ~2 km."""
        result = importance_sampling(pedestrian_bounded_program(), 4_000, rng)
        assert result.estimate_probability(Interval(0.0, 2.0)) > 0.9


class TestContinuousModels:
    def test_programs_typecheck(self):
        for program in (
            coin_bias_program(),
            max_of_normals_program(),
            binary_gmm_program(),
            binary_gmm_2d_program(),
            neals_funnel_program(),
        ):
            assert type_of_program(program) == REAL

    def test_coin_bias_posterior_mean(self, rng):
        """Beta(2,2) prior with flips (1,1,0,1,0) has posterior mean 5/9."""
        result = importance_sampling(coin_bias_program(), 30_000, rng)
        assert result.posterior_mean() == pytest.approx(5.0 / 9.0, abs=0.02)

    def test_max_of_normals_mean(self, rng):
        """E[max(X, Y)] = 1/sqrt(pi) for two standard normals."""
        result = importance_sampling(max_of_normals_program(), 30_000, rng)
        assert result.posterior_mean() == pytest.approx(1.0 / math.sqrt(math.pi), abs=0.03)

    def test_binary_gmm_posterior_symmetric(self, rng):
        result = importance_sampling(binary_gmm_program(observation=1.0), 30_000, rng)
        positive = result.estimate_probability(Interval(0.0, math.inf))
        assert positive == pytest.approx(0.5, abs=0.03)

    def test_binary_gmm_log_density_consistency(self):
        assert binary_gmm_log_density(1.0) == pytest.approx(binary_gmm_log_density(-1.0))
        assert binary_gmm_2d_log_density([1.0, -0.5]) == pytest.approx(
            binary_gmm_log_density(1.0, 0.6) + binary_gmm_log_density(-0.5, -0.4)
        )

    def test_funnel_log_density_matches_program_marginal(self, rng):
        result = importance_sampling(neals_funnel_program(), 20_000, rng)
        # The program returns y ~ N(0, 3).
        assert result.posterior_mean() == pytest.approx(0.0, abs=0.1)
        assert np.std(result.values()) == pytest.approx(3.0, abs=0.15)
        assert neals_funnel_log_density([0.0, 0.0]) > neals_funnel_log_density([0.0, 5.0])

    def test_sbc_model_builders(self, rng):
        model = binary_gmm_sbc_model()
        theta = model.prior_sampler(rng)
        data = model.data_generator(theta, rng)
        assert type_of_program(model.program_builder(data)) == REAL


class TestRecursiveModels:
    @pytest.mark.parametrize("entry", recursive_suite(), ids=lambda e: e.name)
    def test_models_simulate(self, entry, rng):
        for _ in range(5):
            run = simulate(entry.program, rng)
            assert math.isfinite(run.value)
            assert run.weight >= 0.0

    def test_cav_example_7_is_geometric(self, rng):
        from repro.models import cav_example_7

        values = [simulate(cav_example_7(), rng).value for _ in range(4_000)]
        assert np.mean(values) == pytest.approx(4.0, abs=0.3)  # mean of Geometric(0.2) successes

    def test_param_estimation_posterior_prefers_low_p(self, rng):
        """Halting at 1 (the start) is most likely when the walk is balanced-to-left."""
        from repro.models import param_estimation_recursive

        result = importance_sampling(param_estimation_recursive(), 8_000, rng)
        assert result.effective_sample_size() > 100
