"""Differential fuzzing over random SPCF programs (:func:`helpers.random_spcf_program`).

Golden files pin a handful of hand-picked workloads; this suite drives the
engine over *generated* programs instead, checking relations that must hold
for every program rather than exact numbers:

* **Analyzer agreement** — the box-only engine and the default
  (linear-first) engine both compute sound enclosures of the same
  denotation, so their bounds must overlap on every target;
* **Backend identity** — dispatching the same path set through the socket
  work-queue must reproduce the in-process floats bit for bit;
* **Refinement containment** — gap-directed refinement only ever narrows
  the uniform sweep's bounds.

Budgets are deliberately tiny (levels scale *from* the base), so a hundred
generated programs stay in CI-friendly territory.
"""

from __future__ import annotations

import functools
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import random_spcf_program
from repro import AnalysisOptions, Interval
from repro.analysis import analyze_execution
from repro.analysis.model import CompiledProgram
from repro.symbolic import ExecutionLimits

TARGETS = (Interval(0.0, 1.0), Interval(-math.inf, math.inf))

TINY = dict(
    splits_per_dimension=2,
    max_boxes_per_path=16,
    score_splits=2,
    max_score_combinations=4,
)

LIMITS = ExecutionLimits(max_fixpoint_depth=2, max_paths=60)

seeds = st.integers(min_value=0, max_value=10_000)


@functools.lru_cache(maxsize=256)
def compiled(seed: int) -> CompiledProgram:
    """One symbolic execution per generator seed, shared across properties."""
    return CompiledProgram.compile(random_spcf_program(seed, max_samples=2), LIMITS)


def as_pairs(bounds):
    return [(bound.lower, bound.upper) for bound in bounds]


def test_generator_is_deterministic_and_varied():
    from repro.symbolic import fingerprint_term

    prints = {fingerprint_term(random_spcf_program(seed)) for seed in range(40)}
    # Distinct seeds explore distinct programs…
    assert len(prints) > 30
    # …and equal seeds reproduce the exact same term.
    assert fingerprint_term(random_spcf_program(7)) == fingerprint_term(random_spcf_program(7))


def test_generator_covers_the_feature_axes():
    """Across a seed range the generator produces every path shape we rely on."""
    truncated = multi_path = False
    for seed in range(60):
        execution = compiled(seed).execution
        truncated = truncated or execution.truncated_paths > 0
        multi_path = multi_path or len(execution.paths) > 1
        if truncated and multi_path:
            break
    assert truncated, "no seed produced truncated (depth-limited) paths"
    assert multi_path, "no seed produced branching paths"


@settings(max_examples=100, deadline=None)
@given(seed=seeds)
def test_box_and_linear_bounds_overlap(seed):
    """Two sound enclosures of the same denotation must intersect."""
    program = compiled(seed)
    default = analyze_execution(program.execution, TARGETS, AnalysisOptions(**TINY))
    box_only = analyze_execution(
        program.execution, TARGETS, AnalysisOptions(analyzers=("box",), **TINY)
    )
    for one, other in zip(default, box_only):
        assert max(one.lower, other.lower) <= min(one.upper, other.upper) + 1e-9, (
            f"seed {seed}: disjoint enclosures {one} vs {other}"
        )
        assert one.lower >= -1e-12 and other.lower >= -1e-12


@settings(max_examples=100, deadline=None)
@given(seed=seeds)
def test_refined_bounds_contained_in_unrefined(seed):
    program = compiled(seed)
    options = AnalysisOptions(refine="gap", refine_max_rounds=1, **TINY)
    unrefined = analyze_execution(
        program.execution, TARGETS, options.with_updates(refine="off")
    )
    refined = analyze_execution(program.execution, TARGETS, options)
    for narrow, wide in zip(refined, unrefined):
        assert narrow.lower >= wide.lower, f"seed {seed}: lower bound regressed"
        assert narrow.upper <= wide.upper, f"seed {seed}: upper bound regressed"


@pytest.mark.slow
class TestSocketDifferential:
    """Serial vs socket dispatch over generated programs, one shared queue."""

    @pytest.fixture(scope="class")
    def socket_pool(self):
        from repro.analysis.parallel import ParallelAnalysisExecutor

        pool = ParallelAnalysisExecutor(workers=2, kind="socket")
        yield pool
        pool.close()

    @settings(
        max_examples=100, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=seeds)
    def test_serial_vs_socket_bit_identical(self, socket_pool, seed):
        program = compiled(seed)
        options = AnalysisOptions(**TINY)
        serial = analyze_execution(program.execution, TARGETS, options)
        # Through the engine entry point, so an ambient REPRO_ANALYSIS_REFINE
        # default refines both legs identically (CI runs this suite both ways).
        socketed = analyze_execution(
            program.execution, TARGETS, options, executor=socket_pool
        )
        assert as_pairs(socketed) == as_pairs(serial), f"seed {seed}"

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=seeds)
    def test_refinement_serial_vs_socket_bit_identical(self, socket_pool, seed):
        """Refinement jobs ride the queue without moving a float."""
        from repro.analysis import refine_execution

        program = compiled(seed)
        options = AnalysisOptions(refine="gap", refine_max_rounds=2, **TINY)
        serial = refine_execution(program.execution, TARGETS, options)
        socketed = refine_execution(
            program.execution, TARGETS, options, executor=socket_pool
        )
        assert as_pairs(socketed) == as_pairs(serial), f"seed {seed}"
