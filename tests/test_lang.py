"""Tests for the SPCF abstract syntax: traversal, substitution, builder sugar."""

from __future__ import annotations

import pytest

from repro.distributions import Normal, Uniform
from repro.intervals import Interval
from repro.lang import (
    App,
    Const,
    Fix,
    If,
    IntervalConst,
    Lam,
    Prim,
    Sample,
    Score,
    Var,
    contains_fixpoint,
    free_variables,
    is_value,
    pretty,
    substitute,
    subterms,
)
from repro.lang import builder as b


class TestBuilders:
    def test_let_desugars_to_beta_redex(self):
        term = b.let("x", 1.0, b.var("x"))
        assert isinstance(term, App)
        assert isinstance(term.func, Lam)
        assert term.func.param == "x"

    def test_seq_binds_throwaway(self):
        term = b.seq(b.score(1.0), 2.0)
        assert isinstance(term, App)
        assert isinstance(term.func, Lam)
        assert term.func.param == "_"

    def test_choice_desugars_to_sample_comparison(self):
        term = b.choice(0.25, 1.0, 2.0)
        assert isinstance(term, If)
        assert isinstance(term.cond, Prim)
        assert term.cond.op == "sub"
        assert isinstance(term.cond.args[0], Sample)

    def test_observe_normal(self):
        term = b.observe(b.var("x"), Normal(1.1, 0.1))
        assert isinstance(term, Score)
        assert isinstance(term.arg, Prim)
        assert term.arg.op == "normal_pdf"
        assert term.arg.args[0] == Const(1.1)

    def test_observe_uniform(self):
        term = b.observe(0.5, Uniform(0.0, 2.0))
        assert isinstance(term.arg, Prim) and term.arg.op == "uniform_pdf"

    def test_observe_unsupported(self):
        from repro.distributions import Poisson

        with pytest.raises(TypeError):
            b.observe(1.0, Poisson(2.0))

    def test_numeric_promotion(self):
        term = b.add(1, 2.5)
        assert term.args == (Const(1.0), Const(2.5))

    def test_let_many_nests_in_order(self):
        term = b.let_many([("a", 1.0), ("c", 2.0)], b.add(b.var("a"), b.var("c")))
        assert isinstance(term, App)
        assert term.func.param == "a"
        inner = term.func.body
        assert isinstance(inner, App)
        assert inner.func.param == "c"

    def test_call_curries(self):
        f = b.lam("x", b.lam("y", b.add(b.var("x"), b.var("y"))))
        term = b.call(f, 1.0, 2.0)
        assert isinstance(term, App)
        assert isinstance(term.func, App)

    def test_if_between_single_evaluation(self):
        term = b.if_between(b.sample(), 0.2, 0.8, 1.0, 0.0)
        samples = [t for t in subterms(term) if isinstance(t, Sample)]
        assert len(samples) == 1

    def test_interval_const(self):
        term = b.interval_const(0.0, 2.0)
        assert isinstance(term, IntervalConst)
        assert term.interval == Interval(0.0, 2.0)

    def test_prim_arity_check(self):
        with pytest.raises(ValueError):
            Prim("add", (Const(1.0), Const(2.0), Const(3.0)))


class TestFreeVariables:
    def test_simple_cases(self):
        assert free_variables(Var("x")) == {"x"}
        assert free_variables(Const(1.0)) == frozenset()
        assert free_variables(b.add(Var("x"), Var("y"))) == {"x", "y"}

    def test_lambda_binds(self):
        assert free_variables(Lam("x", b.add(Var("x"), Var("y")))) == {"y"}

    def test_fix_binds_both_names(self):
        term = Fix("f", "x", b.add(Var("f"), b.add(Var("x"), Var("z"))))
        assert free_variables(term) == {"z"}

    def test_let_scoping(self):
        term = b.let("x", Var("y"), Var("x"))
        assert free_variables(term) == {"y"}


class TestSubstitution:
    def test_substitute_free_variable(self):
        term = substitute(b.add(Var("x"), Var("y")), "x", Const(3.0))
        assert term == b.add(Const(3.0), Var("y"))

    def test_substitute_respects_binding(self):
        term = Lam("x", Var("x"))
        assert substitute(term, "x", Const(1.0)) == term

    def test_capture_avoidance(self):
        # (λx. x + y)[x / y] must not capture the substituted x.
        term = Lam("x", b.add(Var("x"), Var("y")))
        result = substitute(term, "y", Var("x"))
        assert isinstance(result, Lam)
        assert result.param != "x"
        assert free_variables(result) == {"x"}

    def test_capture_avoidance_fix(self):
        term = Fix("f", "x", b.add(Var("x"), Var("y")))
        result = substitute(term, "y", Var("x"))
        assert isinstance(result, Fix)
        assert free_variables(result) == {"x"}

    def test_substitute_in_all_constructs(self):
        term = If(Var("c"), Score(Var("c")), Prim("neg", (Var("c"),)))
        result = substitute(term, "c", Const(0.5))
        assert result == If(Const(0.5), Score(Const(0.5)), Prim("neg", (Const(0.5),)))


class TestTraversal:
    def test_subterms_preorder(self):
        term = b.add(Const(1.0), Const(2.0))
        nodes = list(subterms(term))
        assert nodes[0] is term
        assert Const(1.0) in nodes and Const(2.0) in nodes

    def test_contains_fixpoint(self):
        assert not contains_fixpoint(b.add(1.0, 2.0))
        assert contains_fixpoint(b.app(Fix("f", "x", Var("x")), 1.0))

    def test_is_value(self):
        assert is_value(Const(1.0))
        assert is_value(Lam("x", Var("x")))
        assert is_value(IntervalConst(Interval(0.0, 1.0)))
        assert not is_value(b.add(1.0, 2.0))
        assert not is_value(Sample())


class TestPrettyPrinter:
    def test_pretty_let(self):
        text = pretty(b.let("x", b.sample(), b.var("x")))
        assert "let x = sample" in text

    def test_pretty_infix(self):
        assert pretty(b.add(1.0, 2.0)) == "(1 + 2)"

    def test_pretty_fix_and_if(self):
        text = pretty(Fix("f", "x", If(Var("x"), Const(0.0), App(Var("f"), Var("x")))))
        assert "μf x." in text
        assert "if" in text

    def test_pretty_score_and_interval(self):
        assert pretty(Score(Const(2.0))) == "score(2)"
        assert pretty(IntervalConst(Interval(0.0, 1.0))) == "[0, 1]"
