"""Guaranteed bounds for recursive models (the Figure 6 gallery).

Exact solvers cannot handle unbounded loops/recursion; GuBPI summarises the
recursion beyond a depth limit with its interval type system and still returns
sound bounds.  This example prints histogram bounds for each of the six
recursive models — through the ``repro.Model`` facade — and cross-checks them
against importance sampling via ``model.sample``.

Run with::

    python examples/recursive_models.py [--model cav-example-7] [--depth 8]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import AnalysisOptions, Model
from repro.models import recursive_suite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", type=str, default=None, help="run a single model by name")
    parser.add_argument("--depth", type=int, default=None, help="override the fixpoint depth")
    parser.add_argument("--buckets", type=int, default=None, help="override the bucket count")
    args = parser.parse_args()

    rng = np.random.default_rng(11)
    for benchmark in recursive_suite():
        if args.model is not None and benchmark.name != args.model:
            continue
        depth = args.depth if args.depth is not None else benchmark.fixpoint_depth
        buckets = args.buckets if args.buckets is not None else benchmark.buckets
        print(f"=== {benchmark.name}: {benchmark.description} (depth {depth}) ===")
        model = Model(
            benchmark.program,
            AnalysisOptions(max_fixpoint_depth=depth, score_splits=16, splits_per_dimension=6),
        )
        histogram = model.histogram(benchmark.histogram_low, benchmark.histogram_high, buckets)
        for line in histogram.summary_lines():
            print(line)

        is_result = model.sample(4_000, method="importance", rng=rng)
        samples = is_result.resample(4_000, rng)
        report = histogram.validate_samples(samples, tolerance=0.03)
        print(f"importance-sampling histogram consistent with the bounds: {report.consistent}")
        print()


if __name__ == "__main__":
    main()
