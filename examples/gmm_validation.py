"""Detecting a mode-collapsed sampler on the binary Gaussian mixture (Fig. 5c).

The binary GMM has a symmetric, bimodal posterior over the mean ``μ``.  An
HMC chain started in one mode rarely crosses to the other, so its histogram
puts (almost) all mass on one side — which the guaranteed bounds expose: the
empirical frequency of the missed mode falls below the guaranteed lower bound.

Run with::

    python examples/gmm_validation.py
"""

from __future__ import annotations

import numpy as np

from repro import AnalysisOptions, Model
from repro.inference import hmc
from repro.models import binary_gmm_log_density, binary_gmm_program


def main() -> None:
    rng = np.random.default_rng(7)
    model = Model(
        binary_gmm_program(observation=1.0),
        AnalysisOptions(splits_per_dimension=160, use_linear_semantics=False),
    )

    print("=== guaranteed bounds on the posterior of mu ===")
    histogram = model.histogram(-3.0, 3.0, bucket_count=12)
    for line in histogram.summary_lines():
        print(line)
    print()

    print("=== importance sampling (unbiased, multi-modal) ===")
    is_result = model.sample(20_000, method="importance", rng=rng)
    is_samples = is_result.resample(10_000, rng)
    is_report = histogram.validate_samples(is_samples, tolerance=0.02)
    print(f"IS histogram consistent with the bounds: {is_report.consistent}")
    print()

    print("=== HMC started in the positive mode ===")
    # Density-level HMC (not the program-level "hmc" sampler): the broken
    # chain is deliberately initialised inside one mode of the known density.
    result = hmc(
        lambda x: binary_gmm_log_density(float(x[0]), observation=1.0),
        initial=[1.0],
        num_samples=2_000,
        rng=rng,
        step_size=0.05,
        leapfrog_steps=10,
    )
    hmc_samples = result.first_coordinate()
    negative_share = float(np.mean(hmc_samples < 0.0))
    print(f"fraction of HMC samples in the negative mode: {negative_share:.3f} (should be ~0.5)")
    hmc_report = histogram.validate_samples(hmc_samples, tolerance=0.02)
    print(f"HMC histogram consistent with the bounds: {hmc_report.consistent}")
    for detail in hmc_report.details[:4]:
        print("  violation:", detail)


if __name__ == "__main__":
    main()
