"""Probability estimation: GuBPI bounds vs the path-exploration baseline (Table 1).

For each score-free benchmark of the Table 1 suite one ``repro.Model``
computes

* guaranteed bounds with the GuBPI engine (``model.probability``), and
* the looser/faster bounds of the Sankaranarayanan-et-al.-style baseline that
  only explores a bounded number of paths (``model.estimate``),

and prints them side by side with the values the paper reports for the
original tools.

Run with::

    python examples/probability_estimation.py [--path-budget 8]
"""

from __future__ import annotations

import argparse
import time

from repro import AnalysisOptions, Model
from repro.models import probest_suite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--path-budget", type=int, default=8, help="path budget of the baseline")
    args = parser.parse_args()

    header = (
        f"{'benchmark':22s} {'GuBPI (ours)':>22s} {'baseline (ours)':>22s} "
        f"{'GuBPI (paper)':>20s} {'[56] (paper)':>20s}"
    )
    print(header)
    print("-" * len(header))
    options = AnalysisOptions(max_fixpoint_depth=10)
    for benchmark in probest_suite():
        model = Model(benchmark.program, options)
        start = time.perf_counter()
        bounds = model.probability(benchmark.target)
        gubpi_time = time.perf_counter() - start
        try:
            baseline = model.estimate(benchmark.target, path_budget=args.path_budget)
            baseline_text = f"[{baseline.lower:.4f}, {baseline.upper:.4f}]"
        except Exception as error:  # pragma: no cover - informational only
            baseline_text = f"n/a ({type(error).__name__})"
        print(
            f"{benchmark.identifier:22s} [{bounds.lower:.4f}, {bounds.upper:.4f}]"
            f" ({gubpi_time:5.2f}s) {baseline_text:>22s}"
            f" [{benchmark.paper_gubpi[0]:.4f}, {benchmark.paper_gubpi[1]:.4f}]"
            f" [{benchmark.paper_tool56[0]:.4f}, {benchmark.paper_tool56[1]:.4f}]"
        )


if __name__ == "__main__":
    main()
