"""Quickstart: guaranteed posterior bounds for a tiny Bayesian model.

The model: a quantity ``x`` has a uniform prior on [0, 3] and is observed to
be 1.1 with Gaussian noise (σ = 0.25).  We ask for guaranteed bounds on the
posterior probability that ``x ≤ 1`` and for histogram-shaped bounds on the
whole posterior, then cross-check them against importance sampling.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import AnalysisOptions, bound_posterior_histogram, bound_query
from repro.inference import importance_sampling
from repro.intervals import Interval
from repro.lang import builder as b
from repro.lang.pretty import pretty


def build_model():
    """``let x = 3 * sample in observe 1.1 from Normal(x, 0.25); x``"""
    return b.let(
        "x",
        b.mul(3.0, b.sample()),
        b.seq(b.observe_normal(1.1, 0.25, b.var("x")), b.var("x")),
    )


def main() -> None:
    program = build_model()
    print("The SPCF program under analysis:")
    print(pretty(program))
    print()

    options = AnalysisOptions(score_splits=128)

    # Guaranteed bounds on a single posterior query.
    query = bound_query(program, Interval(0.0, 1.0), options)
    print(f"Guaranteed bounds on Pr[x <= 1 | data]: [{query.lower:.4f}, {query.upper:.4f}]")
    print(
        "Unnormalised evidence Z is guaranteed to lie in "
        f"[{query.normalising_constant.lower:.5f}, {query.normalising_constant.upper:.5f}]"
    )
    print()

    # Histogram-shaped bounds on the full posterior.
    histogram = bound_posterior_histogram(program, 0.0, 3.0, bucket_count=12, options=options)
    print("Histogram bounds on the posterior of x:")
    for line in histogram.summary_lines():
        print(line)
    print()

    # Cross-check with likelihood-weighted importance sampling.
    rng = np.random.default_rng(20220613)
    result = importance_sampling(program, num_samples=20_000, rng=rng)
    estimate = result.estimate_probability(Interval(0.0, 1.0))
    print(f"Importance sampling estimate of Pr[x <= 1 | data]: {estimate:.4f}")
    print(f"Estimate inside the guaranteed bounds: {query.contains(estimate)}")

    samples = result.resample(5_000, rng)
    report = histogram.validate_samples(samples, tolerance=0.02)
    print(
        f"Sampler histogram consistent with the guaranteed bounds: {report.consistent} "
        f"({report.violations}/{report.checked} buckets violated)"
    )


if __name__ == "__main__":
    main()
