"""Quickstart: guaranteed posterior bounds for a tiny Bayesian model.

The model: a quantity ``x`` has a uniform prior on [0, 3] and is observed to
be 1.1 with Gaussian noise (σ = 0.25).  We wrap it in a ``repro.Model``, ask
for guaranteed bounds on the posterior probability that ``x ≤ 1`` and for
histogram-shaped bounds on the whole posterior — both served from a single
cached symbolic execution — then cross-check them against importance sampling
via the same facade.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import AnalysisOptions, Interval, Model
from repro.lang import builder as b
from repro.lang.pretty import pretty


def build_model() -> Model:
    """``let x = 3 * sample in observe 1.1 from Normal(x, 0.25); x``"""
    program = b.let(
        "x",
        b.mul(3.0, b.sample()),
        b.seq(b.observe_normal(1.1, 0.25, b.var("x")), b.var("x")),
    )
    return Model(program, AnalysisOptions(score_splits=128))


def main() -> None:
    model = build_model()
    print("The SPCF program under analysis:")
    print(pretty(model.term))
    print()

    # Guaranteed bounds on a single posterior query.  The first query compiles
    # the program (runs symbolic execution); everything below reuses the cache.
    query = model.probability(Interval(0.0, 1.0))
    print(f"Guaranteed bounds on Pr[x <= 1 | data]: [{query.lower:.4f}, {query.upper:.4f}]")
    print(
        "Unnormalised evidence Z is guaranteed to lie in "
        f"[{query.normalising_constant.lower:.5f}, {query.normalising_constant.upper:.5f}]"
    )
    print()

    # Histogram-shaped bounds on the full posterior — served from the cache.
    histogram = model.histogram(0.0, 3.0, bucket_count=12)
    print("Histogram bounds on the posterior of x:")
    for line in histogram.summary_lines():
        print(line)
    print(f"(symbolic executions run: {model.compile_count}, cache hits: {model.cache_hits})")
    print()

    # Cross-check with likelihood-weighted importance sampling.
    rng = np.random.default_rng(20220613)
    result = model.sample(20_000, method="importance", rng=rng)
    estimate = result.estimate_probability(Interval(0.0, 1.0))
    print(f"Importance sampling estimate of Pr[x <= 1 | data]: {estimate:.4f}")
    print(f"Estimate inside the guaranteed bounds: {query.contains(estimate)}")

    samples = result.resample(5_000, rng)
    report = histogram.validate_samples(samples, tolerance=0.02)
    print(
        f"Sampler histogram consistent with the guaranteed bounds: {report.consistent} "
        f"({report.violations}/{report.checked} buckets violated)"
    )


if __name__ == "__main__":
    main()
