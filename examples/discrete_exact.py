"""Exact discrete inference vs guaranteed bounds (the Table 2 consistency check).

For every finite discrete benchmark (burglar alarm, sprinkler network, ...)
one ``repro.Model`` fronts both engines: ``model.exact()`` enumerates the
posterior and ``model.probability()`` computes guaranteed bounds; on these
programs the bounds must be tight and agree with enumeration.

Run with::

    python examples/discrete_exact.py
"""

from __future__ import annotations

import time

from repro import Model
from repro.models import discrete_suite


def main() -> None:
    print(f"{'benchmark':18s} {'query':32s} {'exact':>8s} {'GuBPI bounds':>22s} {'agree':>6s}")
    print("-" * 92)
    for benchmark in discrete_suite():
        model = Model(benchmark.program)

        start = time.perf_counter()
        exact = model.exact().probability_of(benchmark.query_target)
        enumeration_time = time.perf_counter() - start

        start = time.perf_counter()
        bounds = model.probability(benchmark.query_target)
        gubpi_time = time.perf_counter() - start

        agrees = bounds.contains(exact, slack=1e-6) and bounds.width < 1e-6
        print(
            f"{benchmark.name:18s} {benchmark.query_description:32s} {exact:8.4f} "
            f"[{bounds.lower:8.4f}, {bounds.upper:8.4f}] {'yes' if agrees else 'NO':>6s}"
            f"   (enum {enumeration_time * 1000:.1f} ms, GuBPI {gubpi_time * 1000:.1f} ms)"
        )


if __name__ == "__main__":
    main()
