"""Bounds as a service: a multi-tenant server, streamed queries, shared cache.

This demo runs the whole service stack inside one process:

1. start the asyncio bounds server on a loopback port
   (:func:`repro.service.serve_in_background` — in production you would run
   ``python -m repro.service.server --bind 0.0.0.0:7753`` instead),
2. submit a posterior-bound query for an SPCF program as **source text**
   over TCP and get back the exact floats a local ``Model`` would compute,
3. stream a query and watch **anytime partial bounds** arrive before path
   exploration finishes,
4. let several "tenants" (threads with their own clients) query the same
   program concurrently and show the shared compiled-program cache serving
   all but the first from one symbolic execution, and
5. run one query through the distributed ``executor="socket"`` work queue —
   real worker processes fed over TCP — at bit-identical bounds.

Run with::

    python examples/service_demo.py
"""

from __future__ import annotations

import threading

from repro import AnalysisOptions, Interval, Model
from repro.service import ServiceClient, serve_in_background

#: A branchy SPCF model: two uniform samples, a comparison branch, and a
#: soft observation on each side.  ``(if c a b)`` takes ``a`` when c <= 0.
PROGRAM = """
(let x (sample uniform 0 1)
  (let y (sample uniform 0 1)
    (if (- x y)
        (let z (score (+ 0.5 x)) (+ x y))
        (let z (score (- 1.5 x)) (* x y)))))
"""

TARGETS = [Interval(0.0, 0.5), Interval(0.5, 1.0)]


def main() -> None:
    with serve_in_background("127.0.0.1:0") as server:
        print(f"bounds server listening on {server.endpoint}")

        with ServiceClient(server.endpoint) as client:
            # --- one cold query over the wire ---------------------------
            reply = client.bounds(PROGRAM, TARGETS)
            print(f"\ncold query ({reply.cache}, {reply.paths} paths):")
            for target, bound in zip(TARGETS, reply.bounds):
                print(f"  Pr[result in {target}]  ∝  [{bound.lower:.6f}, {bound.upper:.6f}]")

            # The service contract: the same floats a local Model computes.
            local = Model.parse(PROGRAM, AnalysisOptions(workers=1, executor="serial"))
            for bound, ours in zip(reply.bounds, local.bounds(TARGETS)):
                assert bound.lower == ours.lower and bound.upper == ours.upper
            print("  (bit-identical to a local in-process run)")

            # --- a streamed query: anytime partial bounds ---------------
            # A non-default fixpoint depth gives a distinct canonical hash,
            # so this is a cold (cache-miss) query — the only kind that
            # streams: a cache hit answers from the compiled program at
            # once, with nothing to report early.
            print("\nstreamed query:")
            reply = client.bounds(
                PROGRAM,
                TARGETS,
                options={"max_fixpoint_depth": 8},
                stream=True,
                on_partial=lambda bounds, done: print(
                    f"  partial after {done} path(s): "
                    f"lower >= {bounds[0].lower:.6f} for {TARGETS[0]}"
                ),
            )
            print(f"  final: [{reply.bounds[0].lower:.6f}, {reply.bounds[0].upper:.6f}]")

        # --- several tenants share one compiled-program cache -----------
        def tenant(name: str) -> None:
            with ServiceClient(server.endpoint) as mine:
                answer = mine.bounds(PROGRAM, TARGETS)
                print(f"  tenant {name}: cache={answer.cache}")

        print("\nfour concurrent tenants, one cache:")
        threads = [threading.Thread(target=tenant, args=(f"t{i}",)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        with ServiceClient(server.endpoint) as client:
            cache = client.stats()["cache"]
            print(
                f"  server cache: {cache['entries']} compiled program(s), "
                f"{cache['hits']} hits, {cache['misses']} misses"
            )

            # --- distributed execution over the TCP work queue ----------
            print("\nsocket executor (2 worker processes over TCP):")
            reply = client.bounds(
                PROGRAM,
                TARGETS,
                options={"executor": "socket", "workers": 2, "socket_spawn_workers": 2},
            )
            print(f"  [{reply.bounds[0].lower:.6f}, {reply.bounds[0].upper:.6f}] — same floats, remote workers")


if __name__ == "__main__":
    main()
