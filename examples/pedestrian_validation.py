"""The pedestrian example: using guaranteed bounds to referee IS vs HMC.

Reproduces the narrative of Figures 1 and 7 (at laptop scale): run importance
sampling and a fixed-dimension (truncated) HMC sampler on the pedestrian
model, compute GuBPI-style guaranteed bounds on the posterior of the starting
point, and check which sampler's histogram is consistent with them.  Both the
bounds and the samplers run through the ``repro.Model`` facade.

Run with::

    python examples/pedestrian_validation.py [--depth 5] [--is-samples 4000] [--hmc-samples 300]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import AnalysisOptions, Model
from repro.models import pedestrian_bounded_program, pedestrian_program


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--depth", type=int, default=5, help="fixpoint unrolling depth for the bounds")
    parser.add_argument("--buckets", type=int, default=6, help="number of histogram buckets on [0, 3]")
    parser.add_argument("--is-samples", type=int, default=4000)
    parser.add_argument("--hmc-samples", type=int, default=200)
    parser.add_argument("--hmc-dimension", type=int, default=5, help="trace truncation used by HMC")
    args = parser.parse_args()

    rng = np.random.default_rng(1)
    model = Model(
        pedestrian_program(),
        AnalysisOptions(max_fixpoint_depth=args.depth, score_splits=24),
    )

    print("=== guaranteed bounds (GuBPI engine) ===")
    histogram = model.histogram(0.0, 3.0, args.buckets)
    for line in histogram.summary_lines():
        print(line)
    print()

    # As in the paper's Appendix F.1, the samplers run on the variant with a
    # stopping condition (negligible effect on the posterior, finite runs).
    sampler_model = Model(pedestrian_bounded_program())

    print("=== likelihood-weighted importance sampling ===")
    is_result = sampler_model.sample(args.is_samples, method="importance", rng=rng)
    print(f"effective sample size: {is_result.effective_sample_size():.1f} / {args.is_samples}")
    is_samples = is_result.resample(args.is_samples, rng)
    is_report = histogram.validate_samples(is_samples, tolerance=0.02)
    print(f"IS histogram consistent with the bounds: {is_report.consistent}")
    print()

    print("=== fixed-dimension (truncated) HMC ===")
    _, hmc_values = sampler_model.sample(
        args.hmc_samples,
        method="hmc",
        rng=rng,
        trace_dimension=args.hmc_dimension,
        step_size=0.08,
        leapfrog_steps=15,
        burn_in=50,
    )
    hmc_values = hmc_values[~np.isnan(hmc_values)]
    hmc_report = histogram.validate_samples(hmc_values, tolerance=0.02)
    print(f"HMC histogram consistent with the bounds: {hmc_report.consistent}")
    for detail in hmc_report.details[:5]:
        print("  violation:", detail)
    print()

    verdict = "IS plausible, HMC flagged" if is_report.consistent and not hmc_report.consistent else "see reports above"
    print(f"Verdict: {verdict}")


if __name__ == "__main__":
    main()
