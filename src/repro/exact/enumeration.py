"""Exact inference for finite discrete probabilistic programs.

This is the reproduction's stand-in for PSI on the discrete benchmarks of
Table 2: a straightforward enumeration engine that explores every outcome of
every (finite-support) discrete ``sample`` and accumulates the exact posterior
as a finite weighted value distribution.  Programs with continuous samples or
unbounded recursion are outside its scope — which is precisely the limitation
of exact solvers the paper positions GuBPI against — although a loop/recursion
*unrolling depth* can be supplied to mimic how PSI truncates such programs
(the comparison behind Figures 6a–6c).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..distributions import DiscreteDistribution
from ..intervals import Interval, get_primitive
from ..lang.ast import (
    App,
    Const,
    Fix,
    If,
    IntervalConst,
    Lam,
    Prim,
    Sample,
    Score,
    Term,
    Var,
)

__all__ = ["ExactDistribution", "ExactInferenceError", "UnrollLimitReached", "enumerate_posterior"]


class ExactInferenceError(Exception):
    """Raised when a program is outside the scope of exact enumeration."""


class UnrollLimitReached(ExactInferenceError):
    """Raised when recursion exceeds the unrolling depth."""


@dataclass(frozen=True)
class _Closure:
    param: str
    body: Term
    env: "_Env"


@dataclass(frozen=True)
class _FixClosure:
    fname: str
    param: str
    body: Term
    env: "_Env"


Value = Union[float, _Closure, _FixClosure]


@dataclass(frozen=True)
class _Env:
    name: Optional[str] = None
    value: Optional[Value] = None
    parent: Optional["_Env"] = None

    def bind(self, name: str, value: Value) -> "_Env":
        return _Env(name, value, self)

    def lookup(self, name: str) -> Value:
        env: Optional[_Env] = self
        while env is not None:
            if env.name == name:
                assert env.value is not None
                return env.value
            env = env.parent
        raise ExactInferenceError(f"unbound variable {name!r}")


_EMPTY_ENV = _Env()


@dataclass
class ExactDistribution:
    """A finite unnormalised distribution over return values."""

    masses: Dict[float, float] = field(default_factory=dict)

    def add(self, value: float, mass: float) -> None:
        if mass != 0.0:
            self.masses[value] = self.masses.get(value, 0.0) + mass

    @property
    def normalising_constant(self) -> float:
        return sum(self.masses.values())

    def probability(self, value: float) -> float:
        z = self.normalising_constant
        return self.masses.get(value, 0.0) / z if z > 0 else 0.0

    def probability_of(self, target: Interval) -> float:
        z = self.normalising_constant
        if z <= 0:
            return 0.0
        return sum(mass for value, mass in self.masses.items() if value in target) / z

    def expectation(self) -> float:
        z = self.normalising_constant
        if z <= 0:
            raise ExactInferenceError("cannot take the expectation of a zero-mass distribution")
        return sum(value * mass for value, mass in self.masses.items()) / z

    def support(self) -> list[float]:
        return sorted(self.masses)

    def as_normalised_dict(self) -> Dict[float, float]:
        z = self.normalising_constant
        return {value: mass / z for value, mass in self.masses.items()} if z > 0 else {}


def enumerate_posterior(
    term: Term, max_unroll: int = 200, on_limit: str = "raise"
) -> ExactDistribution:
    """Exhaustively enumerate a finite discrete program's posterior.

    ``max_unroll`` bounds how often recursive functions may be unfolded.
    ``on_limit`` controls what happens when the bound is hit: ``"raise"``
    (the default) aborts with :class:`UnrollLimitReached`; ``"truncate"``
    silently drops the deeper executions, which is exactly how PSI analyses
    unbounded loops and therefore what the Fig. 6 comparison emulates.
    """
    if on_limit not in ("raise", "truncate"):
        raise ValueError("on_limit must be 'raise' or 'truncate'")
    result = ExactDistribution()

    def explore(node: Term, env: _Env, weight: float, unroll: int) -> list[tuple[Value, float, int]]:
        if weight == 0.0:
            return []
        if isinstance(node, Var):
            return [(env.lookup(node.name), weight, unroll)]
        if isinstance(node, Const):
            return [(node.value, weight, unroll)]
        if isinstance(node, IntervalConst):
            if node.interval.is_point:
                return [(node.interval.lo, weight, unroll)]
            raise ExactInferenceError("interval literals are not exact values")
        if isinstance(node, Lam):
            return [(_Closure(node.param, node.body, env), weight, unroll)]
        if isinstance(node, Fix):
            return [(_FixClosure(node.fname, node.param, node.body, env), weight, unroll)]
        if isinstance(node, Sample):
            dist = node.dist
            if not isinstance(dist, DiscreteDistribution):
                raise ExactInferenceError(
                    "exact enumeration supports only finite discrete samples, "
                    f"got {dist!r}"
                )
            outcomes = []
            for value in dist.support_values():
                mass = dist.pdf(value)
                if mass > 0.0:
                    outcomes.append((float(value), weight * mass, unroll))
            return outcomes
        if isinstance(node, Score):
            outcomes = []
            for value, w, u in explore(node.arg, env, weight, unroll):
                factor = _expect_real(value)
                if factor < 0.0:
                    raise ExactInferenceError("score of a negative value")
                if factor > 0.0:
                    outcomes.append((factor, w * factor, u))
            return outcomes
        if isinstance(node, Prim):
            primitive = get_primitive(node.op)
            partial: list[tuple[list[float], float, int]] = [([], weight, unroll)]
            for arg in node.args:
                extended = []
                for values, w, u in partial:
                    for value, w2, u2 in explore(arg, env, w, u):
                        extended.append((values + [_expect_real(value)], w2, u2))
                partial = extended
            return [(float(primitive(*values)), w, u) for values, w, u in partial]
        if isinstance(node, If):
            outcomes = []
            for guard, w, u in explore(node.cond, env, weight, unroll):
                branch = node.then if _expect_real(guard) <= 0.0 else node.orelse
                outcomes.extend(explore(branch, env, w, u))
            return outcomes
        if isinstance(node, App):
            outcomes = []
            for func, w, u in explore(node.func, env, weight, unroll):
                for argument, w2, u2 in explore(node.arg, env, w, u):
                    outcomes.extend(_apply(func, argument, w2, u2))
            return outcomes
        raise ExactInferenceError(f"cannot enumerate term {node!r}")

    def _apply(func: Value, argument: Value, weight: float, unroll: int) -> list[tuple[Value, float, int]]:
        if isinstance(func, _Closure):
            return explore(func.body, func.env.bind(func.param, argument), weight, unroll)
        if isinstance(func, _FixClosure):
            if unroll <= 0:
                if on_limit == "truncate":
                    return []
                raise UnrollLimitReached(
                    f"recursion exceeded the unrolling depth of {max_unroll}"
                )
            env = func.env.bind(func.fname, func).bind(func.param, argument)
            return explore(func.body, env, weight, unroll - 1)
        raise ExactInferenceError(f"application of a non-function value {func!r}")

    for value, weight, _ in explore(term, _EMPTY_ENV, 1.0, max_unroll):
        result.add(_expect_real(value), weight)
    return result


def _expect_real(value: Value) -> float:
    if isinstance(value, (int, float)):
        return float(value)
    raise ExactInferenceError(f"expected a real value, got {value!r}")
