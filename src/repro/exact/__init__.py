"""Exact enumeration engine for finite discrete programs (the PSI stand-in)."""

from .enumeration import (
    ExactDistribution,
    ExactInferenceError,
    UnrollLimitReached,
    enumerate_posterior,
)

__all__ = [
    "ExactDistribution",
    "ExactInferenceError",
    "UnrollLimitReached",
    "enumerate_posterior",
]
