"""Exact enumeration engine for finite discrete programs (the PSI stand-in).

Fronted by :meth:`repro.Model.exact`, which runs the enumeration on the
model's program term.
"""

from .enumeration import (
    ExactDistribution,
    ExactInferenceError,
    UnrollLimitReached,
    enumerate_posterior,
)

__all__ = [
    "ExactDistribution",
    "ExactInferenceError",
    "UnrollLimitReached",
    "enumerate_posterior",
]
