"""Guaranteed-bounds analysis: the Model facade, the GuBPI engine and its analysers.

The recommended entry point is :class:`Model` (see
:mod:`repro.analysis.model`), which caches the symbolic phase per
execution-limits configuration and serves bounds, posterior queries and
histograms from it.  Path-analysis strategies are pluggable through the
registry in :mod:`repro.analysis.registry`; ``"linear"`` and ``"box"`` ship
built in.  The free functions ``bound_denotation`` / ``bound_query`` /
``bound_posterior_histogram`` are deprecated shims kept for backwards
compatibility.
"""

from .box_analyzer import BoxPathAnalyzer, analyze_path_boxes, analyze_table_boxes, split_domain
from .config import (
    DEFAULT_TRANSPORT,
    EXECUTOR_KINDS,
    REFINE_KINDS,
    TRANSPORT_KINDS,
    AnalysisOptions,
)
from .engine import (
    AnalysisReport,
    DenotationBounds,
    PathContribution,
    QueryBounds,
    analyze_execution,
    analyze_path_stream,
    analyze_single_path,
    bound_denotation,
    bound_posterior_histogram,
    bound_query,
    histogram_buckets,
    normalised_query,
    reduce_contributions,
)
from .histogram import BucketBound, HistogramBounds, ValidationReport
from .linear_analyzer import (
    LinearPathAnalyzer,
    analyze_path_linear,
    analyze_table_linear,
    linear_analysis_applicable,
)
from .model import CompiledProgram, Model
from .refine import RefinementScheduler, level_options, refine_execution
from .parallel import (
    ParallelAnalysisExecutor,
    close_shared_executors,
    partition_paths,
    shared_executor,
)
from .transport import (
    ArenaChunkRef,
    ArenaSegment,
    create_arena_segment,
    shared_memory_available,
)
from .registry import (
    AnalyzerSpec,
    PathAnalyzer,
    UnknownAnalyzerError,
    analyzer_specs,
    available_analyzers,
    ensure_analyzers_registered,
    get_analyzer,
    register_analyzer,
    resolve_analyzers,
    unregister_analyzer,
)

__all__ = [
    "Model",
    "CompiledProgram",
    "AnalysisOptions",
    "DEFAULT_TRANSPORT",
    "EXECUTOR_KINDS",
    "REFINE_KINDS",
    "TRANSPORT_KINDS",
    "RefinementScheduler",
    "refine_execution",
    "level_options",
    "ArenaChunkRef",
    "ArenaSegment",
    "create_arena_segment",
    "shared_memory_available",
    "AnalysisReport",
    "DenotationBounds",
    "QueryBounds",
    "PathContribution",
    "ParallelAnalysisExecutor",
    "partition_paths",
    "shared_executor",
    "close_shared_executors",
    "analyze_execution",
    "analyze_path_stream",
    "analyze_single_path",
    "reduce_contributions",
    "normalised_query",
    "histogram_buckets",
    "bound_denotation",
    "bound_query",
    "bound_posterior_histogram",
    "BucketBound",
    "HistogramBounds",
    "ValidationReport",
    "PathAnalyzer",
    "UnknownAnalyzerError",
    "AnalyzerSpec",
    "analyzer_specs",
    "ensure_analyzers_registered",
    "register_analyzer",
    "unregister_analyzer",
    "get_analyzer",
    "available_analyzers",
    "resolve_analyzers",
    "BoxPathAnalyzer",
    "LinearPathAnalyzer",
    "analyze_path_boxes",
    "analyze_path_linear",
    "analyze_table_boxes",
    "analyze_table_linear",
    "linear_analysis_applicable",
    "split_domain",
]
