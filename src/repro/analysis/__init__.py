"""Guaranteed-bounds analysis: the GuBPI engine and its path analysers."""

from .box_analyzer import analyze_path_boxes, split_domain
from .config import AnalysisOptions
from .engine import (
    AnalysisReport,
    DenotationBounds,
    QueryBounds,
    bound_denotation,
    bound_posterior_histogram,
    bound_query,
)
from .histogram import BucketBound, HistogramBounds, ValidationReport
from .linear_analyzer import analyze_path_linear, linear_analysis_applicable

__all__ = [
    "AnalysisOptions",
    "AnalysisReport",
    "DenotationBounds",
    "QueryBounds",
    "bound_denotation",
    "bound_query",
    "bound_posterior_histogram",
    "BucketBound",
    "HistogramBounds",
    "ValidationReport",
    "analyze_path_boxes",
    "analyze_path_linear",
    "linear_analysis_applicable",
    "split_domain",
]
