"""Guaranteed-bounds analysis: the Model facade, the GuBPI engine and its analysers.

The recommended entry point is :class:`Model` (see
:mod:`repro.analysis.model`), which caches the symbolic phase per
execution-limits configuration and serves bounds, posterior queries and
histograms from it.  Path-analysis strategies are pluggable through the
registry in :mod:`repro.analysis.registry`; ``"linear"`` and ``"box"`` ship
built in.  The free functions ``bound_denotation`` / ``bound_query`` /
``bound_posterior_histogram`` are deprecated shims kept for backwards
compatibility.
"""

from .box_analyzer import BoxPathAnalyzer, analyze_path_boxes, split_domain
from .config import AnalysisOptions
from .engine import (
    AnalysisReport,
    DenotationBounds,
    QueryBounds,
    analyze_execution,
    bound_denotation,
    bound_posterior_histogram,
    bound_query,
    histogram_buckets,
    normalised_query,
)
from .histogram import BucketBound, HistogramBounds, ValidationReport
from .linear_analyzer import LinearPathAnalyzer, analyze_path_linear, linear_analysis_applicable
from .model import CompiledProgram, Model
from .registry import (
    PathAnalyzer,
    UnknownAnalyzerError,
    available_analyzers,
    get_analyzer,
    register_analyzer,
    resolve_analyzers,
    unregister_analyzer,
)

__all__ = [
    "Model",
    "CompiledProgram",
    "AnalysisOptions",
    "AnalysisReport",
    "DenotationBounds",
    "QueryBounds",
    "analyze_execution",
    "normalised_query",
    "histogram_buckets",
    "bound_denotation",
    "bound_query",
    "bound_posterior_histogram",
    "BucketBound",
    "HistogramBounds",
    "ValidationReport",
    "PathAnalyzer",
    "UnknownAnalyzerError",
    "register_analyzer",
    "unregister_analyzer",
    "get_analyzer",
    "available_analyzers",
    "resolve_analyzers",
    "BoxPathAnalyzer",
    "LinearPathAnalyzer",
    "analyze_path_boxes",
    "analyze_path_linear",
    "linear_analysis_applicable",
    "split_domain",
]
