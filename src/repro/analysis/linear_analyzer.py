"""Linear interval trace semantics for a single symbolic path (Section 6.4).

Applicable when the path's constraints and return value are interval-linear
functions of the sample variables and every prior is a (bounded) uniform
distribution.  The path denotation becomes an integral of the score product
over a convex polytope:

* without scores it is a plain polytope volume — computed exactly;
* with scores, every score value is decomposed into a template over *linear
  atoms* (Appendix E.1); each atom's range over the polytope is bounded by an
  LP, split into chunks, and each chunk contributes
  ``volume(polytope ∩ chunk) · inf/sup(template over the chunk)``
  (Proposition 6.4).

Separate polytopes ``𝔓_lb`` / ``𝔓_ub`` realise the universal / existential
reading of constraints containing interval constants (introduced by
``approxFix``).

Three engineering refinements keep the geometry computations cheap without
affecting soundness:

* **variable elimination** — a sample variable that occurs only in
  single-variable constraints (e.g. the ``⊕_p`` branching draws) is factored
  out analytically as an exact probability mass instead of adding a polytope
  dimension;
* **cross-path geometry caching** — LP results, feasibility checks and exact
  volumes are memoised in a :class:`GeometryCache` keyed on the polytope's
  *exact* H-representation bytes.  Every cached computation is a
  deterministic pure function of those bytes, so a hit returns the identical
  float64s a fresh computation would — which is what makes it sound to share
  the cache across the paths of a chunk (and, on the columnar route, across
  chunks and queries of a table attachment) without bounds depending on how
  paths are partitioned; and
* **batched LP kernels** — each polytope's constraint system is prepared
  once on the low-overhead HiGHS kernel (:mod:`repro.polytope.highs`) and
  all atom objectives sweep it in one batch (:class:`~repro.polytope.batch.
  BatchPolytope`); the score-combination loop pre-computes its constraint
  rows per atom chunk instead of per combination and looks volumes up by the
  restricted polytope's byte key without materialising it on a hit.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..distributions import Uniform
from ..intervals import Interval
from ..polytope import BatchPolytope, Polytope
from ..symbolic.linear import LinearForm, decompose_score, extract_linear
from ..symbolic.paths import Relation, SymbolicPath
from ..symbolic.value import evaluate_with_atoms
from .config import AnalysisOptions
from .vectorize import (
    ScalarFallback,
    TableProgramEvaluator,
    checked_cells,
    compile_expr_roots,
    vec_mul,
)

__all__ = [
    "GeometryCache",
    "LinearPathAnalyzer",
    "linear_analysis_applicable",
    "analyze_path_linear",
    "analyze_table_linear",
    "linear_table_applicable",
]

_NON_NEGATIVE = Interval(0.0, math.inf)

#: upper-bound chunks with a score weight below this threshold skip the exact
#: volume computation (their full prior mass is added instead, which is sound)
_NEGLIGIBLE_WEIGHT = 1e-10


def linear_analysis_applicable(path: SymbolicPath) -> bool:
    """Whether the optimised linear semantics can handle this path."""
    if not path.is_linear:
        return False
    for dist in path.distributions:
        if not isinstance(dist, Uniform):
            return False
        if not dist.support().is_bounded:
            return False
    return True


# ----------------------------------------------------------------------
# Constraint translation (universal vs existential readings)
# ----------------------------------------------------------------------

def _upper_row(form: LinearForm, limit: float, dimension: int, universal: bool) -> Optional[tuple[list[float], float]]:
    """Row for ``form ≤ limit``; ``None`` = unsatisfiable, empty row = trivially true."""
    constant = form.constant.hi if universal else form.constant.lo
    rhs = limit - constant
    dense = form.dense_row(dimension)
    if math.isinf(rhs) or not any(dense):
        # A variable-free constraint: decide it outright.
        return ([], rhs) if rhs >= 0 else None
    return dense, rhs


def _lower_row(form: LinearForm, limit: float, dimension: int, universal: bool) -> Optional[tuple[list[float], float]]:
    """Row for ``form ≥ limit`` (encoded as ``-form ≤ -limit``)."""
    constant = form.constant.lo if universal else form.constant.hi
    rhs = constant - limit
    dense = form.dense_row(dimension)
    if math.isinf(rhs) or not any(dense):
        return ([], rhs) if rhs >= 0 else None
    return [-c for c in dense], rhs


def _rows_for_relation(
    form: LinearForm, relation: str, dimension: int, universal: bool
) -> Optional[list[tuple[list[float], float]]]:
    """Rows for ``form ⊲⊳ 0`` under the requested reading (``None`` = unsat)."""
    if relation in (Relation.LEQ, Relation.LT):
        row = _upper_row(form, 0.0, dimension, universal)
    else:
        row = _lower_row(form, 0.0, dimension, universal)
    if row is None:
        return None
    return [row] if row[0] else []


def _rows_for_target(
    form: LinearForm, target: Interval, dimension: int, universal: bool
) -> Optional[list[tuple[list[float], float]]]:
    """Rows restricting the result value to ``target`` (⊆ for lb, ∩≠∅ for ub)."""
    rows: list[tuple[list[float], float]] = []
    if math.isfinite(target.hi):
        row = _upper_row(form, target.hi, dimension, universal)
        if row is None:
            return None
        if row[0]:
            rows.append(row)
    if math.isfinite(target.lo):
        row = _lower_row(form, target.lo, dimension, universal)
        if row is None:
            return None
        if row[0]:
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Variable elimination
# ----------------------------------------------------------------------

def _single_variable_interval(
    form: LinearForm, relation: str, universal: bool
) -> Optional[Interval]:
    """Allowed values of ``α`` for a single-variable constraint ``c·α + k ⊲⊳ 0``."""
    ((_, coeff),) = form.coeffs
    constant = form.constant
    if relation in (Relation.LEQ, Relation.LT):
        bound_constant = constant.hi if universal else constant.lo
        if math.isinf(bound_constant):
            return None if bound_constant > 0 else Interval(-math.inf, math.inf)
        # c·α ≤ -k
        limit = -bound_constant / coeff
        return Interval(-math.inf, limit) if coeff > 0 else Interval(limit, math.inf)
    bound_constant = constant.lo if universal else constant.hi
    if math.isinf(bound_constant):
        return Interval(-math.inf, math.inf) if bound_constant > 0 else None
    limit = -bound_constant / coeff
    return Interval(limit, math.inf) if coeff > 0 else Interval(-math.inf, limit)


@dataclass
class _Reduction:
    """Result of splitting the path variables into polytope vs eliminated ones."""

    kept: list[int]
    index_map: Dict[int, int]
    factor_lower: float
    factor_upper: float
    supports: list[Interval]
    density: float


def _reduce_variables(
    distributions: Sequence,
    constraint_forms: Sequence[tuple[LinearForm, str]],
    protected: set[int],
) -> _Reduction:
    """Factor out variables that occur only in single-variable constraints."""
    single_constraints: Dict[int, list[tuple[LinearForm, str]]] = {}
    multi_vars: set[int] = set(protected)
    for form, relation in constraint_forms:
        variables = form.variables()
        if len(variables) == 1:
            (index,) = tuple(variables)
            single_constraints.setdefault(index, []).append((form, relation))
        else:
            multi_vars.update(variables)

    factor_lower = 1.0
    factor_upper = 1.0
    kept: list[int] = []
    for index in range(len(distributions)):
        dist = distributions[index]
        if index in multi_vars or (index not in single_constraints and index in protected):
            kept.append(index)
            continue
        if index not in single_constraints and index not in protected:
            # Unconstrained and unused: integrates to total mass 1.
            continue
        allowed_lower = Interval(-math.inf, math.inf)
        allowed_upper = Interval(-math.inf, math.inf)
        for form, relation in single_constraints[index]:
            lower_piece = _single_variable_interval(form, relation, universal=True)
            upper_piece = _single_variable_interval(form, relation, universal=False)
            allowed_lower = allowed_lower.meet(lower_piece) if lower_piece else Interval.empty()
            allowed_upper = allowed_upper.meet(upper_piece) if upper_piece else Interval.empty()
        factor_lower *= dist.measure(allowed_lower.meet(dist.support()))
        factor_upper *= dist.measure(allowed_upper.meet(dist.support()))

    index_map = {old: new for new, old in enumerate(kept)}
    supports = [distributions[old].support() for old in kept]
    density = 1.0
    for old in kept:
        dist = distributions[old]
        assert isinstance(dist, Uniform)
        density *= 1.0 / (dist.high - dist.low)
    return _Reduction(
        kept=kept,
        index_map=index_map,
        factor_lower=factor_lower,
        factor_upper=factor_upper,
        supports=supports,
        density=density,
    )


def _remap(form: LinearForm, index_map: Dict[int, int]) -> LinearForm:
    return LinearForm(
        tuple((index_map[i], c) for i, c in form.coeffs),
        form.constant,
    )


# ----------------------------------------------------------------------
# Cross-path geometry caching
# ----------------------------------------------------------------------

#: A geometry-cache key: the exact ``(A.tobytes(), b.tobytes())`` of a
#: polytope's H-representation (:meth:`Polytope.cache_key`).
_GeometryKey = tuple[bytes, bytes]


class GeometryCache:
    """Memoises geometry computations keyed on exact H-representation bytes.

    Four stores share one keying discipline — the raw float64 bytes of the
    polytope's ``(A, b)``, never rounded (an earlier revision rounded the key
    to 12 decimals, which can collide *distinct* polytopes and hand one the
    other's volume):

    * ``volumes`` — :meth:`Polytope.volume_bounds` results,
    * ``emptiness`` — :meth:`Polytope.is_empty` results,
    * ``atom_bounds`` — batched atom LP sweeps (keyed additionally on the
      dense objective bytes), and
    * ``programs`` — compiled score-template programs (keyed on the template
      tuple's identity; entries keep the templates alive so a recycled
      ``id()`` can never alias).

    **Sharing invariant**: every cached computation is a deterministic pure
    function of its key, so a hit returns the identical float64s a fresh
    computation would.  That makes one cache safe to share across the paths
    of a chunk, across chunks, and across queries — bounds never depend on
    which path populated an entry, hence not on chunk boundaries either
    (pinned by ``tests/test_linear_fast_path.py``).  Concurrent use from the
    thread backend is benign for the same reason: racing writers insert
    identical values.

    ``volume_hits`` / ``volume_misses`` (and the aggregate ``hits`` /
    ``misses``) feed the perf benchmarks; they have no semantic role.
    """

    __slots__ = (
        "volumes",
        "emptiness",
        "atom_bounds",
        "programs",
        "volume_hits",
        "volume_misses",
        "hits",
        "misses",
    )

    def __init__(self) -> None:
        self.volumes: Dict[_GeometryKey, Interval] = {}
        self.emptiness: Dict[_GeometryKey, bool] = {}
        self.atom_bounds: Dict[tuple[_GeometryKey, bytes], tuple] = {}
        self.programs: Dict[int, tuple] = {}
        self.volume_hits = 0
        self.volume_misses = 0
        self.hits = 0
        self.misses = 0

    def volume(self, polytope: Polytope) -> Interval:
        """Exact volume bounds of ``polytope``, memoised."""
        key = polytope.cache_key()
        value = self.volumes.get(key)
        if value is None:
            self.misses += 1
            self.volume_misses += 1
            value = self.volumes[key] = polytope.volume_bounds()
        else:
            self.hits += 1
            self.volume_hits += 1
        return value

    def volume_restricted(
        self,
        base: Polytope,
        key: _GeometryKey,
        rows: Sequence[Sequence[float]],
        rhs: Sequence[float],
    ) -> Interval:
        """Volume bounds of ``base ∩ {rows·x ≤ rhs}`` under a precomputed key.

        ``key`` must equal ``base.add_constraints(rows, rhs).cache_key()`` —
        callers assemble it by concatenating the base polytope's bytes with
        the rows' float64 bytes (``np.vstack``/``np.concatenate`` preserve
        C-order, so the concatenation is exactly the restricted
        H-representation's bytes).  On a hit the restricted polytope is never
        materialised, which is what the combination loop buys here.
        """
        value = self.volumes.get(key)
        if value is None:
            self.misses += 1
            self.volume_misses += 1
            restricted = base.add_constraints(rows, rhs) if len(rows) else base
            value = self.volumes[key] = restricted.volume_bounds()
        else:
            self.hits += 1
            self.volume_hits += 1
        return value

    def is_empty(self, polytope: Polytope) -> bool:
        """Feasibility of ``polytope``, memoised."""
        key = polytope.cache_key()
        value = self.emptiness.get(key)
        if value is None:
            self.misses += 1
            value = self.emptiness[key] = polytope.is_empty()
        else:
            self.hits += 1
        return value

    def bound_atom_rows(
        self, polytope: Polytope, dense_rows: Sequence[Sequence[float]], rows_key: bytes
    ) -> tuple:
        """Batched ranges of the atom objectives over ``polytope``, memoised.

        ``rows_key`` is the concatenated float64 bytes of ``dense_rows``;
        the full key pairs it with the polytope's H-representation bytes.
        """
        key = (polytope.cache_key(), rows_key)
        value = self.atom_bounds.get(key)
        if value is None:
            self.misses += 1
            value = self.atom_bounds[key] = tuple(
                BatchPolytope(polytope).bound_rows(dense_rows)
            )
        else:
            self.hits += 1
        return value

    def template_program(self, templates):
        """Compiled evaluation program of the score templates (``None`` when
        a template cannot be expressed as a program — the factor sweep then
        walks the expression trees as before)."""
        key = id(templates)
        entry = self.programs.get(key)
        if entry is None or entry[0] is not templates:
            try:
                program = compile_expr_roots(
                    [decomposition.template for decomposition in templates]
                )
            except ScalarFallback:
                program = None
            entry = self.programs[key] = (templates, program)
        return entry[1]

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for the perf benchmarks."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "volume_hits": self.volume_hits,
            "volume_misses": self.volume_misses,
            "unique_volumes": len(self.volumes),
            "unique_emptiness": len(self.emptiness),
            "unique_atom_sweeps": len(self.atom_bounds),
        }


# ----------------------------------------------------------------------
# Main analysis
# ----------------------------------------------------------------------

def analyze_path_linear(
    path: SymbolicPath,
    targets: Sequence[Interval],
    options: AnalysisOptions,
    cache: Optional[GeometryCache] = None,
) -> list[tuple[float, float]]:
    """Bounds on ``⟦Ψ⟧_lb(U)`` / ``⟦Ψ⟧_ub(U)`` for every target ``U``.

    ``cache`` optionally shares a :class:`GeometryCache` across calls (see
    its sharing invariant); by default each path gets a fresh one.
    """
    result_form = extract_linear(path.result)
    assert result_form is not None, "analyze_path_linear requires a linear result"
    constraint_forms = path.linear_constraints()

    # Decompose all scores over a shared atom list.
    atoms: list[LinearForm] = []
    templates = [decompose_score(score, atoms) for score in path.scores]
    return _analyze_linear_forms(
        result_form, constraint_forms, atoms, templates, path.distributions,
        targets, options, cache,
    )


def _analyze_linear_forms(
    result_form: LinearForm,
    constraint_forms: Sequence[tuple[LinearForm, str]],
    atoms: Sequence[LinearForm],
    templates,
    distributions: Sequence,
    targets: Sequence[Interval],
    options: AnalysisOptions,
    cache: Optional[GeometryCache] = None,
) -> list[tuple[float, float]]:
    """The linear semantics at the forms level (paths already decomposed).

    Both routes feed this core — :func:`analyze_path_linear` extracts the
    forms from a materialised path, :func:`analyze_table_linear` from the
    columnar table (with per-table memoisation) — so their bounds are
    bit-identical by construction.  The inputs are treated as read-only.
    """
    cache = cache if cache is not None else GeometryCache()
    protected = set(result_form.variables())
    for atom in atoms:
        protected.update(atom.variables())
    reduction = _reduce_variables(distributions, constraint_forms, protected)
    dimension = len(reduction.kept)
    if reduction.factor_upper <= 0.0:
        return [(0.0, 0.0) for _ in targets]

    result_form = _remap(result_form, reduction.index_map)
    constraint_forms = [
        (_remap(form, reduction.index_map), relation)
        for form, relation in constraint_forms
        if all(index in reduction.index_map for index in form.variables())
    ]
    atoms = [_remap(atom, reduction.index_map) for atom in atoms]

    base = Polytope.from_box(reduction.supports)
    lower_poly: Optional[Polytope] = base
    upper_poly: Optional[Polytope] = base
    for form, relation in constraint_forms:
        for universal in (True, False):
            rows = _rows_for_relation(form, relation, dimension, universal)
            if universal:
                if rows is None:
                    lower_poly = None
                elif rows and lower_poly is not None:
                    lower_poly = lower_poly.add_constraints(
                        [r for r, _ in rows], [b for _, b in rows]
                    )
            else:
                if rows is None:
                    upper_poly = None
                elif rows and upper_poly is not None:
                    upper_poly = upper_poly.add_constraints(
                        [r for r, _ in rows], [b for _, b in rows]
                    )

    lower = [0.0] * len(targets)
    upper = [0.0] * len(targets)
    if options.prune_empty_paths and upper_poly is not None and cache.is_empty(upper_poly):
        return list(zip(lower, upper))

    for index, target in enumerate(targets):
        if lower_poly is not None and reduction.factor_lower > 0.0:
            rows = _rows_for_target(result_form, target, dimension, universal=True)
            if rows is not None:
                restricted = (
                    lower_poly.add_constraints([r for r, _ in rows], [b for _, b in rows])
                    if rows
                    else lower_poly
                )
                lower[index] = reduction.factor_lower * _integrate(
                    restricted, templates, atoms, reduction.density, options, cache, is_lower=True
                )
        if upper_poly is not None:
            rows = _rows_for_target(result_form, target, dimension, universal=False)
            if rows is not None:
                restricted = (
                    upper_poly.add_constraints([r for r, _ in rows], [b for _, b in rows])
                    if rows
                    else upper_poly
                )
                upper[index] = reduction.factor_upper * _integrate(
                    restricted, templates, atoms, reduction.density, options, cache, is_lower=False
                )
    return list(zip(lower, upper))


def _chunk_entry(
    atom: LinearForm, chunk: Interval, dimension: int, is_lower: bool
) -> Optional[tuple]:
    """Constraint rows pinning ``atom`` into ``chunk``, with their cache bytes.

    Returns ``None`` when the chunk is unsatisfiable under the requested
    reading, ``()`` when it holds trivially (no rows), and otherwise
    ``(rows, rhs, a_bytes, b_bytes)`` where the byte strings are the exact
    float64 encoding the rows append to a polytope's H-representation — the
    combination loop concatenates them into geometry-cache keys without
    materialising the restricted polytope.  The row construction (and its
    upper-then-lower order) is exactly the one the per-combination loop used,
    just hoisted: the rows depend only on ``(atom, chunk)``, never on which
    combination the chunk appears in.
    """
    rows: list[list[float]] = []
    rhs: list[float] = []
    if math.isfinite(chunk.hi):
        row = _upper_row(atom, chunk.hi, dimension, universal=is_lower)
        if row is None:
            return None
        if row[0]:
            rows.append(row[0])
            rhs.append(row[1])
    if math.isfinite(chunk.lo):
        row = _lower_row(atom, chunk.lo, dimension, universal=is_lower)
        if row is None:
            return None
        if row[0]:
            rows.append(row[0])
            rhs.append(row[1])
    if not rows:
        return ()
    a_bytes = b"".join(np.asarray(row, dtype=float).tobytes() for row in rows)
    b_bytes = np.asarray(rhs, dtype=float).tobytes()
    return rows, rhs, a_bytes, b_bytes


def _integrate(
    polytope: Polytope,
    templates,
    atoms: list[LinearForm],
    density: float,
    options: AnalysisOptions,
    cache: GeometryCache,
    is_lower: bool,
) -> float:
    """Bound ``∫_polytope ∏ templates(atoms) dα`` from below or above.

    The combination sweep is batched: all atom objectives are bounded over
    the polytope in one prepared-LP sweep, the constraint rows are built once
    per atom chunk instead of once per combination, and every volume is
    looked up in the shared :class:`GeometryCache` by the restricted
    polytope's byte key (assembled from the precomputed row bytes) so a hit
    never materialises the polytope.  ``tests/test_linear_fast_path.py`` pins
    this loop against :func:`_integrate_reference`, the pre-batching scalar
    original, bit for bit.
    """
    if not templates:
        volume = cache.volume(polytope)
        return density * (volume.lo if is_lower else volume.hi)
    if cache.is_empty(polytope):
        return 0.0

    # Bound every atom over the polytope — one batched LP sweep over the
    # polytope's prepared constraint system — and split each range into
    # chunks.
    dimension = polytope.dimension
    dense_rows = [atom.dense_row(dimension) for atom in atoms]
    rows_key = b"".join(np.asarray(row, dtype=float).tobytes() for row in dense_rows)
    bases = cache.bound_atom_rows(polytope, dense_rows, rows_key)
    atom_ranges: list[list[Interval]] = []
    for atom, base in zip(atoms, bases):
        if base is None:
            return 0.0
        atom_ranges.append(_split_interval(base + atom.constant, options.score_splits))

    # Respect the combination budget by coarsening atoms until it fits.
    while _combination_count(atom_ranges) > options.max_score_combinations:
        widest = max(range(len(atom_ranges)), key=lambda i: len(atom_ranges[i]))
        if len(atom_ranges[widest]) <= 1:
            break
        hull = Interval(atom_ranges[widest][0].lo, atom_ranges[widest][-1].hi)
        atom_ranges[widest] = _split_interval(hull, max(1, len(atom_ranges[widest]) // 2))

    # Pre-compute the weight factor of every atom-range combination in one
    # vectorised sweep over the whole product grid (the scalar per-combination
    # branch below is the historical fallback and remains the reference
    # semantics — the sweep reproduces its floats bit-for-bit).
    factors = None
    if options.vectorized_scores and atoms:
        factors = _vectorized_factors(
            atom_ranges, templates, is_lower, options.vectorized_transcendentals,
            program=cache.template_program(templates),
        )

    # Pre-compute each chunk's constraint rows and their cache-key bytes once
    # per (atom, chunk) — the product loop then only concatenates.
    per_atom = [
        [(chunk, _chunk_entry(atom, chunk, dimension, is_lower)) for chunk in chunks]
        for atom, chunks in zip(atoms, atom_ranges)
    ]

    base_a_key, base_b_key = polytope.cache_key()
    total = 0.0
    for combo_index, combination in enumerate(itertools.product(*per_atom)):
        if factors is not None and factors[combo_index] == 0.0:
            # A zero weight annihilates the chunk's contribution regardless of
            # feasibility, so the constraint rows and the volume computation
            # can both be skipped.  (The scalar branch below cannot hoist this
            # check: computing the weight is what the sweep made cheap.)
            continue
        if any(entry is None for _, entry in combination):
            continue
        if factors is not None:
            factor = float(factors[combo_index])
        else:
            weight = Interval.point(1.0)
            for template in templates:
                score_bounds = evaluate_with_atoms(
                    template.template, [chunk for chunk, _ in combination]
                )
                score_bounds = score_bounds.meet(_NON_NEGATIVE)
                if score_bounds.is_empty:
                    score_bounds = Interval.point(0.0)
                weight = weight * score_bounds
            factor = max(0.0, weight.lo if is_lower else weight.hi)
        if factor == 0.0:
            continue
        if not is_lower and math.isfinite(factor) and factor < _NEGLIGIBLE_WEIGHT:
            # ``density · volume`` never exceeds the prior mass 1 of the chunk,
            # so adding the weight itself is a sound (and cheap) upper bound —
            # this skips an exact volume computation for far-tail chunks.
            total += factor
            continue
        rows: list[list[float]] = []
        rhs: list[float] = []
        a_parts = [base_a_key]
        b_parts = [base_b_key]
        for _, entry in combination:
            if entry:
                rows.extend(entry[0])
                rhs.extend(entry[1])
                a_parts.append(entry[2])
                b_parts.append(entry[3])
        volume = cache.volume_restricted(
            polytope, (b"".join(a_parts), b"".join(b_parts)), rows, rhs
        )
        volume_value = volume.lo if is_lower else volume.hi
        if volume_value <= 0.0:
            continue
        total += density * volume_value * factor
        if math.isinf(total):
            return math.inf
    return total


def _integrate_reference(
    polytope: Polytope,
    templates,
    atoms: list[LinearForm],
    density: float,
    options: AnalysisOptions,
    is_lower: bool,
) -> float:
    """The pre-batching per-combination integration loop, kept as a test
    oracle.

    Bounds atoms with one scalar LP pair each, rebuilds the constraint rows
    per combination, evaluates every score template with the scalar interval
    evaluator and computes every chunk volume directly — no geometry cache,
    no vectorised factor sweep, no prepared-LP batching.
    ``tests/test_linear_fast_path.py`` asserts :func:`_integrate` reproduces
    this loop's floats bit for bit; production routes never call it.
    """
    if not templates:
        volume = polytope.volume_bounds()
        return density * (volume.lo if is_lower else volume.hi)
    if polytope.is_empty():
        return 0.0

    atom_ranges: list[list[Interval]] = []
    for atom in atoms:
        base = polytope.bound_linear(atom.as_dense(polytope.dimension))
        if base is None:
            return 0.0
        atom_ranges.append(_split_interval(base + atom.constant, options.score_splits))

    while _combination_count(atom_ranges) > options.max_score_combinations:
        widest = max(range(len(atom_ranges)), key=lambda i: len(atom_ranges[i]))
        if len(atom_ranges[widest]) <= 1:
            break
        hull = Interval(atom_ranges[widest][0].lo, atom_ranges[widest][-1].hi)
        atom_ranges[widest] = _split_interval(hull, max(1, len(atom_ranges[widest]) // 2))

    dimension = polytope.dimension
    total = 0.0
    for combination in itertools.product(*atom_ranges):
        rows: list[list[float]] = []
        rhs: list[float] = []
        feasible = True
        for atom, chunk in zip(atoms, combination):
            if math.isfinite(chunk.hi):
                row = _upper_row(atom, chunk.hi, dimension, universal=is_lower)
                if row is None:
                    feasible = False
                    break
                if row[0]:
                    rows.append(row[0])
                    rhs.append(row[1])
            if math.isfinite(chunk.lo):
                row = _lower_row(atom, chunk.lo, dimension, universal=is_lower)
                if row is None:
                    feasible = False
                    break
                if row[0]:
                    rows.append(row[0])
                    rhs.append(row[1])
        if not feasible:
            continue
        weight = Interval.point(1.0)
        for template in templates:
            score_bounds = evaluate_with_atoms(template.template, list(combination))
            score_bounds = score_bounds.meet(_NON_NEGATIVE)
            if score_bounds.is_empty:
                score_bounds = Interval.point(0.0)
            weight = weight * score_bounds
        factor = max(0.0, weight.lo if is_lower else weight.hi)
        if factor == 0.0:
            continue
        if not is_lower and math.isfinite(factor) and factor < _NEGLIGIBLE_WEIGHT:
            total += factor
            continue
        chunk_polytope = polytope.add_constraints(rows, rhs) if rows else polytope
        volume = chunk_polytope.volume_bounds()
        volume_value = volume.lo if is_lower else volume.hi
        if volume_value <= 0.0:
            continue
        total += density * volume_value * factor
        if math.isinf(total):
            return math.inf
    return total


def _vectorized_factors(
    atom_ranges: list[list[Interval]],
    templates,
    is_lower: bool,
    transcendentals: bool = False,
    program=None,
):
    """Weight factor of every atom-range combination, in one meshgrid sweep.

    Builds the full product grid of atom chunks (in :func:`itertools.product`
    order: the last atom varies fastest) as ``(combinations × atoms)`` bound
    arrays and evaluates every score template over it with the shared
    vectorised interval evaluator.  The result is bit-identical to the scalar
    per-combination loop — exact IEEE operations are lifted wholesale and
    everything else falls back to the scalar interval lifting per cell — so
    enabling ``vectorized_scores`` never moves a bound.  Returns ``None``
    when the sweep cannot express a template (the caller then runs the
    scalar loop).

    ``program`` optionally supplies the templates pre-compiled by
    :func:`~repro.analysis.vectorize.compile_expr_roots`
    (:meth:`GeometryCache.template_program` caches them): the sweep then
    replays flat instructions instead of re-walking the expression trees,
    through the same lifting kernel — identical arrays either way.
    """
    if not templates:
        return None
    count = _combination_count(atom_ranges)
    if count <= 1:
        return None
    lo_grid = np.meshgrid(
        *[np.array([chunk.lo for chunk in cells]) for cells in atom_ranges], indexing="ij"
    )
    hi_grid = np.meshgrid(
        *[np.array([chunk.hi for chunk in cells]) for cells in atom_ranges], indexing="ij"
    )
    combos_lo = np.stack([grid.reshape(-1) for grid in lo_grid], axis=1)
    combos_hi = np.stack([grid.reshape(-1) for grid in hi_grid], axis=1)

    def atom_leaf(leaf):
        return combos_lo[:, leaf.index], combos_hi[:, leaf.index]

    try:
        weight_lo = np.ones(count)
        weight_hi = np.ones(count)
        evaluator = None
        if program is not None:
            evaluator = TableProgramEvaluator(
                program[0],
                count,
                atom_leaf=lambda index: (combos_lo[:, index], combos_hi[:, index]),
                transcendentals=transcendentals,
            )
        for position, template in enumerate(templates):
            if evaluator is not None:
                score_lo, score_hi = evaluator.eval_to(program[1][position])
            else:
                score_lo, score_hi = checked_cells(
                    template.template, count, atom_leaf=atom_leaf,
                    transcendentals=transcendentals,
                )
            # meet with [0, inf); an empty meet collapses to the point 0.
            score_lo = np.maximum(score_lo, 0.0)
            empty = score_hi < score_lo
            score_lo = np.where(empty, 0.0, score_lo)
            score_hi = np.where(empty, 0.0, score_hi)
            weight_lo, weight_hi = vec_mul(weight_lo, weight_hi, score_lo, score_hi)
        if np.isnan(weight_lo).any() or np.isnan(weight_hi).any():
            raise ScalarFallback
    except ScalarFallback:
        return None
    return np.maximum(0.0, weight_lo if is_lower else weight_hi)


# ----------------------------------------------------------------------
# Columnar fast path
# ----------------------------------------------------------------------

#: Key of the linear analyzer's memo space inside ``PathTable.scratch``.
_TABLE_SCRATCH_KEY = "linear-analyzer"


def _table_cache(table) -> dict:
    """This analyzer's per-table memo: forms, score decompositions, dist checks.

    Living in ``table.scratch``, the memo survives across chunks and queries
    of one table attachment — a worker that analysed chunk 3 of a query has
    already extracted the linear forms chunk 7 (and the next query) needs.
    The ``geometry`` entry is the attachment's shared :class:`GeometryCache`:
    its exact-bytes keying (see the class docstring) is what makes volumes,
    feasibility checks and atom LP sweeps reusable across paths, chunks and
    queries without bounds depending on chunk boundaries.  The scratch memo
    travels with the attachment under every transport (arena segments reuse
    the worker's table object, so the memo warms up across chunks there
    too).
    """
    cache = table.scratch.get(_TABLE_SCRATCH_KEY)
    if cache is None:
        cache = table.scratch.setdefault(_TABLE_SCRATCH_KEY, {
            "forms": {},  # node id -> Optional[LinearForm]
            "scores": {},  # tuple of score node ids -> (atoms, templates)
            "dists": {},  # dist id -> bounded-uniform?
            "applicable": {},  # path index -> bool (the predicate is options-free)
            "path_dists": {},  # path index -> tuple[Distribution, ...]
            "geometry": GeometryCache(),  # cross-path geometry memo
        })
    return cache


def _path_distributions(table, index: int, cache: dict):
    distributions = cache["path_dists"].get(index)
    if distributions is None:
        distributions = cache["path_dists"][index] = table.path_distributions(index)
    return distributions


def _table_form(table, node_id: int, forms: dict) -> Optional[LinearForm]:
    """``extract_linear`` of a table node, memoised per node id."""
    if node_id in forms:
        return forms[node_id]
    form = extract_linear(table.decode_expr(node_id))
    forms[node_id] = form
    return form


def linear_table_applicable(table, index: int, options: AnalysisOptions) -> bool:
    """Table-level :func:`linear_analysis_applicable` (same predicate).

    Memoised per path index — the predicate depends only on the path
    structure, so routing repeated queries over one attachment is a dict
    hit.
    """
    cache = _table_cache(table)
    known = cache["applicable"].get(index)
    if known is not None:
        return known

    def compute() -> bool:
        dist_ok = cache["dists"]
        for raw_id in table.path_dist_ids(index):
            dist_id = int(raw_id)
            ok = dist_ok.get(dist_id)
            if ok is None:
                dist = table.distributions[dist_id]
                ok = isinstance(dist, Uniform) and dist.support().is_bounded
                dist_ok[dist_id] = ok
            if not ok:
                return False
        forms = cache["forms"]
        if _table_form(table, table.result_id(index), forms) is None:
            return False
        expr_ids, _ = table.constraint_ids(index)
        return all(
            _table_form(table, int(expr_id), forms) is not None for expr_id in expr_ids
        )

    result = compute()
    cache["applicable"][index] = result
    return result


def analyze_table_linear(
    table,
    index: int,
    targets: Sequence[Interval],
    options: AnalysisOptions,
    cache: Optional[dict] = None,
) -> list[tuple[float, float]]:
    """Bounds for path ``index`` from the table, without materialising it.

    Linear forms (per node id) and score decompositions (per score-id
    tuple) come from the per-table memo, so across the chunks and repeated
    queries of one attachment each unique expression is extracted and
    decomposed exactly once.  The polytope integration itself runs the same
    forms-level core as the materialised route — bounds are bit-identical.
    """
    cache = cache if cache is not None else _table_cache(table)
    prepared = cache.setdefault("prepared", {}).get(index)
    if prepared is None:
        forms = cache["forms"]
        result_form = _table_form(table, table.result_id(index), forms)
        assert result_form is not None, "analyze_table_linear requires a linear result"
        expr_ids, rel_ids = table.constraint_ids(index)
        constraint_forms: list[tuple[LinearForm, str]] = []
        for expr_id, rel_id in zip(expr_ids, rel_ids):
            form = _table_form(table, int(expr_id), forms)
            if form is None:
                raise ValueError("path has a non-linear constraint")
            constraint_forms.append((form, Relation.ALL[int(rel_id)]))

        score_key = tuple(int(score_id) for score_id in table.score_ids(index))
        entry = cache["scores"].get(score_key)
        if entry is None:
            atoms: list[LinearForm] = []
            templates = tuple(
                decompose_score(table.decode_expr(score_id), atoms) for score_id in score_key
            )
            entry = cache["scores"][score_key] = (tuple(atoms), templates)
        atoms, templates = entry
        prepared = cache["prepared"][index] = (
            result_form,
            tuple(constraint_forms),
            atoms,
            templates,
            _path_distributions(table, index, cache),
        )

    result_form, constraint_forms, atoms, templates, distributions = prepared
    geometry = cache.get("geometry")
    if geometry is None:
        geometry = cache.setdefault("geometry", GeometryCache())
    return _analyze_linear_forms(
        result_form, constraint_forms, atoms, templates, distributions,
        targets, options, geometry,
    )


def _split_interval(interval: Interval, parts: int) -> list[Interval]:
    if interval.is_point or parts <= 1 or not interval.is_bounded:
        return [interval]
    return interval.split(parts)


def _combination_count(atom_ranges: list[list[Interval]]) -> int:
    count = 1
    for cells in atom_ranges:
        count *= len(cells)
    return count


class LinearPathAnalyzer:
    """Registry adapter for the optimised linear semantics (Section 6.4)."""

    name = "linear"

    def applicable(self, path: SymbolicPath, options: AnalysisOptions) -> bool:
        return linear_analysis_applicable(path)

    def analyze(
        self,
        path: SymbolicPath,
        targets: Sequence[Interval],
        options: AnalysisOptions,
    ) -> list[tuple[float, float]]:
        return analyze_path_linear(path, targets, options)

    def analyze_batch(
        self,
        paths: Sequence[SymbolicPath],
        targets: Sequence[Interval],
        options: AnalysisOptions,
    ) -> list[list[tuple[float, float]]]:
        """Per-path contributions for a chunk (identical to per-path calls).

        One :class:`GeometryCache` is shared across the chunk's paths.  The
        cache key is the polytope's *exact* H-representation bytes and every
        cached computation is a deterministic pure function of that key, so
        a hit returns the identical float64s a fresh computation would —
        the bounds cannot depend on which path populated an entry, hence not
        on how paths were partitioned into chunks either.  (The paths of one
        program share box constraints and score atoms heavily, so cross-path
        hits are the common case, not an accident.)
        """
        cache = GeometryCache()
        return [
            analyze_path_linear(path, targets, options, cache) for path in paths
        ]

    # -- columnar fast path --------------------------------------------
    def applicable_table(self, table, index: int, options: AnalysisOptions) -> bool:
        return linear_table_applicable(table, index, options)

    def analyze_table(
        self,
        table,
        indices,
        targets: Sequence[Interval],
        options: AnalysisOptions,
    ) -> list[list[tuple[float, float]]]:
        """Per-path contributions straight from a ``PathTable`` slice.

        The score-combination sweep (and the whole polytope integration)
        runs on forms pulled from the per-table memo — bit-identical to the
        materialised route (see :func:`analyze_table_linear`).
        """
        cache = _table_cache(table)
        return [
            analyze_table_linear(table, index, targets, options, cache) for index in indices
        ]
