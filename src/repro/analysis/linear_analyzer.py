"""Linear interval trace semantics for a single symbolic path (Section 6.4).

Applicable when the path's constraints and return value are interval-linear
functions of the sample variables and every prior is a (bounded) uniform
distribution.  The path denotation becomes an integral of the score product
over a convex polytope:

* without scores it is a plain polytope volume — computed exactly;
* with scores, every score value is decomposed into a template over *linear
  atoms* (Appendix E.1); each atom's range over the polytope is bounded by an
  LP, split into chunks, and each chunk contributes
  ``volume(polytope ∩ chunk) · inf/sup(template over the chunk)``
  (Proposition 6.4).

Separate polytopes ``𝔓_lb`` / ``𝔓_ub`` realise the universal / existential
reading of constraints containing interval constants (introduced by
``approxFix``).

Two engineering refinements keep the volume computations cheap without
affecting soundness:

* **variable elimination** — a sample variable that occurs only in
  single-variable constraints (e.g. the ``⊕_p`` branching draws) is factored
  out analytically as an exact probability mass instead of adding a polytope
  dimension; and
* **volume caching** — identical polytopes (which arise whenever the lower
  and upper readings coincide, i.e. for paths without interval constants) are
  only handed to Qhull once.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..distributions import Uniform
from ..intervals import Interval
from ..polytope import Polytope
from ..symbolic.linear import LinearForm, decompose_score, extract_linear
from ..symbolic.paths import Relation, SymbolicPath
from ..symbolic.value import evaluate_with_atoms
from .config import AnalysisOptions
from .vectorize import ScalarFallback, checked_cells, vec_mul

__all__ = [
    "LinearPathAnalyzer",
    "linear_analysis_applicable",
    "analyze_path_linear",
    "analyze_table_linear",
    "linear_table_applicable",
]

_NON_NEGATIVE = Interval(0.0, math.inf)

#: upper-bound chunks with a score weight below this threshold skip the exact
#: volume computation (their full prior mass is added instead, which is sound)
_NEGLIGIBLE_WEIGHT = 1e-10


def linear_analysis_applicable(path: SymbolicPath) -> bool:
    """Whether the optimised linear semantics can handle this path."""
    if not path.is_linear:
        return False
    for dist in path.distributions:
        if not isinstance(dist, Uniform):
            return False
        if not dist.support().is_bounded:
            return False
    return True


# ----------------------------------------------------------------------
# Constraint translation (universal vs existential readings)
# ----------------------------------------------------------------------

def _upper_row(form: LinearForm, limit: float, dimension: int, universal: bool) -> Optional[tuple[list[float], float]]:
    """Row for ``form ≤ limit``; ``None`` = unsatisfiable, empty row = trivially true."""
    constant = form.constant.hi if universal else form.constant.lo
    rhs = limit - constant
    dense = form.as_dense(dimension)
    if math.isinf(rhs) or not any(dense):
        # A variable-free constraint: decide it outright.
        return ([], rhs) if rhs >= 0 else None
    return dense, rhs


def _lower_row(form: LinearForm, limit: float, dimension: int, universal: bool) -> Optional[tuple[list[float], float]]:
    """Row for ``form ≥ limit`` (encoded as ``-form ≤ -limit``)."""
    constant = form.constant.lo if universal else form.constant.hi
    rhs = constant - limit
    dense = form.as_dense(dimension)
    if math.isinf(rhs) or not any(dense):
        return ([], rhs) if rhs >= 0 else None
    return [-c for c in dense], rhs


def _rows_for_relation(
    form: LinearForm, relation: str, dimension: int, universal: bool
) -> Optional[list[tuple[list[float], float]]]:
    """Rows for ``form ⊲⊳ 0`` under the requested reading (``None`` = unsat)."""
    if relation in (Relation.LEQ, Relation.LT):
        row = _upper_row(form, 0.0, dimension, universal)
    else:
        row = _lower_row(form, 0.0, dimension, universal)
    if row is None:
        return None
    return [row] if row[0] else []


def _rows_for_target(
    form: LinearForm, target: Interval, dimension: int, universal: bool
) -> Optional[list[tuple[list[float], float]]]:
    """Rows restricting the result value to ``target`` (⊆ for lb, ∩≠∅ for ub)."""
    rows: list[tuple[list[float], float]] = []
    if math.isfinite(target.hi):
        row = _upper_row(form, target.hi, dimension, universal)
        if row is None:
            return None
        if row[0]:
            rows.append(row)
    if math.isfinite(target.lo):
        row = _lower_row(form, target.lo, dimension, universal)
        if row is None:
            return None
        if row[0]:
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Variable elimination
# ----------------------------------------------------------------------

def _single_variable_interval(
    form: LinearForm, relation: str, universal: bool
) -> Optional[Interval]:
    """Allowed values of ``α`` for a single-variable constraint ``c·α + k ⊲⊳ 0``."""
    ((_, coeff),) = form.coeffs
    constant = form.constant
    if relation in (Relation.LEQ, Relation.LT):
        bound_constant = constant.hi if universal else constant.lo
        if math.isinf(bound_constant):
            return None if bound_constant > 0 else Interval(-math.inf, math.inf)
        # c·α ≤ -k
        limit = -bound_constant / coeff
        return Interval(-math.inf, limit) if coeff > 0 else Interval(limit, math.inf)
    bound_constant = constant.lo if universal else constant.hi
    if math.isinf(bound_constant):
        return Interval(-math.inf, math.inf) if bound_constant > 0 else None
    limit = -bound_constant / coeff
    return Interval(limit, math.inf) if coeff > 0 else Interval(-math.inf, limit)


@dataclass
class _Reduction:
    """Result of splitting the path variables into polytope vs eliminated ones."""

    kept: list[int]
    index_map: Dict[int, int]
    factor_lower: float
    factor_upper: float
    supports: list[Interval]
    density: float


def _reduce_variables(
    distributions: Sequence,
    constraint_forms: Sequence[tuple[LinearForm, str]],
    protected: set[int],
) -> _Reduction:
    """Factor out variables that occur only in single-variable constraints."""
    single_constraints: Dict[int, list[tuple[LinearForm, str]]] = {}
    multi_vars: set[int] = set(protected)
    for form, relation in constraint_forms:
        variables = form.variables()
        if len(variables) == 1:
            (index,) = tuple(variables)
            single_constraints.setdefault(index, []).append((form, relation))
        else:
            multi_vars.update(variables)

    factor_lower = 1.0
    factor_upper = 1.0
    kept: list[int] = []
    for index in range(len(distributions)):
        dist = distributions[index]
        if index in multi_vars or (index not in single_constraints and index in protected):
            kept.append(index)
            continue
        if index not in single_constraints and index not in protected:
            # Unconstrained and unused: integrates to total mass 1.
            continue
        allowed_lower = Interval(-math.inf, math.inf)
        allowed_upper = Interval(-math.inf, math.inf)
        for form, relation in single_constraints[index]:
            lower_piece = _single_variable_interval(form, relation, universal=True)
            upper_piece = _single_variable_interval(form, relation, universal=False)
            allowed_lower = allowed_lower.meet(lower_piece) if lower_piece else Interval.empty()
            allowed_upper = allowed_upper.meet(upper_piece) if upper_piece else Interval.empty()
        factor_lower *= dist.measure(allowed_lower.meet(dist.support()))
        factor_upper *= dist.measure(allowed_upper.meet(dist.support()))

    index_map = {old: new for new, old in enumerate(kept)}
    supports = [distributions[old].support() for old in kept]
    density = 1.0
    for old in kept:
        dist = distributions[old]
        assert isinstance(dist, Uniform)
        density *= 1.0 / (dist.high - dist.low)
    return _Reduction(
        kept=kept,
        index_map=index_map,
        factor_lower=factor_lower,
        factor_upper=factor_upper,
        supports=supports,
        density=density,
    )


def _remap(form: LinearForm, index_map: Dict[int, int]) -> LinearForm:
    return LinearForm(
        tuple((index_map[i], c) for i, c in form.coeffs),
        form.constant,
    )


# ----------------------------------------------------------------------
# Volume caching
# ----------------------------------------------------------------------

class _VolumeCache:
    """Memoises exact volumes of identical polytopes within one path analysis."""

    def __init__(self) -> None:
        self._store: Dict[bytes, Interval] = {}

    def volume(self, polytope: Polytope) -> Interval:
        key = np.round(np.hstack([polytope.a, polytope.b.reshape(-1, 1)]), 12).tobytes()
        if key not in self._store:
            self._store[key] = polytope.volume_bounds()
        return self._store[key]


# ----------------------------------------------------------------------
# Main analysis
# ----------------------------------------------------------------------

def analyze_path_linear(
    path: SymbolicPath,
    targets: Sequence[Interval],
    options: AnalysisOptions,
) -> list[tuple[float, float]]:
    """Bounds on ``⟦Ψ⟧_lb(U)`` / ``⟦Ψ⟧_ub(U)`` for every target ``U``."""
    result_form = extract_linear(path.result)
    assert result_form is not None, "analyze_path_linear requires a linear result"
    constraint_forms = path.linear_constraints()

    # Decompose all scores over a shared atom list.
    atoms: list[LinearForm] = []
    templates = [decompose_score(score, atoms) for score in path.scores]
    return _analyze_linear_forms(
        result_form, constraint_forms, atoms, templates, path.distributions, targets, options
    )


def _analyze_linear_forms(
    result_form: LinearForm,
    constraint_forms: Sequence[tuple[LinearForm, str]],
    atoms: Sequence[LinearForm],
    templates,
    distributions: Sequence,
    targets: Sequence[Interval],
    options: AnalysisOptions,
) -> list[tuple[float, float]]:
    """The linear semantics at the forms level (paths already decomposed).

    Both routes feed this core — :func:`analyze_path_linear` extracts the
    forms from a materialised path, :func:`analyze_table_linear` from the
    columnar table (with per-table memoisation) — so their bounds are
    bit-identical by construction.  The inputs are treated as read-only.
    """
    protected = set(result_form.variables())
    for atom in atoms:
        protected.update(atom.variables())
    reduction = _reduce_variables(distributions, constraint_forms, protected)
    dimension = len(reduction.kept)
    if reduction.factor_upper <= 0.0:
        return [(0.0, 0.0) for _ in targets]

    result_form = _remap(result_form, reduction.index_map)
    constraint_forms = [
        (_remap(form, reduction.index_map), relation)
        for form, relation in constraint_forms
        if all(index in reduction.index_map for index in form.variables())
    ]
    atoms = [_remap(atom, reduction.index_map) for atom in atoms]

    base = Polytope.from_box(reduction.supports)
    lower_poly: Optional[Polytope] = base
    upper_poly: Optional[Polytope] = base
    for form, relation in constraint_forms:
        for universal in (True, False):
            rows = _rows_for_relation(form, relation, dimension, universal)
            if universal:
                if rows is None:
                    lower_poly = None
                elif rows and lower_poly is not None:
                    lower_poly = lower_poly.add_constraints(
                        [r for r, _ in rows], [b for _, b in rows]
                    )
            else:
                if rows is None:
                    upper_poly = None
                elif rows and upper_poly is not None:
                    upper_poly = upper_poly.add_constraints(
                        [r for r, _ in rows], [b for _, b in rows]
                    )

    cache = _VolumeCache()
    lower = [0.0] * len(targets)
    upper = [0.0] * len(targets)
    if options.prune_empty_paths and upper_poly is not None and upper_poly.is_empty():
        return list(zip(lower, upper))

    for index, target in enumerate(targets):
        if lower_poly is not None and reduction.factor_lower > 0.0:
            rows = _rows_for_target(result_form, target, dimension, universal=True)
            if rows is not None:
                restricted = (
                    lower_poly.add_constraints([r for r, _ in rows], [b for _, b in rows])
                    if rows
                    else lower_poly
                )
                lower[index] = reduction.factor_lower * _integrate(
                    restricted, templates, atoms, reduction.density, options, cache, is_lower=True
                )
        if upper_poly is not None:
            rows = _rows_for_target(result_form, target, dimension, universal=False)
            if rows is not None:
                restricted = (
                    upper_poly.add_constraints([r for r, _ in rows], [b for _, b in rows])
                    if rows
                    else upper_poly
                )
                upper[index] = reduction.factor_upper * _integrate(
                    restricted, templates, atoms, reduction.density, options, cache, is_lower=False
                )
    return list(zip(lower, upper))


def _integrate(
    polytope: Polytope,
    templates,
    atoms: list[LinearForm],
    density: float,
    options: AnalysisOptions,
    cache: _VolumeCache,
    is_lower: bool,
) -> float:
    """Bound ``∫_polytope ∏ templates(atoms) dα`` from below or above."""
    if not templates:
        volume = cache.volume(polytope)
        return density * (volume.lo if is_lower else volume.hi)
    if polytope.is_empty():
        return 0.0

    # Bound every atom over the polytope and split its range into chunks.
    atom_ranges: list[list[Interval]] = []
    for atom in atoms:
        base = polytope.bound_linear(atom.as_dense(polytope.dimension))
        if base is None:
            return 0.0
        atom_ranges.append(_split_interval(base + atom.constant, options.score_splits))

    # Respect the combination budget by coarsening atoms until it fits.
    while _combination_count(atom_ranges) > options.max_score_combinations:
        widest = max(range(len(atom_ranges)), key=lambda i: len(atom_ranges[i]))
        if len(atom_ranges[widest]) <= 1:
            break
        hull = Interval(atom_ranges[widest][0].lo, atom_ranges[widest][-1].hi)
        atom_ranges[widest] = _split_interval(hull, max(1, len(atom_ranges[widest]) // 2))

    # Pre-compute the weight factor of every atom-range combination in one
    # vectorised sweep over the whole product grid (the scalar per-combination
    # loop below is the historical fallback and remains the reference
    # semantics — the sweep reproduces its floats bit-for-bit).
    factors = None
    if options.vectorized_scores and atoms:
        factors = _vectorized_factors(
            atom_ranges, templates, is_lower, options.vectorized_transcendentals
        )

    dimension = polytope.dimension
    total = 0.0
    for combo_index, combination in enumerate(itertools.product(*atom_ranges)):
        if factors is not None and factors[combo_index] == 0.0:
            # A zero weight annihilates the chunk's contribution regardless of
            # feasibility, so the constraint rows and the volume computation
            # can both be skipped.  (The scalar loop below cannot hoist this
            # check: computing the weight is what the sweep made cheap.)
            continue
        rows: list[list[float]] = []
        rhs: list[float] = []
        feasible = True
        for atom, chunk in zip(atoms, combination):
            if math.isfinite(chunk.hi):
                row = _upper_row(atom, chunk.hi, dimension, universal=is_lower)
                if row is None:
                    feasible = False
                    break
                if row[0]:
                    rows.append(row[0])
                    rhs.append(row[1])
            if math.isfinite(chunk.lo):
                row = _lower_row(atom, chunk.lo, dimension, universal=is_lower)
                if row is None:
                    feasible = False
                    break
                if row[0]:
                    rows.append(row[0])
                    rhs.append(row[1])
        if not feasible:
            continue
        if factors is not None:
            factor = float(factors[combo_index])
        else:
            weight = Interval.point(1.0)
            for template in templates:
                score_bounds = evaluate_with_atoms(template.template, list(combination))
                score_bounds = score_bounds.meet(_NON_NEGATIVE)
                if score_bounds.is_empty:
                    score_bounds = Interval.point(0.0)
                weight = weight * score_bounds
            factor = max(0.0, weight.lo if is_lower else weight.hi)
        if factor == 0.0:
            continue
        if not is_lower and math.isfinite(factor) and factor < _NEGLIGIBLE_WEIGHT:
            # ``density · volume`` never exceeds the prior mass 1 of the chunk,
            # so adding the weight itself is a sound (and cheap) upper bound —
            # this skips an exact volume computation for far-tail chunks.
            total += factor
            continue
        chunk_polytope = polytope.add_constraints(rows, rhs) if rows else polytope
        volume = cache.volume(chunk_polytope)
        volume_value = volume.lo if is_lower else volume.hi
        if volume_value <= 0.0:
            continue
        total += density * volume_value * factor
        if math.isinf(total):
            return math.inf
    return total


def _vectorized_factors(
    atom_ranges: list[list[Interval]],
    templates,
    is_lower: bool,
    transcendentals: bool = False,
):
    """Weight factor of every atom-range combination, in one meshgrid sweep.

    Builds the full product grid of atom chunks (in :func:`itertools.product`
    order: the last atom varies fastest) as ``(combinations × atoms)`` bound
    arrays and evaluates every score template over it with the shared
    vectorised interval evaluator.  The result is bit-identical to the scalar
    per-combination loop — exact IEEE operations are lifted wholesale and
    everything else falls back to the scalar interval lifting per cell — so
    enabling ``vectorized_scores`` never moves a bound.  Returns ``None``
    when the sweep cannot express a template (the caller then runs the
    scalar loop).
    """
    if not templates:
        return None
    count = _combination_count(atom_ranges)
    if count <= 1:
        return None
    lo_grid = np.meshgrid(
        *[np.array([chunk.lo for chunk in cells]) for cells in atom_ranges], indexing="ij"
    )
    hi_grid = np.meshgrid(
        *[np.array([chunk.hi for chunk in cells]) for cells in atom_ranges], indexing="ij"
    )
    combos_lo = np.stack([grid.reshape(-1) for grid in lo_grid], axis=1)
    combos_hi = np.stack([grid.reshape(-1) for grid in hi_grid], axis=1)

    def atom_leaf(leaf):
        return combos_lo[:, leaf.index], combos_hi[:, leaf.index]

    try:
        weight_lo = np.ones(count)
        weight_hi = np.ones(count)
        for template in templates:
            score_lo, score_hi = checked_cells(
                template.template, count, atom_leaf=atom_leaf, transcendentals=transcendentals
            )
            # meet with [0, inf); an empty meet collapses to the point 0.
            score_lo = np.maximum(score_lo, 0.0)
            empty = score_hi < score_lo
            score_lo = np.where(empty, 0.0, score_lo)
            score_hi = np.where(empty, 0.0, score_hi)
            weight_lo, weight_hi = vec_mul(weight_lo, weight_hi, score_lo, score_hi)
        if np.isnan(weight_lo).any() or np.isnan(weight_hi).any():
            raise ScalarFallback
    except ScalarFallback:
        return None
    return np.maximum(0.0, weight_lo if is_lower else weight_hi)


# ----------------------------------------------------------------------
# Columnar fast path
# ----------------------------------------------------------------------

#: Key of the linear analyzer's memo space inside ``PathTable.scratch``.
_TABLE_SCRATCH_KEY = "linear-analyzer"


def _table_cache(table) -> dict:
    """This analyzer's per-table memo: forms, score decompositions, dist checks.

    Living in ``table.scratch``, the memo survives across chunks and queries
    of one table attachment — a worker that analysed chunk 3 of a query has
    already extracted the linear forms chunk 7 (and the next query) needs.
    """
    cache = table.scratch.get(_TABLE_SCRATCH_KEY)
    if cache is None:
        cache = table.scratch.setdefault(_TABLE_SCRATCH_KEY, {
            "forms": {},  # node id -> Optional[LinearForm]
            "scores": {},  # tuple of score node ids -> (atoms, templates)
            "dists": {},  # dist id -> bounded-uniform?
            "applicable": {},  # path index -> bool (the predicate is options-free)
            "path_dists": {},  # path index -> tuple[Distribution, ...]
        })
    return cache


def _path_distributions(table, index: int, cache: dict):
    distributions = cache["path_dists"].get(index)
    if distributions is None:
        distributions = cache["path_dists"][index] = table.path_distributions(index)
    return distributions


def _table_form(table, node_id: int, forms: dict) -> Optional[LinearForm]:
    """``extract_linear`` of a table node, memoised per node id."""
    if node_id in forms:
        return forms[node_id]
    form = extract_linear(table.decode_expr(node_id))
    forms[node_id] = form
    return form


def linear_table_applicable(table, index: int, options: AnalysisOptions) -> bool:
    """Table-level :func:`linear_analysis_applicable` (same predicate).

    Memoised per path index — the predicate depends only on the path
    structure, so routing repeated queries over one attachment is a dict
    hit.
    """
    cache = _table_cache(table)
    known = cache["applicable"].get(index)
    if known is not None:
        return known

    def compute() -> bool:
        dist_ok = cache["dists"]
        for raw_id in table.path_dist_ids(index):
            dist_id = int(raw_id)
            ok = dist_ok.get(dist_id)
            if ok is None:
                dist = table.distributions[dist_id]
                ok = isinstance(dist, Uniform) and dist.support().is_bounded
                dist_ok[dist_id] = ok
            if not ok:
                return False
        forms = cache["forms"]
        if _table_form(table, table.result_id(index), forms) is None:
            return False
        expr_ids, _ = table.constraint_ids(index)
        return all(
            _table_form(table, int(expr_id), forms) is not None for expr_id in expr_ids
        )

    result = compute()
    cache["applicable"][index] = result
    return result


def analyze_table_linear(
    table,
    index: int,
    targets: Sequence[Interval],
    options: AnalysisOptions,
    cache: Optional[dict] = None,
) -> list[tuple[float, float]]:
    """Bounds for path ``index`` from the table, without materialising it.

    Linear forms (per node id) and score decompositions (per score-id
    tuple) come from the per-table memo, so across the chunks and repeated
    queries of one attachment each unique expression is extracted and
    decomposed exactly once.  The polytope integration itself runs the same
    forms-level core as the materialised route — bounds are bit-identical.
    """
    cache = cache if cache is not None else _table_cache(table)
    prepared = cache.setdefault("prepared", {}).get(index)
    if prepared is None:
        forms = cache["forms"]
        result_form = _table_form(table, table.result_id(index), forms)
        assert result_form is not None, "analyze_table_linear requires a linear result"
        expr_ids, rel_ids = table.constraint_ids(index)
        constraint_forms: list[tuple[LinearForm, str]] = []
        for expr_id, rel_id in zip(expr_ids, rel_ids):
            form = _table_form(table, int(expr_id), forms)
            if form is None:
                raise ValueError("path has a non-linear constraint")
            constraint_forms.append((form, Relation.ALL[int(rel_id)]))

        score_key = tuple(int(score_id) for score_id in table.score_ids(index))
        entry = cache["scores"].get(score_key)
        if entry is None:
            atoms: list[LinearForm] = []
            templates = tuple(
                decompose_score(table.decode_expr(score_id), atoms) for score_id in score_key
            )
            entry = cache["scores"][score_key] = (tuple(atoms), templates)
        atoms, templates = entry
        prepared = cache["prepared"][index] = (
            result_form,
            tuple(constraint_forms),
            atoms,
            templates,
            _path_distributions(table, index, cache),
        )

    result_form, constraint_forms, atoms, templates, distributions = prepared
    return _analyze_linear_forms(
        result_form, constraint_forms, atoms, templates, distributions, targets, options
    )


def _split_interval(interval: Interval, parts: int) -> list[Interval]:
    if interval.is_point or parts <= 1 or not interval.is_bounded:
        return [interval]
    return interval.split(parts)


def _combination_count(atom_ranges: list[list[Interval]]) -> int:
    count = 1
    for cells in atom_ranges:
        count *= len(cells)
    return count


class LinearPathAnalyzer:
    """Registry adapter for the optimised linear semantics (Section 6.4)."""

    name = "linear"

    def applicable(self, path: SymbolicPath, options: AnalysisOptions) -> bool:
        return linear_analysis_applicable(path)

    def analyze(
        self,
        path: SymbolicPath,
        targets: Sequence[Interval],
        options: AnalysisOptions,
    ) -> list[tuple[float, float]]:
        return analyze_path_linear(path, targets, options)

    def analyze_batch(
        self,
        paths: Sequence[SymbolicPath],
        targets: Sequence[Interval],
        options: AnalysisOptions,
    ) -> list[list[tuple[float, float]]]:
        """Per-path contributions for a chunk (identical to per-path calls).

        Volume caching stays per-path: the cache key is the polytope's
        H-representation, which only coincides across paths by accident, and
        a shared cache would make results depend on chunk boundaries.
        """
        return [analyze_path_linear(path, targets, options) for path in paths]

    # -- columnar fast path --------------------------------------------
    def applicable_table(self, table, index: int, options: AnalysisOptions) -> bool:
        return linear_table_applicable(table, index, options)

    def analyze_table(
        self,
        table,
        indices,
        targets: Sequence[Interval],
        options: AnalysisOptions,
    ) -> list[list[tuple[float, float]]]:
        """Per-path contributions straight from a ``PathTable`` slice.

        The score-combination sweep (and the whole polytope integration)
        runs on forms pulled from the per-table memo — bit-identical to the
        materialised route (see :func:`analyze_table_linear`).
        """
        cache = _table_cache(table)
        return [
            analyze_table_linear(table, index, targets, options, cache) for index in indices
        ]
