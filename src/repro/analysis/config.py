"""Configuration of the guaranteed-bounds analysis (GuBPI engine)."""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..symbolic import ExecutionLimits

__all__ = [
    "AnalysisOptions",
    "DEFAULT_IO_TIMEOUT",
    "DEFAULT_JOB_RETRIES",
    "DEFAULT_JOB_TIMEOUT",
    "DEFAULT_REFINE_MAX_ROUNDS",
    "DEFAULT_SOCKET_ENDPOINT",
    "DEFAULT_TRANSPORT",
    "EXECUTOR_KINDS",
    "REFINE_KINDS",
    "TRANSPORT_KINDS",
    "parse_endpoint",
]

#: The recognised execution backends of the bound engine.  ``"serial"`` runs
#: the classic single-threaded loop, ``"thread"`` / ``"process"`` fan path
#: chunks out over a ``concurrent.futures`` pool (see
#: :mod:`repro.analysis.parallel`), and ``"socket"`` fans chunks out over a
#: TCP work queue to remote worker processes (``python -m
#: repro.service.worker``; see :mod:`repro.service.queue`).
EXECUTOR_KINDS = ("serial", "thread", "process", "socket")

#: Where the ``"socket"`` executor binds its work-queue server when
#: ``socket_endpoint`` is unset: loopback with an ephemeral port (the bound
#: address is discoverable via ``ParallelAnalysisExecutor.queue_address``).
DEFAULT_SOCKET_ENDPOINT = "127.0.0.1:0"

#: Default per-job timeout (seconds) of the socket work queue.
DEFAULT_JOB_TIMEOUT = 300.0

#: Default number of times a failed/timed-out/lost socket job is re-queued
#: before the query errors out.
DEFAULT_JOB_RETRIES = 2

#: Default socket-level patience (seconds) of the service tier: the work
#: queue's handshake read timeout, the liveness window for workers that do
#: not heartbeat, and the grace the parallel executor grants a queue with
#: zero connected workers before degrading to a local backend.
DEFAULT_IO_TIMEOUT = 30.0

#: The recognised process-dispatch payload formats.  ``"arena"`` (the
#: default) writes the path set once into a ``multiprocessing.shared_memory``
#: path-table segment (:mod:`repro.symbolic.arena`) and ships only tiny chunk
#: references — the segment is reused across queries on the cached worker
#: pool, and degrades to pickle automatically when shared memory is
#: unavailable.  ``"pickle"`` ships every chunk as an interned pickled object
#: graph.  Both transports produce bit-identical bounds; in-process backends
#: (serial, thread) pass direct references and ignore the knob entirely.
TRANSPORT_KINDS = ("pickle", "arena")

#: The payload transport selected when ``payload_transport`` is unset.
DEFAULT_TRANSPORT = "arena"

#: The recognised anytime-refinement modes.  ``"off"`` (the default) runs
#: the classic one-shot uniform sweep; ``"gap"`` seeds from that sweep and
#: then iteratively re-splits the paths contributing most to the
#: lower/upper bound gap (see :mod:`repro.analysis.refine`).
REFINE_KINDS = ("off", "gap")

#: Default round cap of gap-directed refinement when no explicit budget is
#: given.  A *round* re-analyses a fixed-size batch of worst-gap paths at a
#: doubled split budget; a fixed default keeps refined bounds deterministic
#: (bit-identical across backends and transports) out of the box.
DEFAULT_REFINE_MAX_ROUNDS = 4

#: Default memory budget (in bytes) of the streamed-query cache tee: a
#: ``stream=True`` query materialises the paths it dispatches into the
#: compiled-program cache as long as the (arena-encoded) footprint stays
#: under this budget, so a repeated query is served from the cache.
DEFAULT_STREAM_CACHE_BUDGET = 64 * 1024 * 1024

#: Environment overrides for the parallel defaults.  They let a CI job (or an
#: operator) run an unmodified workload in parallel mode::
#:
#:     REPRO_ANALYSIS_WORKERS=2 REPRO_ANALYSIS_EXECUTOR=thread pytest
_WORKERS_ENV = "REPRO_ANALYSIS_WORKERS"
_EXECUTOR_ENV = "REPRO_ANALYSIS_EXECUTOR"
_STREAM_ENV = "REPRO_ANALYSIS_STREAM"
_TRANSPORT_ENV = "REPRO_ANALYSIS_TRANSPORT"
_COLUMNAR_ENV = "REPRO_ANALYSIS_COLUMNAR"
_SOCKET_ENDPOINT_ENV = "REPRO_ANALYSIS_SOCKET_ENDPOINT"
_REFINE_ENV = "REPRO_ANALYSIS_REFINE"


def _require_positive(name: str, value: int) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")


def _default_workers() -> int:
    raw = os.environ.get(_WORKERS_ENV)
    if not raw:  # unset or empty-but-set both mean "no override"
        return 1
    try:
        workers = int(raw)
    except ValueError as exc:
        raise ValueError(f"{_WORKERS_ENV} must be an integer, got {raw!r}") from exc
    return workers


def _default_executor() -> Optional[str]:
    return os.environ.get(_EXECUTOR_ENV) or None


def _default_stream() -> bool:
    return os.environ.get(_STREAM_ENV, "").lower() not in ("", "0", "false", "no")


def _default_transport() -> Optional[str]:
    return os.environ.get(_TRANSPORT_ENV) or None


def _default_columnar() -> bool:
    return os.environ.get(_COLUMNAR_ENV, "").lower() not in ("0", "false", "no")


def _default_socket_endpoint() -> Optional[str]:
    return os.environ.get(_SOCKET_ENDPOINT_ENV) or None


def _default_refine() -> str:
    return os.environ.get(_REFINE_ENV) or "off"


def parse_endpoint(endpoint: str) -> tuple[str, int]:
    """Split a ``host:port`` endpoint string (the socket executor's knob)."""
    host, sep, port = endpoint.rpartition(":")
    if not sep or not host:
        raise ValueError(f"endpoint must look like 'host:port', got {endpoint!r}")
    try:
        port_number = int(port)
    except ValueError as exc:
        raise ValueError(f"endpoint port must be an integer, got {port!r}") from exc
    if not 0 <= port_number <= 65535:
        raise ValueError(f"endpoint port out of range: {port_number}")
    return host, port_number


@dataclass(frozen=True)
class AnalysisOptions:
    """Tunable knobs of Algorithm 1 and the path analysers.

    Attributes:
        max_fixpoint_depth: the depth limit ``D`` of Algorithm 1 — recursive
            calls beyond this depth are summarised by the interval type system.
        max_paths: abort threshold for symbolic path explosion.
        splits_per_dimension: how many pieces every sample variable's domain
            is split into by the *standard* interval trace semantics
            (Section 6.3).  The number of boxes is exponential in the path
            dimension, so it is capped by ``max_boxes_per_path``.
        max_boxes_per_path: cap on the grid size per path; the per-dimension
            split count is reduced to stay under it.
        score_splits: how many chunks the range of every linear score atom is
            split into by the *linear* semantics (Section 6.4).
        max_score_combinations: cap on the product grid over score atoms.
        use_linear_semantics: legacy switch between the optimised linear
            semantics and pure box splitting (the ablation of Section 6.4);
            superseded by ``analyzers`` but still honoured when ``analyzers``
            is not set.
        prune_empty_paths: skip paths whose constraint polytope is infeasible.
        analyzers: ordered preference of registered path-analyzer names (see
            :mod:`repro.analysis.registry`).  Every symbolic path is handled
            by the first listed analyzer that declares itself applicable.
            ``None`` (the default) derives the sequence from
            ``use_linear_semantics``: ``("linear", "box")`` when true,
            ``("box",)`` otherwise.
        workers: how many workers the parallel bound engine fans path chunks
            out over.  ``1`` (the default) keeps the engine serial unless
            ``executor`` explicitly requests a pool.  Defaults to
            ``$REPRO_ANALYSIS_WORKERS`` when that variable is set.
        chunk_size: number of symbolic paths per parallel work unit.  ``None``
            derives a deterministic, cost-balanced partition from the path
            set and the worker count (see
            :func:`repro.analysis.parallel.partition_paths`).
        executor: ``"serial"``, ``"thread"`` or ``"process"``; ``None`` (the
            default) derives the backend from ``workers`` — a process pool
            when ``workers > 1``, the serial loop otherwise.  Defaults to
            ``$REPRO_ANALYSIS_EXECUTOR`` when that variable is set.
        vectorized_boxes: let the box analyser evaluate all grid cells of a
            path in one vectorised sweep instead of a per-cell Python loop
            (:func:`repro.analysis.box_analyzer.analyze_path_boxes`).
        vectorized_scores: let the linear analyser evaluate all score-atom
            range combinations of an integral in one vectorised sweep instead
            of the per-combination Python loop
            (:mod:`repro.analysis.linear_analyzer`).
        vectorized_transcendentals: evaluate the monotone transcendental
            primitives (``exp``, ``log``) inside vectorised sweeps as
            whole-array NumPy calls instead of the per-cell scalar interval
            lifting.  **Off by default**: NumPy's transcendentals may differ
            from libm's in the last ulp, and the golden regression pins
            assume libm — enabling the knob keeps bounds sound but may move
            them by one ulp.
        stream: pipeline symbolic exploration into path analysis — paths are
            produced by the iterative explorer and consumed chunk-by-chunk
            while exploration is still enumerating, so the full path set is
            never materialised (see :func:`repro.analysis.engine.analyze_path_stream`).
            Streamed bounds are bit-identical to batch bounds.  Defaults to
            ``$REPRO_ANALYSIS_STREAM`` when that variable is set.
        prefetch: bounded-buffer depth of the streaming pipeline — at most
            ``workers × prefetch`` chunks are in flight at once, which caps
            the number of paths resident in the parent process at roughly
            ``(workers × prefetch + 1) × chunk size``.
        payload_transport: how chunk payloads reach process workers —
            ``"arena"`` (the default: a flat shared-memory path table
            written once per path set, with workers attaching and analysing
            chunk views; see :mod:`repro.symbolic.arena`) or ``"pickle"``
            (interned pickled object graphs).  Bounds are bit-identical
            either way.  Ignored by the serial and thread backends, which
            pass direct references, and silently degraded to pickle when
            ``multiprocessing.shared_memory`` is unavailable (so the arena
            default is safe on every host).  Defaults to
            ``$REPRO_ANALYSIS_TRANSPORT`` when that variable is set.
        columnar: let analyzers with a columnar fast path
            (``analyze_table``, see :mod:`repro.analysis.registry`) sweep
            chunk slices straight from the shared ``PathTable`` arrays
            instead of materialising ``SymbolicPath`` objects.  Applies to
            process workers under the arena transport **and** to the
            in-process (serial/thread) backends, which share one table per
            compiled path set.  On by default; bounds are bit-identical
            with the knob on or off.  ``$REPRO_ANALYSIS_COLUMNAR=0``
            disables it process-wide.
        socket_endpoint: ``host:port`` the ``"socket"`` executor binds its
            work-queue server on.  ``None`` (the default) binds loopback with
            an ephemeral port — right for the common case where the executor
            spawns its own local workers; give an explicit reachable address
            when remote workers (``python -m repro.service.worker``) are
            meant to connect from other hosts.  Defaults to
            ``$REPRO_ANALYSIS_SOCKET_ENDPOINT`` when that variable is set.
        socket_spawn_workers: how many *local* worker processes the
            ``"socket"`` executor launches against its own queue.  ``None``
            (the default) spawns ``workers`` of them, so
            ``AnalysisOptions(executor="socket", workers=4)`` is
            self-contained; ``0`` spawns none (external workers must connect
            before any query makes progress).
        job_timeout: per-job wall-clock limit (seconds) of the socket work
            queue.  A job that exceeds it is requeued to another worker (the
            stuck worker's connection is dropped); ``None`` disables the
            timeout.
        job_retries: how many times a failed, timed-out or lost socket job
            is re-dispatched before the query fails.  Bounded retry is what
            turns a dead or wedged worker into a throughput loss instead of
            a query loss — while still guaranteeing that a job which can
            never succeed (e.g. a deterministic analyzer error) surfaces
            after ``job_retries + 1`` attempts.
        io_timeout: socket-level patience (seconds) of the service tier —
            the work queue's handshake read timeout, the liveness window
            for workers that do not heartbeat, and the no-worker grace the
            parallel executor grants the socket backend before walking down
            the degradation ladder (process pool, then serial).  Replaces
            the old hard-coded 30 s read timeout.
        time_budget: overall wall-clock budget (seconds) for one query,
            measured from dispatch.  The parallel executor turns it into an
            absolute deadline propagated onto every socket job (jobs not
            dispatched in time fail with ``DeadlineExceeded``), and the
            bounds server derives it from the client-supplied deadline so
            no query outlives its caller.  Deliberately *relative*: options
            participate in cache keys, and an absolute timestamp would make
            every query a cache miss.  ``None`` (the default) disables it.
        refine: anytime-refinement mode — ``"off"`` (the default: one
            uniform sweep at the configured split budgets) or ``"gap"``
            (gap-directed anytime refinement: seed from the uniform sweep,
            then iteratively re-analyse the paths contributing most to the
            lower/upper bound gap at doubled split budgets, see
            :mod:`repro.analysis.refine`).  Every refined bound is contained
            in the seed bound, and each round narrows monotonically; with
            ``"off"`` bounds are bit-identical to the classic engine.
            Defaults to ``$REPRO_ANALYSIS_REFINE`` when that variable is set.
        refine_time_budget: wall-clock budget (seconds) for the refinement
            rounds, checked between rounds — the anytime contract: the seed
            bound is always produced, then the scheduler narrows until the
            budget runs out.  ``None`` (the default) disables the time check
            (``refine_max_rounds`` still bounds the work); note that a time
            budget makes the *round count* — and therefore the exact refined
            floats — timing-dependent.
        refine_width_target: stop refining as soon as every target's bound
            width is at most this value.  ``0.0`` (the default) never stops
            early on width.
        refine_max_rounds: cap on the number of refinement rounds.  The
            default (:data:`DEFAULT_REFINE_MAX_ROUNDS`) keeps refined bounds
            deterministic — for a fixed round count they are bit-identical
            across backends, transports and the columnar knob.  ``None``
            removes the cap (rounds run until the gap heap drains, the width
            target is met or the time budget expires).
        stream_cache_budget: memory budget (bytes) of the streamed-query
            cache tee.  A ``stream=True`` query on a cache miss materialises
            the paths it dispatches (interned, so the footprint is the
            arena-encoded size) and, if the whole stream fits the budget,
            installs the result in the compiled-program cache — a repeated
            query is then served from the cache at batch speed without the
            first query having sacrificed time-to-first-bound.  ``None`` or
            ``0`` disables the tee (streamed queries bypass the cache, the
            pre-tee behaviour).
    """

    max_fixpoint_depth: int = 6
    max_paths: int = 50_000
    splits_per_dimension: int = 8
    max_boxes_per_path: int = 20_000
    score_splits: int = 32
    max_score_combinations: int = 4_096
    use_linear_semantics: bool = True
    prune_empty_paths: bool = True
    analyzers: Optional[tuple[str, ...]] = None
    workers: int = field(default_factory=_default_workers)
    chunk_size: Optional[int] = None
    executor: Optional[str] = field(default_factory=_default_executor)
    vectorized_boxes: bool = True
    vectorized_scores: bool = True
    vectorized_transcendentals: bool = False
    stream: bool = field(default_factory=_default_stream)
    prefetch: int = 4
    payload_transport: Optional[str] = field(default_factory=_default_transport)
    columnar: bool = field(default_factory=_default_columnar)
    socket_endpoint: Optional[str] = field(default_factory=_default_socket_endpoint)
    socket_spawn_workers: Optional[int] = None
    job_timeout: Optional[float] = DEFAULT_JOB_TIMEOUT
    job_retries: int = DEFAULT_JOB_RETRIES
    io_timeout: float = DEFAULT_IO_TIMEOUT
    time_budget: Optional[float] = None
    stream_cache_budget: Optional[int] = DEFAULT_STREAM_CACHE_BUDGET
    refine: str = field(default_factory=_default_refine)
    refine_time_budget: Optional[float] = None
    refine_width_target: float = 0.0
    refine_max_rounds: Optional[int] = DEFAULT_REFINE_MAX_ROUNDS

    def __post_init__(self) -> None:
        _require_positive("max_fixpoint_depth", self.max_fixpoint_depth)
        _require_positive("max_paths", self.max_paths)
        _require_positive("splits_per_dimension", self.splits_per_dimension)
        _require_positive("max_boxes_per_path", self.max_boxes_per_path)
        _require_positive("score_splits", self.score_splits)
        _require_positive("max_score_combinations", self.max_score_combinations)
        _require_positive("workers", self.workers)
        _require_positive("prefetch", self.prefetch)
        if self.chunk_size is not None:
            _require_positive("chunk_size", self.chunk_size)
        if self.executor is not None and self.executor not in EXECUTOR_KINDS:
            kinds = ", ".join(repr(kind) for kind in EXECUTOR_KINDS)
            raise ValueError(
                f"executor must be one of {kinds} (or None for automatic), "
                f"got {self.executor!r}"
            )
        if not isinstance(self.columnar, bool):
            raise ValueError(f"columnar must be a boolean, got {self.columnar!r}")
        if self.payload_transport is not None and self.payload_transport not in TRANSPORT_KINDS:
            kinds = ", ".join(repr(kind) for kind in TRANSPORT_KINDS)
            raise ValueError(
                f"payload_transport must be one of {kinds} (or None for the "
                f"default), got {self.payload_transport!r}"
            )
        if self.socket_endpoint is not None:
            parse_endpoint(self.socket_endpoint)  # raises ValueError when malformed
        if self.socket_spawn_workers is not None:
            spawn = self.socket_spawn_workers
            if not isinstance(spawn, int) or isinstance(spawn, bool) or spawn < 0:
                raise ValueError(
                    f"socket_spawn_workers must be a non-negative integer or None, got {spawn!r}"
                )
        if self.job_timeout is not None:
            timeout = self.job_timeout
            if not isinstance(timeout, (int, float)) or isinstance(timeout, bool) or timeout <= 0:
                raise ValueError(
                    f"job_timeout must be a positive number of seconds or None, got {timeout!r}"
                )
        if not isinstance(self.job_retries, int) or isinstance(self.job_retries, bool) or self.job_retries < 0:
            raise ValueError(
                f"job_retries must be a non-negative integer, got {self.job_retries!r}"
            )
        io_timeout = self.io_timeout
        if not isinstance(io_timeout, (int, float)) or isinstance(io_timeout, bool) or io_timeout <= 0:
            raise ValueError(
                f"io_timeout must be a positive number of seconds, got {io_timeout!r}"
            )
        if self.time_budget is not None:
            budget = self.time_budget
            if not isinstance(budget, (int, float)) or isinstance(budget, bool) or budget <= 0:
                raise ValueError(
                    f"time_budget must be a positive number of seconds or None, got {budget!r}"
                )
        if self.stream_cache_budget is not None:
            budget = self.stream_cache_budget
            if not isinstance(budget, int) or isinstance(budget, bool) or budget < 0:
                raise ValueError(
                    f"stream_cache_budget must be a non-negative integer number "
                    f"of bytes or None, got {budget!r}"
                )
        if self.refine not in REFINE_KINDS:
            kinds = ", ".join(repr(kind) for kind in REFINE_KINDS)
            raise ValueError(f"refine must be one of {kinds}, got {self.refine!r}")
        if self.refine_time_budget is not None:
            budget = self.refine_time_budget
            if not isinstance(budget, (int, float)) or isinstance(budget, bool) or budget <= 0:
                raise ValueError(
                    f"refine_time_budget must be a positive number of seconds "
                    f"or None, got {budget!r}"
                )
        width = self.refine_width_target
        if not isinstance(width, (int, float)) or isinstance(width, bool) or width < 0:
            raise ValueError(
                f"refine_width_target must be a non-negative number, got {width!r}"
            )
        if self.refine_max_rounds is not None:
            _require_positive("refine_max_rounds", self.refine_max_rounds)
        if self.analyzers is not None:
            if isinstance(self.analyzers, str):
                raise ValueError("analyzers must be a sequence of names, not a string")
            names = tuple(self.analyzers)
            if not names:
                raise ValueError("analyzers must name at least one path analyzer")
            for name in names:
                if not isinstance(name, str) or not name:
                    raise ValueError(f"analyzer names must be non-empty strings, got {name!r}")
            object.__setattr__(self, "analyzers", names)

    @property
    def analyzer_names(self) -> tuple[str, ...]:
        """The effective, ordered analyzer preference of this configuration."""
        if self.analyzers is not None:
            return self.analyzers
        return ("linear", "box") if self.use_linear_semantics else ("box",)

    @property
    def effective_executor(self) -> str:
        """The execution backend selected by this configuration.

        An explicit ``executor`` wins; otherwise ``workers > 1`` selects a
        process pool and ``workers == 1`` the serial loop.
        """
        if self.executor is not None:
            return self.executor
        return "process" if self.workers > 1 else "serial"

    @property
    def parallel(self) -> bool:
        """Whether queries with these options run on a worker pool."""
        return self.effective_executor != "serial"

    @property
    def effective_transport(self) -> str:
        """The process-dispatch payload format selected by this configuration.

        An explicit ``payload_transport`` wins; otherwise ``"arena"`` (the
        default since the columnar path core landed).  The executor
        additionally degrades ``"arena"`` to pickle at dispatch time when
        ``multiprocessing.shared_memory`` is unavailable on the host.
        """
        return self.payload_transport if self.payload_transport is not None else DEFAULT_TRANSPORT

    @property
    def refine_enabled(self) -> bool:
        """Whether queries with these options run gap-directed refinement."""
        return self.refine == "gap"

    @property
    def stream_cache_enabled(self) -> bool:
        """Whether streamed queries tee their paths into the compile cache."""
        return bool(self.stream_cache_budget)

    def execution_limits(self) -> ExecutionLimits:
        """The subset of options that parameterise symbolic execution.

        Two configurations with equal :class:`ExecutionLimits` share the same
        symbolic path set, which is what :class:`repro.Model` keys its
        compiled-program cache on.
        """
        return ExecutionLimits(
            max_fixpoint_depth=self.max_fixpoint_depth,
            max_paths=self.max_paths,
        )

    def executor_key(self) -> tuple:
        """The subset of options that identify a reusable worker pool.

        ``chunk_size`` is deliberately absent: it only affects how one call
        partitions its paths, not the pool itself, so sweeping chunk sizes
        reuses a single pool.  For the ``"socket"`` backend the key includes
        the queue endpoint and spawn count — different endpoints are
        different clusters and must not share one queue server.
        """
        kind = self.effective_executor
        if kind == "socket":
            return (
                kind, self.workers, self.socket_endpoint,
                self.socket_spawn_workers, self.io_timeout,
            )
        return (kind, self.workers)

    def with_updates(self, **changes) -> "AnalysisOptions":
        """A copy of the options with some fields replaced."""
        return replace(self, **changes)
