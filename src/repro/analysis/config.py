"""Configuration of the guaranteed-bounds analysis (GuBPI engine)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AnalysisOptions"]


@dataclass(frozen=True)
class AnalysisOptions:
    """Tunable knobs of Algorithm 1 and the two path analysers.

    Attributes:
        max_fixpoint_depth: the depth limit ``D`` of Algorithm 1 — recursive
            calls beyond this depth are summarised by the interval type system.
        max_paths: abort threshold for symbolic path explosion.
        splits_per_dimension: how many pieces every sample variable's domain
            is split into by the *standard* interval trace semantics
            (Section 6.3).  The number of boxes is exponential in the path
            dimension, so it is capped by ``max_boxes_per_path``.
        max_boxes_per_path: cap on the grid size per path; the per-dimension
            split count is reduced to stay under it.
        score_splits: how many chunks the range of every linear score atom is
            split into by the *linear* semantics (Section 6.4).
        max_score_combinations: cap on the product grid over score atoms.
        use_linear_semantics: switch between the optimised linear semantics
            and pure box splitting (the ablation of Section 6.4).
        prune_empty_paths: skip paths whose constraint polytope is infeasible.
    """

    max_fixpoint_depth: int = 6
    max_paths: int = 50_000
    splits_per_dimension: int = 8
    max_boxes_per_path: int = 20_000
    score_splits: int = 32
    max_score_combinations: int = 4_096
    use_linear_semantics: bool = True
    prune_empty_paths: bool = True

    def with_updates(self, **changes) -> "AnalysisOptions":
        """A copy of the options with some fields replaced."""
        from dataclasses import replace

        return replace(self, **changes)
