"""The :class:`Model` facade: compile the symbolic phase once, query it many times.

Symbolic execution is by far the most expensive phase of the GuBPI pipeline —
it explores exponentially many paths and, for recursive programs, invokes the
interval type system on every ``approxFix`` summary.  Yet its output depends
only on the program term and on :class:`~repro.symbolic.ExecutionLimits`
(fixpoint depth, path cap), not on any of the analysis knobs.  ``Model``
exploits this: it owns an SPCF term, lazily compiles it into a
:class:`CompiledProgram` (one cached symbolic execution per limits
configuration) and serves every downstream query — denotation bounds,
posterior probabilities, histogram bounds — from the cache.  It also fronts
the stochastic (:meth:`Model.sample`), exact (:meth:`Model.exact`) and
path-exploration (:meth:`Model.estimate`) baselines so a whole evaluation
scenario runs off one object::

    from repro import Model, Interval, AnalysisOptions

    model = Model.parse("(let x (* 3 (sample)) (let _ (observe normal 1.1 0.25 x) x))")
    query = model.probability(Interval(0.0, 1.0))       # runs symbolic execution
    histogram = model.histogram(0.0, 3.0, 12)           # served from the cache
    samples = model.sample(10_000, method="importance") # stochastic baseline
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass
from typing import Optional, Sequence

import hashlib

from ..intervals import Interval
from ..lang.ast import Term
from ..symbolic import (
    ExecutionLimits,
    PathInterner,
    SymbolicExecutionResult,
    fingerprint_term,
    stream_symbolic_paths,
    symbolic_paths,
)
from .config import AnalysisOptions
from .engine import (
    _REALS,
    AnalysisReport,
    DenotationBounds,
    QueryBounds,
    analyze_execution,
    analyze_path_stream,
    histogram_buckets,
    normalised_query,
)
from .histogram import BucketBound, HistogramBounds

__all__ = ["CompiledProgram", "Model", "program_hash"]


def program_hash(term: Term, limits: Optional[ExecutionLimits] = None) -> str:
    """The canonical hash identifying one compiled program.

    Folds the structural term fingerprint
    (:func:`repro.symbolic.fingerprint_term`) together with the
    :class:`~repro.symbolic.ExecutionLimits` that parameterise symbolic
    execution — the same pair the :class:`Model` compile cache is keyed on,
    lifted to a value that is stable **across processes**: the service tier
    uses it to share compiled programs (and their path tables) between
    tenants, so two clients submitting the same program text at the same
    limits hit one cache entry instead of running symbolic execution twice.
    """
    limits = limits or ExecutionLimits()
    digest = hashlib.blake2b(digest_size=16)
    digest.update(fingerprint_term(term).encode())
    digest.update(f"|{limits.max_fixpoint_depth}|{limits.max_paths}".encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class CompiledProgram:
    """One symbolic execution of a term, reusable across analysis queries.

    The pair ``(term, limits)`` determines ``execution`` completely, so a
    compiled program can be cached and shared freely; all its fields are
    immutable.
    """

    term: Term
    limits: ExecutionLimits
    execution: SymbolicExecutionResult
    compile_seconds: float

    @classmethod
    def compile(cls, term: Term, limits: Optional[ExecutionLimits] = None) -> "CompiledProgram":
        """Run symbolic execution once and package the result."""
        limits = limits or ExecutionLimits()
        start = time.perf_counter()
        execution = symbolic_paths(term, limits)
        return cls(
            term=term,
            limits=limits,
            execution=execution,
            compile_seconds=time.perf_counter() - start,
        )

    @property
    def path_count(self) -> int:
        return self.execution.path_count

    @property
    def exact(self) -> bool:
        """True when no fixpoint had to be over-approximated."""
        return self.execution.exact

    @property
    def program_hash(self) -> str:
        """Canonical cross-process identity of this compilation (cached).

        See :func:`program_hash`; computed lazily because the facade only
        needs it when a program enters the service tier's shared cache.
        """
        cached = getattr(self, "_program_hash", None)
        if cached is None:
            cached = program_hash(self.term, self.limits)
            object.__setattr__(self, "_program_hash", cached)
        return cached

    def analyze(
        self,
        targets: Sequence[Interval],
        options: Optional[AnalysisOptions] = None,
        report: Optional[AnalysisReport] = None,
        executor: Optional["ParallelAnalysisExecutor"] = None,
        progress=None,
    ) -> list[DenotationBounds]:
        """Denotation bounds for ``targets`` from the cached path set.

        ``executor`` (optional) is a running
        :class:`~repro.analysis.parallel.ParallelAnalysisExecutor` whose pool
        is reused instead of spinning one up per query.  ``progress``
        (optional) is the per-round anytime hook of refinement mode (see
        :func:`repro.analysis.engine.analyze_execution`).
        """
        return analyze_execution(
            self.execution, targets, options, report, executor=executor, progress=progress
        )


class Model:
    """Facade over one probabilistic program: bounds, baselines, caching.

    A ``Model`` owns an SPCF :class:`~repro.lang.ast.Term` plus default
    :class:`~repro.analysis.config.AnalysisOptions`.  Query methods accept
    per-call option overrides; queries whose options share the same
    :class:`~repro.symbolic.ExecutionLimits` share one cached
    :class:`CompiledProgram` (changing analysis-only knobs such as
    ``score_splits`` or the analyzer selection never re-runs symbolic
    execution, changing ``max_fixpoint_depth`` / ``max_paths`` does).

    Queries whose options request parallelism (``workers > 1`` or an explicit
    ``executor``) run on a worker pool that is likewise created lazily and
    reused across queries; :meth:`close` (or using the model as a context
    manager) shuts the pools down.  Parallel queries return bounds
    bit-identical to serial ones.
    """

    def __init__(self, term: Term, options: Optional[AnalysisOptions] = None) -> None:
        if not isinstance(term, Term):
            raise TypeError(f"Model expects an SPCF Term, got {type(term).__name__}")
        self._term = term
        self._options = options if options is not None else AnalysisOptions()
        self._compiled: dict[ExecutionLimits, CompiledProgram] = {}
        self._compile_count = 0
        self._cache_hits = 0
        self._fingerprint: Optional[str] = None
        # Service-tier observability: how many streamed queries primed the
        # compile cache through the tee, and how many times a shared
        # program-hash cache (repro.service) served / missed this model.
        self._stream_tee_primes = 0
        self._program_cache_hits = 0
        self._program_cache_misses = 0
        # Worker pools, keyed by the parallel knobs that define them.  Pools
        # are created lazily on the first parallel query and reused across
        # queries (mirroring the compiled-program cache for the symbolic
        # phase); close() shuts them down.
        self._executors: dict[tuple, "ParallelAnalysisExecutor"] = {}

    # ------------------------------------------------------------------
    # Construction and configuration
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, source: str, options: Optional[AnalysisOptions] = None) -> "Model":
        """Build a model from SPCF surface syntax (see :mod:`repro.lang.parser`)."""
        from ..lang.parser import parse

        return cls(parse(source), options)

    @property
    def term(self) -> Term:
        return self._term

    @property
    def options(self) -> AnalysisOptions:
        return self._options

    def with_options(self, **changes) -> "Model":
        """A model over the same term with updated default options.

        The compiled-program cache is *shared* with the parent (not copied),
        so switching analysis knobs never repeats symbolic execution — and
        ``clear_cache`` on either model affects both.
        """
        clone = Model(self._term, self._options.with_updates(**changes))
        clone._compiled = self._compiled
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Model(term={type(self._term).__name__}, "
            f"compiled={len(self._compiled)}, cache_hits={self._cache_hits})"
        )

    # ------------------------------------------------------------------
    # Compilation cache
    # ------------------------------------------------------------------
    def compile(self, options: Optional[AnalysisOptions] = None) -> CompiledProgram:
        """The cached symbolic execution for the given options (compiling on miss)."""
        options = self._resolve(options)
        limits = options.execution_limits()
        compiled = self._compiled.get(limits)
        if compiled is None:
            compiled = CompiledProgram.compile(self._term, limits)
            self._compiled[limits] = compiled
            self._compile_count += 1
        else:
            self._cache_hits += 1
        return compiled

    def compiled_for(self, options: Optional[AnalysisOptions] = None) -> Optional[CompiledProgram]:
        """Peek the compile cache: the cached compilation or ``None``.

        Unlike :meth:`compile` this never runs symbolic execution and never
        touches the hit/compile counters — the durability layer uses it to
        ask "is a warm load needed?" without perturbing cache telemetry.
        """
        options = self._resolve(options)
        return self._compiled.get(options.execution_limits())

    def install_compiled(self, compiled: CompiledProgram) -> None:
        """Adopt an externally built compilation into the compile cache.

        The durability layer (:mod:`repro.service.store`) rebuilds
        :class:`CompiledProgram` instances from persisted path-table images
        on warm restart; installing one here makes the next query a compile
        cache hit instead of re-running symbolic execution.  The program's
        term must structurally match this model's term — enforced via the
        cross-process :func:`program_hash` so a stale store entry can never
        smuggle in another program's paths.
        """
        expected = program_hash(self._term, compiled.limits)
        actual = program_hash(compiled.term, compiled.limits)
        if actual != expected:
            raise ValueError(
                f"compiled program hash {actual} does not match model hash {expected}"
            )
        self._compiled[compiled.limits] = compiled

    def executor_for(self, options: Optional[AnalysisOptions] = None):
        """The pooled executor serving ``options`` (``None`` for serial runs).

        Public face of the lazy pool cache for callers that drive analysis
        components directly (the service tier's durable refinement path);
        pools are shared with regular :meth:`bounds` queries and shut down
        by :meth:`close` as usual.
        """
        return self._executor_for(self._resolve(options))

    def clear_cache(self) -> None:
        """Drop every cached compilation (subsequent queries recompile).

        The cache may be shared with models created via :meth:`with_options`;
        clearing it affects all of them.
        """
        self._compiled.clear()

    @property
    def compile_count(self) -> int:
        """How many symbolic executions this model has run."""
        return self._compile_count

    @property
    def cache_hits(self) -> int:
        """How many queries were served without re-running symbolic execution."""
        return self._cache_hits

    def fingerprint(self) -> str:
        """The structural fingerprint of this model's term (cached).

        The program half of :func:`program_hash` — what the service tier
        keys its multi-tenant program cache on.
        """
        if self._fingerprint is None:
            self._fingerprint = fingerprint_term(self._term)
        return self._fingerprint

    def note_program_cache(self, hit: bool) -> None:
        """Record one shared program-hash cache lookup that resolved to this model.

        Called by the service tier's :class:`repro.service.server.ProgramCache`
        so cache behaviour is observable through :meth:`cache_info` next to
        the compile-cache counters.
        """
        if hit:
            self._program_cache_hits += 1
        else:
            self._program_cache_misses += 1

    def cache_info(self) -> dict[str, int]:
        """Cache statistics: ``entries`` counts the (possibly shared) cache,
        ``compilations``/``hits`` count this instance's own queries,
        ``stream_tee_primes`` counts streamed queries that installed their
        path set into the compile cache, and the ``program_cache_*`` pair
        counts lookups of the service tier's shared program-hash cache that
        resolved to this model."""
        return {
            "entries": len(self._compiled),
            "compilations": self._compile_count,
            "hits": self._cache_hits,
            "stream_tee_primes": self._stream_tee_primes,
            "program_cache_hits": self._program_cache_hits,
            "program_cache_misses": self._program_cache_misses,
        }

    def _resolve(self, options: Optional[AnalysisOptions]) -> AnalysisOptions:
        return options if options is not None else self._options

    # ------------------------------------------------------------------
    # Parallel worker pools
    # ------------------------------------------------------------------
    def _executor_for(self, options: AnalysisOptions):
        """The pooled executor serving ``options`` (``None`` for serial runs)."""
        if not options.parallel:
            return None
        from .parallel import ParallelAnalysisExecutor

        key = options.executor_key()
        executor = self._executors.get(key)
        if executor is None:
            # No chunk_size on the pool itself: it is a per-call knob (each
            # query's options govern partitioning), and baking the first
            # query's value into a pool keyed only by (kind, workers) would
            # leak it into later queries.
            executor = ParallelAnalysisExecutor(
                workers=options.workers,
                kind=options.effective_executor,
                socket_endpoint=options.socket_endpoint,
                socket_spawn_workers=options.socket_spawn_workers,
                io_timeout=options.io_timeout,
            )
            self._executors[key] = executor
            # Safety net for models dropped without close(): shut the pool
            # down when the model is garbage-collected, so worker processes
            # never outlive the object that owns them (close() remains the
            # deterministic path and is idempotent).
            weakref.finalize(self, executor.close)
        return executor

    def close(self) -> None:
        """Shut down every worker pool this model has spun up (idempotent).

        Queries remain valid afterwards — the next parallel query simply
        creates a fresh pool.  ``Model`` is also a context manager::

            with Model(term, AnalysisOptions(workers=4)) as model:
                model.histogram(0.0, 3.0, 12)
        """
        for executor in self._executors.values():
            executor.close()
        self._executors.clear()

    def __enter__(self) -> "Model":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def executor_count(self) -> int:
        """How many worker pools this model currently holds."""
        return len(self._executors)

    # ------------------------------------------------------------------
    # Guaranteed-bounds queries (the GuBPI engine)
    # ------------------------------------------------------------------
    def bounds(
        self,
        targets: Sequence[Interval],
        options: Optional[AnalysisOptions] = None,
        report: Optional[AnalysisReport] = None,
        progress=None,
    ) -> list[DenotationBounds]:
        """Guaranteed bounds on ``⟦P⟧(U)`` for every target ``U`` in ``targets``.

        With ``options.stream`` the symbolic exploration is *pipelined* into
        the analysis: paths are analysed (and, in parallel mode, dispatched
        to workers) while exploration is still enumerating, and the full path
        set is never materialised in one go.  A **cache tee** additionally
        materialises the paths *as they are dispatched*: if the whole stream
        fits ``options.stream_cache_budget`` bytes (measured as the interned,
        arena-encoded footprint), the result is installed in the
        compiled-program cache — and, under the arena transport, the arena
        segment is primed on the worker pool — so a repeated query is served
        at batch-cached speed while the first query kept its
        time-to-first-bound.  Overflowing the budget simply degrades to
        uncached streaming.  When a compiled program for the options'
        execution limits is already cached the cached batch path is used
        instead (it is strictly cheaper and bit-identical).

        ``progress`` (optional) is the anytime hook the bounds service
        streams over the wire.  On streamed cache-miss queries it fires once
        with ``(partial_bounds, paths_done)`` as soon as the first path
        contributions land (see
        :func:`repro.analysis.engine.analyze_path_stream`).  With
        ``options.refine="gap"`` it additionally fires after every
        refinement round with monotonically narrowing *sound* bounds —
        including on batch and cache-hit queries, whose refinement rounds
        are their anytime signal.
        """
        options = self._resolve(options)
        if options.stream and options.execution_limits() not in self._compiled:
            return self._bounds_streamed(targets, options, report, progress)
        compilations_before = self._compile_count
        compiled = self.compile(options)
        if report is not None:
            if self._compile_count > compilations_before:
                report.seconds += compiled.compile_seconds
            else:
                report.compile_cache_hits += 1
        return compiled.analyze(
            targets, options, report,
            executor=self._executor_for(options), progress=progress,
        )

    def _bounds_streamed(
        self,
        targets: Sequence[Interval],
        options: AnalysisOptions,
        report: Optional[AnalysisReport],
        progress=None,
    ) -> list[DenotationBounds]:
        """One streamed query, with the cache tee wrapped around the stream.

        With ``options.refine="gap"`` the streamed sweep doubles as the
        refinement seed: a contribution sink captures every per-path record
        in canonical order, and once the tee installs the compiled program
        the gap scheduler refines from those records without re-sweeping.
        Refinement needs the materialised path set; when the tee cannot
        supply one (cache budget disabled, or overflowed mid-stream) the
        compiled program provides it instead — a cache hit when available,
        otherwise one batch re-exploration — so streamed bounds equal batch
        bounds in refinement mode too.
        """
        limits = options.execution_limits()
        stream = stream_symbolic_paths(self._term, limits)
        executor = self._executor_for(options)
        collector = PathInterner() if options.stream_cache_enabled else None
        sink: Optional[list] = [] if options.refine_enabled else None
        #: Seconds spent *producing* paths (exploration + the tee's intern
        #: walk), excluding the analysis that runs between yields — the
        #: honest analog of a batch compilation's compile_seconds.
        explore_seconds = [0.0]

        def teed():
            budget = options.stream_cache_budget
            collecting = collector is not None
            resumed = time.perf_counter()
            for path in stream:
                if collecting:
                    # One intern walk per path; the interned path is what
                    # flows onward, so the collected set and the dispatched
                    # chunks share the same objects.  Everything collected is
                    # dropped the moment the arena-size estimate crosses the
                    # budget.
                    path = collector.add(path)
                    if collector.approximate_arena_bytes() > budget:
                        collector.clear()
                        collecting = False
                explore_seconds[0] += time.perf_counter() - resumed
                yield path
                resumed = time.perf_counter()

        bounds = analyze_path_stream(
            teed(), targets, options, report,
            executor=executor, progress=progress, contribution_sink=sink,
        )
        execution = None
        if collector is not None and collector.paths and stream.stats.exhausted:
            # The stream completed within budget: its paths ARE the compiled
            # program.  The collector is a PathTableBuilder in disguise, so
            # the columnar tables are already accumulated — hand the builder
            # to the execution result (its table() finalises without another
            # walk), install the program so the next query (streamed or
            # batch) is a cache hit, and — under the arena transport —
            # publish the table bytes now, making the shared-memory segment
            # the cached dispatch representation too.
            execution = SymbolicExecutionResult(
                paths=tuple(collector.paths),
                truncated_paths=stream.stats.truncated_paths,
                pruned_paths=stream.stats.pruned_paths,
            )
            execution.attach_table_source(collector.builder)
            if limits not in self._compiled:
                self._stream_tee_primes += 1
            self._compiled.setdefault(
                limits,
                CompiledProgram(
                    term=self._term,
                    limits=limits,
                    execution=execution,
                    compile_seconds=explore_seconds[0],
                ),
            )
            if (
                executor is not None
                and executor.kind == "process"
                and options.effective_transport == "arena"
            ):
                # Process dispatch only — serialising the table for an
                # in-process pool would be pure waste.  Already interned
                # against the collector's memo, so publish the finalised
                # table bytes (or, for a concurrently-installed program,
                # encode without the redundant interning pass).
                cached = self._compiled[limits].execution
                image = cached.table().to_bytes() if cached is execution else None
                executor.prime_arena(cached.paths, intern=False, image=image)
        if sink is not None and execution is None and stream.stats.exhausted:
            # The tee could not materialise the path set but refinement
            # needs one: the compiled program supplies it — cached from a
            # previous query when possible, otherwise one re-exploration.
            # Path order is canonical either way, so the sink's records
            # still line up index for index.
            execution = self.compile(options).execution
        if (
            sink is not None
            and execution is not None
            and len(sink) == len(execution.paths)
        ):
            # Refine off the streamed sweep's own records: the sink holds
            # one canonical-order record per path, so the scheduler's
            # seed bound is exactly the streamed bound and every round
            # narrows from there.  The streamed reduce already attributed
            # the paths, so refine_execution skips re-recording them.
            from .refine import refine_execution

            refine_start = time.perf_counter()
            bounds = refine_execution(
                execution, targets, options,
                report=report, executor=executor, progress=progress,
                seed_contributions=sink,
            )
            if report is not None:
                report.seconds += time.perf_counter() - refine_start
        return bounds

    def bound(
        self,
        target: Interval,
        options: Optional[AnalysisOptions] = None,
        report: Optional[AnalysisReport] = None,
    ) -> DenotationBounds:
        """Guaranteed bounds on the unnormalised denotation of one target set."""
        return self.bounds([target], options, report)[0]

    def probability(
        self,
        target: Interval,
        options: Optional[AnalysisOptions] = None,
        report: Optional[AnalysisReport] = None,
    ) -> QueryBounds:
        """Bounds on the posterior probability ``Pr[result ∈ target]``."""
        target_bounds, total_bounds = self.bounds([target, _REALS], options, report)
        return normalised_query(target, target_bounds, total_bounds)

    def histogram(
        self,
        low: float,
        high: float,
        bucket_count: int = 20,
        options: Optional[AnalysisOptions] = None,
        report: Optional[AnalysisReport] = None,
    ) -> HistogramBounds:
        """Histogram-shaped bounds on the normalised posterior over ``[low, high)``."""
        buckets = histogram_buckets(low, high, bucket_count)
        bounds = self.bounds(list(buckets) + [_REALS], options, report)
        z_bounds = bounds[-1]
        bucket_bounds = [
            BucketBound(bucket=bucket, lower=bound.lower, upper=bound.upper)
            for bucket, bound in zip(buckets, bounds[:-1])
        ]
        return HistogramBounds(
            buckets=bucket_bounds, z_lower=z_bounds.lower, z_upper=z_bounds.upper
        )

    # ------------------------------------------------------------------
    # Unified baselines
    # ------------------------------------------------------------------
    def sample(self, n: int, method: str = "importance", rng=None, **kwargs):
        """Run a stochastic baseline sampler on this model's program.

        ``method`` is a registered sampler name — ``"importance"`` (alias
        ``"is"``), ``"mh"`` or ``"hmc"`` out of the box (see
        :func:`repro.inference.sampler_by_name`).  Keyword arguments are
        forwarded to the sampler; each returns its existing result dataclass
        (:class:`~repro.inference.ImportanceResult`,
        :class:`~repro.inference.MHResult`, or the
        ``(HMCResult, values)`` pair of truncated HMC).
        """
        from ..inference import sampler_by_name

        sampler = sampler_by_name(method)
        return sampler(self._term, n, rng=rng, **kwargs)

    def exact(self, max_unroll: int = 200, on_limit: str = "raise"):
        """Exhaustively enumerate the posterior (finite discrete programs only)."""
        from ..exact import enumerate_posterior

        return enumerate_posterior(self._term, max_unroll=max_unroll, on_limit=on_limit)

    def estimate(
        self,
        target: Interval,
        path_budget: int = 200,
        max_fixpoint_depth: Optional[int] = None,
        options: Optional[AnalysisOptions] = None,
    ):
        """Run the score-free probability-estimation baseline on ``target``.

        Like the guaranteed-bounds queries, this honours the model's default
        options (per-call ``options`` override them); ``max_fixpoint_depth``
        overrides just the exploration depth of the baseline.
        """
        from ..estimation import estimate_probability

        options = self._resolve(options)
        depth = max_fixpoint_depth if max_fixpoint_depth is not None else options.max_fixpoint_depth
        return estimate_probability(
            self._term,
            target,
            path_budget=path_budget,
            max_fixpoint_depth=depth,
            options=options.with_updates(max_fixpoint_depth=depth),
        )
