"""Vectorised interval evaluation of symbolic expressions over many cells.

Both grid-style analysers sweep one expression over a large family of
interval assignments: the box analyser evaluates constraints/scores/results
over every cell of a sample-space grid, and the linear analyser evaluates
score *templates* over every combination of score-atom range chunks.  Doing
that with the scalar interval evaluator costs one Python tree walk (plus one
:class:`~repro.intervals.Interval` allocation per node) per cell.

This module lifts the evaluation to NumPy: every expression node is
evaluated once over *all* cells as a pair of ``(lo, hi)`` float arrays.
Exact IEEE operations (add, sub, neg, mul, min, max, abs, square) are lifted
wholesale — elementwise double arithmetic produces bit-identical endpoints
to the scalar interval ops, including the measure-theoretic ``0 · ∞ = 0``
convention.  Any other primitive falls back to its scalar interval lifting
applied cell-wise, so a vectorised sweep never changes *which* liftings
define the bounds.  Anomalies (NaN from ``∞ − ∞`` corner cases, empty
constants, unsupported leaves) raise :class:`ScalarFallback`, and the caller
re-runs the scalar loop.

Leaf resolution is pluggable: callers provide callbacks mapping
:class:`~repro.symbolic.value.SVar` and/or
:class:`~repro.symbolic.value.SAtom` leaves to their per-cell bound arrays,
so the same evaluator serves sample-variable grids and atom-range grids.

Two routes share one lifting kernel (:func:`apply_primitive_cells`):
:func:`evaluate_cells` recurses over a materialised expression tree, while
the columnar analyzer fast path **compiles** a path's expressions straight
from the node columns of a :class:`~repro.symbolic.arena.PathTable` into a
flat instruction program (:func:`compile_table_roots`, cached per table
attachment) and executes it lazily per cell grid
(:class:`TableProgramEvaluator`) — shared sub-DAGs run once per sweep and
repeated queries skip the walk entirely.  Both routes produce bit-identical
arrays on equal expressions.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from ..distributions.continuous import _SQRT_2PI, Beta
from ..intervals import Interval, get_primitive
from ..symbolic.arena import KIND_ATOM, KIND_CONST, KIND_PRIM, KIND_VAR
from ..symbolic.value import SAtom, SConst, SPrim, SVar, SymExpr

__all__ = [
    "ScalarFallback",
    "TableProgramEvaluator",
    "apply_primitive_cells",
    "checked_cells",
    "compile_expr_roots",
    "compile_table_roots",
    "evaluate_cells",
    "vec_mul",
    "vec_product",
]

#: A callback resolving a leaf node to ``(lo, hi)`` arrays over all cells.
LeafLookup = Callable[[SymExpr], tuple[np.ndarray, np.ndarray]]


class ScalarFallback(Exception):
    """Abandon the vectorised sweep and let the caller use its scalar loop."""


def vec_product(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise product under the measure-theoretic ``0 · inf = 0``.

    Overflow to ``±inf`` matches CPython float semantics and is sound for
    interval endpoints, so both warnings are suppressed.
    """
    with np.errstate(invalid="ignore", over="ignore"):
        product = a * b
    return np.where((a == 0.0) | (b == 0.0), 0.0, product)


def vec_mul(alo: np.ndarray, ahi: np.ndarray, blo: np.ndarray, bhi: np.ndarray):
    """Interval multiplication ``[alo, ahi] · [blo, bhi]``, elementwise."""
    products = (
        vec_product(alo, blo),
        vec_product(alo, bhi),
        vec_product(ahi, blo),
        vec_product(ahi, bhi),
    )
    lo = np.minimum(np.minimum(products[0], products[1]), np.minimum(products[2], products[3]))
    hi = np.maximum(np.maximum(products[0], products[1]), np.maximum(products[2], products[3]))
    return lo, hi


def evaluate_cells(
    expr: SymExpr,
    count: int,
    var_leaf: Optional[LeafLookup] = None,
    atom_leaf: Optional[LeafLookup] = None,
    transcendentals: bool = False,
):
    """``(lo, hi)`` arrays of ``expr`` over ``count`` cells.

    ``var_leaf`` / ``atom_leaf`` resolve sample-variable / atom-placeholder
    leaves; an expression containing a leaf kind without a resolver raises
    :class:`ScalarFallback` (the caller's scalar loop decides).

    ``transcendentals`` additionally lifts the monotone transcendental
    primitives (``exp``, ``log``) to whole-array NumPy calls instead of the
    per-cell scalar interval lifting.  NumPy's implementations may differ
    from libm's in the last ulp, so this is **opt-in**
    (``AnalysisOptions.vectorized_transcendentals``, off by default) — with
    the knob off, a sweep reproduces the scalar loop's floats bit-for-bit;
    with it on, bounds may move by one ulp while remaining sound (both
    liftings evaluate the true monotone envelope at the cell endpoints).
    """
    if isinstance(expr, SVar):
        if var_leaf is None:
            raise ScalarFallback
        return var_leaf(expr)
    if isinstance(expr, SAtom):
        if atom_leaf is None:
            raise ScalarFallback
        return atom_leaf(expr)
    if isinstance(expr, SConst):
        if expr.interval.is_empty:
            raise ScalarFallback
        return np.full(count, expr.interval.lo), np.full(count, expr.interval.hi)
    if isinstance(expr, SPrim):
        args = [
            evaluate_cells(arg, count, var_leaf, atom_leaf, transcendentals)
            for arg in expr.args
        ]
        return apply_primitive_cells(expr.op, args, count, transcendentals)
    raise ScalarFallback


def apply_primitive_cells(
    op: str,
    args: list[tuple[np.ndarray, np.ndarray]],
    count: int,
    transcendentals: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """``(lo, hi)`` arrays of primitive ``op`` applied to per-cell arg bounds.

    The single interval-lifting kernel shared by the object-walking
    (:func:`evaluate_cells`) and table-walking (:func:`evaluate_cells_table`)
    evaluators — one implementation is what makes the two routes
    bit-identical by construction.
    """
    if op == "add":
        (alo, ahi), (blo, bhi) = args
        return alo + blo, ahi + bhi
    if op == "sub":
        (alo, ahi), (blo, bhi) = args
        return alo - bhi, ahi - blo
    if op == "neg":
        ((alo, ahi),) = args
        return -ahi, -alo
    if op == "mul":
        (alo, ahi), (blo, bhi) = args
        return vec_mul(alo, ahi, blo, bhi)
    if op == "min":
        (alo, ahi), (blo, bhi) = args
        return np.minimum(alo, blo), np.minimum(ahi, bhi)
    if op == "max":
        (alo, ahi), (blo, bhi) = args
        return np.maximum(alo, blo), np.maximum(ahi, bhi)
    if op == "abs":
        ((alo, ahi),) = args
        magnitude_lo = np.minimum(np.abs(alo), np.abs(ahi))
        magnitude_hi = np.maximum(np.abs(alo), np.abs(ahi))
        spans_zero = (alo <= 0.0) & (ahi >= 0.0)
        return np.where(spans_zero, 0.0, magnitude_lo), magnitude_hi
    if op == "square":
        ((alo, ahi),) = args
        lo, hi = vec_mul(alo, ahi, alo, ahi)
        spans_zero = (alo <= 0.0) & (ahi >= 0.0)
        square_hi = np.maximum(vec_product(alo, alo), vec_product(ahi, ahi))
        return np.where(spans_zero, 0.0, lo), np.where(spans_zero, square_hi, hi)
    if transcendentals and op == "exp":
        # exp is increasing: the envelope is [exp(lo), exp(hi)].  NumPy
        # matches the scalar lifting's edge cases (exp(-inf) = 0,
        # exp(inf) = inf, overflow saturates to inf) up to libm's last
        # ulp, which is exactly why the knob is opt-in.
        ((alo, ahi),) = args
        with np.errstate(over="ignore"):
            return np.exp(alo), np.exp(ahi)
    if transcendentals and op == "log":
        # log is increasing; non-positive endpoints map to -inf, the
        # conservative convention of the scalar lifting.
        ((alo, ahi),) = args
        with np.errstate(divide="ignore", invalid="ignore"):
            out_lo = np.log(alo)
            out_hi = np.log(ahi)
        return (
            np.where(alo <= 0.0, -np.inf, out_lo),
            np.where(ahi <= 0.0, -np.inf, out_hi),
        )
    kernel = _ARRAY_LIFTINGS.get(op)
    if kernel is not None:
        return kernel(args, count)
    # Every other primitive: apply its scalar interval lifting cell-wise.
    primitive = get_primitive(op)
    out_lo = np.empty(count)
    out_hi = np.empty(count)
    for cell in range(count):
        try:
            intervals = [Interval(float(alo[cell]), float(ahi[cell])) for alo, ahi in args]
            value = primitive.apply_interval(*intervals)
        except ValueError as error:
            # A NaN/ordering corner case the scalar loop's early exits
            # might avoid (it skips infeasible cells before evaluating
            # scores/results); let the scalar path decide.
            raise ScalarFallback from error
        if value.is_empty:
            raise ScalarFallback
        out_lo[cell] = value.lo
        out_hi[cell] = value.hi
    return out_lo, out_hi


# ---------------------------------------------------------------------------
# Flattened per-cell liftings of the heavy density primitives
#
# The generic fallback above builds three Interval objects per cell and
# dispatches through the primitive registry — for a 50k-cell score sweep
# that is hundreds of thousands of allocations.  The kernels below replicate
# the scalar lifting's float operations *exactly* (same expressions, same
# libm calls, same edge-case order, Interval-construction validation
# included), just without the object churn — so the engine's bounds stay
# bit-identical while the per-cell cost drops by an order of magnitude.
# ---------------------------------------------------------------------------


def _normal_pdf_cells(args, count: int):
    """All cells of ``normal_pdf``: array plumbing, scalar ``math.exp``.

    The reference semantics is
    :meth:`repro.distributions.continuous.Normal.pdf_interval_params` as the
    generic loop applies it per cell; this kernel replicates its float
    operations exactly (pinned by ``tests/test_columnar.py``).  The interval
    plumbing (endpoint validation mirroring ``Interval.__post_init__``, the
    ``values - mean`` distance, its absolute value, the ``std`` meet) runs
    as exact IEEE array operations; only the density evaluations — whose
    ``math.exp`` must match libm bit-for-bit — run per cell.  Cells with an
    invalid endpoint combination abandon the sweep
    (:class:`ScalarFallback`), like the generic loop's per-cell
    ``Interval`` construction.
    """
    (mlo, mhi), (slo, shi), (vlo, vhi) = args
    for lo, hi in args:
        if np.isnan(lo).any() or np.isnan(hi).any():
            raise ScalarFallback
        inverted = (lo > hi) & ~((lo == math.inf) & (hi == -math.inf))
        if inverted.any():
            raise ScalarFallback
    out_lo = np.zeros(count)
    out_hi = np.zeros(count)
    with np.errstate(invalid="ignore"):
        # Any empty argument (the (inf, -inf) representation): the point 0.
        empty = (vlo > vhi) | (mlo > mhi) | (slo > shi)
        sig_lo_arr = np.maximum(slo, 1e-300)
        std_empty = (sig_lo_arr > shi) & ~empty  # meet with [1e-300, inf) empty
        out_hi[std_empty] = math.inf
        active_mask = ~(empty | std_empty)
        # distance = (values - mean).abs() — the scalar route only reaches
        # this for cells that passed the emptiness checks, so a NaN distance
        # (inf − inf) aborts the sweep only on *active* cells.
        d_lo = vlo - mhi
        d_hi = vhi - mlo
        if ((np.isnan(d_lo) | np.isnan(d_hi)) & active_mask).any():
            raise ScalarFallback
        spans_zero = (d_lo <= 0.0) & (d_hi >= 0.0)
        abs_lo = np.abs(d_lo)
        abs_hi = np.abs(d_hi)
        d_min_arr = np.where(spans_zero, 0.0, np.minimum(abs_lo, abs_hi))
        d_max_arr = np.maximum(abs_lo, abs_hi)

    active = np.flatnonzero(active_mask).tolist()
    if not active:
        return out_lo, out_hi
    d_min_l = d_min_arr.tolist()
    d_max_l = d_max_arr.tolist()
    sig_lo_l = sig_lo_arr.tolist()
    sig_hi_l = shi.tolist()
    exp = math.exp
    isfinite = math.isfinite
    norm = _SQRT_2PI
    for index in active:
        d_min = d_min_l[index]
        sig_lo = sig_lo_l[index]
        sig_hi = sig_hi_l[index]
        # Upper bound: smallest distance, best sigma.
        if isfinite(d_min):
            first = exp(-0.5 * (d_min / sig_lo) ** 2) / (sig_lo * norm)
            second = exp(-0.5 * (d_min / sig_hi) ** 2) / (sig_hi * norm)
        else:
            first = second = 0.0
        upper = first if first >= second else second
        if d_min > 0 and sig_lo <= d_min <= sig_hi:
            best = exp(-0.5 * (d_min / d_min) ** 2) / (d_min * norm)
            if best > upper:
                upper = best
        if d_min == 0.0:
            peak = 1.0 / (sig_lo * norm)
            if peak > upper:
                upper = peak
        # Lower bound: largest distance, worst sigma.
        d_max = d_max_l[index]
        if isfinite(d_max):
            first = exp(-0.5 * (d_max / sig_lo) ** 2) / (sig_lo * norm)
            second = exp(-0.5 * (d_max / sig_hi) ** 2) / (sig_hi * norm)
            lower = first if first <= second else second
        else:
            lower = 0.0
        if lower < 0.0:
            lower = 0.0
        if lower > upper:  # mirror the scalar route's Interval validation
            raise ScalarFallback
        out_lo[index] = lower
        out_hi[index] = upper
    return out_lo, out_hi


def _uniform_pdf_cells(args, count: int):
    """All cells of ``uniform_pdf``, as exact whole-array float operations.

    The reference semantics is
    ``repro.distributions.primitives._uniform_pdf_interval`` as the generic
    loop applies it per cell.  Every branch of that function — the empty /
    non-positive-width short-circuits, the conservative ``[0, 1/width.lo]``
    envelope, and the exact ``Uniform(low, high).pdf_interval(value)`` kernel
    for point parameters — reduces to IEEE subtractions, divisions and
    comparisons, so unlike ``normal_pdf`` there is no per-cell libm tail:
    the whole lifting vectorises without a scalar loop and stays
    bit-identical.
    """
    (llo, lhi), (hlo, hhi), (vlo, vhi) = args
    for lo, hi in args:
        if np.isnan(lo).any() or np.isnan(hi).any():
            raise ScalarFallback
        inverted = (lo > hi) & ~((lo == math.inf) & (hi == -math.inf))
        if inverted.any():
            raise ScalarFallback
    out_lo = np.zeros(count)
    out_hi = np.zeros(count)
    with np.errstate(invalid="ignore", divide="ignore"):
        # width = high - low; an empty argument makes the width empty, whose
        # hi (-inf) falls through the non-positive-width short-circuit below.
        empty_lh = (llo > lhi) | (hlo > hhi)
        width_lo = hlo - lhi
        width_hi = hhi - llo
        if ((np.isnan(width_lo) | np.isnan(width_hi)) & ~empty_lh).any():
            # inf − inf: the scalar Interval construction raises here.
            raise ScalarFallback
        if ((width_lo > width_hi) & ~empty_lh).any():
            raise ScalarFallback
        active = ~empty_lh & (width_hi > 0.0)
        # General envelope: density at most 1/width.lo (∞ when the width can
        # vanish); the value argument does not sharpen this branch.
        max_density = np.where(width_lo <= 0.0, math.inf, 1.0 / width_lo)
        exact = (llo == lhi) & (hlo == hhi) & (hlo > llo)
        general = active & ~exact
        out_hi[general] = max_density[general]
        # Point parameters: Uniform(low.lo, high.lo).pdf_interval(value).
        # The division mirrors Uniform._density = 1/(high − low) exactly.
        kernel = active & exact
        density = np.where(kernel, 1.0 / (hlo - llo), 0.0)
        clip_lo = np.maximum(vlo, llo)
        clip_hi = np.minimum(vhi, hlo)
        hit = kernel & ~(clip_lo > clip_hi)
        out_hi[hit] = density[hit]
        # The lower bound is the density only when the support contains the
        # whole value interval (an empty value is contained vacuously, but
        # such cells already failed the clip test above).
        contained = hit & (llo <= vlo) & (vhi <= hlo)
        out_lo[contained] = density[contained]
    return out_lo, out_hi


def _beta_pdf_cells(args, count: int):
    """All cells of ``beta_pdf``: array plumbing, scalar kernel per point cell.

    The reference semantics is
    ``repro.distributions.primitives._beta_pdf_interval`` per cell: interval
    parameters yield the conservative ``[0, ∞]``, point parameters evaluate
    ``Beta(α, β).pdf_interval(value)`` — whose ``lgamma``-based normaliser
    must match libm bit-for-bit, so those cells run the scalar kernel.  The
    :class:`~repro.distributions.continuous.Beta` instances are memoised per
    parameter pair, which is where the speed-up comes from: a score sweep
    uses one or two parameter pairs across thousands of cells, and the three
    ``lgamma`` calls per construction dominate the generic loop.  A
    non-positive point parameter aborts the sweep exactly like the generic
    loop (``Beta.__init__`` raises ``ValueError`` there).
    """
    (alo, ahi), (blo, bhi), (vlo, vhi) = args
    for lo, hi in args:
        if np.isnan(lo).any() or np.isnan(hi).any():
            raise ScalarFallback
        inverted = (lo > hi) & ~((lo == math.inf) & (hi == -math.inf))
        if inverted.any():
            raise ScalarFallback
    out_lo = np.zeros(count)
    out_hi = np.full(count, math.inf)
    point = (alo == ahi) & (blo == bhi)
    cells = np.flatnonzero(point)
    if cells.size == 0:
        return out_lo, out_hi
    if (alo[cells] <= 0.0).any() or (blo[cells] <= 0.0).any():
        raise ScalarFallback
    alo_l = alo.tolist()
    blo_l = blo.tolist()
    vlo_l = vlo.tolist()
    vhi_l = vhi.tolist()
    distributions: dict = {}
    for index in cells.tolist():
        key = (alo_l[index], blo_l[index])
        dist = distributions.get(key)
        if dist is None:
            dist = distributions[key] = Beta(key[0], key[1])
        try:
            value = dist.pdf_interval(Interval(vlo_l[index], vhi_l[index]))
        except ValueError as error:
            raise ScalarFallback from error
        if value.is_empty:
            raise ScalarFallback
        out_lo[index] = value.lo
        out_hi[index] = value.hi
    return out_lo, out_hi


#: op name -> flattened array lifting (must be bit-identical to the scalar
#: interval lifting of the same primitive).
_ARRAY_LIFTINGS = {
    "normal_pdf": _normal_pdf_cells,
    "uniform_pdf": _uniform_pdf_cells,
    "beta_pdf": _beta_pdf_cells,
}


def checked_cells(
    expr: SymExpr,
    count: int,
    var_leaf: Optional[LeafLookup] = None,
    atom_leaf: Optional[LeafLookup] = None,
    transcendentals: bool = False,
):
    """Like :func:`evaluate_cells`, but a NaN anywhere aborts the sweep."""
    # Overflow to ±inf matches CPython float arithmetic and is sound for
    # interval endpoints; NaN (inf − inf and friends) aborts the sweep.
    with np.errstate(over="ignore", invalid="ignore"):
        lo, hi = evaluate_cells(expr, count, var_leaf, atom_leaf, transcendentals)
    if np.isnan(lo).any() or np.isnan(hi).any():
        raise ScalarFallback
    return lo, hi


# ---------------------------------------------------------------------------
# Table-native evaluation (the columnar analyzer fast path)
# ---------------------------------------------------------------------------

#: A callback resolving a *leaf index* (SVar/SAtom ``index``) to per-cell
#: ``(lo, hi)`` arrays.  The table walk never materialises leaf objects, so
#: the table-side lookups are keyed by the raw index instead of a node.
IndexLeafLookup = Callable[[int], tuple[np.ndarray, np.ndarray]]

#: Instruction tags of a compiled table program.
_I_VAR = 0
_I_CONST = 1
_I_ATOM = 2
_I_PRIM = 3

#: ``table.scratch`` key of the cached ``tolist()`` walk columns (Python
#: lists index an order of magnitude faster than NumPy scalars, and the walk
#: is pure indexing).
_WALK_COLUMNS_KEY = "vectorize-walk-columns"


def _walk_columns(table):
    cols = table.scratch.get(_WALK_COLUMNS_KEY)
    if cols is None:
        cols = table.scratch.setdefault(
            _WALK_COLUMNS_KEY,
            (
                table.column("node_kind").tolist(),
                table.column("node_ia").tolist(),
                table.column("node_ib").tolist(),
                table.column("node_ic").tolist(),
                table.column("const_lo").tolist(),
                table.column("const_hi").tolist(),
                table.column("children").tolist(),
            ),
        )
    return cols


def compile_table_roots(table, root_ids) -> tuple[list[tuple], tuple[int, ...]]:
    """Compile table expression roots into a flat evaluation program.

    Returns ``(instrs, positions)``: a topologically-ordered instruction
    list — ``(_I_VAR, index)``, ``(_I_CONST, lo, hi)``, ``(_I_ATOM, index)``
    or ``(_I_PRIM, op, arg_positions)`` — plus the instruction position of
    every requested root (in request order).  Shared sub-DAGs across the
    roots compile to a single instruction, and roots listed earlier never
    depend on instructions emitted for later roots — evaluating the program
    lazily therefore short-circuits exactly like evaluating the roots one by
    one.

    Compilation walks the node columns once; callers cache the program (in
    ``table.scratch``) so repeated sweeps — every chunk and every query of
    one attachment — skip the walk entirely.  Raises :class:`ScalarFallback`
    on nodes a sweep cannot express (empty interval constants, unknown
    kinds), mirroring :func:`evaluate_cells`.
    """
    kind, ia, ib, ic, const_lo, const_hi, children = _walk_columns(table)
    slots: dict[int, int] = {}
    instrs: list[tuple] = []
    for root in root_ids:
        if root in slots:
            continue
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            current, expanded = stack.pop()
            if current in slots:
                continue
            node_kind = kind[current]
            if node_kind == KIND_PRIM and not expanded:
                stack.append((current, True))
                start = ib[current]
                for child in children[start : start + ic[current]]:
                    stack.append((child, False))
                continue
            if node_kind == KIND_VAR:
                instrs.append((_I_VAR, ia[current]))
            elif node_kind == KIND_CONST:
                lo = const_lo[current]
                hi = const_hi[current]
                if lo > hi:  # the empty interval (mirrors Interval.is_empty)
                    raise ScalarFallback
                instrs.append((_I_CONST, lo, hi))
            elif node_kind == KIND_ATOM:
                instrs.append((_I_ATOM, ia[current]))
            elif node_kind == KIND_PRIM:
                start = ib[current]
                args = tuple(slots[child] for child in children[start : start + ic[current]])
                instrs.append((_I_PRIM, table.ops[ia[current]], args))
            else:
                raise ScalarFallback
            slots[current] = len(instrs) - 1
    return instrs, tuple(slots[root] for root in root_ids)


def compile_expr_roots(roots) -> tuple[list[tuple], tuple[int, ...]]:
    """Compile materialised expression roots into a flat evaluation program.

    The expression-tree analogue of :func:`compile_table_roots`, producing
    the same instruction format for :class:`TableProgramEvaluator`.  The
    linear analyzer compiles a path's score templates once and replays the
    program for every polytope sweep (2 readings × all targets), replacing
    the per-sweep recursive :func:`evaluate_cells` walk with flat instruction
    dispatch.  Sub-expressions shared *by object identity* across the roots
    compile to a single instruction; structurally-equal copies evaluate to
    identical arrays either way, so sharing never affects the floats.

    Raises :class:`ScalarFallback` on nodes a sweep cannot express (empty
    interval constants, unknown node types), mirroring
    :func:`evaluate_cells`.  Callers caching the program must keep the root
    expressions alive alongside it — the instruction slots are keyed by
    ``id()`` during compilation only, but a cache entry that outlives its
    roots could be matched against recycled ids.
    """
    slots: dict[int, int] = {}
    instrs: list[tuple] = []
    for root in roots:
        if id(root) in slots:
            continue
        stack: list[tuple[SymExpr, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            key = id(node)
            if key in slots:
                continue
            if isinstance(node, SPrim) and not expanded:
                stack.append((node, True))
                for child in node.args:
                    stack.append((child, False))
                continue
            if isinstance(node, SVar):
                instrs.append((_I_VAR, node.index))
            elif isinstance(node, SConst):
                if node.interval.is_empty:
                    raise ScalarFallback
                instrs.append((_I_CONST, node.interval.lo, node.interval.hi))
            elif isinstance(node, SAtom):
                instrs.append((_I_ATOM, node.index))
            elif isinstance(node, SPrim):
                args = tuple(slots[id(child)] for child in node.args)
                instrs.append((_I_PRIM, node.op, args))
            else:
                raise ScalarFallback
            slots[key] = len(instrs) - 1
    return instrs, tuple(slots[id(root)] for root in roots)


class TableProgramEvaluator:
    """Lazy evaluation of a compiled table program over one cell grid.

    :meth:`eval_to` runs the instruction prefix up to a root position and
    returns (and NaN-checks, like :func:`checked_cells`) its ``(lo, hi)``
    arrays.  Laziness matters: callers request roots in program order, so a
    sweep that dies early (e.g. no cell satisfies the constraints) never
    executes the instructions of later roots — exactly the short-circuit
    behaviour of evaluating materialised expressions one by one.  Each
    instruction runs at most once per grid, so sub-DAGs shared across a
    path's expressions are evaluated once per sweep.
    """

    __slots__ = ("instrs", "count", "var_leaf", "atom_leaf", "transcendentals", "values")

    def __init__(
        self,
        instrs: list[tuple],
        count: int,
        var_leaf: Optional[IndexLeafLookup] = None,
        atom_leaf: Optional[IndexLeafLookup] = None,
        transcendentals: bool = False,
    ) -> None:
        self.instrs = instrs
        self.count = count
        self.var_leaf = var_leaf
        self.atom_leaf = atom_leaf
        self.transcendentals = transcendentals
        self.values: list[tuple[np.ndarray, np.ndarray]] = []

    def eval_to(self, position: int) -> tuple[np.ndarray, np.ndarray]:
        values = self.values
        if position >= len(values):
            instrs = self.instrs
            count = self.count
            transcendentals = self.transcendentals
            # Overflow to ±inf matches CPython float arithmetic and is sound
            # for interval endpoints; NaN is checked at every root below.
            with np.errstate(over="ignore", invalid="ignore"):
                while len(values) <= position:
                    instr = instrs[len(values)]
                    tag = instr[0]
                    if tag == _I_PRIM:
                        args = [values[slot] for slot in instr[2]]
                        values.append(
                            apply_primitive_cells(instr[1], args, count, transcendentals)
                        )
                    elif tag == _I_VAR:
                        if self.var_leaf is None:
                            raise ScalarFallback
                        values.append(self.var_leaf(instr[1]))
                    elif tag == _I_CONST:
                        values.append((np.full(count, instr[1]), np.full(count, instr[2])))
                    else:
                        if self.atom_leaf is None:
                            raise ScalarFallback
                        values.append(self.atom_leaf(instr[1]))
        lo, hi = values[position]
        if np.isnan(lo).any() or np.isnan(hi).any():
            raise ScalarFallback
        return lo, hi
