"""Vectorised interval evaluation of symbolic expressions over many cells.

Both grid-style analysers sweep one expression over a large family of
interval assignments: the box analyser evaluates constraints/scores/results
over every cell of a sample-space grid, and the linear analyser evaluates
score *templates* over every combination of score-atom range chunks.  Doing
that with the scalar interval evaluator costs one Python tree walk (plus one
:class:`~repro.intervals.Interval` allocation per node) per cell.

This module lifts the evaluation to NumPy: every expression node is
evaluated once over *all* cells as a pair of ``(lo, hi)`` float arrays.
Exact IEEE operations (add, sub, neg, mul, min, max, abs, square) are lifted
wholesale — elementwise double arithmetic produces bit-identical endpoints
to the scalar interval ops, including the measure-theoretic ``0 · ∞ = 0``
convention.  Any other primitive falls back to its scalar interval lifting
applied cell-wise, so a vectorised sweep never changes *which* liftings
define the bounds.  Anomalies (NaN from ``∞ − ∞`` corner cases, empty
constants, unsupported leaves) raise :class:`ScalarFallback`, and the caller
re-runs the scalar loop.

Leaf resolution is pluggable: callers provide callbacks mapping
:class:`~repro.symbolic.value.SVar` and/or
:class:`~repro.symbolic.value.SAtom` leaves to their per-cell bound arrays,
so the same evaluator serves sample-variable grids and atom-range grids.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..intervals import Interval, get_primitive
from ..symbolic.value import SAtom, SConst, SPrim, SVar, SymExpr

__all__ = [
    "ScalarFallback",
    "checked_cells",
    "evaluate_cells",
    "vec_mul",
    "vec_product",
]

#: A callback resolving a leaf node to ``(lo, hi)`` arrays over all cells.
LeafLookup = Callable[[SymExpr], tuple[np.ndarray, np.ndarray]]


class ScalarFallback(Exception):
    """Abandon the vectorised sweep and let the caller use its scalar loop."""


def vec_product(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise product under the measure-theoretic ``0 · inf = 0``.

    Overflow to ``±inf`` matches CPython float semantics and is sound for
    interval endpoints, so both warnings are suppressed.
    """
    with np.errstate(invalid="ignore", over="ignore"):
        product = a * b
    return np.where((a == 0.0) | (b == 0.0), 0.0, product)


def vec_mul(alo: np.ndarray, ahi: np.ndarray, blo: np.ndarray, bhi: np.ndarray):
    """Interval multiplication ``[alo, ahi] · [blo, bhi]``, elementwise."""
    products = (
        vec_product(alo, blo),
        vec_product(alo, bhi),
        vec_product(ahi, blo),
        vec_product(ahi, bhi),
    )
    lo = np.minimum(np.minimum(products[0], products[1]), np.minimum(products[2], products[3]))
    hi = np.maximum(np.maximum(products[0], products[1]), np.maximum(products[2], products[3]))
    return lo, hi


def evaluate_cells(
    expr: SymExpr,
    count: int,
    var_leaf: Optional[LeafLookup] = None,
    atom_leaf: Optional[LeafLookup] = None,
    transcendentals: bool = False,
):
    """``(lo, hi)`` arrays of ``expr`` over ``count`` cells.

    ``var_leaf`` / ``atom_leaf`` resolve sample-variable / atom-placeholder
    leaves; an expression containing a leaf kind without a resolver raises
    :class:`ScalarFallback` (the caller's scalar loop decides).

    ``transcendentals`` additionally lifts the monotone transcendental
    primitives (``exp``, ``log``) to whole-array NumPy calls instead of the
    per-cell scalar interval lifting.  NumPy's implementations may differ
    from libm's in the last ulp, so this is **opt-in**
    (``AnalysisOptions.vectorized_transcendentals``, off by default) — with
    the knob off, a sweep reproduces the scalar loop's floats bit-for-bit;
    with it on, bounds may move by one ulp while remaining sound (both
    liftings evaluate the true monotone envelope at the cell endpoints).
    """
    if isinstance(expr, SVar):
        if var_leaf is None:
            raise ScalarFallback
        return var_leaf(expr)
    if isinstance(expr, SAtom):
        if atom_leaf is None:
            raise ScalarFallback
        return atom_leaf(expr)
    if isinstance(expr, SConst):
        if expr.interval.is_empty:
            raise ScalarFallback
        return np.full(count, expr.interval.lo), np.full(count, expr.interval.hi)
    if isinstance(expr, SPrim):
        args = [
            evaluate_cells(arg, count, var_leaf, atom_leaf, transcendentals)
            for arg in expr.args
        ]
        op = expr.op
        if op == "add":
            (alo, ahi), (blo, bhi) = args
            return alo + blo, ahi + bhi
        if op == "sub":
            (alo, ahi), (blo, bhi) = args
            return alo - bhi, ahi - blo
        if op == "neg":
            ((alo, ahi),) = args
            return -ahi, -alo
        if op == "mul":
            (alo, ahi), (blo, bhi) = args
            return vec_mul(alo, ahi, blo, bhi)
        if op == "min":
            (alo, ahi), (blo, bhi) = args
            return np.minimum(alo, blo), np.minimum(ahi, bhi)
        if op == "max":
            (alo, ahi), (blo, bhi) = args
            return np.maximum(alo, blo), np.maximum(ahi, bhi)
        if op == "abs":
            ((alo, ahi),) = args
            magnitude_lo = np.minimum(np.abs(alo), np.abs(ahi))
            magnitude_hi = np.maximum(np.abs(alo), np.abs(ahi))
            spans_zero = (alo <= 0.0) & (ahi >= 0.0)
            return np.where(spans_zero, 0.0, magnitude_lo), magnitude_hi
        if op == "square":
            ((alo, ahi),) = args
            lo, hi = vec_mul(alo, ahi, alo, ahi)
            spans_zero = (alo <= 0.0) & (ahi >= 0.0)
            square_hi = np.maximum(vec_product(alo, alo), vec_product(ahi, ahi))
            return np.where(spans_zero, 0.0, lo), np.where(spans_zero, square_hi, hi)
        if transcendentals and op == "exp":
            # exp is increasing: the envelope is [exp(lo), exp(hi)].  NumPy
            # matches the scalar lifting's edge cases (exp(-inf) = 0,
            # exp(inf) = inf, overflow saturates to inf) up to libm's last
            # ulp, which is exactly why the knob is opt-in.
            ((alo, ahi),) = args
            with np.errstate(over="ignore"):
                return np.exp(alo), np.exp(ahi)
        if transcendentals and op == "log":
            # log is increasing; non-positive endpoints map to -inf, the
            # conservative convention of the scalar lifting.
            ((alo, ahi),) = args
            with np.errstate(divide="ignore", invalid="ignore"):
                out_lo = np.log(alo)
                out_hi = np.log(ahi)
            return (
                np.where(alo <= 0.0, -np.inf, out_lo),
                np.where(ahi <= 0.0, -np.inf, out_hi),
            )
        # Every other primitive: apply its scalar interval lifting cell-wise.
        primitive = get_primitive(op)
        out_lo = np.empty(count)
        out_hi = np.empty(count)
        for cell in range(count):
            try:
                intervals = [Interval(float(alo[cell]), float(ahi[cell])) for alo, ahi in args]
                value = primitive.apply_interval(*intervals)
            except ValueError as error:
                # A NaN/ordering corner case the scalar loop's early exits
                # might avoid (it skips infeasible cells before evaluating
                # scores/results); let the scalar path decide.
                raise ScalarFallback from error
            if value.is_empty:
                raise ScalarFallback
            out_lo[cell] = value.lo
            out_hi[cell] = value.hi
        return out_lo, out_hi
    raise ScalarFallback


def checked_cells(
    expr: SymExpr,
    count: int,
    var_leaf: Optional[LeafLookup] = None,
    atom_leaf: Optional[LeafLookup] = None,
    transcendentals: bool = False,
):
    """Like :func:`evaluate_cells`, but a NaN anywhere aborts the sweep."""
    # Overflow to ±inf matches CPython float arithmetic and is sound for
    # interval endpoints; NaN (inf − inf and friends) aborts the sweep.
    with np.errstate(over="ignore", invalid="ignore"):
        lo, hi = evaluate_cells(expr, count, var_leaf, atom_leaf, transcendentals)
    if np.isnan(lo).any() or np.isnan(hi).any():
        raise ScalarFallback
    return lo, hi
