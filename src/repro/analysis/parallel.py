"""Parallel bound-analysis: chunked fan-out of the per-path hot loop.

The GuBPI engine reduces posterior-bound computation to analysing a finite
set of symbolic interval paths and summing their contributions (Theorem 6.1).
The per-path analyses are completely independent — the classic
embarrassingly-parallel shape — yet the paper's workloads sit exactly in the
regime where it matters: path explosion (Section 7.5) produces tens of
thousands of paths, each of which runs a polytope volume computation or an
exponential box grid.

This module fans that loop out over a ``concurrent.futures`` pool:

* :func:`partition_paths` cuts the path set into *deterministic, contiguous,
  cost-balanced* chunks (using :meth:`SymbolicPath.analysis_cost_hint`), so
  the same workload always produces the same partition;
* :func:`analyze_chunk` is the picklable unit of work — it receives plain
  paths plus analyzer *names* (re-resolved through the registry inside the
  worker, see :func:`repro.analysis.registry.ensure_analyzers_registered`)
  and returns raw :class:`~repro.analysis.engine.PathContribution` records;
* :class:`ParallelAnalysisExecutor` owns the pool, dispatches chunks and
  merges the results with :func:`repro.analysis.engine.reduce_contributions`,
  which always folds contributions in canonical path order — the merged
  bounds are therefore **bit-identical** to a serial run, independent of the
  worker count, the chunk size and the order in which workers finish.

Exceptions raised inside a worker (including
:class:`~repro.symbolic.PathExplosionError` and analyzer failures) are
re-raised in the parent by ``concurrent.futures``.

Backend guidance: the ``"process"`` executor is the right default for
CPU-bound bound analysis (the per-path work is pure Python and NumPy, so the
GIL serialises threads); ``"thread"`` is useful when the paths are cheap to
analyse but the payloads are large to pickle, or inside environments that
forbid subprocesses; ``"serial"`` runs the identical chunked pipeline
in-process (handy for debugging a parallel run).
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..intervals import Interval
from ..symbolic import SymbolicExecutionResult, SymbolicPath, intern_paths
from .config import EXECUTOR_KINDS, AnalysisOptions, _require_positive
from .engine import (
    AnalysisReport,
    DenotationBounds,
    PathContribution,
    analyze_single_path,
    reduce_contributions,
)
from .registry import (
    AnalyzerSpec,
    analyzer_specs,
    ensure_analyzers_registered,
    resolve_analyzers,
)

__all__ = [
    "ChunkPayload",
    "ParallelAnalysisExecutor",
    "analyze_chunk",
    "close_shared_executors",
    "partition_paths",
    "shared_executor",
]

#: How many chunks to create per worker when no explicit chunk size is set.
#: Oversubscription lets the pool rebalance when per-chunk cost estimates are
#: off, at the price of slightly more dispatch overhead.
_OVERSUBSCRIPTION = 4

#: Default number of paths per streaming chunk when the caller sets no
#: explicit ``chunk_size``.  Streaming cannot cost-balance (the total cost is
#: unknown while the stream is live), so it uses fixed-size chunks: small
#: enough that the first chunk dispatches early (time-to-first-bound), large
#: enough to amortise pickling overhead.
_STREAM_CHUNK_SIZE = 32


def partition_paths(
    paths: Sequence[SymbolicPath],
    workers: int,
    chunk_size: Optional[int] = None,
) -> list[range]:
    """Cut ``paths`` into deterministic contiguous index ranges.

    With an explicit ``chunk_size`` the cut is a plain fixed-size slicing.
    Otherwise the partition targets ``workers × 4`` chunks of roughly equal
    *estimated cost* (not equal length): box-grid analysis is exponential in
    the path dimension, so a handful of deep paths can dominate a workload
    and fixed-length chunks would leave most workers idle.  The partition
    depends only on the path sequence and the arguments — never on timing —
    so repeated runs fan out identically.
    """
    count = len(paths)
    if count == 0:
        return []
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        return [range(start, min(start + chunk_size, count)) for start in range(0, count, chunk_size)]
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")

    target_chunks = min(count, workers * _OVERSUBSCRIPTION)
    if target_chunks <= 1:
        return [range(0, count)]
    costs = [path.analysis_cost_hint() for path in paths]
    total_cost = sum(costs)
    target_cost = total_cost / target_chunks if total_cost > 0 else 0.0

    chunks: list[range] = []
    start = 0
    accumulated = 0.0
    for index, cost in enumerate(costs):
        accumulated += cost
        is_last = index == count - 1
        if is_last or (accumulated >= target_cost and target_cost > 0.0):
            chunks.append(range(start, index + 1))
            start = index + 1
            accumulated = 0.0
    return chunks


@dataclass(frozen=True)
class ChunkPayload:
    """Everything one worker needs to analyse one chunk of paths.

    The payload is deliberately *value-only*: paths, targets and options are
    plain picklable data, and analyzers travel as registry specs rather than
    instances (resolved by name inside the worker).
    """

    index: int
    paths: tuple[SymbolicPath, ...]
    targets: tuple[Interval, ...]
    options: AnalysisOptions
    specs: tuple[AnalyzerSpec, ...]


def analyze_chunk(payload: ChunkPayload) -> tuple[int, list[PathContribution]]:
    """Analyse one chunk of paths (runs inside a worker).

    Consecutive paths handled by the same analyzer are grouped and handed to
    the analyzer's ``analyze_batch`` when it provides one, amortising
    per-call overhead (e.g. the box analyser's vectorised grid sweep) over
    the whole run; analyzers without batch support fall back to per-path
    calls.  Both routes produce the same per-path contribution records.
    """
    ensure_analyzers_registered(payload.specs)
    analyzers = resolve_analyzers(payload.options)
    contributions: list[PathContribution] = []

    group: list[SymbolicPath] = []
    group_analyzer = None

    def flush() -> None:
        nonlocal group, group_analyzer
        if not group:
            return
        batch = getattr(group_analyzer, "analyze_batch", None)
        if batch is not None and len(group) > 1:
            results = batch(group, payload.targets, payload.options)
            if len(results) != len(group):
                raise RuntimeError(
                    f"analyzer {group_analyzer.name!r}.analyze_batch returned "
                    f"{len(results)} results for {len(group)} paths; one result "
                    "per path is required (a shortfall would silently drop "
                    "path contributions and break soundness)"
                )
        else:
            results = [
                group_analyzer.analyze(path, payload.targets, payload.options) for path in group
            ]
        for path, result in zip(group, results):
            contributions.append(
                PathContribution(
                    analyzer_name=group_analyzer.name,
                    truncated=path.truncated,
                    contributions=tuple(result),
                )
            )
        group = []
        group_analyzer = None

    for path in payload.paths:
        for analyzer in analyzers:
            if analyzer.applicable(path, payload.options):
                if analyzer is not group_analyzer:
                    flush()
                    group_analyzer = analyzer
                group.append(path)
                break
        else:
            flush()
            # Delegate to the shared single-path helper for the canonical
            # "no applicable analyzer" error.
            contributions.append(
                analyze_single_path(path, analyzers, payload.targets, payload.options)
            )
    flush()
    return payload.index, contributions


#: Process-wide executor cache for callers without their own pool lifecycle
#: (the deprecated ``bound_*`` shims, direct ``analyze_execution`` calls).
#: ``Model`` owns and closes its pools explicitly and does not use this.
_SHARED_EXECUTORS: dict[tuple[str, int], "ParallelAnalysisExecutor"] = {}


def shared_executor(options: AnalysisOptions) -> "ParallelAnalysisExecutor":
    """A process-wide pool matching ``options``' executor kind and worker count.

    Created lazily and reused for every subsequent query with the same
    ``(kind, workers)`` — without this, each engine-level call with parallel
    options would fork and tear down a fresh pool.  Shared pools live until
    :func:`close_shared_executors` or interpreter exit (``concurrent.futures``
    joins them atexit).
    """
    key = options.executor_key()
    executor = _SHARED_EXECUTORS.get(key)
    if executor is None or executor._closed:
        executor = ParallelAnalysisExecutor(workers=options.workers, kind=options.effective_executor)
        _SHARED_EXECUTORS[key] = executor
    return executor


def close_shared_executors() -> None:
    """Shut down every process-wide shared pool (they re-create on demand)."""
    for executor in _SHARED_EXECUTORS.values():
        executor.close()
    _SHARED_EXECUTORS.clear()


class ParallelAnalysisExecutor:
    """A reusable worker pool for chunked bound analysis.

    The executor is cheap to construct — the underlying pool is created
    lazily on the first parallel query and reused across queries, which is
    how :class:`repro.Model` amortises pool start-up over a whole evaluation
    scenario.  It is a context manager; :meth:`close` shuts the pool down.

    ``kind`` is one of ``"process"`` (default; true CPU parallelism),
    ``"thread"`` (no pickling, but GIL-bound) or ``"serial"`` (the identical
    chunked pipeline without a pool, for debugging).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        kind: str = "process",
        chunk_size: Optional[int] = None,
    ) -> None:
        if kind not in EXECUTOR_KINDS:
            kinds = ", ".join(repr(k) for k in EXECUTOR_KINDS)
            raise ValueError(f"executor kind must be one of {kinds}, got {kind!r}")
        if workers is None:
            workers = os.cpu_count() or 1
        _require_positive("workers", workers)
        if chunk_size is not None:
            _require_positive("chunk_size", chunk_size)
        self.workers = workers
        self.kind = kind
        self.chunk_size = chunk_size
        self._pool: Optional[concurrent.futures.Executor] = None
        self._closed = False
        self.chunks_dispatched = 0
        self.paths_analyzed = 0
        #: High-water mark of paths resident in the parent during the last
        #: streamed query (fill buffer + chunks in flight).  Batch queries
        #: leave it untouched; streamed queries reset it at entry.
        self.peak_path_buffer = 0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> Optional[concurrent.futures.Executor]:
        if self._closed:
            raise RuntimeError("ParallelAnalysisExecutor is closed")
        if self.kind == "serial":
            return None
        if self._pool is None:
            if self.kind == "thread":
                self._pool = concurrent.futures.ThreadPoolExecutor(max_workers=self.workers)
            else:
                self._pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelAnalysisExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("warm" if self._pool else "cold")
        return (
            f"ParallelAnalysisExecutor(kind={self.kind!r}, workers={self.workers}, "
            f"chunk_size={self.chunk_size}, {state})"
        )

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def analyze(
        self,
        execution: SymbolicExecutionResult,
        targets: Sequence[Interval],
        options: Optional[AnalysisOptions] = None,
        report: Optional[AnalysisReport] = None,
    ) -> list[DenotationBounds]:
        """Denotation bounds for ``targets``, fanned out over the pool.

        The per-chunk results are reassembled in chunk order and folded in
        canonical path order, so the bounds are bit-identical to a serial
        :func:`repro.analysis.engine.analyze_execution` run.  Worker
        exceptions propagate to the caller.
        """
        options = options or AnalysisOptions()
        target_tuple = tuple(targets)
        paths = execution.paths
        # chunk_size is a per-call knob: the caller's options win, the
        # executor's own value is only a default.
        chunk_size = options.chunk_size if options.chunk_size is not None else self.chunk_size
        chunks = partition_paths(paths, self.workers, chunk_size)
        # Custom analyzers must be resolvable by name inside process workers;
        # fail fast in the parent when a name is simply unknown.
        specs = analyzer_specs(options.analyzer_names) if self.kind == "process" else ()
        if self.kind != "process":
            resolve_analyzers(options)
        # Process payloads are pickled: interning makes structurally equal
        # sub-expressions identical objects so pickle ships every duplicate
        # subtree once (as a memo back-reference) per chunk.
        memo: Optional[dict] = {} if self.kind == "process" else None
        payloads = [
            ChunkPayload(
                index=chunk_index,
                paths=(
                    intern_paths(paths[chunk.start : chunk.stop], memo)
                    if memo is not None
                    else tuple(paths[chunk.start : chunk.stop])
                ),
                targets=target_tuple,
                options=options,
                specs=specs,
            )
            for chunk_index, chunk in enumerate(chunks)
        ]
        self.chunks_dispatched += len(payloads)
        self.paths_analyzed += len(paths)

        if self._closed:
            raise RuntimeError("ParallelAnalysisExecutor is closed")
        if len(payloads) <= 1:
            # Empty or single-chunk work: running inline is bit-identical
            # (same analyze_chunk) and avoids forking a pool for trivial
            # path sets — e.g. one-path models under a process-wide
            # REPRO_ANALYSIS_WORKERS default.
            results = [analyze_chunk(payload) for payload in payloads]
        else:
            pool = self._ensure_pool()
            if pool is None:
                results = [analyze_chunk(payload) for payload in payloads]
            else:
                futures = [pool.submit(analyze_chunk, payload) for payload in payloads]
                results = [future.result() for future in futures]

        results.sort(key=lambda item: item[0])
        contributions: list[PathContribution] = []
        for _, chunk_contributions in results:
            contributions.extend(chunk_contributions)
        return reduce_contributions(contributions, target_tuple, report)

    # ------------------------------------------------------------------
    # Streaming analysis
    # ------------------------------------------------------------------
    def analyze_stream(
        self,
        paths: Iterable[SymbolicPath],
        targets: Sequence[Interval],
        options: Optional[AnalysisOptions] = None,
        report: Optional[AnalysisReport] = None,
    ) -> list[DenotationBounds]:
        """Denotation bounds from a *stream* of paths, pipelined over the pool.

        ``paths`` is consumed incrementally (typically the generator of
        :meth:`repro.symbolic.SymbolicExecutor.iter_paths`): paths are
        buffered into fixed-size chunks and dispatched as soon as a chunk
        fills, so workers analyse the first chunks while exploration is still
        enumerating the rest.  The buffer is bounded — at most
        ``workers × options.prefetch`` chunks are in flight; when the bound
        is hit, chunk production blocks until a worker finishes.  Peak parent
        memory is therefore O(chunk size × prefetch × workers) paths instead
        of the whole path set.

        Per-chunk results are reassembled in chunk order and folded in
        canonical path order, so streamed bounds are **bit-identical** to a
        batch :meth:`analyze` run and to the serial loop.  Exceptions from
        the path generator (e.g. a mid-stream
        :class:`~repro.symbolic.PathExplosionError`) and from workers
        propagate to the caller.
        """
        if self._closed:
            raise RuntimeError("ParallelAnalysisExecutor is closed")
        options = options or AnalysisOptions()
        target_tuple = tuple(targets)
        chunk_size = options.chunk_size if options.chunk_size is not None else self.chunk_size
        if chunk_size is None:
            chunk_size = _STREAM_CHUNK_SIZE
        max_inflight = self.workers * options.prefetch

        specs = analyzer_specs(options.analyzer_names) if self.kind == "process" else ()
        if self.kind != "process":
            resolve_analyzers(options)

        start = time.perf_counter()
        self.peak_path_buffer = 0
        pool = self._ensure_pool()
        results: list[tuple[int, list[PathContribution]]] = []
        inflight: dict[concurrent.futures.Future, int] = {}  # future -> path count
        buffer: list[SymbolicPath] = []
        #: Completion timestamps recorded by done-callbacks (which fire the
        #: moment a worker finishes, possibly from the pool's result thread) —
        #: collecting a result later would overstate time-to-first-bound when
        #: the in-flight cap is never reached.
        done_at: list[float] = []
        first_result_seconds: Optional[float] = None
        path_count = 0
        chunk_index = 0

        def note_buffer() -> None:
            resident = len(buffer) + sum(inflight.values())
            if resident > self.peak_path_buffer:
                self.peak_path_buffer = resident

        def note_done(_future: concurrent.futures.Future) -> None:
            done_at.append(time.perf_counter())

        def collect(future: concurrent.futures.Future) -> None:
            inflight.pop(future)
            results.append(future.result())  # re-raises worker exceptions

        def dispatch() -> None:
            nonlocal chunk_index, first_result_seconds
            # A fresh memo per chunk: pickle's own memoisation is per-payload,
            # so cross-chunk sharing would not shrink payloads further — it
            # would only retain every unique expression of the whole stream
            # in the parent for the query's lifetime.
            payload = ChunkPayload(
                index=chunk_index,
                paths=intern_paths(buffer, {}) if self.kind == "process" else tuple(buffer),
                targets=target_tuple,
                options=options,
                specs=specs,
            )
            chunk_index += 1
            self.chunks_dispatched += 1
            buffer.clear()
            if pool is None:
                # Serial kind: the identical chunked pipeline without a pool —
                # the buffer stays bounded by one chunk.
                self.peak_path_buffer = max(self.peak_path_buffer, len(payload.paths))
                results.append(analyze_chunk(payload))
                if first_result_seconds is None:
                    first_result_seconds = time.perf_counter() - start
            else:
                future = pool.submit(analyze_chunk, payload)
                inflight[future] = len(payload.paths)
                future.add_done_callback(note_done)
                note_buffer()
                # Bounded buffer: block until a slot frees up.
                while len(inflight) >= max_inflight:
                    done, _ = concurrent.futures.wait(
                        tuple(inflight), return_when=concurrent.futures.FIRST_COMPLETED
                    )
                    for finished in done:
                        collect(finished)

        try:
            for path in paths:
                buffer.append(path)
                path_count += 1
                note_buffer()
                if len(buffer) >= chunk_size:
                    dispatch()
            if buffer:
                dispatch()
            while inflight:
                done, _ = concurrent.futures.wait(
                    tuple(inflight), return_when=concurrent.futures.FIRST_COMPLETED
                )
                for finished in done:
                    collect(finished)
        finally:
            # On a mid-stream error, drop references to outstanding futures;
            # the pool itself stays usable for subsequent queries.
            inflight.clear()

        if done_at and first_result_seconds is None:
            first_result_seconds = min(done_at) - start
        self.paths_analyzed += path_count
        results.sort(key=lambda item: item[0])
        contributions: list[PathContribution] = []
        for _, chunk_contributions in results:
            contributions.extend(chunk_contributions)
        if report is not None:
            report.path_count += path_count
            report.truncated_paths += sum(int(c.truncated) for c in contributions)
            if first_result_seconds is not None:
                report.first_result_seconds = first_result_seconds
            report.peak_path_buffer = max(report.peak_path_buffer, self.peak_path_buffer)
        return reduce_contributions(contributions, target_tuple, report)
