"""Parallel bound-analysis: chunked fan-out of the per-path hot loop.

The GuBPI engine reduces posterior-bound computation to analysing a finite
set of symbolic interval paths and summing their contributions (Theorem 6.1).
The per-path analyses are completely independent — the classic
embarrassingly-parallel shape — yet the paper's workloads sit exactly in the
regime where it matters: path explosion (Section 7.5) produces tens of
thousands of paths, each of which runs a polytope volume computation or an
exponential box grid.

This module fans that loop out over a ``concurrent.futures`` pool:

* :func:`partition_paths` cuts the path set into *deterministic, contiguous,
  cost-balanced* chunks (using :meth:`SymbolicPath.analysis_cost_hint`), so
  the same workload always produces the same partition;
* :func:`analyze_chunk` / :func:`analyze_arena_chunk` are the units of work
  — the former receives plain pickled paths, the latter an
  :class:`~repro.analysis.transport.ArenaChunkRef` into a shared-memory
  arena segment (see :mod:`repro.analysis.transport`); both carry analyzer
  *names* (re-resolved through the registry inside the worker, see
  :func:`repro.analysis.registry.ensure_analyzers_registered`) and return
  raw :class:`~repro.analysis.engine.PathContribution` records;
* :class:`ParallelAnalysisExecutor` owns the pool, dispatches chunks and
  merges the results with :func:`repro.analysis.engine.reduce_contributions`,
  which always folds contributions in canonical path order — the merged
  bounds are therefore **bit-identical** to a serial run, independent of the
  worker count, the chunk size and the order in which workers finish.

Exceptions raised inside a worker (including
:class:`~repro.symbolic.PathExplosionError` and analyzer failures) are
re-raised in the parent by ``concurrent.futures``.

Backend guidance: the ``"process"`` executor is the right default for
CPU-bound bound analysis (the per-path work is pure Python and NumPy, so the
GIL serialises threads); ``"thread"`` is useful when the paths are cheap to
analyse but the payloads are large to pickle, or inside environments that
forbid subprocesses; ``"serial"`` runs the identical chunked pipeline
in-process (handy for debugging a parallel run).

Process payload transport is a knob (``payload_transport``): ``"arena"``
(the default) publishes the path set once as a shared-memory path-table
segment (cached across queries, unlinked on
:meth:`ParallelAnalysisExecutor.close`) and ships tiny index-range
references; ``"pickle"`` ships interned object graphs per chunk.  In-process
backends pass direct references and never intern.

The **columnar fast path** (``options.columnar``, on by default) analyses
chunks straight from the shared :class:`~repro.symbolic.arena.PathTable`:
arena workers run :func:`_analyze_table_range` over their attached segment,
and the in-process (serial/thread) backends run the identical loop over the
compiled program's own table — analyzers that implement ``analyze_table``
(box, linear) sweep the node/CSR arrays without materialising
``SymbolicPath`` objects, while analyzers without the hook transparently
receive decoded paths.  Bounds are bit-identical across every
transport/backend/columnar combination.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import os
import pickle
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from collections import OrderedDict

from .. import faults
from ..intervals import Interval
from ..symbolic import (
    PathExplosionError,
    SymbolicExecutionResult,
    SymbolicPath,
    intern_paths,
)
from ..symbolic.arena import encode_paths
from .config import (
    DEFAULT_IO_TIMEOUT,
    DEFAULT_SOCKET_ENDPOINT,
    EXECUTOR_KINDS,
    AnalysisOptions,
    _require_positive,
)
from .engine import (
    AnalysisReport,
    DenotationBounds,
    PathContribution,
    analyze_single_path,
    reduce_contributions,
)
from .registry import (
    AnalyzerSpec,
    analyzer_specs,
    ensure_analyzers_registered,
    resolve_analyzers,
)
from .transport import (
    ArenaChunkRef,
    ArenaSegment,
    ContextSegment,
    attach_arena,
    attach_context,
    create_arena_segment,
    create_context_segment,
    publish_arena_image,
    register_worker_reset,
    shared_memory_available,
)

__all__ = [
    "ChunkPayload",
    "ParallelAnalysisExecutor",
    "analyze_arena_chunk",
    "analyze_chunk",
    "analyze_table_slice",
    "close_shared_executors",
    "partition_paths",
    "shared_executor",
]

#: How many chunks to create per worker when no explicit chunk size is set.
#: Oversubscription lets the pool rebalance when per-chunk cost estimates are
#: off, at the price of slightly more dispatch overhead.
_OVERSUBSCRIPTION = 4

#: Default number of paths per streaming chunk when the caller sets no
#: explicit ``chunk_size``.  Streaming cannot cost-balance (the total cost is
#: unknown while the stream is live), so it uses fixed-size chunks: small
#: enough that the first chunk dispatches early (time-to-first-bound), large
#: enough to amortise pickling overhead.
_STREAM_CHUNK_SIZE = 32


def partition_paths(
    paths: Sequence[SymbolicPath],
    workers: int,
    chunk_size: Optional[int] = None,
) -> list[range]:
    """Cut ``paths`` into deterministic contiguous index ranges.

    With an explicit ``chunk_size`` the cut is a plain fixed-size slicing.
    Otherwise the partition targets ``workers × 4`` chunks of roughly equal
    *estimated cost* (not equal length): box-grid analysis is exponential in
    the path dimension, so a handful of deep paths can dominate a workload
    and fixed-length chunks would leave most workers idle.  The partition
    depends only on the path sequence and the arguments — never on timing —
    so repeated runs fan out identically.
    """
    count = len(paths)
    if count == 0:
        return []
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        return [range(start, min(start + chunk_size, count)) for start in range(0, count, chunk_size)]
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")

    target_chunks = min(count, workers * _OVERSUBSCRIPTION)
    if target_chunks <= 1:
        return [range(0, count)]
    costs = [path.analysis_cost_hint() for path in paths]
    total_cost = sum(costs)
    target_cost = total_cost / target_chunks if total_cost > 0 else 0.0

    chunks: list[range] = []
    start = 0
    accumulated = 0.0
    for index, cost in enumerate(costs):
        accumulated += cost
        is_last = index == count - 1
        if is_last or (accumulated >= target_cost and target_cost > 0.0):
            chunks.append(range(start, index + 1))
            start = index + 1
            accumulated = 0.0
    return chunks


@dataclass(frozen=True)
class ChunkPayload:
    """Everything one worker needs to analyse one chunk of paths.

    The payload is deliberately *value-only*: paths, targets and options are
    plain picklable data, and analyzers travel as registry specs rather than
    instances (resolved by name inside the worker).
    """

    index: int
    paths: tuple[SymbolicPath, ...]
    targets: tuple[Interval, ...]
    options: AnalysisOptions
    specs: tuple[AnalyzerSpec, ...]


def _analyze_paths(
    paths: Sequence[SymbolicPath],
    targets: tuple[Interval, ...],
    options: AnalysisOptions,
    specs: tuple[AnalyzerSpec, ...],
) -> list[PathContribution]:
    """The worker-side per-chunk loop over materialised paths.

    Resolves the analyzer selection and delegates to
    :func:`_analyze_paths_resolved` (the pickled-payload transports arrive
    here; the arena transport resolves once per query shape instead, see
    :func:`analyze_arena_chunk`).
    """
    ensure_analyzers_registered(specs)
    return _analyze_paths_resolved(paths, targets, options, resolve_analyzers(options))


def _batch_results(analyzer, batch, paths, targets, options):
    """Run ``analyze_batch`` (validated) or the per-path loop for a group."""
    if batch is not None and len(paths) > 1:
        results = batch(paths, targets, options)
        if len(results) != len(paths):
            raise RuntimeError(
                f"analyzer {analyzer.name!r}.analyze_batch returned "
                f"{len(results)} results for {len(paths)} paths; one result "
                "per path is required (a shortfall would silently drop "
                "path contributions and break soundness)"
            )
        return results
    return [analyzer.analyze(path, targets, options) for path in paths]


def _analyze_paths_resolved(
    paths: Sequence[SymbolicPath],
    targets: tuple[Interval, ...],
    options: AnalysisOptions,
    analyzers,
) -> list[PathContribution]:
    """The materialised per-chunk loop, shared by every payload transport.

    Consecutive paths handled by the same analyzer are grouped and handed to
    the analyzer's ``analyze_batch`` when it provides one, amortising
    per-call overhead (e.g. the box analyser's vectorised grid sweep) over
    the whole run; analyzers without batch support fall back to per-path
    calls.  Both routes produce the same per-path contribution records.
    """
    contributions: list[PathContribution] = []

    group: list[SymbolicPath] = []
    group_analyzer = None

    def flush() -> None:
        nonlocal group, group_analyzer
        if not group:
            return
        results = _batch_results(
            group_analyzer,
            getattr(group_analyzer, "analyze_batch", None),
            group,
            targets,
            options,
        )
        for path, result in zip(group, results):
            contributions.append(
                PathContribution(
                    analyzer_name=group_analyzer.name,
                    truncated=path.truncated,
                    contributions=tuple(result),
                )
            )
        group = []
        group_analyzer = None

    for path in paths:
        for analyzer in analyzers:
            if analyzer.applicable(path, options):
                if analyzer is not group_analyzer:
                    flush()
                    group_analyzer = analyzer
                group.append(path)
                break
        else:
            flush()
            # Delegate to the shared single-path helper for the canonical
            # "no applicable analyzer" error.
            contributions.append(analyze_single_path(path, analyzers, targets, options))
    flush()
    return contributions


def analyze_chunk(payload: ChunkPayload) -> tuple[int, list[PathContribution]]:
    """Analyse one pickled chunk of paths (runs inside a worker)."""
    return payload.index, _analyze_paths(
        payload.paths, payload.targets, payload.options, payload.specs
    )


def _analyze_table_range(
    table,
    start: int,
    stop: int,
    targets: tuple[Interval, ...],
    options: AnalysisOptions,
    analyzers,
    paths: Optional[Sequence[SymbolicPath]] = None,
    indices: Optional[Sequence[int]] = None,
) -> list[PathContribution]:
    """The columnar per-chunk loop over a ``PathTable`` slice.

    Every path index is routed to the first applicable analyzer — via its
    ``applicable_table`` hook when it has one, otherwise by asking
    ``applicable`` on the materialised path.  ``paths`` (optional) is the
    already-materialised path sequence the table was built from — in-process
    backends pass ``execution.paths`` so analyzers without the columnar
    hooks receive the original objects for free; workers over a
    shared-memory attachment leave it ``None`` and decode on demand
    (memoised per call).  Consecutive same-analyzer indices form a group:

    * analyzers with ``analyze_table`` receive the index group directly and
      sweep the table's node/CSR arrays — **no** ``SymbolicPath`` objects
      are materialised for them;
    * analyzers without the hook transparently receive the decoded paths
      through the same batch/per-path calls as the materialised loop.

    Contribution records (analyzer name, truncated flag, per-target bounds)
    are identical to :func:`_analyze_paths_resolved` over the decoded
    slice — the columnar route never moves a bound.

    ``indices`` (optional) replaces the contiguous ``[start, stop)`` range
    with an explicit index list (the refinement scheduler's scattered
    worst-gap subsets); results follow the given order.
    """
    contributions: list[PathContribution] = []
    decoded: dict[int, SymbolicPath] = {}

    def path_at(index: int) -> SymbolicPath:
        if paths is not None:
            return paths[index]
        path = decoded.get(index)
        if path is None:
            path = decoded[index] = table.decode_path(index)
        return path

    def pick(index: int):
        for analyzer in analyzers:
            table_pred = getattr(analyzer, "applicable_table", None)
            if table_pred is not None:
                if table_pred(table, index, options):
                    return analyzer
            elif analyzer.applicable(path_at(index), options):
                return analyzer
        return None

    group: list[int] = []
    group_analyzer = None

    def flush() -> None:
        nonlocal group, group_analyzer
        if not group:
            return
        analyzer = group_analyzer
        table_batch = getattr(analyzer, "analyze_table", None)
        if table_batch is not None:
            results = table_batch(table, tuple(group), targets, options)
            if len(results) != len(group):
                raise RuntimeError(
                    f"analyzer {analyzer.name!r}.analyze_table returned "
                    f"{len(results)} results for {len(group)} paths; one result "
                    "per path is required (a shortfall would silently drop "
                    "path contributions and break soundness)"
                )
        else:
            paths = [path_at(index) for index in group]
            results = _batch_results(
                analyzer, getattr(analyzer, "analyze_batch", None), paths, targets, options
            )
        for index, result in zip(group, results):
            contributions.append(
                PathContribution(
                    analyzer_name=analyzer.name,
                    truncated=table.is_truncated(index),
                    contributions=tuple(result),
                )
            )
        group = []
        group_analyzer = None

    for index in (indices if indices is not None else range(start, stop)):
        analyzer = pick(index)
        if analyzer is None:
            flush()
            # Delegate to the shared single-path helper for the canonical
            # "no applicable analyzer" error.
            contributions.append(analyze_single_path(path_at(index), analyzers, targets, options))
            continue
        if analyzer is not group_analyzer:
            flush()
            group_analyzer = analyzer
        group.append(index)
    flush()
    return contributions


#: Worker-side cache of *resolved* query contexts, keyed by the context
#: segment name (which uniquely identifies one query shape): the decoded
#: targets/options plus the analyzer instances, with
#: ``ensure_analyzers_registered`` already applied.  Without it every chunk
#: of a query re-decoded the context and re-resolved the registry — pure
#: per-chunk overhead for multi-chunk queries.  Context segments are
#: published once per query shape and shared by every arena segment of the
#: query (batch *and* streamed per-chunk segments), so the context name
#: alone is the right key — keying by arena segment too would miss on every
#: streamed chunk.
_RESOLVED_CONTEXTS: "OrderedDict[str, tuple]" = OrderedDict()
_RESOLVED_CONTEXT_CAP = 16

# The transport teardown helper is the documented full reset of per-worker
# state; the resolved-context cache participates.
register_worker_reset(_RESOLVED_CONTEXTS.clear)


def _resolved_context(context: str) -> tuple:
    """``(targets, options, analyzers)`` for one query shape (cached)."""
    entry = _RESOLVED_CONTEXTS.get(context)
    if entry is not None:
        _RESOLVED_CONTEXTS.move_to_end(context)
        return entry
    targets, options, specs = attach_context(context)
    ensure_analyzers_registered(specs)
    entry = (targets, options, resolve_analyzers(options))
    _RESOLVED_CONTEXTS[context] = entry
    while len(_RESOLVED_CONTEXTS) > _RESOLVED_CONTEXT_CAP:
        _RESOLVED_CONTEXTS.popitem(last=False)
    return entry


def analyze_table_slice(
    table,
    start: int,
    stop: int,
    targets: tuple[Interval, ...],
    options: AnalysisOptions,
    analyzers,
    paths: Optional[Sequence[SymbolicPath]] = None,
    indices: Optional[Sequence[int]] = None,
) -> list[PathContribution]:
    """Analyse one ``[start, stop)`` slice of a ``PathTable`` (resolved form).

    The transport-independent chunk body: the columnar sweep under
    ``options.columnar``, the materialised loop otherwise — the same two
    routes every backend runs, so any consumer holding a table and resolved
    analyzers (process workers, the socket tier's remote workers, in-process
    backends) produces the exact same contribution records.

    ``indices`` (optional) overrides ``[start, stop)`` with an explicit
    path-index list — the refinement scheduler's scattered worst-gap
    subsets travel through the very same chunk body on every backend.
    """
    if options.columnar:
        return _analyze_table_range(
            table, start, stop, targets, options, analyzers, paths=paths, indices=indices
        )
    if indices is not None:
        decoded = (
            [paths[index] for index in indices]
            if paths is not None
            else [table.decode_path(index) for index in indices]
        )
    else:
        decoded = paths[start:stop] if paths is not None else table.decode_range(start, stop)
    return _analyze_paths_resolved(decoded, targets, options, analyzers)


def analyze_arena_chunk(ref: ArenaChunkRef) -> tuple[int, list[PathContribution]]:
    """Analyse one chunk referenced into a shared-memory path-table segment.

    The worker attaches the table segment on first sight (the attachment —
    with its decoded-node memo and analyzer scratch space — is cached across
    chunks and queries, see :func:`repro.analysis.transport.attach_arena`)
    and resolves the query context once per query shape instead of once per
    chunk.  The scratch space is how analyzer memos travel on this transport:
    the linear analyzer keeps its cross-path
    :class:`~repro.analysis.linear_analyzer.GeometryCache` there, so LP
    sweeps and exact volumes warm up across every chunk and query a worker
    sees — safely, because the cache's exact-bytes keying returns identical
    float64s on a hit, keeping bounds independent of which chunks landed on
    which worker.  With ``options.columnar`` (the default) the
    ``[start, stop)`` slice runs the columnar loop
    (:func:`_analyze_table_range`); otherwise the slice is decoded and runs
    the materialised loop.  Both compute bit-identical contributions, and
    both match the pickle transport.
    """
    targets, options, analyzers = _resolved_context(ref.context)
    table = attach_arena(ref.segment)
    return ref.index, analyze_table_slice(
        table, ref.start, ref.stop, targets, options, analyzers, indices=ref.indices
    )


def _gathered(results: list[tuple[int, list[PathContribution]]]) -> list[PathContribution]:
    """Reassemble per-chunk results into one canonical-order contribution list."""
    results.sort(key=lambda item: item[0])
    contributions: list[PathContribution] = []
    for _, chunk_contributions in results:
        contributions.extend(chunk_contributions)
    return contributions


#: Process-wide executor cache for callers without their own pool lifecycle
#: (the deprecated ``bound_*`` shims, direct ``analyze_execution`` calls).
#: ``Model`` owns and closes its pools explicitly and does not use this.
_SHARED_EXECUTORS: dict[tuple[str, int], "ParallelAnalysisExecutor"] = {}


def shared_executor(options: AnalysisOptions) -> "ParallelAnalysisExecutor":
    """A process-wide pool matching ``options``' executor kind and worker count.

    Created lazily and reused for every subsequent query with the same
    ``(kind, workers)`` — without this, each engine-level call with parallel
    options would fork and tear down a fresh pool.  Shared pools live until
    :func:`close_shared_executors` or interpreter exit (``concurrent.futures``
    joins them atexit).
    """
    key = options.executor_key()
    executor = _SHARED_EXECUTORS.get(key)
    if executor is None or executor._closed:
        executor = ParallelAnalysisExecutor(
            workers=options.workers,
            kind=options.effective_executor,
            socket_endpoint=options.socket_endpoint,
            socket_spawn_workers=options.socket_spawn_workers,
            io_timeout=options.io_timeout,
        )
        _SHARED_EXECUTORS[key] = executor
    return executor


def close_shared_executors() -> None:
    """Shut down every process-wide shared pool (they re-create on demand)."""
    for executor in _SHARED_EXECUTORS.values():
        executor.close()
    _SHARED_EXECUTORS.clear()


# Deterministic teardown at interpreter exit: shared pools, their published
# shared-memory segments and any socket work-queue servers (with the local
# worker processes they spawned) are released even when no caller ever
# invoked close_shared_executors() — without this, an aborted script run
# could leave /dev/shm segments and orphaned worker processes behind.
atexit.register(close_shared_executors)


class ParallelAnalysisExecutor:
    """A reusable worker pool for chunked bound analysis.

    The executor is cheap to construct — the underlying pool is created
    lazily on the first parallel query and reused across queries, which is
    how :class:`repro.Model` amortises pool start-up over a whole evaluation
    scenario.  It is a context manager; :meth:`close` shuts the pool down.

    ``kind`` is one of ``"process"`` (default; true CPU parallelism),
    ``"thread"`` (no pickling, but GIL-bound), ``"serial"`` (the identical
    chunked pipeline without a pool, for debugging) or ``"socket"`` (a TCP
    work queue dispatching chunks to ``python -m repro.service.worker``
    processes — local ones it spawns itself and/or remote ones that connect
    to ``socket_endpoint``; see :mod:`repro.service.queue`).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        kind: str = "process",
        chunk_size: Optional[int] = None,
        socket_endpoint: Optional[str] = None,
        socket_spawn_workers: Optional[int] = None,
        io_timeout: Optional[float] = None,
    ) -> None:
        if kind not in EXECUTOR_KINDS:
            kinds = ", ".join(repr(k) for k in EXECUTOR_KINDS)
            raise ValueError(f"executor kind must be one of {kinds}, got {kind!r}")
        if workers is None:
            workers = os.cpu_count() or 1
        _require_positive("workers", workers)
        if chunk_size is not None:
            _require_positive("chunk_size", chunk_size)
        self.workers = workers
        self.kind = kind
        self.chunk_size = chunk_size
        self.socket_endpoint = socket_endpoint
        self.socket_spawn_workers = socket_spawn_workers
        #: Socket-level patience (seconds): the queue's handshake/liveness
        #: window, and the grace this executor grants a workerless queue
        #: before walking down the degradation ladder.
        self.io_timeout = DEFAULT_IO_TIMEOUT if io_timeout is None else io_timeout
        #: The lazily-started work-queue server of the ``"socket"`` backend
        #: (see :meth:`_ensure_queue`), plus LRU key caches mirroring the
        #: arena/context segment caches of the shared-memory transport.
        self._queue = None
        self._socket_tables: "OrderedDict[int, tuple[tuple, str]]" = OrderedDict()
        self._socket_contexts: "OrderedDict[tuple, str]" = OrderedDict()
        self._pool: Optional[concurrent.futures.Executor] = None
        self._closed = False
        #: Published arena segments, keyed by ``id`` of the path tuple they
        #: encode (each segment pins its tuple, so keys cannot alias).  The
        #: cache is what lets repeated queries over the same compiled path
        #: set dispatch with zero re-encoding and zero per-chunk path bytes.
        self._arena_segments: "OrderedDict[int, ArenaSegment]" = OrderedDict()
        #: Published query-context segments, keyed by the context value
        #: (targets, options, specs — all hashable), so a repeated query
        #: re-uses the published context just like it re-uses the arena.
        self._context_segments: "OrderedDict[tuple, ContextSegment]" = OrderedDict()
        #: Flipped when segment creation fails at runtime (e.g. exhausted
        #: /dev/shm): later queries skip straight to pickled payloads
        #: instead of re-encoding the whole arena image per query only to
        #: fail publishing it again.
        self._arena_degraded = False
        #: The degradation ladder's local process pool, created lazily the
        #: first time the socket backend has to hand work back (see
        #: :meth:`_complete_payloads_locally`).
        self._fallback_pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self.chunks_dispatched = 0
        self.paths_analyzed = 0
        self.arena_segments_created = 0
        #: Ladder telemetry: how many chunks were re-dispatched locally, and
        #: the lowest rung reached ("process" or "serial"; None = no
        #: degradation yet).
        self.degraded_chunks = 0
        self.degraded_to: Optional[str] = None
        #: High-water mark of paths resident in the parent during the last
        #: streamed query (fill buffer + chunks in flight).  Batch queries
        #: leave it untouched; streamed queries reset it at entry.
        self.peak_path_buffer = 0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> Optional[concurrent.futures.Executor]:
        if self._closed:
            raise RuntimeError("ParallelAnalysisExecutor is closed")
        if self.kind in ("serial", "socket"):
            return None
        if self._pool is None:
            if self.kind == "thread":
                self._pool = concurrent.futures.ThreadPoolExecutor(max_workers=self.workers)
            else:
                self._pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _ensure_queue(self):
        """The lazily-started work-queue server of the ``"socket"`` backend.

        Binds ``socket_endpoint`` (default: loopback, ephemeral port) on
        first use and spawns ``socket_spawn_workers`` local worker
        processes (default: ``workers`` of them; ``0`` relies entirely on
        external workers connecting to :attr:`queue_address`).
        """
        if self._closed:
            raise RuntimeError("ParallelAnalysisExecutor is closed")
        if self._queue is None:
            # Imported lazily: repro.service imports this module for the
            # shared chunk loop, so a module-level import would be circular.
            from ..service.queue import WorkQueueServer

            self._queue = WorkQueueServer(
                endpoint=self.socket_endpoint or DEFAULT_SOCKET_ENDPOINT,
                io_timeout=self.io_timeout,
            )
            spawn = self.socket_spawn_workers
            if spawn is None:
                spawn = self.workers
            if spawn:
                self._queue.spawn_local_workers(spawn)
        return self._queue

    @property
    def queue_address(self) -> Optional[str]:
        """The bound ``host:port`` of the socket backend's queue (or None)."""
        return self._queue.endpoint if self._queue is not None else None

    def close(self) -> None:
        """Shut the worker pool down and unlink its arena segments (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._fallback_pool is not None:
            self._fallback_pool.shutdown(wait=True, cancel_futures=True)
            self._fallback_pool = None
        if self._queue is not None:
            self._queue.close()
            self._queue = None
        self._socket_tables.clear()
        self._socket_contexts.clear()
        while self._arena_segments:
            _, segment = self._arena_segments.popitem(last=False)
            segment.unlink()
        while self._context_segments:
            _, context = self._context_segments.popitem(last=False)
            context.unlink()

    def __enter__(self) -> "ParallelAnalysisExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("warm" if self._pool else "cold")
        return (
            f"ParallelAnalysisExecutor(kind={self.kind!r}, workers={self.workers}, "
            f"chunk_size={self.chunk_size}, arenas={len(self._arena_segments)}, {state})"
        )

    # ------------------------------------------------------------------
    # Arena segment lifecycle
    # ------------------------------------------------------------------
    #: How many per-query arena segments the executor keeps published.  One
    #: per cached compiled program is the common case; the small LRU bounds
    #: shared-memory usage when a model sweeps execution limits.
    _ARENA_CACHE_CAP = 4

    def _arena_for(self, execution: SymbolicExecutionResult) -> Optional[ArenaSegment]:
        """The published segment encoding ``execution.paths`` (created on miss).

        When the execution already carries a finalised columnar table (the
        batch collector or a previous in-process columnar query built it),
        its bytes are published directly; otherwise the paths are encoded
        through :func:`create_arena_segment`.  Either way the segment is
        just a backing store for the same table bytes.
        """
        if self._arena_degraded:
            return None
        paths = execution.paths
        key = id(paths)
        segment = self._arena_segments.get(key)
        if segment is not None and segment.paths is paths:
            self._arena_segments.move_to_end(key)
            return segment
        if shared_memory_available() and hasattr(execution, "table"):
            # The compiled program's columnar table (built by the run()
            # collector, or finalised here on first use) serialises straight
            # to the wire image — no re-interning, no encode walk.
            segment = publish_arena_image(execution.table().to_bytes(), paths)
        else:
            segment = create_arena_segment(paths)
        if segment is None:
            self._arena_degraded = True
            return None
        self._register_arena(key, segment)
        return segment

    def _register_arena(self, key: int, segment: ArenaSegment) -> None:
        self._arena_segments[key] = segment
        self.arena_segments_created += 1
        while len(self._arena_segments) > self._ARENA_CACHE_CAP:
            _, old = self._arena_segments.popitem(last=False)
            old.unlink()

    def prime_arena(
        self,
        paths: tuple[SymbolicPath, ...],
        intern: bool = True,
        image: Optional[bytes] = None,
    ) -> bool:
        """Publish (and cache) the arena segment for ``paths`` ahead of a query.

        Used by the streamed-query cache tee: once a streamed query has
        materialised its path set into the compile cache, priming makes the
        arena segment itself the cached dispatch representation — the next
        query over those paths attaches workers to the existing segment
        without re-encoding.  ``image`` (optional) is the already-encoded
        table bytes — the tee's builder serialises its columns directly, so
        priming never re-walks the paths.  Returns False when the arena
        transport is unavailable (the query will fall back to pickled
        payloads).
        """
        if self.kind != "process" or self._closed or self._arena_degraded:
            return False
        key = id(paths)
        existing = self._arena_segments.get(key)
        if existing is not None and existing.paths is paths:
            return True
        if image is not None and shared_memory_available():
            segment = publish_arena_image(image, paths)
        else:
            segment = create_arena_segment(paths, intern=intern)
        if segment is None:
            self._arena_degraded = True
            return False
        self._register_arena(key, segment)
        return True

    def arena_segment_names(self) -> tuple[str, ...]:
        """Names of the currently published per-query segments (telemetry)."""
        return tuple(segment.name for segment in self._arena_segments.values())

    #: How many query-context segments stay published (they are tiny — one
    #: pickled (targets, options, specs) tuple each).
    _CONTEXT_CACHE_CAP = 8

    def _context_for(
        self,
        targets: tuple[Interval, ...],
        options: AnalysisOptions,
        specs: tuple[AnalyzerSpec, ...],
    ) -> Optional[ContextSegment]:
        """The published context segment for one query shape (cached)."""
        key = (targets, options, specs)
        context = self._context_segments.get(key)
        if context is not None:
            self._context_segments.move_to_end(key)
            return context
        context = create_context_segment(targets, options, specs)
        if context is None:
            self._arena_degraded = True
            return None
        self._context_segments[key] = context
        while len(self._context_segments) > self._CONTEXT_CACHE_CAP:
            _, old = self._context_segments.popitem(last=False)
            old.unlink()
        return context

    # ------------------------------------------------------------------
    # Socket-backend resource registration
    # ------------------------------------------------------------------
    #: How many path-table resources stay registered with the work queue
    #: (mirrors the arena segment cache: one per cached compiled program).
    _SOCKET_TABLE_CAP = 4
    #: How many query-context resources stay registered (tiny pickles).
    _SOCKET_CONTEXT_CAP = 8

    def _socket_table_key(self, execution: SymbolicExecutionResult, queue) -> str:
        """Register ``execution``'s path-table image with the queue (cached).

        The content hash of the table bytes is the resource key, so the
        image is encoded once per compiled path set, shipped at most once
        per worker connection, and naturally deduplicated when two
        executions encode equal tables.
        """
        from ..service.protocol import hash_bytes

        paths = execution.paths
        ident = id(paths)
        entry = self._socket_tables.get(ident)
        if entry is not None and entry[0] is paths:
            self._socket_tables.move_to_end(ident)
            return entry[1]
        image = execution.table().to_bytes()
        key = hash_bytes(image)
        queue.add_resource(key, image, "table")
        self._socket_tables[ident] = (paths, key)
        while len(self._socket_tables) > self._SOCKET_TABLE_CAP:
            _, (_, old_key) = self._socket_tables.popitem(last=False)
            queue.discard_resource(old_key)
        return key

    def _socket_context_key(
        self,
        queue,
        targets: tuple[Interval, ...],
        options: AnalysisOptions,
        specs: tuple[AnalyzerSpec, ...],
    ) -> str:
        """Register one query shape's pickled context with the queue (cached)."""
        from ..service.protocol import hash_bytes

        cache_key = (targets, options, specs)
        key = self._socket_contexts.get(cache_key)
        if key is not None:
            self._socket_contexts.move_to_end(cache_key)
            return key
        payload = pickle.dumps(cache_key, protocol=pickle.HIGHEST_PROTOCOL)
        key = hash_bytes(payload)
        queue.add_resource(key, payload, "context")
        self._socket_contexts[cache_key] = key
        while len(self._socket_contexts) > self._SOCKET_CONTEXT_CAP:
            _, old_key = self._socket_contexts.popitem(last=False)
            queue.discard_resource(old_key)
        return key

    # ------------------------------------------------------------------
    # Degradation ladder (socket -> local process pool -> serial)
    # ------------------------------------------------------------------
    def _ensure_fallback_pool(self) -> Optional[concurrent.futures.ProcessPoolExecutor]:
        """The ladder's local process pool (lazily created, best-effort)."""
        if self._closed:
            return None
        if self._fallback_pool is None:
            try:
                self._fallback_pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers
                )
            except OSError:  # pragma: no cover - no subprocess support
                return None
        return self._fallback_pool

    def _complete_payloads_locally(
        self, payloads: Sequence[ChunkPayload], reason: str
    ) -> list[tuple[int, list[PathContribution]]]:
        """Run chunks the socket backend failed on a local backend.

        The degradation ladder: first the lazily-created local process pool,
        and when that is broken too, the serial in-process loop.  Every rung
        runs the identical chunk body (:func:`analyze_chunk`), and the
        caller merges the returned ``(index, contributions)`` pairs through
        the same canonical-order reduction as undisturbed results — so a
        degraded query's bounds are **bit-identical** to a fault-free run.
        """
        if not payloads:
            return []
        warnings.warn(
            f"socket backend degraded ({reason}); re-dispatching "
            f"{len(payloads)} chunk(s) on the local process pool "
            "(falling back to serial if that fails too) — bounds are "
            "unaffected, only latency",
            RuntimeWarning,
            stacklevel=3,
        )
        self.degraded_chunks += len(payloads)
        pool = self._ensure_fallback_pool()
        if pool is not None:
            try:
                futures = [pool.submit(analyze_chunk, payload) for payload in payloads]
                results = [future.result() for future in futures]
                self.degraded_to = self.degraded_to or "process"
                return results
            except Exception:  # noqa: BLE001 - broken pool: take the last rung
                pass
        self.degraded_to = "serial"
        return [analyze_chunk(payload) for payload in payloads]

    def _socket_future_result(self, queue, future):
        """Wait on one socket-job future, policing a workerless queue.

        A socket job's timeout is only armed once a worker picks it up, so
        a queue that has lost every worker would otherwise pend forever.
        The poll loop grants a workerless queue ``io_timeout`` seconds of
        grace (workers may be mid-reconnect) and then raises ``WorkerLost``
        so the caller can take the degradation ladder.
        """
        from ..service.protocol import WorkerLost

        workerless_since: Optional[float] = None
        while True:
            try:
                return future.result(timeout=0.25)
            except concurrent.futures.TimeoutError:
                if queue.worker_count() > 0:
                    workerless_since = None
                    continue
                now = time.monotonic()
                if workerless_since is None:
                    workerless_since = now
                elif now - workerless_since >= self.io_timeout:
                    future.cancel()
                    raise WorkerLost(
                        f"work queue has had no connected workers for "
                        f"{self.io_timeout:.1f}s"
                    ) from None

    def _analyze_socket(
        self,
        execution: SymbolicExecutionResult,
        target_tuple: tuple[Interval, ...],
        options: AnalysisOptions,
        specs: tuple[AnalyzerSpec, ...],
        chunks: list[range],
    ) -> list[PathContribution]:
        """Batch dispatch over the TCP work queue.

        The distributed analogue of the arena branch in :meth:`analyze`:
        the table image and the query context are content-addressed
        resources registered once, every chunk travels as a tiny index
        range, and the futures merge through the same canonical-order
        reduction — socket bounds are bit-identical to serial bounds.

        When the queue exhausts a job's retries or loses every worker, the
        unfinished chunks ride the degradation ladder
        (:meth:`_complete_payloads_locally`); already-collected socket
        results are kept, and the merge stays canonical, so the recovered
        bounds match the undisturbed run bit for bit.
        """
        from ..service.protocol import WorkerLost

        queue = self._ensure_queue()
        table_key = self._socket_table_key(execution, queue)
        context_key = self._socket_context_key(queue, target_tuple, options, specs)
        deadline = (
            time.monotonic() + options.time_budget
            if options.time_budget is not None
            else None
        )
        futures = [
            queue.submit_chunk(
                index=chunk_index,
                table=table_key,
                start=chunk.start,
                stop=chunk.stop,
                context=context_key,
                timeout=options.job_timeout,
                retries=options.job_retries,
                deadline=deadline,
            )
            for chunk_index, chunk in enumerate(chunks)
        ]
        paths = execution.paths

        def payload_for(chunk_index: int) -> ChunkPayload:
            chunk = chunks[chunk_index]
            return ChunkPayload(
                index=chunk_index,
                paths=tuple(paths[chunk.start : chunk.stop]),
                targets=target_tuple,
                options=options,
                specs=specs,
            )

        results: list[tuple[int, list[PathContribution]]] = []
        for chunk_index, future in enumerate(futures):
            try:
                results.append(self._socket_future_result(queue, future))
            except WorkerLost as error:
                # The socket tier is out of attempts or out of workers:
                # salvage whatever later chunks already finished, hand the
                # rest down the ladder.
                leftovers = [payload_for(chunk_index)]
                for later_index in range(chunk_index + 1, len(futures)):
                    later = futures[later_index]
                    later.cancel()
                    if later.done() and not later.cancelled() and later.exception() is None:
                        results.append(later.result())
                    else:
                        leftovers.append(payload_for(later_index))
                results.extend(self._complete_payloads_locally(leftovers, str(error)))
                break
        return _gathered(results)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def analyze(
        self,
        execution: SymbolicExecutionResult,
        targets: Sequence[Interval],
        options: Optional[AnalysisOptions] = None,
        report: Optional[AnalysisReport] = None,
    ) -> list[DenotationBounds]:
        """Denotation bounds for ``targets``, fanned out over the pool.

        The per-chunk results are reassembled in chunk order and folded in
        canonical path order, so the bounds are bit-identical to a serial
        :func:`repro.analysis.engine.analyze_execution` run.  Worker
        exceptions propagate to the caller.
        """
        target_tuple = tuple(targets)
        contributions = self.analyze_contributions(execution, target_tuple, options)
        return reduce_contributions(contributions, target_tuple, report)

    def analyze_contributions(
        self,
        execution: SymbolicExecutionResult,
        targets: Sequence[Interval],
        options: Optional[AnalysisOptions] = None,
    ) -> list[PathContribution]:
        """Per-path contribution records for ``targets``, in canonical order.

        The dispatch body behind :meth:`analyze`, exposed separately because
        the refinement scheduler needs the *per-path* records (to key its
        gap heap) rather than the reduced sums.  Chunk results are
        reassembled in chunk order, so ``reduce_contributions`` over the
        returned list reproduces :meth:`analyze` bit for bit.
        """
        if self._closed:
            raise RuntimeError("ParallelAnalysisExecutor is closed")
        options = options or AnalysisOptions()
        target_tuple = tuple(targets)
        paths = execution.paths
        # chunk_size is a per-call knob: the caller's options win, the
        # executor's own value is only a default.
        chunk_size = options.chunk_size if options.chunk_size is not None else self.chunk_size
        chunks = partition_paths(paths, self.workers, chunk_size)
        # Custom analyzers must be resolvable by name inside remote workers
        # (process pool or socket queue); fail fast in the parent when a
        # name is simply unknown.
        remote = self.kind in ("process", "socket")
        specs = analyzer_specs(options.analyzer_names) if remote else ()
        if not remote:
            resolve_analyzers(options)
        self.chunks_dispatched += len(chunks)
        self.paths_analyzed += len(paths)

        # Empty or single-chunk work always runs inline: it is bit-identical
        # (same per-chunk loop) and avoids forking a pool (or binding a work
        # queue) for trivial path sets — e.g. one-path models under a
        # process-wide REPRO_ANALYSIS_WORKERS default.
        if self.kind == "socket" and len(chunks) > 1:
            return self._analyze_socket(execution, target_tuple, options, specs, chunks)
        pooled = len(chunks) > 1 and self.kind != "serial"
        pool = self._ensure_pool() if pooled else None
        pooled = pool is not None

        if pooled and self.kind == "process" and options.effective_transport == "arena":
            segment = self._arena_for(execution)
            context = (
                self._context_for(target_tuple, options, specs)
                if segment is not None
                else None
            )
            if segment is not None and context is not None:
                # Zero-copy dispatch: the arena segment is written (or cache
                # hit) once per path set and the query context once per query
                # shape; each chunk ships as a tiny index range into the
                # arena's path table.
                refs = [
                    ArenaChunkRef(
                        index=chunk_index,
                        segment=segment.name,
                        nbytes=segment.nbytes,
                        start=chunk.start,
                        stop=chunk.stop,
                        context=context.name,
                    )
                    for chunk_index, chunk in enumerate(chunks)
                ]
                futures = [pool.submit(analyze_arena_chunk, ref) for ref in refs]
                results = [future.result() for future in futures]
                return _gathered(results)

        # In-process columnar fast path: serial/thread backends (and inline
        # single-chunk runs on any backend) analyse the compiled program's
        # shared PathTable — the identical columnar sweep the process
        # workers run over their shared-memory attachment, including its
        # per-table memo reuse across chunks and queries.  Nothing is
        # interned, pickled or published.
        if options.columnar and (pool is None or self.kind == "thread"):
            table = execution.table()
            analyzers = resolve_analyzers(options)

            def run_table_chunk(chunk_index: int, chunk: range):
                return chunk_index, _analyze_table_range(
                    table, chunk.start, chunk.stop, target_tuple, options, analyzers,
                    paths=paths,
                )

            if pool is None:
                results = [run_table_chunk(i, chunk) for i, chunk in enumerate(chunks)]
            else:
                futures = [pool.submit(run_table_chunk, i, chunk) for i, chunk in enumerate(chunks)]
                results = [future.result() for future in futures]
            return _gathered(results)

        # Pickle transport (and the remaining in-process routes).  Interning
        # only pays for itself when chunks are actually pickled to a process
        # pool; serial/thread backends and inline runs pass direct
        # references, so they skip the memo walk entirely.
        memo: Optional[dict] = {} if pooled and self.kind == "process" else None
        payloads = [
            ChunkPayload(
                index=chunk_index,
                paths=(
                    intern_paths(paths[chunk.start : chunk.stop], memo)
                    if memo is not None
                    else tuple(paths[chunk.start : chunk.stop])
                ),
                targets=target_tuple,
                options=options,
                specs=specs,
            )
            for chunk_index, chunk in enumerate(chunks)
        ]
        if not pooled:
            results = [analyze_chunk(payload) for payload in payloads]
        else:
            futures = [pool.submit(analyze_chunk, payload) for payload in payloads]
            results = [future.result() for future in futures]
        return _gathered(results)

    # ------------------------------------------------------------------
    # Refinement dispatch
    # ------------------------------------------------------------------
    def analyze_refinement_jobs(
        self,
        execution: SymbolicExecutionResult,
        jobs: Sequence[tuple[tuple[int, ...], AnalysisOptions]],
        targets: Sequence[Interval],
    ) -> list[list[PathContribution]]:
        """Re-analyse explicit path-index groups, each under its own options.

        The refinement scheduler's dispatch primitive: every job is a
        ``(indices, options)`` pair — a scattered worst-gap subset of
        ``execution``'s path table plus the scaled split budgets of its
        refinement level.  Jobs ride the executor's regular chunk machinery
        (arena refs / pickled payloads / socket index jobs, depending on
        backend and transport), and the per-path records come back in job
        order with each job's records following its index order — so the
        scheduler's merge is deterministic on every backend.

        Returns one contribution list per job.
        """
        if self._closed:
            raise RuntimeError("ParallelAnalysisExecutor is closed")
        if not jobs:
            return []
        target_tuple = tuple(targets)
        paths = execution.paths
        self.chunks_dispatched += len(jobs)
        self.paths_analyzed += sum(len(indices) for indices, _ in jobs)

        if self.kind == "socket":
            from ..service.protocol import WorkerLost

            queue = self._ensure_queue()
            table_key = self._socket_table_key(execution, queue)
            futures = []
            for job_index, (indices, options) in enumerate(jobs):
                specs = analyzer_specs(options.analyzer_names)
                context_key = self._socket_context_key(queue, target_tuple, options, specs)
                deadline = (
                    time.monotonic() + options.time_budget
                    if options.time_budget is not None
                    else None
                )
                futures.append(
                    queue.submit_chunk(
                        index=job_index,
                        table=table_key,
                        start=0,
                        stop=0,
                        context=context_key,
                        timeout=options.job_timeout,
                        retries=options.job_retries,
                        indices=indices,
                        deadline=deadline,
                    )
                )

            def job_payload(job_index: int) -> ChunkPayload:
                indices, options = jobs[job_index]
                return ChunkPayload(
                    index=job_index,
                    paths=tuple(paths[i] for i in indices),
                    targets=target_tuple,
                    options=options,
                    specs=analyzer_specs(options.analyzer_names),
                )

            results: list[tuple[int, list[PathContribution]]] = []
            for job_index, future in enumerate(futures):
                try:
                    results.append(self._socket_future_result(queue, future))
                except WorkerLost as error:
                    leftovers = [job_payload(job_index)]
                    for later_index in range(job_index + 1, len(futures)):
                        later = futures[later_index]
                        later.cancel()
                        if later.done() and not later.cancelled() and later.exception() is None:
                            results.append(later.result())
                        else:
                            leftovers.append(job_payload(later_index))
                    results.extend(self._complete_payloads_locally(leftovers, str(error)))
                    break
            results.sort(key=lambda item: item[0])
            return [contributions for _, contributions in results]

        pool = self._ensure_pool() if self.kind in ("thread", "process") else None

        if (
            pool is not None
            and self.kind == "process"
            and jobs[0][1].effective_transport == "arena"
        ):
            segment = self._arena_for(execution)
            if segment is not None:
                refs = []
                for job_index, (indices, options) in enumerate(jobs):
                    specs = analyzer_specs(options.analyzer_names)
                    context = self._context_for(target_tuple, options, specs)
                    if context is None:
                        refs = None
                        break
                    refs.append(
                        ArenaChunkRef(
                            index=job_index,
                            segment=segment.name,
                            nbytes=segment.nbytes,
                            start=0,
                            stop=0,
                            context=context.name,
                            indices=tuple(indices),
                        )
                    )
                if refs is not None:
                    futures = [pool.submit(analyze_arena_chunk, ref) for ref in refs]
                    return [future.result()[1] for future in futures]

        if pool is not None and self.kind == "process":
            # Pickle fallback: the selected paths travel as an interned
            # object graph per job (one fresh memo each — jobs are small).
            payloads = [
                ChunkPayload(
                    index=job_index,
                    paths=intern_paths(tuple(paths[i] for i in indices), {}),
                    targets=target_tuple,
                    options=options,
                    specs=analyzer_specs(options.analyzer_names),
                )
                for job_index, (indices, options) in enumerate(jobs)
            ]
            futures = [pool.submit(analyze_chunk, payload) for payload in payloads]
            return [future.result()[1] for future in futures]

        # In-process backends run the shared table slice body directly over
        # the compiled program's own table (honouring options.columnar).
        table = execution.table()

        def run_job(indices: tuple[int, ...], options: AnalysisOptions):
            analyzers = resolve_analyzers(options)
            return analyze_table_slice(
                table, 0, 0, target_tuple, options, analyzers,
                paths=paths, indices=indices,
            )

        if pool is None:
            return [run_job(tuple(indices), options) for indices, options in jobs]
        futures = [pool.submit(run_job, tuple(indices), options) for indices, options in jobs]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Streaming analysis
    # ------------------------------------------------------------------
    def analyze_stream(
        self,
        paths: Iterable[SymbolicPath],
        targets: Sequence[Interval],
        options: Optional[AnalysisOptions] = None,
        report: Optional[AnalysisReport] = None,
        progress: Optional[Callable[[list[DenotationBounds], int], None]] = None,
        contribution_sink: Optional[list] = None,
    ) -> list[DenotationBounds]:
        """Denotation bounds from a *stream* of paths, pipelined over the pool.

        ``paths`` is consumed incrementally (typically the generator of
        :meth:`repro.symbolic.SymbolicExecutor.iter_paths`): paths are
        buffered into fixed-size chunks and dispatched as soon as a chunk
        fills, so workers analyse the first chunks while exploration is still
        enumerating the rest.  The buffer is bounded — at most
        ``workers × options.prefetch`` chunks are in flight; when the bound
        is hit, chunk production blocks until a worker finishes.  Peak parent
        memory is therefore O(chunk size × prefetch × workers) paths instead
        of the whole path set.

        Per-chunk results are reassembled in chunk order and folded in
        canonical path order, so streamed bounds are **bit-identical** to a
        batch :meth:`analyze` run and to the serial loop.  Exceptions from
        the path generator (e.g. a mid-stream
        :class:`~repro.symbolic.PathExplosionError`) and from workers
        propagate to the caller.

        ``progress`` (optional) is the anytime first-bound hook: it is
        invoked **once**, with ``(partial_bounds, paths_done)``, the moment
        the first chunk's contributions are collected.  Partial lower
        bounds are sound (contributions are non-negative); partial upper
        bounds cover only the paths analysed so far.

        ``contribution_sink`` (optional) receives the full canonical-order
        per-path contribution list once the stream completes — the
        refinement scheduler seeds from it without re-sweeping the paths
        (contribution records are a few floats per path, so retaining them
        does not undo the bounded path buffer).

        Under the ``"socket"`` backend each chunk is encoded as its own
        small path-table image, registered with the work queue under its
        content hash, dispatched as an index-range job, and discarded the
        moment its result lands — the TCP analogue of the per-chunk arena
        segments below.
        """
        if self._closed:
            raise RuntimeError("ParallelAnalysisExecutor is closed")
        options = options or AnalysisOptions()
        target_tuple = tuple(targets)
        chunk_size = options.chunk_size if options.chunk_size is not None else self.chunk_size
        if chunk_size is None:
            chunk_size = _STREAM_CHUNK_SIZE
        max_inflight = self.workers * options.prefetch

        remote = self.kind in ("process", "socket")
        specs = analyzer_specs(options.analyzer_names) if remote else ()
        if not remote:
            resolve_analyzers(options)

        start = time.perf_counter()
        self.peak_path_buffer = 0
        pool = self._ensure_pool()
        queue = self._ensure_queue() if self.kind == "socket" else None
        queue_context: Optional[str] = None
        if queue is not None:
            queue_context = self._socket_context_key(queue, target_tuple, options, specs)
        # Streamed arena dispatch publishes one short-lived segment per chunk
        # (the full path set is unknown while the stream is live); a segment
        # is unlinked the moment its chunk's result is collected, and the
        # ``finally`` below sweeps whatever is outstanding when the stream
        # dies mid-way (e.g. a PathExplosionError).
        use_arena = (
            pool is not None
            and self.kind == "process"
            and options.effective_transport == "arena"
            and shared_memory_available()
            and not self._arena_degraded
        )
        stream_segments: dict[concurrent.futures.Future, ArenaSegment] = {}
        #: Socket streaming: per-chunk table resources retired on collection
        #: (the work-queue analogue of the per-chunk arena segments).
        stream_resources: dict[concurrent.futures.Future, str] = {}
        #: Socket streaming: the local re-dispatch payload of every in-flight
        #: chunk, so a chunk whose socket job is lost rides the degradation
        #: ladder instead of failing the query.  Bounded by ``max_inflight``.
        stream_chunk_payloads: dict[concurrent.futures.Future, ChunkPayload] = {}
        #: Absolute deadline derived from ``options.time_budget`` (the whole
        #: stream shares it, like a batch query's chunks do).
        stream_deadline = (
            time.monotonic() + options.time_budget
            if options.time_budget is not None
            else None
        )
        #: Flipped once the ladder fires: later chunks skip the dead socket
        #: tier and go straight to the local backend.
        socket_dead = False
        workerless_since: Optional[float] = None
        results: list[tuple[int, list[PathContribution]]] = []
        inflight: dict[concurrent.futures.Future, int] = {}  # future -> path count
        buffer: list[SymbolicPath] = []
        progress_pending = progress is not None
        #: Completion timestamps recorded by done-callbacks (which fire the
        #: moment a worker finishes, possibly from the pool's result thread) —
        #: collecting a result later would overstate time-to-first-bound when
        #: the in-flight cap is never reached.
        done_at: list[float] = []
        first_result_seconds: Optional[float] = None
        path_count = 0
        chunk_index = 0

        def note_buffer() -> None:
            resident = len(buffer) + sum(inflight.values())
            if resident > self.peak_path_buffer:
                self.peak_path_buffer = resident

        def note_done(_future: concurrent.futures.Future) -> None:
            done_at.append(time.perf_counter())

        def fire_progress() -> None:
            """Invoke the anytime first-bound hook once, on the first result."""
            nonlocal progress_pending
            if not progress_pending or not results:
                return
            progress_pending = False
            ordered = sorted(results, key=lambda item: item[0])
            partial: list[PathContribution] = []
            for _, chunk_contributions in ordered:
                partial.extend(chunk_contributions)
            progress(reduce_contributions(partial, target_tuple, None), len(partial))

        def collect(future: concurrent.futures.Future) -> None:
            nonlocal socket_dead
            from ..service.protocol import WorkerLost

            inflight.pop(future)
            segment = stream_segments.pop(future, None)
            resource = stream_resources.pop(future, None)
            payload = stream_chunk_payloads.pop(future, None)
            try:
                results.append(future.result())  # re-raises worker exceptions
            except WorkerLost as error:
                # Socket job out of attempts: this chunk takes the ladder;
                # the stream keeps flowing and the merge stays canonical.
                if payload is None:
                    raise
                socket_dead = queue.worker_count() == 0
                results.extend(self._complete_payloads_locally([payload], str(error)))
            finally:
                if segment is not None:
                    segment.unlink()
                if resource is not None:
                    queue.discard_resource(resource)
            fire_progress()

        def wait_some() -> None:
            """Collect at least one in-flight future (ladder on a dead queue).

            Pool futures always complete eventually, but socket futures on a
            workerless queue would pend forever (their timeouts arm at
            dispatch) — so the socket wait polls, grants a workerless queue
            ``io_timeout`` of reconnect grace, and then pulls every stranded
            chunk down the degradation ladder.
            """
            nonlocal socket_dead, workerless_since
            while inflight:
                done, _ = concurrent.futures.wait(
                    tuple(inflight),
                    timeout=0.25 if queue is not None else None,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                if done:
                    workerless_since = None
                    for finished in done:
                        collect(finished)
                    return
                if queue is None:
                    continue
                if queue.worker_count() > 0:
                    workerless_since = None
                    continue
                now = time.monotonic()
                if workerless_since is None:
                    workerless_since = now
                    continue
                if now - workerless_since < self.io_timeout:
                    continue
                # Every worker is gone and none came back: strand-collect
                # the whole in-flight set locally.
                socket_dead = True
                stranded = list(inflight)
                payloads: list[ChunkPayload] = []
                for future in stranded:
                    inflight.pop(future)
                    key = stream_resources.pop(future, None)
                    if key is not None:
                        queue.discard_resource(key)
                    payload = stream_chunk_payloads.pop(future, None)
                    future.cancel()
                    if future.done() and not future.cancelled() and future.exception() is None:
                        results.append(future.result())
                    elif payload is not None:
                        payloads.append(payload)
                results.extend(self._complete_payloads_locally(
                    payloads,
                    f"work queue has had no connected workers for {self.io_timeout:.1f}s",
                ))
                fire_progress()
                return

        def dispatch() -> None:
            nonlocal chunk_index, first_result_seconds, use_arena
            chunk_paths = tuple(buffer)
            index = chunk_index
            chunk_index += 1
            self.chunks_dispatched += 1
            buffer.clear()
            if pool is None and queue is None:
                # Serial kind: the identical chunked pipeline without a pool —
                # the buffer stays bounded by one chunk, and nothing is
                # pickled, so the paths travel as direct references.
                payload = ChunkPayload(
                    index=index, paths=chunk_paths, targets=target_tuple,
                    options=options, specs=specs,
                )
                self.peak_path_buffer = max(self.peak_path_buffer, len(chunk_paths))
                results.append(analyze_chunk(payload))
                if first_result_seconds is None:
                    first_result_seconds = time.perf_counter() - start
                fire_progress()
                return

            if queue is not None:
                payload = ChunkPayload(
                    index=index, paths=chunk_paths, targets=target_tuple,
                    options=options, specs=specs,
                )
                if socket_dead:
                    # The ladder already fired: skip the dead socket tier.
                    results.extend(self._complete_payloads_locally(
                        [payload], "socket backend previously lost"
                    ))
                    fire_progress()
                    return
                from ..service.protocol import hash_bytes

                image = encode_paths(chunk_paths)
                key = hash_bytes(image)
                queue.add_resource(key, image, "table")
                future = queue.submit_chunk(
                    index=index,
                    table=key,
                    start=0,
                    stop=len(chunk_paths),
                    context=queue_context,
                    timeout=options.job_timeout,
                    retries=options.job_retries,
                    deadline=stream_deadline,
                )
                stream_resources[future] = key
                stream_chunk_payloads[future] = payload
                inflight[future] = len(chunk_paths)
                future.add_done_callback(note_done)
                note_buffer()
                while len(inflight) >= max_inflight:
                    wait_some()
                return

            segment: Optional[ArenaSegment] = None
            context: Optional[ContextSegment] = None
            if use_arena:
                context = self._context_for(target_tuple, options, specs)
                segment = create_arena_segment(chunk_paths) if context is not None else None
                if segment is None:
                    use_arena = False  # degrade once, stay degraded
                    self._arena_degraded = True
            if segment is not None:
                future = pool.submit(
                    analyze_arena_chunk,
                    ArenaChunkRef(
                        index=index,
                        segment=segment.name,
                        nbytes=segment.nbytes,
                        start=0,
                        stop=len(chunk_paths),
                        context=context.name,
                    ),
                )
                stream_segments[future] = segment
            else:
                # Pickled chunk: intern against a fresh memo per chunk —
                # pickle's own memoisation is per-payload, so cross-chunk
                # sharing would not shrink payloads further, it would only
                # retain every unique expression of the whole stream in the
                # parent for the query's lifetime.  The thread backend passes
                # direct references and skips the memo walk.
                payload = ChunkPayload(
                    index=index,
                    paths=(
                        intern_paths(chunk_paths, {})
                        if self.kind == "process"
                        else chunk_paths
                    ),
                    targets=target_tuple,
                    options=options,
                    specs=specs,
                )
                future = pool.submit(analyze_chunk, payload)
            inflight[future] = len(chunk_paths)
            future.add_done_callback(note_done)
            note_buffer()
            # Bounded buffer: block until a slot frees up.
            while len(inflight) >= max_inflight:
                wait_some()

        fault_plan = faults.active()
        try:
            for path in paths:
                if fault_plan is not None:
                    action = fault_plan.decide("stream.paths")
                    if action is not None and action.kind == "explode":
                        raise PathExplosionError(
                            "injected mid-stream path explosion "
                            f"(after {path_count} paths)"
                        )
                buffer.append(path)
                path_count += 1
                note_buffer()
                if len(buffer) >= chunk_size:
                    dispatch()
            if buffer:
                dispatch()
            while inflight:
                wait_some()
        finally:
            # On a mid-stream error, drop references to outstanding futures
            # and unlink their arena segments (attached workers keep their
            # mappings until they evict them; the kernel reclaims the memory
            # with the last detach).  The pool itself stays usable for
            # subsequent queries.
            inflight.clear()
            stream_chunk_payloads.clear()
            while stream_segments:
                _, leftover = stream_segments.popitem()
                leftover.unlink()
            while stream_resources:
                _, leftover_key = stream_resources.popitem()
                queue.discard_resource(leftover_key)

        if done_at and first_result_seconds is None:
            first_result_seconds = min(done_at) - start
        self.paths_analyzed += path_count
        results.sort(key=lambda item: item[0])
        contributions: list[PathContribution] = []
        for _, chunk_contributions in results:
            contributions.extend(chunk_contributions)
        if contribution_sink is not None:
            contribution_sink.extend(contributions)
        if report is not None:
            report.path_count += path_count
            report.truncated_paths += sum(int(c.truncated) for c in contributions)
            if first_result_seconds is not None:
                report.first_result_seconds = first_result_seconds
            report.peak_path_buffer = max(report.peak_path_buffer, self.peak_path_buffer)
        return reduce_contributions(contributions, target_tuple, report)
