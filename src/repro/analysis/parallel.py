"""Parallel bound-analysis: chunked fan-out of the per-path hot loop.

The GuBPI engine reduces posterior-bound computation to analysing a finite
set of symbolic interval paths and summing their contributions (Theorem 6.1).
The per-path analyses are completely independent — the classic
embarrassingly-parallel shape — yet the paper's workloads sit exactly in the
regime where it matters: path explosion (Section 7.5) produces tens of
thousands of paths, each of which runs a polytope volume computation or an
exponential box grid.

This module fans that loop out over a ``concurrent.futures`` pool:

* :func:`partition_paths` cuts the path set into *deterministic, contiguous,
  cost-balanced* chunks (using :meth:`SymbolicPath.analysis_cost_hint`), so
  the same workload always produces the same partition;
* :func:`analyze_chunk` is the picklable unit of work — it receives plain
  paths plus analyzer *names* (re-resolved through the registry inside the
  worker, see :func:`repro.analysis.registry.ensure_analyzers_registered`)
  and returns raw :class:`~repro.analysis.engine.PathContribution` records;
* :class:`ParallelAnalysisExecutor` owns the pool, dispatches chunks and
  merges the results with :func:`repro.analysis.engine.reduce_contributions`,
  which always folds contributions in canonical path order — the merged
  bounds are therefore **bit-identical** to a serial run, independent of the
  worker count, the chunk size and the order in which workers finish.

Exceptions raised inside a worker (including
:class:`~repro.symbolic.PathExplosionError` and analyzer failures) are
re-raised in the parent by ``concurrent.futures``.

Backend guidance: the ``"process"`` executor is the right default for
CPU-bound bound analysis (the per-path work is pure Python and NumPy, so the
GIL serialises threads); ``"thread"`` is useful when the paths are cheap to
analyse but the payloads are large to pickle, or inside environments that
forbid subprocesses; ``"serial"`` runs the identical chunked pipeline
in-process (handy for debugging a parallel run).
"""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass
from typing import Optional, Sequence

from ..intervals import Interval
from ..symbolic import SymbolicExecutionResult, SymbolicPath
from .config import EXECUTOR_KINDS, AnalysisOptions, _require_positive
from .engine import (
    AnalysisReport,
    DenotationBounds,
    PathContribution,
    analyze_single_path,
    reduce_contributions,
)
from .registry import (
    AnalyzerSpec,
    analyzer_specs,
    ensure_analyzers_registered,
    resolve_analyzers,
)

__all__ = [
    "ChunkPayload",
    "ParallelAnalysisExecutor",
    "analyze_chunk",
    "close_shared_executors",
    "partition_paths",
    "shared_executor",
]

#: How many chunks to create per worker when no explicit chunk size is set.
#: Oversubscription lets the pool rebalance when per-chunk cost estimates are
#: off, at the price of slightly more dispatch overhead.
_OVERSUBSCRIPTION = 4


def partition_paths(
    paths: Sequence[SymbolicPath],
    workers: int,
    chunk_size: Optional[int] = None,
) -> list[range]:
    """Cut ``paths`` into deterministic contiguous index ranges.

    With an explicit ``chunk_size`` the cut is a plain fixed-size slicing.
    Otherwise the partition targets ``workers × 4`` chunks of roughly equal
    *estimated cost* (not equal length): box-grid analysis is exponential in
    the path dimension, so a handful of deep paths can dominate a workload
    and fixed-length chunks would leave most workers idle.  The partition
    depends only on the path sequence and the arguments — never on timing —
    so repeated runs fan out identically.
    """
    count = len(paths)
    if count == 0:
        return []
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        return [range(start, min(start + chunk_size, count)) for start in range(0, count, chunk_size)]
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")

    target_chunks = min(count, workers * _OVERSUBSCRIPTION)
    if target_chunks <= 1:
        return [range(0, count)]
    costs = [path.analysis_cost_hint() for path in paths]
    total_cost = sum(costs)
    target_cost = total_cost / target_chunks if total_cost > 0 else 0.0

    chunks: list[range] = []
    start = 0
    accumulated = 0.0
    for index, cost in enumerate(costs):
        accumulated += cost
        is_last = index == count - 1
        if is_last or (accumulated >= target_cost and target_cost > 0.0):
            chunks.append(range(start, index + 1))
            start = index + 1
            accumulated = 0.0
    return chunks


@dataclass(frozen=True)
class ChunkPayload:
    """Everything one worker needs to analyse one chunk of paths.

    The payload is deliberately *value-only*: paths, targets and options are
    plain picklable data, and analyzers travel as registry specs rather than
    instances (resolved by name inside the worker).
    """

    index: int
    paths: tuple[SymbolicPath, ...]
    targets: tuple[Interval, ...]
    options: AnalysisOptions
    specs: tuple[AnalyzerSpec, ...]


def analyze_chunk(payload: ChunkPayload) -> tuple[int, list[PathContribution]]:
    """Analyse one chunk of paths (runs inside a worker).

    Consecutive paths handled by the same analyzer are grouped and handed to
    the analyzer's ``analyze_batch`` when it provides one, amortising
    per-call overhead (e.g. the box analyser's vectorised grid sweep) over
    the whole run; analyzers without batch support fall back to per-path
    calls.  Both routes produce the same per-path contribution records.
    """
    ensure_analyzers_registered(payload.specs)
    analyzers = resolve_analyzers(payload.options)
    contributions: list[PathContribution] = []

    group: list[SymbolicPath] = []
    group_analyzer = None

    def flush() -> None:
        nonlocal group, group_analyzer
        if not group:
            return
        batch = getattr(group_analyzer, "analyze_batch", None)
        if batch is not None and len(group) > 1:
            results = batch(group, payload.targets, payload.options)
            if len(results) != len(group):
                raise RuntimeError(
                    f"analyzer {group_analyzer.name!r}.analyze_batch returned "
                    f"{len(results)} results for {len(group)} paths; one result "
                    "per path is required (a shortfall would silently drop "
                    "path contributions and break soundness)"
                )
        else:
            results = [
                group_analyzer.analyze(path, payload.targets, payload.options) for path in group
            ]
        for path, result in zip(group, results):
            contributions.append(
                PathContribution(
                    analyzer_name=group_analyzer.name,
                    truncated=path.truncated,
                    contributions=tuple(result),
                )
            )
        group = []
        group_analyzer = None

    for path in payload.paths:
        for analyzer in analyzers:
            if analyzer.applicable(path, payload.options):
                if analyzer is not group_analyzer:
                    flush()
                    group_analyzer = analyzer
                group.append(path)
                break
        else:
            flush()
            # Delegate to the shared single-path helper for the canonical
            # "no applicable analyzer" error.
            contributions.append(
                analyze_single_path(path, analyzers, payload.targets, payload.options)
            )
    flush()
    return payload.index, contributions


#: Process-wide executor cache for callers without their own pool lifecycle
#: (the deprecated ``bound_*`` shims, direct ``analyze_execution`` calls).
#: ``Model`` owns and closes its pools explicitly and does not use this.
_SHARED_EXECUTORS: dict[tuple[str, int], "ParallelAnalysisExecutor"] = {}


def shared_executor(options: AnalysisOptions) -> "ParallelAnalysisExecutor":
    """A process-wide pool matching ``options``' executor kind and worker count.

    Created lazily and reused for every subsequent query with the same
    ``(kind, workers)`` — without this, each engine-level call with parallel
    options would fork and tear down a fresh pool.  Shared pools live until
    :func:`close_shared_executors` or interpreter exit (``concurrent.futures``
    joins them atexit).
    """
    key = options.executor_key()
    executor = _SHARED_EXECUTORS.get(key)
    if executor is None or executor._closed:
        executor = ParallelAnalysisExecutor(workers=options.workers, kind=options.effective_executor)
        _SHARED_EXECUTORS[key] = executor
    return executor


def close_shared_executors() -> None:
    """Shut down every process-wide shared pool (they re-create on demand)."""
    for executor in _SHARED_EXECUTORS.values():
        executor.close()
    _SHARED_EXECUTORS.clear()


class ParallelAnalysisExecutor:
    """A reusable worker pool for chunked bound analysis.

    The executor is cheap to construct — the underlying pool is created
    lazily on the first parallel query and reused across queries, which is
    how :class:`repro.Model` amortises pool start-up over a whole evaluation
    scenario.  It is a context manager; :meth:`close` shuts the pool down.

    ``kind`` is one of ``"process"`` (default; true CPU parallelism),
    ``"thread"`` (no pickling, but GIL-bound) or ``"serial"`` (the identical
    chunked pipeline without a pool, for debugging).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        kind: str = "process",
        chunk_size: Optional[int] = None,
    ) -> None:
        if kind not in EXECUTOR_KINDS:
            kinds = ", ".join(repr(k) for k in EXECUTOR_KINDS)
            raise ValueError(f"executor kind must be one of {kinds}, got {kind!r}")
        if workers is None:
            workers = os.cpu_count() or 1
        _require_positive("workers", workers)
        if chunk_size is not None:
            _require_positive("chunk_size", chunk_size)
        self.workers = workers
        self.kind = kind
        self.chunk_size = chunk_size
        self._pool: Optional[concurrent.futures.Executor] = None
        self._closed = False
        self.chunks_dispatched = 0
        self.paths_analyzed = 0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> Optional[concurrent.futures.Executor]:
        if self._closed:
            raise RuntimeError("ParallelAnalysisExecutor is closed")
        if self.kind == "serial":
            return None
        if self._pool is None:
            if self.kind == "thread":
                self._pool = concurrent.futures.ThreadPoolExecutor(max_workers=self.workers)
            else:
                self._pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelAnalysisExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("warm" if self._pool else "cold")
        return (
            f"ParallelAnalysisExecutor(kind={self.kind!r}, workers={self.workers}, "
            f"chunk_size={self.chunk_size}, {state})"
        )

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def analyze(
        self,
        execution: SymbolicExecutionResult,
        targets: Sequence[Interval],
        options: Optional[AnalysisOptions] = None,
        report: Optional[AnalysisReport] = None,
    ) -> list[DenotationBounds]:
        """Denotation bounds for ``targets``, fanned out over the pool.

        The per-chunk results are reassembled in chunk order and folded in
        canonical path order, so the bounds are bit-identical to a serial
        :func:`repro.analysis.engine.analyze_execution` run.  Worker
        exceptions propagate to the caller.
        """
        options = options or AnalysisOptions()
        target_tuple = tuple(targets)
        paths = execution.paths
        # chunk_size is a per-call knob: the caller's options win, the
        # executor's own value is only a default.
        chunk_size = options.chunk_size if options.chunk_size is not None else self.chunk_size
        chunks = partition_paths(paths, self.workers, chunk_size)
        # Custom analyzers must be resolvable by name inside process workers;
        # fail fast in the parent when a name is simply unknown.
        specs = analyzer_specs(options.analyzer_names) if self.kind == "process" else ()
        if self.kind != "process":
            resolve_analyzers(options)
        payloads = [
            ChunkPayload(
                index=chunk_index,
                paths=tuple(paths[chunk.start : chunk.stop]),
                targets=target_tuple,
                options=options,
                specs=specs,
            )
            for chunk_index, chunk in enumerate(chunks)
        ]
        self.chunks_dispatched += len(payloads)
        self.paths_analyzed += len(paths)

        if self._closed:
            raise RuntimeError("ParallelAnalysisExecutor is closed")
        if len(payloads) <= 1:
            # Empty or single-chunk work: running inline is bit-identical
            # (same analyze_chunk) and avoids forking a pool for trivial
            # path sets — e.g. one-path models under a process-wide
            # REPRO_ANALYSIS_WORKERS default.
            results = [analyze_chunk(payload) for payload in payloads]
        else:
            pool = self._ensure_pool()
            if pool is None:
                results = [analyze_chunk(payload) for payload in payloads]
            else:
                futures = [pool.submit(analyze_chunk, payload) for payload in payloads]
                results = [future.result() for future in futures]

        results.sort(key=lambda item: item[0])
        contributions: list[PathContribution] = []
        for _, chunk_contributions in results:
            contributions.extend(chunk_contributions)
        return reduce_contributions(contributions, target_tuple, report)
