"""Standard interval trace semantics for a single symbolic path (Section 6.3).

The sample space of a path is the product of the supports of its sample
variables.  The analyser partitions every variable's domain into sub-intervals
(a grid of boxes = interval traces restricted to this path) and evaluates the
constraints, score values and result value of the path in interval arithmetic
on every box:

* a box contributes to the **lower** bound of a target only when every
  constraint is satisfied for *all* points of the box and the result interval
  is *contained* in the target;
* it contributes to the **upper** bound when every constraint is satisfiable
  by *some* point of the box and the result interval *intersects* the target.

The mass of a box is the product of the exact prior probabilities of its
per-variable intervals (for a uniform(0, 1) variable this is just the width,
i.e. the paper's ``vol``); non-uniform priors are therefore handled natively
as in Appendix E.1.  Unbounded supports are split along quantiles so that
every cell carries equal prior mass.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..distributions import ContinuousDistribution, DiscreteDistribution, Distribution
from ..intervals import Interval
from ..symbolic.paths import Relation, SymbolicPath
from ..symbolic.value import SymExpr, evaluate_interval
from .config import AnalysisOptions
from .vectorize import ScalarFallback as _ScalarFallback
from .vectorize import (
    TableProgramEvaluator,
    checked_cells,
    compile_table_roots,
    vec_mul as _vec_mul,
    vec_product as _vec_product,
)

__all__ = ["BoxPathAnalyzer", "analyze_path_boxes", "analyze_table_boxes", "split_domain"]

_NON_NEGATIVE = Interval(0.0, math.inf)


def split_domain(dist: Distribution, parts: int) -> list[Interval]:
    """Split the support of a prior into cells.

    * Finite discrete supports become one *point cell* per support value, so
      branching on discrete draws is decided exactly and the resulting bounds
      are tight (this is how the Table 2 benchmarks come out exact).
    * Bounded continuous supports are split uniformly in value.
    * Unbounded supports are split uniformly in *probability* using the
      quantile function, which keeps every cell's prior mass equal and finite
      (the two extreme cells stretch to ±∞ but still carry mass ``1/parts``).
    """
    if isinstance(dist, DiscreteDistribution):
        values = sorted(set(dist.support_values()))
        if values:
            return [Interval.point(value) for value in values]
        return [dist.support()]
    support = dist.support()
    if parts <= 1:
        return [support]
    if support.is_bounded:
        return support.split(parts)
    if isinstance(dist, ContinuousDistribution):
        cuts = [dist.quantile(k / parts) for k in range(1, parts)]
        edges = [support.lo, *cuts, support.hi]
        cells = []
        for lo, hi in zip(edges, edges[1:]):
            if hi < lo:
                lo, hi = hi, lo
            cells.append(Interval(lo, hi))
        return cells
    return [support]


def _grid_parts(dimension: int, options: AnalysisOptions) -> int:
    """Per-dimension split count respecting the total box budget."""
    parts = options.splits_per_dimension
    if dimension <= 0:
        return 1
    while parts > 1 and parts ** dimension > options.max_boxes_per_path:
        parts -= 1
    return max(1, parts)


@dataclass
class _Cell:
    bounds: list[Interval]
    mass: float


def _enumerate_cells(path: SymbolicPath, options: AnalysisOptions) -> list[_Cell]:
    parts = _grid_parts(path.variable_count, options)
    per_variable: list[list[tuple[Interval, float]]] = []
    for dist in path.distributions:
        cells = split_domain(dist, parts)
        per_variable.append([(cell, dist.measure(cell)) for cell in cells])
    cells: list[_Cell] = [_Cell(bounds=[], mass=1.0)]
    for variable_cells in per_variable:
        next_cells: list[_Cell] = []
        for cell in cells:
            for interval, mass in variable_cells:
                if mass <= 0.0 and interval.width == 0.0:
                    continue
                next_cells.append(_Cell(bounds=cell.bounds + [interval], mass=cell.mass * mass))
        cells = next_cells
    return cells


# ----------------------------------------------------------------------
# Vectorised cell evaluation
#
# The per-cell loop below evaluates every constraint, score and the result
# value once per grid cell — for a path with thousands of cells that is
# thousands of Python interpreter round-trips per expression node.  The
# vectorised sweep (shared with the linear analyser in
# :mod:`repro.analysis.vectorize`) evaluates each expression node once over
# *all* cells as a pair of (lo, hi) NumPy arrays instead; any anomaly
# abandons the sweep and re-runs the path through the scalar loop.
# ----------------------------------------------------------------------


def _checked_cells(
    expr: SymExpr, los: np.ndarray, his: np.ndarray, transcendentals: bool = False
):
    return checked_cells(
        expr,
        los.shape[0],
        var_leaf=lambda leaf: (los[:, leaf.index], his[:, leaf.index]),
        transcendentals=transcendentals,
    )


def _constraint_masks(relation: str, glo: np.ndarray, ghi: np.ndarray):
    """Vectorised ``holds_exists`` / ``holds_forall`` for one constraint."""
    if relation == Relation.LEQ:
        return glo <= 0.0, ghi <= 0.0
    if relation == Relation.LT:
        return glo < 0.0, ghi < 0.0
    if relation == Relation.GT:
        return ghi > 0.0, glo > 0.0
    return ghi >= 0.0, glo >= 0.0


def _cell_arrays(distributions: Sequence[Distribution], options: AnalysisOptions):
    """The cell grid as arrays: bounds ``(n, d)`` and masses ``(n,)``.

    Mirrors :func:`_enumerate_cells` (same per-variable splits, same
    zero-mass point-cell filter, same lexicographic cell order) but builds
    the product grid with ``meshgrid`` instead of a Python cross product.
    Takes the distribution sequence directly so the materialised and
    columnar routes build identical grids.
    """
    parts = _grid_parts(len(distributions), options)
    lows, highs, masses = [], [], []
    for dist in distributions:
        cells = []
        for cell in split_domain(dist, parts):
            cell_mass = dist.measure(cell)
            if cell_mass <= 0.0 and cell.width == 0.0:
                continue
            cells.append((cell, cell_mass))
        if not cells:
            return None
        lows.append(np.array([cell.lo for cell, _ in cells]))
        highs.append(np.array([cell.hi for cell, _ in cells]))
        masses.append(np.array([mass for _, mass in cells]))
    lo_grid = np.meshgrid(*lows, indexing="ij")
    hi_grid = np.meshgrid(*highs, indexing="ij")
    mass_grid = np.meshgrid(*masses, indexing="ij")
    los = np.stack([grid.reshape(-1) for grid in lo_grid], axis=1)
    his = np.stack([grid.reshape(-1) for grid in hi_grid], axis=1)
    mass = np.ones(los.shape[0])
    for grid in mass_grid:
        mass = mass * grid.reshape(-1)
    return los, his, mass


def _boxes_sweep(
    arrays,
    constraints,
    scores,
    result,
    targets: Sequence[Interval],
    eval_expr,
) -> list[tuple[float, float]]:
    """The grid sweep shared by the materialised and columnar routes.

    ``constraints`` is a sequence of ``(expression handle, relation)``,
    ``scores``/``result`` are expression handles, and ``eval_expr`` resolves
    a handle to per-cell ``(lo, hi)`` arrays — a :class:`SymExpr` evaluated
    by :func:`~repro.analysis.vectorize.checked_cells` on the materialised
    route, a node id evaluated by
    :func:`~repro.analysis.vectorize.checked_cells_table` on the columnar
    route.  Sharing this fold is what makes the two routes bit-identical.
    """
    los, his, mass = arrays
    possible = mass > 0.0
    definite = possible.copy()
    for handle, relation in constraints:
        glo, ghi = eval_expr(handle)
        exists_mask, forall_mask = _constraint_masks(relation, glo, ghi)
        possible &= exists_mask
        definite &= forall_mask
    if not possible.any():
        return [(0.0, 0.0) for _ in targets]

    weight_lo = np.ones(los.shape[0])
    weight_hi = np.ones(los.shape[0])
    for score in scores:
        slo, shi = eval_expr(score)
        # meet with [0, inf); an all-negative score interval collapses to 0.
        slo = np.maximum(slo, 0.0)
        negative = shi < slo
        slo = np.where(negative, 0.0, slo)
        shi = np.where(negative, 0.0, shi)
        weight_lo, weight_hi = _vec_mul(weight_lo, weight_hi, slo, shi)
    weight_lo = np.maximum(weight_lo, 0.0)
    weight_hi = np.maximum(weight_hi, 0.0)
    if np.isnan(weight_lo).any() or np.isnan(weight_hi).any():
        raise _ScalarFallback

    value_lo, value_hi = eval_expr(result)
    upper_mass = _vec_product(mass, weight_hi)
    lower_mass = _vec_product(mass, weight_lo)

    results: list[tuple[float, float]] = []
    for target in targets:
        intersects = possible & (value_hi >= target.lo) & (value_lo <= target.hi)
        contained = definite & (value_lo >= target.lo) & (value_hi <= target.hi)
        upper = float(np.sum(upper_mass, where=intersects, initial=0.0))
        lower = float(np.sum(lower_mass, where=contained, initial=0.0))
        results.append((lower, upper))
    return results


def _analyze_path_boxes_vectorized(
    path: SymbolicPath,
    targets: Sequence[Interval],
    options: AnalysisOptions,
) -> list[tuple[float, float]]:
    """The vectorised sweep; raises :class:`_ScalarFallback` when unsupported."""
    arrays = _cell_arrays(path.distributions, options)
    if arrays is None:
        return [(0.0, 0.0) for _ in targets]
    los, his, _ = arrays
    transcendentals = options.vectorized_transcendentals
    return _boxes_sweep(
        arrays,
        [(constraint.expr, constraint.relation) for constraint in path.constraints],
        path.scores,
        path.result,
        targets,
        lambda expr: _checked_cells(expr, los, his, transcendentals),
    )


#: ``table.scratch`` key of the box analyzer's per-path compiled programs.
_TABLE_SCRATCH_KEY = "box-analyzer"

#: ``table.scratch`` key of the per-distribution-signature cell-grid cache.
_GRID_SCRATCH_KEY = "box-analyzer-grids"

#: How many cell grids one table attachment keeps.  Grids depend only on the
#: distribution signature and the split knobs, and path sets reuse a handful
#: of signatures (e.g. ``(U(0,1),) * depth`` per pedestrian recursion depth),
#: so a small LRU serves whole workloads while bounding memory.
_GRID_CACHE_CAP = 16

#: Cache-miss sentinel (``None`` is a legitimate cached value).
_GRID_MISS = object()


def _table_cell_arrays(table, index: int, distributions, options: AnalysisOptions):
    """The (cached) cell grid of path ``index``.

    The grid depends only on the path's distribution signature (stable dist
    ids — a cache home only the columnar table provides) and the split
    options; within one attachment every path of the same shape — and every
    repeated query — reuses one grid.  The sweep never mutates grid arrays,
    so sharing is safe and bit-neutral.
    """
    cache = table.scratch.get(_GRID_SCRATCH_KEY)
    if cache is None:
        cache = table.scratch.setdefault(_GRID_SCRATCH_KEY, OrderedDict())
    key = (
        tuple(int(dist_id) for dist_id in table.path_dist_ids(index)),
        options.splits_per_dimension,
        options.max_boxes_per_path,
    )
    # The thread backend shares one table (and this cache) across pool
    # threads: read the entry atomically and tolerate losing the LRU
    # bookkeeping races — a concurrent eviction at worst recomputes a grid,
    # never corrupts one (grids are immutable once built).
    entry = cache.get(key, _GRID_MISS)
    if entry is not _GRID_MISS:
        try:
            cache.move_to_end(key)
        except KeyError:  # evicted between get() and move_to_end()
            pass
        return entry
    arrays = _cell_arrays(distributions, options)
    cache[key] = arrays
    while len(cache) > _GRID_CACHE_CAP:
        try:
            cache.popitem(last=False)
        except KeyError:  # another thread already evicted
            break
    return arrays


def _box_program(table, index: int):
    """The compiled sweep program of path ``index`` (memoised per table).

    Compiled once per table attachment and reused by every chunk and every
    query over it: ``(instructions, constraint (position, relation) pairs,
    score positions, result position, distributions)``.  ``None`` marks a
    path the sweep cannot express — callers decode and run the materialised
    route.
    """
    cache = table.scratch.get(_TABLE_SCRATCH_KEY)
    if cache is None:
        cache = table.scratch.setdefault(_TABLE_SCRATCH_KEY, {})
    if index in cache:
        return cache[index]
    expr_ids, rel_ids = table.constraint_ids(index)
    score_ids = table.score_ids(index)
    # Constraint roots first, then scores, then the result: the compiled
    # program is laid out so lazy evaluation short-circuits in exactly the
    # order the sweep consumes the roots.
    roots = [int(expr_id) for expr_id in expr_ids]
    roots.extend(int(score_id) for score_id in score_ids)
    roots.append(table.result_id(index))
    try:
        instrs, positions = compile_table_roots(table, roots)
    except _ScalarFallback:
        cache[index] = None
        return None
    constraint_count = len(expr_ids)
    entry = (
        instrs,
        tuple(
            (position, Relation.ALL[int(rel_id)])
            for position, rel_id in zip(positions[:constraint_count], rel_ids)
        ),
        positions[constraint_count:-1],
        positions[-1],
        table.path_distributions(index),
    )
    cache[index] = entry
    return entry


def analyze_table_boxes(
    table,
    index: int,
    targets: Sequence[Interval],
    options: AnalysisOptions,
) -> list[tuple[float, float]]:
    """Bounds for path ``index`` straight from the table's node/CSR arrays.

    The columnar fast path: the path's expressions are compiled once per
    table attachment into a flat program (:func:`_box_program`); each query
    then builds the cell grid from the (shared) distribution records and
    executes the program lazily over it — no
    :class:`~repro.symbolic.SymbolicPath` is materialised and no expression
    tree is walked.  Paths the sweep cannot express (zero-variable paths,
    anomalies mid-sweep) decode and run the materialised
    :func:`analyze_path_boxes`, so results are bit-identical to the
    materialised route in every case.
    """
    program = _box_program(table, index) if options.vectorized_boxes else None
    if program is None or len(program[4]) == 0:
        return analyze_path_boxes(table.decode_path(index), targets, options)
    instrs, constraints, score_positions, result_position, distributions = program
    try:
        arrays = _table_cell_arrays(table, index, distributions, options)
        if arrays is None:
            return [(0.0, 0.0) for _ in targets]
        los, his, _ = arrays
        evaluator = TableProgramEvaluator(
            instrs,
            los.shape[0],
            var_leaf=lambda var_index: (los[:, var_index], his[:, var_index]),
            transcendentals=options.vectorized_transcendentals,
        )
        return _boxes_sweep(
            arrays, constraints, score_positions, result_position, targets, evaluator.eval_to
        )
    except _ScalarFallback:
        # Same escape hatch as the materialised route: decode this one path
        # and let analyze_path_boxes run its (vectorised, then scalar) loop.
        return analyze_path_boxes(table.decode_path(index), targets, options)


def analyze_path_boxes(
    path: SymbolicPath,
    targets: Sequence[Interval],
    options: AnalysisOptions,
) -> list[tuple[float, float]]:
    """Bounds on ``⟦Ψ⟧_lb(U)`` / ``⟦Ψ⟧_ub(U)`` for every target ``U``.

    Returns one ``(lower, upper)`` pair per entry of ``targets``.  With
    ``options.vectorized_boxes`` (the default) the grid is evaluated in one
    vectorised sweep over all cells; paths the sweep cannot express fall back
    to the per-cell loop transparently.
    """
    if options.vectorized_boxes and path.variable_count > 0:
        try:
            return _analyze_path_boxes_vectorized(path, targets, options)
        except _ScalarFallback:
            # Unsupported expression shapes and per-cell NaN corner cases
            # re-run through the scalar loop; genuine defects (e.g. shape
            # mismatches) propagate instead of silently degrading to it.
            pass
    lower = [0.0] * len(targets)
    upper = [0.0] * len(targets)
    if path.variable_count == 0:
        value = evaluate_interval(path.result, [])
        weight = Interval.point(1.0)
        for score in path.scores:
            weight = weight * evaluate_interval(score, []).meet(_NON_NEGATIVE)
        definite = all(
            constraint.holds_forall(evaluate_interval(constraint.expr, []))
            for constraint in path.constraints
        )
        possible = all(
            constraint.holds_exists(evaluate_interval(constraint.expr, []))
            for constraint in path.constraints
        )
        for index, target in enumerate(targets):
            if possible and value.intersects(target):
                upper[index] += max(0.0, weight.hi)
            if definite and target.contains_interval(value):
                lower[index] += max(0.0, weight.lo)
        return list(zip(lower, upper))

    for cell in _enumerate_cells(path, options):
        if cell.mass <= 0.0:
            continue
        bounds = cell.bounds
        definitely_satisfied = True
        possibly_satisfied = True
        for constraint in path.constraints:
            guard = evaluate_interval(constraint.expr, bounds)
            if not constraint.holds_exists(guard):
                possibly_satisfied = False
                break
            if not constraint.holds_forall(guard):
                definitely_satisfied = False
        if not possibly_satisfied:
            continue
        weight = Interval.point(1.0)
        for score in path.scores:
            score_bounds = evaluate_interval(score, bounds).meet(_NON_NEGATIVE)
            if score_bounds.is_empty:
                score_bounds = Interval.point(0.0)
            weight = weight * score_bounds
        value = evaluate_interval(path.result, bounds)
        for index, target in enumerate(targets):
            if value.intersects(target):
                upper[index] += cell.mass * max(0.0, weight.hi)
            if definitely_satisfied and target.contains_interval(value):
                lower[index] += cell.mass * max(0.0, weight.lo)
    return list(zip(lower, upper))


class BoxPathAnalyzer:
    """Registry adapter for the standard interval trace semantics.

    Box splitting is the universal fallback: it is applicable to every
    symbolic path, so it should come last in an analyzer preference list.
    """

    name = "box"

    def applicable(self, path: SymbolicPath, options: AnalysisOptions) -> bool:
        return True

    def analyze(
        self,
        path: SymbolicPath,
        targets: Sequence[Interval],
        options: AnalysisOptions,
    ) -> list[tuple[float, float]]:
        return analyze_path_boxes(path, targets, options)

    def analyze_batch(
        self,
        paths: Sequence[SymbolicPath],
        targets: Sequence[Interval],
        options: AnalysisOptions,
    ) -> list[list[tuple[float, float]]]:
        """Per-path contributions for a whole chunk of paths.

        Used by the parallel chunk workers; each path runs the same
        (vectorised) analysis as :meth:`analyze`, so batch results are
        identical to per-path calls.
        """
        return [analyze_path_boxes(path, targets, options) for path in paths]

    # -- columnar fast path --------------------------------------------
    def applicable_table(self, table, index: int, options: AnalysisOptions) -> bool:
        """Box splitting is universal, from the table as from objects."""
        return True

    def analyze_table(
        self,
        table,
        indices,
        targets: Sequence[Interval],
        options: AnalysisOptions,
    ) -> list[list[tuple[float, float]]]:
        """Per-path contributions straight from a ``PathTable`` slice.

        One result list per index, bit-identical to decoding each path and
        calling :meth:`analyze` (see :func:`analyze_table_boxes`).
        """
        return [analyze_table_boxes(table, index, targets, options) for index in indices]
