"""Pluggable path-analyzer registry — the engine's extension point.

The GuBPI engine turns every symbolic interval path into per-target bound
contributions.  How a path is analysed is a strategy: the paper ships two
(the polytope-based *linear* semantics of Section 6.4 and the box-splitting
*standard* interval trace semantics of Section 6.3), but nothing about the
engine is specific to those.  This module decouples the engine from the
strategies:

* :class:`PathAnalyzer` is the protocol a strategy implements;
* :func:`register_analyzer` / :func:`get_analyzer` /
  :func:`available_analyzers` manage the global registry;
* :func:`resolve_analyzers` maps an :class:`~repro.analysis.config.AnalysisOptions`
  preference list to analyzer instances.

New strategies (e.g. adaptive splitting) plug in without touching the engine::

    from repro.analysis import register_analyzer

    class AdaptiveAnalyzer:
        name = "adaptive"

        def applicable(self, path, options):
            return True

        def analyze(self, path, targets, options):
            ...

    register_analyzer("adaptive", AdaptiveAnalyzer)
    options = AnalysisOptions(analyzers=("adaptive", "box"))
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Dict, Protocol, Sequence, Type, runtime_checkable

from ..intervals import Interval
from ..symbolic import SymbolicPath
from .config import AnalysisOptions

__all__ = [
    "PathAnalyzer",
    "UnknownAnalyzerError",
    "AnalyzerSpec",
    "register_analyzer",
    "unregister_analyzer",
    "get_analyzer",
    "available_analyzers",
    "resolve_analyzers",
    "analyzer_specs",
    "ensure_analyzers_registered",
]


@runtime_checkable
class PathAnalyzer(Protocol):
    """Strategy interface: bounds on one symbolic path's contributions.

    Implementations are stateless; one shared instance serves all engine runs.
    """

    name: str

    def applicable(self, path: SymbolicPath, options: AnalysisOptions) -> bool:
        """Whether this analyzer can soundly handle ``path``."""

    def analyze(
        self,
        path: SymbolicPath,
        targets: Sequence[Interval],
        options: AnalysisOptions,
    ) -> list[tuple[float, float]]:
        """One ``(lower, upper)`` contribution per entry of ``targets``.

        Implementations may additionally provide:

        * ``analyze_batch(paths, targets, options)`` returning one
          contribution list per path — the chunk workers use it (when
          present) to amortise per-call overhead over a whole chunk;
        * the **columnar fast path**:
          ``analyze_table(table, indices, targets, options)`` returning one
          contribution list per index of a
          :class:`~repro.symbolic.arena.PathTable` slice, optionally paired
          with ``applicable_table(table, index, options)`` (the table-level
          applicability predicate).  Analyzers that opt in are fed table
          slices directly — no ``SymbolicPath`` is materialised; analyzers
          without the hook transparently receive decoded paths.  An
          ``analyze_table`` implementation **must** return bounds
          bit-identical to decoding each path and calling ``analyze``; when
          ``applicable_table`` is absent the engine decodes the path to
          evaluate ``applicable``.
        """


class UnknownAnalyzerError(LookupError):
    """Raised when an analyzer name is not present in the registry."""


@dataclass(frozen=True)
class AnalyzerSpec:
    """A picklable description of one registry entry.

    Worker processes receive specs instead of analyzer instances: the spec
    names the registered analyzer plus the import path of its class, and
    :func:`ensure_analyzers_registered` re-materialises the registration
    inside the worker.  This keeps the registry serialization-safe — analyzer
    classes never travel through pickle, only their names do.
    """

    name: str
    module: str
    qualname: str

    def load(self) -> Type[PathAnalyzer]:
        """Import and return the analyzer class this spec points at."""
        if "<locals>" in self.qualname:
            raise UnknownAnalyzerError(
                f"analyzer {self.name!r} is implemented by a local class "
                f"({self.module}.{self.qualname}) and cannot be re-imported in a "
                "worker process; define it at module level to use the process executor"
            )
        try:
            target = importlib.import_module(self.module)
            for part in self.qualname.split("."):
                target = getattr(target, part)
        except (ImportError, AttributeError) as exc:
            raise UnknownAnalyzerError(
                f"cannot import analyzer {self.name!r} from "
                f"{self.module}.{self.qualname} in this process: {exc}"
            ) from exc
        return target


_REGISTRY: Dict[str, Type[PathAnalyzer]] = {}
_INSTANCES: Dict[str, PathAnalyzer] = {}


def register_analyzer(name: str, cls: Type[PathAnalyzer], *, replace: bool = False) -> None:
    """Register a :class:`PathAnalyzer` implementation under ``name``.

    ``replace=True`` allows overriding an existing registration (useful in
    tests and for swapping tuned implementations in).
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"analyzer name must be a non-empty string, got {name!r}")
    if not callable(getattr(cls, "analyze", None)) or not callable(getattr(cls, "applicable", None)):
        raise TypeError(
            f"analyzer {cls!r} must implement applicable(path, options) and "
            "analyze(path, targets, options)"
        )
    if name in _REGISTRY and not replace:
        raise ValueError(f"analyzer {name!r} is already registered; pass replace=True to override")
    _REGISTRY[name] = cls
    _INSTANCES.pop(name, None)


def unregister_analyzer(name: str) -> None:
    """Remove an analyzer registration (no-op when absent)."""
    _REGISTRY.pop(name, None)
    _INSTANCES.pop(name, None)


def get_analyzer(name: str) -> PathAnalyzer:
    """The shared instance registered under ``name``.

    Raises :class:`UnknownAnalyzerError` for unregistered names.
    """
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    cls = _REGISTRY.get(name)
    if cls is None:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise UnknownAnalyzerError(
            f"unknown path analyzer {name!r}; registered analyzers: {known}"
        )
    instance = cls()
    if not getattr(instance, "name", None):
        instance.name = name
    _INSTANCES[name] = instance
    return instance


def available_analyzers() -> tuple[str, ...]:
    """The sorted names of all registered analyzers."""
    return tuple(sorted(_REGISTRY))


def resolve_analyzers(options: AnalysisOptions) -> tuple[PathAnalyzer, ...]:
    """The analyzer instances selected by ``options``, in preference order."""
    return tuple(get_analyzer(name) for name in options.analyzer_names)


def analyzer_specs(names: Sequence[str]) -> tuple[AnalyzerSpec, ...]:
    """Picklable specs for the named analyzers (for process-pool payloads)."""
    specs = []
    for name in names:
        cls = _REGISTRY.get(name)
        if cls is None:
            known = ", ".join(sorted(_REGISTRY)) or "<none>"
            raise UnknownAnalyzerError(
                f"unknown path analyzer {name!r}; registered analyzers: {known}"
            )
        specs.append(AnalyzerSpec(name=name, module=cls.__module__, qualname=cls.__qualname__))
    return tuple(specs)


def ensure_analyzers_registered(specs: Sequence[AnalyzerSpec]) -> None:
    """Re-materialise registry entries inside a worker process.

    Built-in analyzers are registered on import, so they need no work here;
    custom analyzers registered only in the parent process are imported by
    their spec and registered under the same name.  A local registration
    whose class *differs* from the spec (e.g. the parent overrode a built-in
    name via ``replace=True`` and this worker was spawned with the default
    registration) is replaced, so workers always run the parent's analyzer
    selection.
    """
    for spec in specs:
        registered = _REGISTRY.get(spec.name)
        if registered is None:
            register_analyzer(spec.name, spec.load())
        elif registered.__module__ != spec.module or registered.__qualname__ != spec.qualname:
            register_analyzer(spec.name, spec.load(), replace=True)


# Built-in strategies.  Importing them here (rather than from the engine)
# keeps the dependency direction one-way: engine -> registry -> analyzers.
from .box_analyzer import BoxPathAnalyzer  # noqa: E402
from .linear_analyzer import LinearPathAnalyzer  # noqa: E402

register_analyzer("linear", LinearPathAnalyzer)
register_analyzer("box", BoxPathAnalyzer)
