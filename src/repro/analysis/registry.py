"""Pluggable path-analyzer registry — the engine's extension point.

The GuBPI engine turns every symbolic interval path into per-target bound
contributions.  How a path is analysed is a strategy: the paper ships two
(the polytope-based *linear* semantics of Section 6.4 and the box-splitting
*standard* interval trace semantics of Section 6.3), but nothing about the
engine is specific to those.  This module decouples the engine from the
strategies:

* :class:`PathAnalyzer` is the protocol a strategy implements;
* :func:`register_analyzer` / :func:`get_analyzer` /
  :func:`available_analyzers` manage the global registry;
* :func:`resolve_analyzers` maps an :class:`~repro.analysis.config.AnalysisOptions`
  preference list to analyzer instances.

New strategies (e.g. adaptive splitting) plug in without touching the engine::

    from repro.analysis import register_analyzer

    class AdaptiveAnalyzer:
        name = "adaptive"

        def applicable(self, path, options):
            return True

        def analyze(self, path, targets, options):
            ...

    register_analyzer("adaptive", AdaptiveAnalyzer)
    options = AnalysisOptions(analyzers=("adaptive", "box"))
"""

from __future__ import annotations

from typing import Dict, Protocol, Sequence, Type, runtime_checkable

from ..intervals import Interval
from ..symbolic import SymbolicPath
from .config import AnalysisOptions

__all__ = [
    "PathAnalyzer",
    "UnknownAnalyzerError",
    "register_analyzer",
    "unregister_analyzer",
    "get_analyzer",
    "available_analyzers",
    "resolve_analyzers",
]


@runtime_checkable
class PathAnalyzer(Protocol):
    """Strategy interface: bounds on one symbolic path's contributions.

    Implementations are stateless; one shared instance serves all engine runs.
    """

    name: str

    def applicable(self, path: SymbolicPath, options: AnalysisOptions) -> bool:
        """Whether this analyzer can soundly handle ``path``."""

    def analyze(
        self,
        path: SymbolicPath,
        targets: Sequence[Interval],
        options: AnalysisOptions,
    ) -> list[tuple[float, float]]:
        """One ``(lower, upper)`` contribution per entry of ``targets``."""


class UnknownAnalyzerError(LookupError):
    """Raised when an analyzer name is not present in the registry."""


_REGISTRY: Dict[str, Type[PathAnalyzer]] = {}
_INSTANCES: Dict[str, PathAnalyzer] = {}


def register_analyzer(name: str, cls: Type[PathAnalyzer], *, replace: bool = False) -> None:
    """Register a :class:`PathAnalyzer` implementation under ``name``.

    ``replace=True`` allows overriding an existing registration (useful in
    tests and for swapping tuned implementations in).
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"analyzer name must be a non-empty string, got {name!r}")
    if not callable(getattr(cls, "analyze", None)) or not callable(getattr(cls, "applicable", None)):
        raise TypeError(
            f"analyzer {cls!r} must implement applicable(path, options) and "
            "analyze(path, targets, options)"
        )
    if name in _REGISTRY and not replace:
        raise ValueError(f"analyzer {name!r} is already registered; pass replace=True to override")
    _REGISTRY[name] = cls
    _INSTANCES.pop(name, None)


def unregister_analyzer(name: str) -> None:
    """Remove an analyzer registration (no-op when absent)."""
    _REGISTRY.pop(name, None)
    _INSTANCES.pop(name, None)


def get_analyzer(name: str) -> PathAnalyzer:
    """The shared instance registered under ``name``.

    Raises :class:`UnknownAnalyzerError` for unregistered names.
    """
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    cls = _REGISTRY.get(name)
    if cls is None:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise UnknownAnalyzerError(
            f"unknown path analyzer {name!r}; registered analyzers: {known}"
        )
    instance = cls()
    if not getattr(instance, "name", None):
        instance.name = name
    _INSTANCES[name] = instance
    return instance


def available_analyzers() -> tuple[str, ...]:
    """The sorted names of all registered analyzers."""
    return tuple(sorted(_REGISTRY))


def resolve_analyzers(options: AnalysisOptions) -> tuple[PathAnalyzer, ...]:
    """The analyzer instances selected by ``options``, in preference order."""
    return tuple(get_analyzer(name) for name in options.analyzer_names)


# Built-in strategies.  Importing them here (rather than from the engine)
# keeps the dependency direction one-way: engine -> registry -> analyzers.
from .box_analyzer import BoxPathAnalyzer  # noqa: E402
from .linear_analyzer import LinearPathAnalyzer  # noqa: E402

register_analyzer("linear", LinearPathAnalyzer)
register_analyzer("box", BoxPathAnalyzer)
