"""Shared-memory payload transport for the process bound engine.

The parallel engine's ``"arena"`` transport moves symbolic-path chunks to
process workers without pickling expression trees: the parent packs a path
set once into a flat arena image (:mod:`repro.symbolic.arena`), writes it
into one ``multiprocessing.shared_memory`` segment, and every chunk then
travels as an :class:`ArenaChunkRef` — segment name plus an index range —
a few hundred bytes regardless of chunk size.  Workers attach the segment
on first sight, cache the attachment (and the decoded-node memo that comes
with it) across chunks and queries, and decode only the paths of the chunk
at hand.

This module owns both sides of that lifecycle:

* **parent** — :func:`create_arena_segment` encodes and publishes a
  segment; :class:`ArenaSegment` pins the path tuple it encodes (so the
  id-keyed executor cache can never alias) and unlinks idempotently.
  Unlinking while workers are still attached is safe on POSIX: the segment
  persists until the last attachment closes.
* **worker** — :func:`attach_arena` maintains a small LRU of attached
  arenas per worker process.  Attachments are unregistered from the
  ``multiprocessing`` resource tracker (attaching registers them again on
  CPython ≤ 3.12, which would otherwise produce spurious leak warnings —
  the *parent* remains the tracked owner of every segment).

When ``multiprocessing.shared_memory`` is unavailable (or segment creation
fails at runtime, e.g. an exhausted ``/dev/shm``), the engine degrades to
the pickle transport with a one-time warning — the knob never changes
results, only how bytes move.
"""

from __future__ import annotations

import atexit
import pickle
import warnings
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .. import faults as _faults
from ..intervals import Interval
from ..symbolic import SymbolicPath
from ..symbolic.arena import PathTable, encode_paths

try:  # pragma: no cover - import guard exercised only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

__all__ = [
    "ArenaChunkRef",
    "ArenaSegment",
    "ContextSegment",
    "attach_arena",
    "attach_context",
    "create_arena_segment",
    "create_context_segment",
    "publish_arena_image",
    "register_worker_reset",
    "release_worker_arenas",
    "shared_memory_available",
]

#: How many arena attachments one worker process keeps mapped.  Streaming
#: dispatch creates one short-lived segment per chunk, so the cache must
#: both retain the long-lived per-query arenas and churn through stream
#: chunks without accumulating mappings of already-unlinked segments.
_WORKER_ATTACH_CAP = 4

_unavailable_warned = False


def shared_memory_available() -> bool:
    """Whether the host supports ``multiprocessing.shared_memory``."""
    return _shared_memory is not None


def _warn_unavailable(reason: str) -> None:
    global _unavailable_warned
    if not _unavailable_warned:
        _unavailable_warned = True
        warnings.warn(
            f"arena payload transport unavailable ({reason}); "
            "falling back to pickled chunk payloads",
            RuntimeWarning,
            stacklevel=3,
        )


@dataclass(frozen=True)
class ArenaChunkRef:
    """One worker's unit of work under the arena transport.

    A ref pickles to ~150 bytes regardless of chunk size: the paths live in
    the arena segment and the query context (targets, options, analyzer
    specs — identical for every chunk of a query) lives in its own tiny
    shared context segment, so neither is re-serialised per chunk.

    ``indices`` (optional) replaces the contiguous ``[start, stop)`` range
    with an explicit path-index list — the refinement scheduler's unit of
    work, where each round re-analyses a scattered worst-gap subset of the
    table rather than a contiguous slice.
    """

    index: int
    segment: str
    nbytes: int
    start: int
    stop: int
    context: str  # name of the query's ContextSegment
    indices: Optional[Tuple[int, ...]] = None


#: Every live parent-side segment handle, swept at interpreter exit.  Shared
#: memory is a named kernel resource: a segment whose owner exits without
#: unlinking persists in /dev/shm until reboot.  Executors unlink their
#: segments deterministically via close(); the weak set is the safety net
#: for handles that were still published when the process dies (weak so the
#: registry never extends a handle's lifetime).
_LIVE_SEGMENTS: "weakref.WeakSet[_SegmentHandle]" = weakref.WeakSet()


def _unlink_live_segments() -> None:
    for handle in list(_LIVE_SEGMENTS):
        handle.unlink()


atexit.register(_unlink_live_segments)


class _SegmentHandle:
    """Parent-side handle of one published segment: name, size, teardown."""

    def __init__(self, shm, nbytes: int) -> None:
        self._shm = shm
        self.name: str = shm.name
        self.nbytes = nbytes
        self.closed = False
        _LIVE_SEGMENTS.add(self)

    def unlink(self) -> None:
        """Close and unlink the segment (idempotent).

        Workers still attached keep their mappings until they evict them;
        the kernel reclaims the memory once the last mapping closes.
        """
        if self.closed:
            return
        self.closed = True
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - parent holds no views
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class ArenaSegment(_SegmentHandle):
    """A published arena segment, pinning the path tuple it encodes."""

    def __init__(self, shm, nbytes: int, paths: Tuple[SymbolicPath, ...]) -> None:
        super().__init__(shm, nbytes)
        #: Strong reference to the encoded path tuple: the executor caches
        #: segments keyed by ``id(paths)``, and pinning the tuple here is
        #: what makes that key stable for the segment's lifetime.
        self.paths = paths

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "live"
        return f"ArenaSegment({self.name!r}, {self.nbytes}B, {len(self.paths)} paths, {state})"


def _publish(image: bytes):
    """Write a byte image into a fresh shared-memory segment (or ``None``)."""
    action = _faults.decide("transport.publish")
    if action is not None and action.kind == "fail":
        # Injected shared-memory exhaustion: callers take the documented
        # pickle degradation exactly as they would on a real ENOSPC.
        _warn_unavailable("injected shared-memory publish failure")
        return None
    if _shared_memory is None:
        _warn_unavailable("multiprocessing.shared_memory is not importable")
        return None
    try:
        shm = _shared_memory.SharedMemory(create=True, size=max(len(image), 1))
    except OSError as error:
        _warn_unavailable(f"segment creation failed: {error}")
        return None
    shm.buf[: len(image)] = image
    return shm


def create_arena_segment(
    paths: Sequence[SymbolicPath], intern: bool = True
) -> Optional[ArenaSegment]:
    """Encode ``paths`` and publish the image as a shared-memory segment.

    Returns ``None`` (after a one-time warning) when shared memory is
    unavailable or segment creation fails — callers fall back to pickled
    payloads, which are slower but always possible.
    """
    if _shared_memory is None:
        _warn_unavailable("multiprocessing.shared_memory is not importable")
        return None
    return publish_arena_image(encode_paths(paths, intern=intern), paths)


def publish_arena_image(
    image: bytes, paths: Sequence[SymbolicPath]
) -> Optional[ArenaSegment]:
    """Publish an already-encoded path-table image as a shared segment.

    The image half of :func:`create_arena_segment`: callers that hold the
    columnar form already — a finalised
    :class:`~repro.symbolic.arena.PathTableBuilder` (the streamed-query
    cache tee) or a compiled program's cached
    :meth:`~repro.symbolic.SymbolicExecutionResult.table` — publish its
    bytes directly, skipping the encode walk entirely.  The segment is just
    another backing store for the same bytes.
    """
    shm = _publish(image)
    if shm is None:
        return None
    return ArenaSegment(shm, len(image), tuple(paths))


class ContextSegment(_SegmentHandle):
    """Parent-side handle of one published query-context segment.

    The context — ``(targets, options, analyzer specs)`` — is identical for
    every chunk of a query, so it is pickled **once**, published as a tiny
    segment, and referenced by name from every :class:`ArenaChunkRef`.
    Executors cache context segments keyed by the context value itself, so a
    repeated query re-uses the published context just like it re-uses the
    arena.
    """


def create_context_segment(
    targets: Tuple[Interval, ...], options, specs: tuple
) -> Optional[ContextSegment]:
    """Publish one query's ``(targets, options, specs)`` as a shared segment."""
    image = pickle.dumps((targets, options, specs), protocol=pickle.HIGHEST_PROTOCOL)
    shm = _publish(image)
    if shm is None:
        return None
    return ContextSegment(shm, len(image))


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Per-process LRU of attached arenas: segment name -> (table, shm handle).
_WORKER_ARENAS: "OrderedDict[str, tuple[PathTable, object]]" = OrderedDict()


def _attach_untracked(name: str):
    """Attach to a segment without claiming tracker ownership of it.

    The *parent* (creator) is the tracked owner of every segment.  On
    CPython ≥ 3.13 ``track=False`` expresses that directly; on ≤ 3.12 the
    attach re-registers the name, which is harmless under the ``fork`` start
    method (pool workers share the parent's tracker process, whose name set
    collapses the duplicate — the parent's ``unlink`` still unregisters it
    exactly once).
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python ≤ 3.12 has no track kwarg
        return _shared_memory.SharedMemory(name=name)


def attach_arena(name: str) -> PathTable:
    """The (cached) :class:`PathTable` view of segment ``name``.

    Runs inside worker processes.  The cached table carries its decoded-node
    memo *and* its analyzer scratch space, so both survive across every
    chunk and query of one attachment.  Raises ``FileNotFoundError`` when
    the segment no longer exists — which only happens for chunks whose
    parent query already failed, so the error is never surfaced to a caller.
    """
    if _shared_memory is None:  # pragma: no cover - workers mirror the parent
        raise RuntimeError("arena transport requires multiprocessing.shared_memory")
    entry = _WORKER_ARENAS.get(name)
    if entry is not None:
        _WORKER_ARENAS.move_to_end(name)
        return entry[0]
    shm = _attach_untracked(name)
    arena = PathTable.from_buffer(shm.buf, keep_alive=shm)
    _WORKER_ARENAS[name] = (arena, shm)
    while len(_WORKER_ARENAS) > _WORKER_ATTACH_CAP:
        _, (old_arena, old_shm) = _WORKER_ARENAS.popitem(last=False)
        # Views must be dropped before the mapping can close.
        old_arena.release()
        old_shm.close()
    return arena


#: Per-process cache of unpickled query contexts, keyed by segment name.
_WORKER_CONTEXTS: "OrderedDict[str, tuple]" = OrderedDict()
_WORKER_CONTEXT_CAP = 8


def attach_context(name: str) -> tuple:
    """The (cached) unpickled query context of segment ``name``.

    Contexts are copied out of the segment (they are tiny), so the mapping
    is closed immediately — only the decoded tuple is cached.
    """
    context = _WORKER_CONTEXTS.get(name)
    if context is not None:
        _WORKER_CONTEXTS.move_to_end(name)
        return context
    shm = _attach_untracked(name)
    try:
        context = pickle.loads(bytes(shm.buf))
    finally:
        shm.close()
    _WORKER_CONTEXTS[name] = context
    while len(_WORKER_CONTEXTS) > _WORKER_CONTEXT_CAP:
        _WORKER_CONTEXTS.popitem(last=False)
    return context


#: Extra per-process caches to drop on :func:`release_worker_arenas` —
#: modules that key worker state on segment names (e.g. the resolved-context
#: cache in :mod:`repro.analysis.parallel`) register their reset here, so
#: the teardown helper stays the single full-reset entry point without a
#: circular import.
_WORKER_RESET_CALLBACKS: list = []


def register_worker_reset(callback) -> None:
    """Register a callable to run on :func:`release_worker_arenas`."""
    _WORKER_RESET_CALLBACKS.append(callback)


def release_worker_arenas() -> None:
    """Reset every per-process worker cache (tests / teardown).

    Closes all cached segment attachments, drops decoded query contexts and
    runs every registered reset callback.
    """
    while _WORKER_ARENAS:
        _, (arena, shm) = _WORKER_ARENAS.popitem(last=False)
        arena.release()
        shm.close()
    _WORKER_CONTEXTS.clear()
    for callback in _WORKER_RESET_CALLBACKS:
        callback()
