"""Histogram-shaped bounds on the (normalised) posterior.

GuBPI reports its results as histogram-like bounds (paper footnote 2 and the
figures of Section 7): the target domain is discretised into buckets and the
engine produces guaranteed lower/upper bounds on the unnormalised denotation
of every bucket plus on the normalising constant.  This module packages those
numbers, normalises them and offers the validation helpers used to flag
sampler output that is inconsistent with the bounds (Figures 1 and 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..intervals import Interval

__all__ = ["BucketBound", "HistogramBounds", "ValidationReport"]


@dataclass(frozen=True)
class BucketBound:
    """Guaranteed bounds for a single histogram bucket."""

    bucket: Interval
    lower: float
    upper: float

    def normalised(self, z_lower: float, z_upper: float) -> tuple[float, float]:
        """Bounds on the *normalised* posterior mass of the bucket."""
        lower = 0.0 if z_upper <= 0.0 or math.isinf(z_upper) else self.lower / z_upper
        if z_lower <= 0.0:
            upper = math.inf
        else:
            upper = self.upper / z_lower
        return lower, min(1.0, upper) if not math.isinf(upper) else math.inf


@dataclass
class ValidationReport:
    """Result of checking an empirical histogram against guaranteed bounds."""

    violations: int
    checked: int
    worst_excess: float
    details: list[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return self.violations == 0


@dataclass
class HistogramBounds:
    """Guaranteed bounds over a discretisation of the result domain."""

    buckets: list[BucketBound]
    z_lower: float
    z_upper: float

    # ------------------------------------------------------------------
    @property
    def edges(self) -> list[float]:
        if not self.buckets:
            return []
        return [b.bucket.lo for b in self.buckets] + [self.buckets[-1].bucket.hi]

    def normalised_bounds(self) -> list[tuple[float, float]]:
        """Per-bucket bounds on the posterior probability mass."""
        return [b.normalised(self.z_lower, self.z_upper) for b in self.buckets]

    def normalised_density_bounds(self) -> list[tuple[float, float]]:
        """Per-bucket bounds on the posterior *density* (mass / bucket width)."""
        result = []
        for bound, (lower, upper) in zip(self.buckets, self.normalised_bounds()):
            width = bound.bucket.width
            if width <= 0.0:
                result.append((0.0, math.inf))
            else:
                result.append((lower / width, upper / width if not math.isinf(upper) else math.inf))
        return result

    def covered_mass_bounds(self) -> tuple[float, float]:
        """Bounds on the total posterior mass of the discretised region."""
        lowers, uppers = zip(*self.normalised_bounds()) if self.buckets else ((0.0,), (0.0,))
        return sum(lowers), min(1.0, sum(uppers))

    # ------------------------------------------------------------------
    def validate_samples(
        self,
        samples: Sequence[float],
        tolerance: float = 0.0,
    ) -> ValidationReport:
        """Check an empirical sample histogram against the bounds.

        Every bucket's empirical frequency must lie inside the normalised
        bounds (up to ``tolerance``); the report counts the violations and the
        worst excess.  This is the mechanism used in Figures 1 and 7 to flag
        the HMC output as inconsistent with the guaranteed bounds.
        """
        samples = np.asarray(list(samples), dtype=float)
        total = len(samples)
        violations = 0
        worst = 0.0
        details: list[str] = []
        if total == 0:
            return ValidationReport(violations=0, checked=0, worst_excess=0.0)
        for bound, (lower, upper) in zip(self.buckets, self.normalised_bounds()):
            # The guaranteed bounds refer to *closed* intervals, so the
            # empirical frequency is computed over the closed bucket as well
            # (this only matters for discrete posteriors with mass exactly on
            # a bucket edge, where adjacent closed buckets legitimately share
            # that mass).
            inside = np.sum((samples >= bound.bucket.lo) & (samples <= bound.bucket.hi))
            frequency = float(inside) / total
            excess = max(lower - frequency, frequency - upper, 0.0)
            if excess > tolerance:
                violations += 1
                worst = max(worst, excess)
                details.append(
                    f"bucket [{bound.bucket.lo:.4g}, {bound.bucket.hi:.4g}]: "
                    f"frequency {frequency:.4f} outside [{lower:.4f}, {upper:.4f}]"
                )
        return ValidationReport(
            violations=violations, checked=len(self.buckets), worst_excess=worst, details=details
        )

    # ------------------------------------------------------------------
    def summary_lines(self, max_rows: int = 50) -> list[str]:
        """A plain-text rendering (used by the examples and benchmarks)."""
        lines = [f"normalising constant Z in [{self.z_lower:.6g}, {self.z_upper:.6g}]"]
        for bound, (lower, upper) in list(zip(self.buckets, self.normalised_bounds()))[:max_rows]:
            upper_text = f"{upper:.4f}" if not math.isinf(upper) else "inf"
            lines.append(
                f"  [{bound.bucket.lo:8.4f}, {bound.bucket.hi:8.4f})  "
                f"mass in [{lower:.4f}, {upper_text}]"
            )
        return lines
