"""Gap-directed anytime refinement of guaranteed denotation bounds.

The classic engine spends ``splits_per_dimension`` *uniformly*: every path's
sample domain is cut into the same grid, whether the path's bound gap is a
dominant slice of the total width or already negligible.  This module turns
the split budget into an *anytime* resource instead:

1. **Seed.**  One coarse uniform sweep (the unchanged engine) produces the
   per-path :class:`~repro.analysis.engine.PathContribution` records and a
   first sound bound.
2. **Schedule.**  Every path enters a max-heap keyed by its *gap* — its
   summed ``upper − lower`` contribution across the query targets, with
   truncated paths' lower contributions zeroed exactly as the reduction
   zeroes them.  The heap is lazy: a popped entry whose level no longer
   matches the path's current level is stale and skipped.
3. **Refine.**  Each round pops a fixed-size batch of worst-gap paths and
   re-analyses them at the next *refinement level* — split budgets scaled by
   ``2**level`` (capped, see :func:`level_options`) — dispatched as explicit
   index-list chunk jobs over the regular executor backends
   (:meth:`~repro.analysis.parallel.ParallelAnalysisExecutor.analyze_refinement_jobs`),
   so refinement rides serial, thread, process and socket dispatch alike.
4. **Clamp.**  A refined record is intersected with the path's previous
   record (``max`` of lowers, ``min`` of uppers): both are sound enclosures
   of the path's exact contribution, so the intersection is sound — and the
   per-path intersection is what makes every round's bound *monotonically*
   contained in the previous round's, independent of whether the finer grid
   structurally nests the coarser one.  The full contribution list is then
   re-reduced in canonical path order (bit-reproducible), and the round
   bound is clamped against the previous round's bound to absorb float
   re-rounding of the sums.

Rounds stop on whichever budget binds first: ``refine_max_rounds`` (the
deterministic default), ``refine_time_budget`` (wall-clock, checked between
rounds), ``refine_width_target`` (every target narrow enough), or heap
exhaustion (every path retired).  For a fixed round count the refined
bounds are bit-identical across backends, transports and the columnar
knob — round membership is a pure function of the seed records.

A path retires when its gap reaches zero, when a refined sweep no longer
moves its record (the capped budgets have saturated), or — for box-analysed
paths — when no level up to the cap grows the effective per-dimension grid
(detected up front via the box analyser's own ``_grid_parts``; plateau
levels whose grid merely *matches* the current one are skipped, not
retired at, since ``floor(cells**(1/dim))`` can stall between doublings
for high-dimensional paths while finer grids remain reachable).
"""

from __future__ import annotations

import heapq
import json
import math
import time
from typing import Callable, Optional, Sequence

from ..intervals import Interval
from .box_analyzer import _grid_parts
from .config import AnalysisOptions
from .engine import (
    AnalysisReport,
    DenotationBounds,
    PathContribution,
    reduce_contributions,
)
from .registry import resolve_analyzers

__all__ = ["RefinementScheduler", "level_options", "refine_execution"]

#: How many worst-gap paths one refinement round re-analyses.  A fixed size
#: (independent of the worker count) is what keeps round membership — and
#: therefore the refined floats — identical across backends; parallelism
#: comes from splitting the batch into jobs, not from growing it.
ROUND_SIZE = 16

#: Hard ceiling on per-path refinement levels (splits scale as ``2**level``,
#: so the ceiling is far beyond any practical budget — it only bounds the
#: scheduler against pathological never-converging records).
_LEVEL_CAP = 12

#: Absolute per-path ceilings for the scaled budgets.  The per-level caps
#: double alongside the splits (each level may spend ~2× the cells of the
#: previous one), but a single path's grid never exceeds these — a 6-dim
#: path at the box ceiling sweeps ≈256k cells, a few tens of MB of
#: transient grid arrays.  Score-atom refinement is ceilinged much earlier:
#: each atom-range chunk costs a polytope volume computation (vertex
#: enumeration, orders of magnitude more than a box cell), and in practice
#: the per-atom resolution saturates long before the chunk count does.
_BOX_CELL_CEILING = 262_144
_SCORE_SPLIT_CEILING = 256
_SCORE_COMBINATION_CEILING = 32_768


def level_options(options: AnalysisOptions, level: int) -> AnalysisOptions:
    """The analysis options of one refinement level.

    Level 0 is the seed sweep itself; level ``n`` doubles the per-dimension
    and per-score-atom split counts ``n`` times and lets the total-budget
    caps (``max_boxes_per_path`` / ``max_score_combinations``) grow in step,
    up to the absolute ceilings — without growing the caps, deep paths
    (whose seed grid already saturates the budget) could never refine at
    all.  ``refine`` itself is forced off: level options parameterise plain
    sweeps, never nested refinement.
    """
    if level < 0:
        raise ValueError(f"refinement level must be non-negative, got {level}")
    scale = 1 << level
    return options.with_updates(
        refine="off",
        splits_per_dimension=options.splits_per_dimension * scale,
        max_boxes_per_path=min(
            options.max_boxes_per_path * scale,
            max(options.max_boxes_per_path, _BOX_CELL_CEILING),
        ),
        score_splits=min(
            options.score_splits * scale,
            max(options.score_splits, _SCORE_SPLIT_CEILING),
        ),
        max_score_combinations=min(
            options.max_score_combinations * scale,
            max(options.max_score_combinations, _SCORE_COMBINATION_CEILING),
        ),
    )


def _path_gap(contribution: PathContribution) -> float:
    """One path's summed contribution to the lower/upper bound gap.

    Truncated paths contribute 0 to lower bounds (exactly as
    :func:`~repro.analysis.engine.reduce_contributions` zeroes them), so
    their whole upper contribution counts as gap — which is precisely why
    gap-directed scheduling pours budget into the truncation frontier.
    """
    gap = 0.0
    for lower, upper in contribution.contributions:
        effective_lower = 0.0 if contribution.truncated else lower
        gap += upper - effective_lower
    return gap


def _clamped(previous: PathContribution, refined: PathContribution) -> PathContribution:
    """Intersect a refined record with the path's previous record.

    Both records are sound enclosures of the path's exact per-target
    contribution, so ``(max lower, min upper)`` is sound too — and never
    wider than either input, which is what makes per-round narrowing
    monotone.  An empty intersection cannot arise from two sound
    enclosures; if float pathology ever produced one, the previous record
    is kept (refinement may stall, soundness never breaks).
    """
    merged = []
    for (old_lower, old_upper), (new_lower, new_upper) in zip(
        previous.contributions, refined.contributions
    ):
        lower = max(old_lower, new_lower)
        upper = min(old_upper, new_upper)
        if lower > upper:
            lower, upper = old_lower, old_upper
        merged.append((lower, upper))
    return PathContribution(
        analyzer_name=refined.analyzer_name,
        truncated=previous.truncated,
        contributions=tuple(merged),
    )


class RefinementScheduler:
    """Gap-directed anytime refinement over one compiled path set.

    Drive it either through :meth:`run` (seed, then rounds until a budget
    binds, with an optional per-round ``progress`` callback — what the
    engine and the service tier do) or manually via :meth:`seed` +
    :meth:`refine_round` (what the property tests do to inspect every
    intermediate bound).

    ``executor`` (optional) is a running
    :class:`~repro.analysis.parallel.ParallelAnalysisExecutor`; without one
    the scheduler runs the identical sweeps in-process.
    ``seed_contributions`` (optional) are already-computed canonical-order
    per-path records — the streamed cache tee hands them over so a streamed
    query's refinement never re-sweeps the paths it just analysed.
    """

    def __init__(
        self,
        execution,
        targets: Sequence[Interval],
        options: AnalysisOptions,
        executor=None,
        seed_contributions: Optional[Sequence[PathContribution]] = None,
    ) -> None:
        self.execution = execution
        self.targets = tuple(targets)
        self.options = options
        self.executor = executor
        self._contributions: Optional[list[PathContribution]] = (
            list(seed_contributions) if seed_contributions is not None else None
        )
        self._seeded_externally = seed_contributions is not None
        self._levels: dict[int, int] = {}
        self._retired: set[int] = set()
        self._heap: list[tuple[float, int, int]] = []
        self._bounds: Optional[list[DenotationBounds]] = None
        self.rounds_run = 0
        self.paths_refined = 0

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------
    @property
    def contributions(self) -> list[PathContribution]:
        """The current canonical-order per-path records (after :meth:`seed`)."""
        if self._contributions is None:
            raise RuntimeError("RefinementScheduler.seed() has not run yet")
        return self._contributions

    @property
    def bounds(self) -> list[DenotationBounds]:
        """The current reported bounds (after :meth:`seed`)."""
        if self._bounds is None:
            raise RuntimeError("RefinementScheduler.seed() has not run yet")
        return list(self._bounds)

    def _seed_contributions(self) -> list[PathContribution]:
        if self.executor is not None:
            return self.executor.analyze_contributions(
                self.execution, self.targets, self.options
            )
        from .parallel import analyze_table_slice

        paths = self.execution.paths
        analyzers = resolve_analyzers(self.options)
        return analyze_table_slice(
            self.execution.table(), 0, len(paths),
            self.targets, self.options, analyzers, paths=paths,
        )

    def seed(self) -> list[DenotationBounds]:
        """Run (or adopt) the coarse uniform sweep and build the gap heap.

        The seed bound is bit-identical to a ``refine="off"`` query with the
        same options — refinement only ever narrows it.
        """
        if self._contributions is None:
            self._contributions = self._seed_contributions()
        entries = []
        for index, contribution in enumerate(self._contributions):
            gap = _path_gap(contribution)
            if gap > 0.0 and not math.isnan(gap):
                # Max-heap via negated gap; the path index breaks ties
                # deterministically.
                entries.append((-gap, index, 0))
        heapq.heapify(entries)
        self._heap = entries
        self._bounds = reduce_contributions(self._contributions, self.targets, None)
        return list(self._bounds)

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def _next_level(self, index: int) -> Optional[int]:
        """The level the path refines to next, or None when it must retire."""
        current = self._levels.get(index, 0)
        level = current + 1
        if level > _LEVEL_CAP:
            return None
        contribution = self.contributions[index]
        if contribution.analyzer_name == "box":
            # Cheap saturation check: a sweep whose effective per-dimension
            # grid equals the current one would reproduce the record bit for
            # bit, so scan *past* such levels — ``floor(cells**(1/dim))``
            # plateaus between doublings for high-dimensional paths (e.g.
            # 5, 5, 6 …), and retiring at the first flat step would forfeit
            # the still-reachable finer grids below the cell ceiling.  The
            # path retires only when no level up to the cap grows the grid.
            dimension = self.execution.table().variable_count(index)
            current_parts = _grid_parts(dimension, level_options(self.options, current))
            while level <= _LEVEL_CAP:
                if (
                    _grid_parts(dimension, level_options(self.options, level))
                    > current_parts
                ):
                    return level
                level += 1
            return None
        elif contribution.analyzer_name == "linear":
            # Same idea for linear paths, whose only level-scaled knobs are
            # the score-atom budgets: once the ceilings freeze both, further
            # levels would re-run the identical (and expensive) polytope
            # sweep.
            current_options = level_options(self.options, current)
            next_options = level_options(self.options, level)
            if (
                next_options.score_splits == current_options.score_splits
                and next_options.max_score_combinations
                == current_options.max_score_combinations
            ):
                return None
        return level

    def _select_round(self) -> dict[int, list[int]]:
        """Pop the next batch of worst-gap paths, grouped by refinement level.

        Lazy heap discipline: entries whose recorded level no longer matches
        the path's current level are stale duplicates and dropped; paths
        whose next level saturates retire on the spot (their entry is
        already popped).  Selection never depends on the executor, so round
        membership is identical on every backend.
        """
        groups: dict[int, list[int]] = {}
        selected = 0
        while self._heap and selected < ROUND_SIZE:
            _, index, entry_level = heapq.heappop(self._heap)
            if index in self._retired or self._levels.get(index, 0) != entry_level:
                continue
            level = self._next_level(index)
            if level is None:
                self._retired.add(index)
                continue
            groups.setdefault(level, []).append(index)
            selected += 1
        return groups

    def _job_specs(
        self, groups: dict[int, list[int]]
    ) -> list[tuple[tuple[int, ...], AnalysisOptions]]:
        """Split the level groups into dispatchable ``(indices, options)`` jobs.

        Indices are sorted within a level (canonical, and kinder to the
        columnar sweep's memo locality); a level group is split so a pool
        can overlap jobs.  The split only shapes dispatch — merged results
        are keyed by path index, so it never affects the bounds.
        """
        workers = self.executor.workers if self.executor is not None else 1
        jobs: list[tuple[tuple[int, ...], AnalysisOptions]] = []
        for level in sorted(groups):
            indices = sorted(groups[level])
            options = level_options(self.options, level)
            job_size = max(1, math.ceil(len(indices) / max(1, workers * 2)))
            for start in range(0, len(indices), job_size):
                jobs.append((tuple(indices[start : start + job_size]), options))
        return jobs

    def _dispatch(
        self, jobs: list[tuple[tuple[int, ...], AnalysisOptions]]
    ) -> list[list[PathContribution]]:
        if self.executor is not None:
            return self.executor.analyze_refinement_jobs(self.execution, jobs, self.targets)
        from .parallel import analyze_table_slice

        table = self.execution.table()
        paths = self.execution.paths
        results = []
        for indices, options in jobs:
            analyzers = resolve_analyzers(options)
            results.append(
                analyze_table_slice(
                    table, 0, 0, self.targets, options, analyzers,
                    paths=paths, indices=indices,
                )
            )
        return results

    def refine_round(self) -> Optional[list[DenotationBounds]]:
        """Run one refinement round; None when every path has retired.

        Selects the worst-gap batch, re-analyses it at the next level,
        clamps each refined record against its predecessor, re-reduces the
        full contribution list in canonical order and clamps the round
        bound against the previous one — so the returned bounds are always
        contained in the bounds of the previous round.
        """
        if self._contributions is None:
            self.seed()
        groups: dict[int, list[int]] = {}
        while self._heap and not groups:
            groups = self._select_round()
        if not groups:
            return None

        jobs = self._job_specs(groups)
        refined_lists = self._dispatch(jobs)
        level_of = {index: level for level, members in groups.items() for index in members}
        for (indices, _options), refined in zip(jobs, refined_lists):
            if len(refined) != len(indices):
                raise RuntimeError(
                    f"refinement job returned {len(refined)} records for "
                    f"{len(indices)} paths; one record per path is required"
                )
            for index, record in zip(indices, refined):
                previous = self._contributions[index]
                merged = _clamped(previous, record)
                self._levels[index] = level_of[index]
                self.paths_refined += 1
                if merged.contributions == previous.contributions:
                    # The doubled budget no longer moves the record: the
                    # path's caps have saturated, further levels would only
                    # burn cells.
                    self._retired.add(index)
                    continue
                self._contributions[index] = merged
                gap = _path_gap(merged)
                if gap > 0.0 and not math.isnan(gap):
                    heapq.heappush(self._heap, (-gap, index, level_of[index]))
                else:
                    self._retired.add(index)

        bounds = reduce_contributions(self._contributions, self.targets, None)
        # Per-path clamping makes the real-arithmetic sums monotone; this
        # round-level clamp also absorbs the ≤1-ulp float re-rounding of the
        # re-reduction, making narrowing monotone bit for bit.
        bounds = [
            DenotationBounds(
                target=current.target,
                lower=max(current.lower, previous.lower),
                upper=min(current.upper, previous.upper),
            )
            for current, previous in zip(bounds, self._bounds)
        ]
        self._bounds = bounds
        self.rounds_run += 1
        return list(bounds)

    # ------------------------------------------------------------------
    # Checkpointing (crash-safe resume)
    # ------------------------------------------------------------------
    #
    # The scheduler's whole evolving state is the contribution records, the
    # per-path levels, the retired set, the current bounds and the round
    # counters.  The gap heap is deliberately NOT serialised: under the
    # lazy-heap discipline, the set of *live* entries after any completed
    # round is exactly ``{(-gap(record[i]), i, level[i])}`` over non-retired
    # paths with positive gap — stale entries (superseded levels) are
    # skipped on pop, and round selection orders solely by those tuples.
    # Rebuilding the heap from the records therefore reproduces round
    # membership — and the refined floats — bit for bit.

    _STATE_VERSION = 1

    def to_bytes(self) -> bytes:
        """Serialise the post-round scheduler state (see the note above).

        Floats travel through JSON ``repr``, which round-trips every finite
        double exactly and (with ``allow_nan``) spells the IEEE specials as
        ``Infinity``/``-Infinity`` — so a resumed run continues from
        bit-identical records.
        """
        if self._contributions is None or self._bounds is None:
            raise RuntimeError("cannot checkpoint before seed()")
        state = {
            "version": self._STATE_VERSION,
            "targets": [[t.lo, t.hi] for t in self.targets],
            "rounds_run": self.rounds_run,
            "paths_refined": self.paths_refined,
            "levels": sorted(self._levels.items()),
            "retired": sorted(self._retired),
            "contributions": [
                {
                    "a": record.analyzer_name,
                    "t": record.truncated,
                    "c": [[lower, upper] for lower, upper in record.contributions],
                }
                for record in self._contributions
            ],
            "bounds": [
                [bound.target.lo, bound.target.hi, bound.lower, bound.upper]
                for bound in self._bounds
            ],
        }
        return json.dumps(state, separators=(",", ":")).encode()

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        execution,
        targets: Sequence[Interval],
        options: AnalysisOptions,
        executor=None,
    ) -> "RefinementScheduler":
        """Rebuild a scheduler from :meth:`to_bytes` state.

        Raises ``ValueError`` when the state does not match this execution
        or query (wrong version, path count or targets) — callers treat
        that as "no usable checkpoint" and reseed from scratch.
        """
        state = json.loads(data.decode())
        if state.get("version") != cls._STATE_VERSION:
            raise ValueError(f"unsupported checkpoint version {state.get('version')!r}")
        scheduler = cls(execution, targets, options, executor=executor)
        stored_targets = [tuple(pair) for pair in state["targets"]]
        if stored_targets != [(t.lo, t.hi) for t in scheduler.targets]:
            raise ValueError("checkpoint targets do not match the query")
        contributions = [
            PathContribution(
                analyzer_name=record["a"],
                truncated=bool(record["t"]),
                contributions=tuple(
                    (float(lower), float(upper)) for lower, upper in record["c"]
                ),
            )
            for record in state["contributions"]
        ]
        if len(contributions) != len(execution.paths):
            raise ValueError(
                f"checkpoint has {len(contributions)} path records, "
                f"execution has {len(execution.paths)}"
            )
        scheduler._contributions = contributions
        scheduler._levels = {int(index): int(level) for index, level in state["levels"]}
        scheduler._retired = {int(index) for index in state["retired"]}
        scheduler._bounds = [
            DenotationBounds(
                target=Interval(float(lo), float(hi)),
                lower=float(lower),
                upper=float(upper),
            )
            for lo, hi, lower, upper in state["bounds"]
        ]
        scheduler.rounds_run = int(state["rounds_run"])
        scheduler.paths_refined = int(state["paths_refined"])
        entries = []
        for index, record in enumerate(contributions):
            if index in scheduler._retired:
                continue
            gap = _path_gap(record)
            if gap > 0.0 and not math.isnan(gap):
                entries.append((-gap, index, scheduler._levels.get(index, 0)))
        heapq.heapify(entries)
        scheduler._heap = entries
        return scheduler

    # ------------------------------------------------------------------
    # The anytime loop
    # ------------------------------------------------------------------
    def _width_met(self, bounds: list[DenotationBounds]) -> bool:
        target = self.options.refine_width_target
        return target > 0.0 and all(bound.width <= target for bound in bounds)

    def run(
        self,
        progress: Optional[Callable[[list[DenotationBounds], int], None]] = None,
        report: Optional[AnalysisReport] = None,
        round_hook: Optional[Callable[[list[DenotationBounds]], None]] = None,
    ) -> list[DenotationBounds]:
        """Seed, then refine until a budget binds; returns the final bounds.

        ``progress`` (optional) is invoked after every round with
        ``(bounds, path_count)`` — each invocation's bounds are contained
        in the previous invocation's, which is the anytime contract the
        service tier streams to tenants.  The time budget is checked
        *between* rounds: a started round always completes, so the reported
        bounds are always a consistent full reduction.

        ``round_hook`` (optional) fires after every completed round,
        *before* ``progress`` — the durability layer checkpoints there, so
        a round is stable on disk before its partial reaches a client.  A
        scheduler restored with :meth:`from_bytes` continues counting
        rounds where the checkpoint left off, against the same budgets.
        """
        start = time.perf_counter()
        deadline = (
            start + self.options.refine_time_budget
            if self.options.refine_time_budget is not None
            else None
        )
        bounds = self.seed() if self._bounds is None else list(self._bounds)
        max_rounds = self.options.refine_max_rounds
        while True:
            if max_rounds is not None and self.rounds_run >= max_rounds:
                break
            if deadline is not None and time.perf_counter() >= deadline:
                break
            if self._width_met(bounds):
                break
            result = self.refine_round()
            if result is None:
                break
            bounds = result
            if round_hook is not None:
                round_hook(list(bounds))
            if progress is not None:
                progress(list(bounds), len(self.contributions))
        if report is not None:
            report.refine_rounds += self.rounds_run
            report.refine_paths += self.paths_refined
            report.refine_seconds += time.perf_counter() - start
        return bounds


def refine_execution(
    execution,
    targets: Sequence[Interval],
    options: AnalysisOptions,
    report: Optional[AnalysisReport] = None,
    executor=None,
    progress: Optional[Callable[[list[DenotationBounds], int], None]] = None,
    seed_contributions: Optional[Sequence[PathContribution]] = None,
) -> list[DenotationBounds]:
    """Gap-directed bounds for one execution: the engine's ``refine="gap"`` body.

    Seeds from ``seed_contributions`` when given (the streamed tee's
    records — their paths were already analysed and counted, so analyzer
    attribution is skipped), otherwise runs the coarse sweep and attributes
    each path's final analyzer to ``report`` exactly once, mirroring the
    classic engine's accounting.
    """
    scheduler = RefinementScheduler(
        execution, targets, options,
        executor=executor, seed_contributions=seed_contributions,
    )
    bounds = scheduler.run(progress=progress, report=report)
    if report is not None and seed_contributions is None:
        for contribution in scheduler.contributions:
            report.record_path(contribution.analyzer_name)
    return bounds
