"""The GuBPI engine: guaranteed bounds on program denotations (Algorithm 1).

Pipeline:

1. symbolically execute the program up to the fixpoint depth limit, replacing
   deeper recursion by interval-type summaries (``approxFix``);
2. analyse every resulting symbolic interval path with either the optimised
   linear semantics (polytope volumes, Section 6.4) or the standard interval
   trace semantics (box splitting, Section 6.3);
3. sum the per-path bounds (Theorem 6.1 / Corollary 6.3) to obtain guaranteed
   bounds on ``⟦P⟧(U)`` for every requested target set ``U``, and normalise
   them into posterior bounds.

The public entry points are :func:`bound_denotation`, :func:`bound_query` and
:func:`bound_posterior_histogram`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..intervals import Interval
from ..lang.ast import Term
from ..symbolic import ExecutionLimits, SymbolicExecutionResult, SymbolicPath, symbolic_paths
from .box_analyzer import analyze_path_boxes
from .config import AnalysisOptions
from .histogram import BucketBound, HistogramBounds
from .linear_analyzer import analyze_path_linear, linear_analysis_applicable

__all__ = [
    "DenotationBounds",
    "QueryBounds",
    "AnalysisReport",
    "bound_denotation",
    "bound_query",
    "bound_posterior_histogram",
]

_REALS = Interval(-math.inf, math.inf)


@dataclass(frozen=True)
class DenotationBounds:
    """Guaranteed bounds on the unnormalised denotation of one target set."""

    target: Interval
    lower: float
    upper: float

    def contains(self, value: float, slack: float = 1e-9) -> bool:
        return self.lower - slack <= value <= self.upper + slack

    @property
    def width(self) -> float:
        return self.upper - self.lower


@dataclass(frozen=True)
class QueryBounds:
    """Bounds on a normalised posterior query ``Pr[result ∈ target]``."""

    target: Interval
    unnormalised: DenotationBounds
    normalising_constant: DenotationBounds
    lower: float
    upper: float

    def contains(self, probability: float, slack: float = 1e-9) -> bool:
        return self.lower - slack <= probability <= self.upper + slack

    @property
    def width(self) -> float:
        return self.upper - self.lower


@dataclass
class AnalysisReport:
    """Statistics of one engine run (useful for benchmarks and debugging)."""

    path_count: int = 0
    truncated_paths: int = 0
    linear_paths: int = 0
    box_paths: int = 0
    seconds: float = 0.0


def _analyze_paths(
    execution: SymbolicExecutionResult,
    targets: Sequence[Interval],
    options: AnalysisOptions,
    report: AnalysisReport,
) -> list[tuple[float, float]]:
    totals = [(0.0, 0.0) for _ in targets]
    for path in execution.paths:
        use_linear = options.use_linear_semantics and linear_analysis_applicable(path)
        if use_linear:
            contributions = analyze_path_linear(path, targets, options)
            report.linear_paths += 1
        else:
            contributions = analyze_path_boxes(path, targets, options)
            report.box_paths += 1
        for index, (lower, upper) in enumerate(contributions):
            # The interval-type summary used by approxFix only covers
            # terminating continuations of a truncated path, so such paths
            # contribute to upper bounds only.
            path_lower = 0.0 if path.truncated else lower
            old_lower, old_upper = totals[index]
            totals[index] = (old_lower + path_lower, old_upper + upper)
    return totals


def _execution_limits(options: AnalysisOptions) -> ExecutionLimits:
    return ExecutionLimits(
        max_fixpoint_depth=options.max_fixpoint_depth,
        max_paths=options.max_paths,
    )


def bound_denotation(
    term: Term,
    targets: Sequence[Interval],
    options: Optional[AnalysisOptions] = None,
    report: Optional[AnalysisReport] = None,
) -> list[DenotationBounds]:
    """Guaranteed bounds on ``⟦P⟧(U)`` for every target ``U`` in ``targets``."""
    options = options or AnalysisOptions()
    report = report if report is not None else AnalysisReport()
    start = time.perf_counter()
    execution = symbolic_paths(term, _execution_limits(options))
    report.path_count = len(execution.paths)
    report.truncated_paths = execution.truncated_paths
    totals = _analyze_paths(execution, targets, options, report)
    report.seconds = time.perf_counter() - start
    return [
        DenotationBounds(target=target, lower=lower, upper=upper)
        for target, (lower, upper) in zip(targets, totals)
    ]


def bound_query(
    term: Term,
    target: Interval,
    options: Optional[AnalysisOptions] = None,
    report: Optional[AnalysisReport] = None,
) -> QueryBounds:
    """Bounds on the posterior probability ``Pr[result ∈ target]``.

    The normalised bounds are derived from bounds on the target set, its
    complement-style remainder and the normalising constant:
    ``lower = lb(U) / (lb(U) + ub(R \\ U))`` and symmetrically for the upper
    bound, which is tighter than dividing by the plain bounds on ``Z``.
    """
    options = options or AnalysisOptions()
    report = report if report is not None else AnalysisReport()
    bounds = bound_denotation(term, [target, _REALS], options, report)
    target_bounds, total_bounds = bounds
    complement_lower = max(0.0, total_bounds.lower - target_bounds.upper)
    complement_upper = max(0.0, total_bounds.upper - target_bounds.lower)

    if target_bounds.lower + complement_upper > 0.0:
        lower = target_bounds.lower / (target_bounds.lower + complement_upper)
    else:
        lower = 0.0
    if target_bounds.upper + complement_lower > 0.0:
        upper = target_bounds.upper / (target_bounds.upper + complement_lower)
    elif total_bounds.upper == 0.0:
        upper = 0.0
    else:
        upper = 1.0
    upper = min(1.0, upper)
    return QueryBounds(
        target=target,
        unnormalised=target_bounds,
        normalising_constant=total_bounds,
        lower=lower,
        upper=upper,
    )


def bound_posterior_histogram(
    term: Term,
    low: float,
    high: float,
    bucket_count: int,
    options: Optional[AnalysisOptions] = None,
    report: Optional[AnalysisReport] = None,
) -> HistogramBounds:
    """Histogram-shaped bounds on the normalised posterior over ``[low, high)``."""
    if bucket_count <= 0:
        raise ValueError("bucket_count must be positive")
    if not high > low:
        raise ValueError("bound_posterior_histogram requires high > low")
    options = options or AnalysisOptions()
    report = report if report is not None else AnalysisReport()
    edges = [low + (high - low) * k / bucket_count for k in range(bucket_count + 1)]
    buckets = [Interval(edges[k], edges[k + 1]) for k in range(bucket_count)]
    targets = list(buckets) + [_REALS]
    bounds = bound_denotation(term, targets, options, report)
    z_bounds = bounds[-1]
    bucket_bounds = [
        BucketBound(bucket=bucket, lower=bound.lower, upper=bound.upper)
        for bucket, bound in zip(buckets, bounds[:-1])
    ]
    return HistogramBounds(buckets=bucket_bounds, z_lower=z_bounds.lower, z_upper=z_bounds.upper)
