"""The GuBPI engine core: guaranteed bounds on program denotations (Algorithm 1).

Pipeline:

1. symbolically execute the program up to the fixpoint depth limit, replacing
   deeper recursion by interval-type summaries (``approxFix``);
2. analyse every resulting symbolic interval path with the first applicable
   analyzer from the pluggable registry (:mod:`repro.analysis.registry`) —
   by default the optimised linear semantics (polytope volumes, Section 6.4)
   with the standard interval trace semantics (box splitting, Section 6.3) as
   the universal fallback;
3. sum the per-path bounds (Theorem 6.1 / Corollary 6.3) to obtain guaranteed
   bounds on ``⟦P⟧(U)`` for every requested target set ``U``, and normalise
   them into posterior bounds.

The recommended entry point is the :class:`repro.Model` facade
(:mod:`repro.analysis.model`), which compiles the symbolic phase once and
serves every downstream query from the cache.  This module keeps the engine
primitives — :func:`analyze_execution` turns one (possibly cached)
:class:`~repro.symbolic.SymbolicExecutionResult` into denotation bounds, and
:func:`normalised_query` / :func:`histogram_buckets` derive posterior-level
results from them — plus the deprecated free-function shims
(:func:`bound_denotation`, :func:`bound_query`,
:func:`bound_posterior_histogram`) that delegate to ``Model``.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..intervals import Interval
from ..lang.ast import Term
from ..symbolic import SymbolicExecutionResult, SymbolicPath
from .config import AnalysisOptions
from .histogram import HistogramBounds
from .registry import PathAnalyzer, resolve_analyzers

__all__ = [
    "DenotationBounds",
    "QueryBounds",
    "AnalysisReport",
    "PathContribution",
    "analyze_execution",
    "analyze_path_stream",
    "analyze_single_path",
    "reduce_contributions",
    "normalised_query",
    "histogram_buckets",
    "bound_denotation",
    "bound_query",
    "bound_posterior_histogram",
]

_REALS = Interval(-math.inf, math.inf)


@dataclass(frozen=True)
class DenotationBounds:
    """Guaranteed bounds on the unnormalised denotation of one target set."""

    target: Interval
    lower: float
    upper: float

    def contains(self, value: float, slack: float = 1e-9) -> bool:
        return self.lower - slack <= value <= self.upper + slack

    @property
    def width(self) -> float:
        return self.upper - self.lower


@dataclass(frozen=True)
class QueryBounds:
    """Bounds on a normalised posterior query ``Pr[result ∈ target]``."""

    target: Interval
    unnormalised: DenotationBounds
    normalising_constant: DenotationBounds
    lower: float
    upper: float

    def contains(self, probability: float, slack: float = 1e-9) -> bool:
        return self.lower - slack <= probability <= self.upper + slack

    @property
    def width(self) -> float:
        return self.upper - self.lower


@dataclass
class AnalysisReport:
    """Statistics of one engine run (useful for benchmarks and debugging).

    ``analyzer_paths`` counts how many paths each registered analyzer handled;
    ``linear_paths`` / ``box_paths`` mirror the built-in analyzers for
    backwards compatibility.  ``compile_cache_hits`` counts queries served
    from a :class:`~repro.analysis.model.Model`'s compiled-program cache
    without re-running symbolic execution.
    """

    path_count: int = 0
    truncated_paths: int = 0
    linear_paths: int = 0
    box_paths: int = 0
    seconds: float = 0.0
    analyzer_paths: dict[str, int] = field(default_factory=dict)
    compile_cache_hits: int = 0
    #: Streaming pipeline telemetry: seconds from query start until the first
    #: chunk of path contributions was available (None for batch queries),
    #: and the high-water mark of paths resident in the parent process.
    first_result_seconds: Optional[float] = None
    peak_path_buffer: int = 0
    #: Gap-directed refinement telemetry (``options.refine="gap"``): rounds
    #: run, path re-analyses performed across all rounds, and wall-clock
    #: spent in the scheduler (included in ``seconds``).
    refine_rounds: int = 0
    refine_paths: int = 0
    refine_seconds: float = 0.0

    def record_path(self, analyzer_name: str) -> None:
        self.analyzer_paths[analyzer_name] = self.analyzer_paths.get(analyzer_name, 0) + 1
        if analyzer_name == "linear":
            self.linear_paths += 1
        elif analyzer_name == "box":
            self.box_paths += 1


@dataclass(frozen=True)
class PathContribution:
    """One path's raw per-target ``(lower, upper)`` contributions.

    ``truncated`` records whether the path was cut off by ``approxFix``; the
    reduction zeroes the lower contributions of truncated paths (the
    interval-type summary only covers terminating continuations, so such
    paths are sound for upper bounds only).
    """

    analyzer_name: str
    truncated: bool
    contributions: tuple[tuple[float, float], ...]


def analyze_single_path(
    path: SymbolicPath,
    analyzers: Sequence[PathAnalyzer],
    targets: Sequence[Interval],
    options: AnalysisOptions,
) -> PathContribution:
    """Analyse one path with the first applicable analyzer.

    This is the unit of work shared by the serial loop and the parallel
    chunk workers, which is what guarantees that both modes compute exactly
    the same per-path numbers.
    """
    for analyzer in analyzers:
        if analyzer.applicable(path, options):
            contributions = analyzer.analyze(path, targets, options)
            return PathContribution(
                analyzer_name=analyzer.name,
                truncated=path.truncated,
                contributions=tuple(contributions),
            )
    names = ", ".join(options.analyzer_names)
    raise RuntimeError(
        f"no analyzer in ({names}) is applicable to a symbolic path; "
        "include the universal 'box' analyzer as a fallback"
    )


def _accumulate(
    totals: list[tuple[float, float]],
    contribution: PathContribution,
    report: Optional[AnalysisReport],
) -> None:
    """Fold one path's contributions into the running totals (in place)."""
    if report is not None:
        report.record_path(contribution.analyzer_name)
    for index, (lower, upper) in enumerate(contribution.contributions):
        path_lower = 0.0 if contribution.truncated else lower
        old_lower, old_upper = totals[index]
        totals[index] = (old_lower + path_lower, old_upper + upper)


def reduce_contributions(
    contributions: Sequence[PathContribution],
    targets: Sequence[Interval],
    report: Optional[AnalysisReport] = None,
) -> list[DenotationBounds]:
    """Sum per-path contributions into denotation bounds (Theorem 6.1).

    The accumulation always runs in canonical path order, so the result is
    bit-reproducible and independent of how the paths were partitioned into
    chunks or of the order in which workers finished: parallel runs return
    exactly the floats the serial loop returns.
    """
    totals = [(0.0, 0.0) for _ in targets]
    for contribution in contributions:
        _accumulate(totals, contribution, report)
    return [
        DenotationBounds(target=target, lower=lower, upper=upper)
        for target, (lower, upper) in zip(targets, totals)
    ]


def analyze_execution(
    execution: SymbolicExecutionResult,
    targets: Sequence[Interval],
    options: Optional[AnalysisOptions] = None,
    report: Optional[AnalysisReport] = None,
    executor: Optional["ParallelAnalysisExecutor"] = None,
    progress=None,
) -> list[DenotationBounds]:
    """Bounds on ``⟦P⟧(U)`` for every target, from a prior symbolic execution.

    Every path is handled by the first analyzer in ``options.analyzer_names``
    whose ``applicable`` predicate accepts it.  The execution may come from a
    cache; analysis never re-runs the symbolic phase.

    When ``options`` request parallelism (``workers > 1`` or an explicit
    ``executor`` kind) the path set is fanned out over a worker pool; an
    already-running :class:`~repro.analysis.parallel.ParallelAnalysisExecutor`
    can be passed in to reuse its pool across queries (this is what
    :class:`repro.Model` does).  Serial and parallel runs return bit-identical
    bounds (see :func:`reduce_contributions`).

    With ``options.refine="gap"`` the uniform sweep becomes the *seed* of a
    gap-directed refinement loop (:mod:`repro.analysis.refine`): the worst
    lower/upper-gap paths are iteratively re-analysed at doubled split
    budgets, and ``progress(bounds, paths_done)`` (optional) is invoked after
    every round with monotonically narrowing sound bounds.  ``progress`` is
    only consulted in refinement mode — the plain batch sweep has no
    intermediate sound bounds to report.
    """
    options = options or AnalysisOptions()
    report = report if report is not None else AnalysisReport()
    start = time.perf_counter()
    # All report counters accumulate, so a report reused across queries stays
    # self-consistent (path_count covers the same runs as linear_paths etc.).
    report.path_count += len(execution.paths)
    report.truncated_paths += execution.truncated_paths

    if options.refine_enabled:
        from .refine import refine_execution

        pool = executor
        if pool is None and options.parallel:
            from .parallel import shared_executor

            pool = shared_executor(options)
        bounds = refine_execution(
            execution, targets, options,
            report=report, executor=pool, progress=progress,
        )
        report.seconds += time.perf_counter() - start
        return bounds

    if executor is not None or options.parallel:
        from .parallel import shared_executor

        # Callers without their own pool (the deprecated shims, direct
        # engine calls) share process-wide pools instead of paying a pool
        # fork + teardown per query.
        pool = executor if executor is not None else shared_executor(options)
        bounds = pool.analyze(execution, targets, options, report)
        report.seconds += time.perf_counter() - start
        return bounds

    # Serial loop: stream paths through the same accumulator the parallel
    # merge uses, so memory stays O(targets) and the numerics stay identical.
    analyzers = resolve_analyzers(options)
    totals = [(0.0, 0.0) for _ in targets]
    for path in execution.paths:
        _accumulate(totals, analyze_single_path(path, analyzers, targets, options), report)
    report.seconds += time.perf_counter() - start
    return [
        DenotationBounds(target=target, lower=lower, upper=upper)
        for target, (lower, upper) in zip(targets, totals)
    ]


def analyze_path_stream(
    paths,
    targets: Sequence[Interval],
    options: Optional[AnalysisOptions] = None,
    report: Optional[AnalysisReport] = None,
    executor: Optional["ParallelAnalysisExecutor"] = None,
    progress=None,
    contribution_sink: Optional[list[PathContribution]] = None,
) -> list[DenotationBounds]:
    """Bounds on ``⟦P⟧(U)`` from a *stream* of symbolic paths.

    The streaming counterpart of :func:`analyze_execution`: ``paths`` is any
    iterable of :class:`~repro.symbolic.SymbolicPath` — typically a live
    :class:`~repro.symbolic.PathStream` — and is consumed incrementally, so
    analysis overlaps with exploration and the full path set is never
    materialised.  With parallel options the stream is dispatched in bounded
    chunks over a worker pool
    (:meth:`~repro.analysis.parallel.ParallelAnalysisExecutor.analyze_stream`);
    serially it folds each path's contribution as it arrives, keeping memory
    at O(targets).  Either way the fold runs in canonical path order, so the
    bounds are bit-identical to a batch run over the materialised path set.

    Exceptions raised by the generator (e.g. a mid-stream
    :class:`~repro.symbolic.PathExplosionError`) propagate to the caller.

    ``progress`` (optional) is the anytime hook of the service tier: a
    callable ``progress(partial_bounds, paths_done)`` invoked **once**, as
    soon as the first path contributions are folded, with the running
    partial accumulation.  Partial lower bounds are sound lower bounds (path
    contributions are non-negative and only accumulate); partial upper
    bounds are *not* yet sound — they cover only the paths analysed so far —
    which is why the hook surfaces them as an explicitly partial preview,
    never as the query result.

    ``contribution_sink`` (optional) receives every per-path
    :class:`PathContribution` in canonical path order — the refinement
    scheduler seeds from it so a streamed query never pays a second uniform
    sweep.  Passing a sink trades the serial branch's O(targets) memory for
    O(paths), so only callers that go on to refine should pass one.
    """
    options = options or AnalysisOptions()
    report = report if report is not None else AnalysisReport()
    start = time.perf_counter()

    if executor is not None or options.parallel:
        from .parallel import shared_executor

        pool = executor if executor is not None else shared_executor(options)
        bounds = pool.analyze_stream(
            paths, targets, options, report,
            progress=progress, contribution_sink=contribution_sink,
        )
        report.seconds += time.perf_counter() - start
        return bounds

    # Serial streaming: fold every path into the accumulator the moment it
    # is produced — O(targets) memory (plus the optional sink), peak path
    # buffer of one.
    analyzers = resolve_analyzers(options)
    totals = [(0.0, 0.0) for _ in targets]
    for path in paths:
        report.path_count += 1
        report.truncated_paths += int(path.truncated)
        contribution = analyze_single_path(path, analyzers, targets, options)
        if contribution_sink is not None:
            contribution_sink.append(contribution)
        _accumulate(totals, contribution, report)
        if report.first_result_seconds is None:
            report.first_result_seconds = time.perf_counter() - start
            report.peak_path_buffer = max(report.peak_path_buffer, 1)
            if progress is not None:
                progress(
                    [
                        DenotationBounds(target=target, lower=lower, upper=upper)
                        for target, (lower, upper) in zip(targets, totals)
                    ],
                    report.path_count,
                )
    report.seconds += time.perf_counter() - start
    return [
        DenotationBounds(target=target, lower=lower, upper=upper)
        for target, (lower, upper) in zip(targets, totals)
    ]


def normalised_query(
    target: Interval,
    target_bounds: DenotationBounds,
    total_bounds: DenotationBounds,
) -> QueryBounds:
    """Posterior bounds from denotation bounds on a target and on ``R``.

    The normalised bounds are derived from bounds on the target set, its
    complement-style remainder and the normalising constant:
    ``lower = lb(U) / (lb(U) + ub(R \\ U))`` and symmetrically for the upper
    bound, which is tighter than dividing by the plain bounds on ``Z``.
    """
    complement_lower = max(0.0, total_bounds.lower - target_bounds.upper)
    complement_upper = max(0.0, total_bounds.upper - target_bounds.lower)

    if target_bounds.lower + complement_upper > 0.0:
        lower = target_bounds.lower / (target_bounds.lower + complement_upper)
    else:
        lower = 0.0
    if target_bounds.upper + complement_lower > 0.0:
        upper = target_bounds.upper / (target_bounds.upper + complement_lower)
    elif total_bounds.upper == 0.0:
        upper = 0.0
    else:
        upper = 1.0
    upper = min(1.0, upper)
    return QueryBounds(
        target=target,
        unnormalised=target_bounds,
        normalising_constant=total_bounds,
        lower=lower,
        upper=upper,
    )


def histogram_buckets(low: float, high: float, bucket_count: int) -> list[Interval]:
    """The equal-width bucket intervals of a histogram over ``[low, high)``."""
    if not isinstance(bucket_count, int) or isinstance(bucket_count, bool) or bucket_count <= 0:
        raise ValueError(f"bucket_count must be a positive integer, got {bucket_count!r}")
    if not high > low:
        raise ValueError("histogram bounds require high > low")
    edges = [low + (high - low) * k / bucket_count for k in range(bucket_count + 1)]
    return [Interval(edges[k], edges[k + 1]) for k in range(bucket_count)]


# ---------------------------------------------------------------------------
# Deprecated free-function shims.
# ---------------------------------------------------------------------------


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.analysis.{old} is deprecated; use repro.Model and {new} instead "
        "(the Model facade caches the symbolic execution across queries)",
        DeprecationWarning,
        stacklevel=3,
    )


def bound_denotation(
    term: Term,
    targets: Sequence[Interval],
    options: Optional[AnalysisOptions] = None,
    report: Optional[AnalysisReport] = None,
) -> list[DenotationBounds]:
    """Deprecated shim for ``Model(term).bounds(targets)``."""
    _deprecated("bound_denotation", "Model.bounds")
    from .model import Model

    # The transient model is closed so a parallel one-off query does not leak
    # its worker pool; a real Model amortises the pool over many queries.
    with Model(term, options=options) as model:
        return model.bounds(targets, report=report)


def bound_query(
    term: Term,
    target: Interval,
    options: Optional[AnalysisOptions] = None,
    report: Optional[AnalysisReport] = None,
) -> QueryBounds:
    """Deprecated shim for ``Model(term).probability(target)``."""
    _deprecated("bound_query", "Model.probability")
    from .model import Model

    with Model(term, options=options) as model:
        return model.probability(target, report=report)


def bound_posterior_histogram(
    term: Term,
    low: float,
    high: float,
    bucket_count: int,
    options: Optional[AnalysisOptions] = None,
    report: Optional[AnalysisReport] = None,
) -> HistogramBounds:
    """Deprecated shim for ``Model(term).histogram(low, high, bucket_count)``."""
    _deprecated("bound_posterior_histogram", "Model.histogram")
    from .model import Model

    with Model(term, options=options) as model:
        return model.histogram(low, high, bucket_count, report=report)
