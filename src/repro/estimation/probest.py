"""Probability-estimation baseline in the style of Sankaranarayanan et al. [56].

The idea of the baseline (paper Section 8, "Probability estimation"): explore a
*finite subset* of program paths whose cumulative prior probability is at least
``1 − c``; if the queried event holds with probability ``p`` on those paths,
then its true probability lies in ``[p, p + c]``.  The approach only applies to
score-free programs (no soft conditioning) — exactly the restriction the paper
points out — and its bounds are generally looser than GuBPI's because the
unexplored mass ``c`` enters the upper bound directly.

Our implementation reuses the symbolic-execution and polytope substrates: the
explored paths are the non-truncated symbolic paths up to a path budget chosen
greedily by prior mass, and per-path probabilities are exact volumes.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional

from ..intervals import Interval
from ..lang.ast import Term
from ..analysis.box_analyzer import analyze_path_boxes
from ..analysis.config import AnalysisOptions
from ..analysis.linear_analyzer import analyze_path_linear, linear_analysis_applicable
from ..symbolic import ExecutionLimits, SymbolicPath, symbolic_paths

__all__ = ["ProbabilityEstimate", "estimate_probability"]


@dataclass(frozen=True)
class ProbabilityEstimate:
    """Bounds ``[lower, upper]`` on ``Pr[result ∈ target]`` for a score-free program."""

    target: Interval
    lower: float
    upper: float
    explored_paths: int
    explored_mass: float
    seconds: float

    @property
    def width(self) -> float:
        return self.upper - self.lower


class ScoreFreeError(Exception):
    """Raised when the program uses soft conditioning (not supported by [56])."""


def _path_mass_bounds(path: SymbolicPath, options: AnalysisOptions) -> tuple[float, float]:
    """Exact (or bounded) prior probability of following a path."""
    everything = Interval(-math.inf, math.inf)
    if linear_analysis_applicable(path):
        ((lower, upper),) = analyze_path_linear(path, [everything], options)
    else:
        ((lower, upper),) = analyze_path_boxes(path, [everything], options)
    return lower, upper


def _path_event_bounds(
    path: SymbolicPath, target: Interval, options: AnalysisOptions
) -> tuple[float, float]:
    if linear_analysis_applicable(path):
        ((lower, upper),) = analyze_path_linear(path, [target], options)
    else:
        ((lower, upper),) = analyze_path_boxes(path, [target], options)
    return lower, upper


def estimate_probability(
    term: Term,
    target: Interval,
    path_budget: int = 200,
    max_fixpoint_depth: int = 8,
    options: Optional[AnalysisOptions] = None,
) -> ProbabilityEstimate:
    """Bound ``Pr[result ∈ target]`` by exploring at most ``path_budget`` paths."""
    start = time.perf_counter()
    options = options or AnalysisOptions(max_fixpoint_depth=max_fixpoint_depth)
    execution = symbolic_paths(
        term, ExecutionLimits(max_fixpoint_depth=max_fixpoint_depth, max_paths=options.max_paths)
    )
    explored = [path for path in execution.paths if not path.truncated]
    for path in explored:
        if path.scores:
            raise ScoreFreeError(
                "the probability-estimation baseline only supports score-free programs"
            )

    # Greedy path selection by (upper bound on) prior mass.
    weighted = []
    for path in explored:
        lower_mass, upper_mass = _path_mass_bounds(path, options)
        weighted.append((upper_mass, lower_mass, path))
    weighted.sort(key=lambda item: item[0], reverse=True)
    selected = weighted[:path_budget]

    event_lower = 0.0
    event_upper = 0.0
    covered_mass = 0.0
    for upper_mass, lower_mass, path in selected:
        lower, upper = _path_event_bounds(path, target, options)
        event_lower += lower
        event_upper += upper
        covered_mass += lower_mass
    unexplored = max(0.0, 1.0 - covered_mass)
    return ProbabilityEstimate(
        target=target,
        lower=min(1.0, event_lower),
        upper=min(1.0, event_upper + unexplored),
        explored_paths=len(selected),
        explored_mass=covered_mass,
        seconds=time.perf_counter() - start,
    )
