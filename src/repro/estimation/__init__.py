"""Score-free probability estimation baseline (Sankaranarayanan et al. style).

Fronted by :meth:`repro.Model.estimate`, which runs the baseline on the
model's program term.
"""

from .probest import ProbabilityEstimate, ScoreFreeError, estimate_probability

__all__ = ["ProbabilityEstimate", "ScoreFreeError", "estimate_probability"]
