"""Score-free probability estimation baseline (Sankaranarayanan et al. style)."""

from .probest import ProbabilityEstimate, ScoreFreeError, estimate_probability

__all__ = ["ProbabilityEstimate", "ScoreFreeError", "estimate_probability"]
