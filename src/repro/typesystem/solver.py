"""Worklist solver with widening for interval-variable constraints.

Implements the approach of Appendix D.3: a least-fixpoint computation over
the interval lattice.  Because the interval domain has infinite ascending
chains, unconstrained Kleene iteration may diverge (the Appendix's
``ν ≡ ν + 1`` example); we therefore switch from join to *widening* after a
small number of updates per variable, which guarantees termination while
keeping precise results for the common shallow constraint systems.
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable

from ..intervals import EMPTY, Interval, get_primitive
from .constraints import (
    ClampConstraint,
    Constraint,
    ConstraintSystem,
    FlowConstraint,
    IVar,
    PrimConstraint,
    ProductConstraint,
    SeedConstraint,
)

__all__ = ["Solution", "solve", "SolverStats"]

#: number of plain joins allowed per variable before switching to widening
_JOINS_BEFORE_WIDENING = 4

_NON_NEGATIVE = Interval(0.0, math.inf)


@dataclass
class SolverStats:
    """Diagnostics of a solver run (used by the ablation benchmark)."""

    iterations: int = 0
    widenings: int = 0
    variables: int = 0


@dataclass
class Solution:
    """An assignment of intervals to interval variables."""

    values: Dict[IVar, Interval]
    stats: SolverStats = field(default_factory=SolverStats)

    def value(self, var: IVar) -> Interval:
        return self.values.get(var, EMPTY)


def _evaluate(constraint: Constraint, values: Dict[IVar, Interval]) -> Interval:
    """The interval contributed by a constraint to its target (``⊥`` if not ready)."""
    if isinstance(constraint, SeedConstraint):
        return constraint.interval
    if isinstance(constraint, FlowConstraint):
        return values.get(constraint.source, EMPTY)
    if isinstance(constraint, ClampConstraint):
        return values.get(constraint.source, EMPTY).meet(_NON_NEGATIVE)
    if isinstance(constraint, PrimConstraint):
        args = [values.get(var, EMPTY) for var in constraint.args]
        if any(arg.is_empty for arg in args):
            return EMPTY
        return get_primitive(constraint.op).apply_interval(*args)
    if isinstance(constraint, ProductConstraint):
        args = [values.get(var, EMPTY) for var in constraint.args]
        if any(arg.is_empty for arg in args):
            return EMPTY
        result = Interval.point(1.0)
        for arg in args:
            result = result * arg
        return result
    raise TypeError(f"unknown constraint {constraint!r}")


def solve(system: ConstraintSystem, max_iterations: int = 100_000) -> Solution:
    """Compute a sound (post-fixpoint) solution of the constraint system."""
    values: Dict[IVar, Interval] = {}
    update_counts: Dict[IVar, int] = defaultdict(int)
    stats = SolverStats(variables=system.variable_count)

    # Index: which constraints must be re-evaluated when a variable changes.
    readers: Dict[IVar, list[Constraint]] = defaultdict(list)
    for constraint in system.constraints:
        for var in constraint.inputs():
            readers[var].append(constraint)

    worklist: deque[Constraint] = deque(system.constraints)
    queued = set(map(id, worklist))

    while worklist:
        stats.iterations += 1
        if stats.iterations > max_iterations:
            # Fall back to a safe (maximally imprecise) solution rather than
            # diverging; soundness of downstream bounds is preserved.
            for var in list(values):
                values[var] = Interval(-math.inf, math.inf)
            break
        constraint = worklist.popleft()
        queued.discard(id(constraint))
        contribution = _evaluate(constraint, values)
        if contribution.is_empty:
            continue
        current = values.get(constraint.target, EMPTY)
        joined = current.join(contribution)
        if joined == current:
            continue
        update_counts[constraint.target] += 1
        if update_counts[constraint.target] > _JOINS_BEFORE_WIDENING:
            new_value = current.widen(joined)
            stats.widenings += 1
        else:
            new_value = joined
        values[constraint.target] = new_value
        for dependent in readers[constraint.target]:
            if id(dependent) not in queued:
                worklist.append(dependent)
                queued.add(id(dependent))

    return Solution(values=values, stats=stats)
