"""Weight-aware interval type system (paper Section 5 and Appendix D)."""

from .constraints import (
    ClampConstraint,
    Constraint,
    ConstraintSystem,
    FlowConstraint,
    PrimConstraint,
    ProductConstraint,
    SeedConstraint,
    generate_constraints,
)
from .inference import FixpointSummary, TypeInferenceError, fixpoint_summary, infer_weighted_type
from .itypes import (
    ArrowIType,
    BaseIType,
    IntervalType,
    WeightedIType,
    is_weighted_subtype,
    is_weightless_subtype,
    top_weighted,
    top_weightless,
)
from .solver import Solution, SolverStats, solve

__all__ = [
    "IntervalType",
    "BaseIType",
    "ArrowIType",
    "WeightedIType",
    "is_weightless_subtype",
    "is_weighted_subtype",
    "top_weightless",
    "top_weighted",
    "Constraint",
    "SeedConstraint",
    "FlowConstraint",
    "PrimConstraint",
    "ProductConstraint",
    "ClampConstraint",
    "ConstraintSystem",
    "generate_constraints",
    "Solution",
    "SolverStats",
    "solve",
    "infer_weighted_type",
    "fixpoint_summary",
    "FixpointSummary",
    "TypeInferenceError",
]
