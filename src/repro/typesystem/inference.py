"""Public API of the weight-aware interval type system.

The two entry points are:

* :func:`infer_weighted_type` — the interval type of a (possibly open) term,
  sound in the sense of Theorem 5.1: every terminating execution returns a
  value inside the inferred value interval and has weight inside the inferred
  weight interval.
* :func:`fixpoint_summary` — the ``approxFix`` ingredient of Algorithm 1:
  given a recursive function and an interval for its argument, bound the
  value and weight of *any* terminating call.  Symbolic execution uses this
  to replace a fixpoint by ``λ_. score([e, f]); [c, d]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..intervals import Interval
from ..lang.ast import App, Fix, IntervalConst, Lam, Term
from ..lang.types import TypeError_
from .constraints import (
    ConstraintSystem,
    SymArrow,
    SymBase,
    SymType,
    SymWeighted,
    generate_constraints,
)
from .itypes import ArrowIType, BaseIType, IntervalType, WeightedIType
from .solver import Solution, solve

__all__ = ["infer_weighted_type", "fixpoint_summary", "FixpointSummary", "TypeInferenceError"]


class TypeInferenceError(Exception):
    """Raised when interval type inference cannot produce a (useful) result."""


def _reify(stype: SymType, solution: Solution) -> IntervalType:
    if isinstance(stype, SymBase):
        interval = solution.value(stype.var)
        if interval.is_empty:
            # An unreachable / unconstrained position: any sound interval will
            # do, the widest is the safest for downstream consumers.
            interval = Interval(-math.inf, math.inf)
        return BaseIType(interval)
    if isinstance(stype, SymArrow):
        return ArrowIType(_reify(stype.arg, solution), _reify_weighted(stype.res, solution))
    raise TypeError(f"unexpected symbolic type {stype!r}")


def _reify_weighted(weighted: SymWeighted, solution: Solution) -> WeightedIType:
    weight = solution.value(weighted.weight)
    if weight.is_empty:
        weight = Interval(0.0, math.inf)
    weight = weight.meet(Interval(0.0, math.inf))
    if weight.is_empty:
        weight = Interval(0.0, math.inf)
    return WeightedIType(_reify(weighted.stype, solution), weight)


def infer_weighted_type(
    term: Term,
    env: Optional[Mapping[str, IntervalType]] = None,
) -> WeightedIType:
    """Infer a weighted interval type for ``term`` (Theorem 5.1 soundness)."""
    try:
        system = generate_constraints(term, dict(env) if env else None)
    except (TypeError, TypeError_, KeyError) as exc:
        raise TypeInferenceError(f"constraint generation failed: {exc}") from exc
    solution = solve(system)
    return _reify_weighted(system.root, solution)


@dataclass(frozen=True)
class FixpointSummary:
    """Bounds on a single application of a recursive function.

    ``value`` bounds the returned value, ``weight`` bounds the factor the
    call multiplies the execution weight by (both for terminating calls only;
    the bounds are partial-correctness statements, cf. Theorem 5.1).
    """

    value: Interval
    weight: Interval


def fixpoint_summary(
    fix_term: Term,
    argument: Interval,
    env: Optional[Mapping[str, IntervalType]] = None,
) -> FixpointSummary:
    """Summarise ``(μφ x. M) arg`` for ``arg`` ranging over ``argument``.

    The fixpoint (or lambda) term is applied to an interval literal and the
    resulting application is typed in the interval type system; the weighted
    type of the application is exactly the paper's ``⟨[c, d] / [e, f]⟩`` used
    by ``approxFix``.
    """
    if not isinstance(fix_term, (Fix, Lam)):
        raise TypeInferenceError(f"fixpoint_summary expects a function term, got {fix_term!r}")
    application = App(fix_term, IntervalConst(argument))
    weighted = infer_weighted_type(application, env)
    if isinstance(weighted.wtype, BaseIType):
        value = weighted.wtype.interval
    else:
        # Higher-order result: no useful ground bound, stay conservative.
        value = Interval(-math.inf, math.inf)
    return FixpointSummary(value=value, weight=weighted.weight)
