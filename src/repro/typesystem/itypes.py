"""Interval types for the weight-aware type system (paper Section 5.1).

The grammar is::

    σ ::= I | σ -> A          (weightless types)
    A ::= ⟨σ, I⟩              (weighted types: a weightless type plus a weight bound)

``⟨σ, [c, d]⟩`` types a term whose terminating executions produce a value
described by ``σ`` while multiplying the execution weight by a factor inside
``[c, d]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..intervals import Interval
from ..lang.types import FunType, RealType, SimpleType

__all__ = [
    "IntervalType",
    "BaseIType",
    "ArrowIType",
    "WeightedIType",
    "is_weightless_subtype",
    "is_weighted_subtype",
    "top_weightless",
    "top_weighted",
]


class IntervalType:
    """Base class of weightless interval types ``σ``."""


@dataclass(frozen=True)
class BaseIType(IntervalType):
    """A ground interval type: the refinement ``{x : R | x ∈ interval}``."""

    interval: Interval

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.interval)


@dataclass(frozen=True)
class WeightedIType:
    """A weighted type ``⟨wtype, weight⟩``."""

    wtype: IntervalType
    weight: Interval

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"⟨{self.wtype!r} / {self.weight!r}⟩"


@dataclass(frozen=True)
class ArrowIType(IntervalType):
    """A function interval type ``arg -> res``."""

    arg: IntervalType
    res: WeightedIType

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.arg!r} -> {self.res!r})"


def is_weightless_subtype(sub: IntervalType, sup: IntervalType) -> bool:
    """The subtype relation ``⊑_σ`` (contravariant in function arguments)."""
    if isinstance(sub, BaseIType) and isinstance(sup, BaseIType):
        return sup.interval.contains_interval(sub.interval)
    if isinstance(sub, ArrowIType) and isinstance(sup, ArrowIType):
        return is_weightless_subtype(sup.arg, sub.arg) and is_weighted_subtype(sub.res, sup.res)
    return False


def is_weighted_subtype(sub: WeightedIType, sup: WeightedIType) -> bool:
    """The subtype relation ``⊑_A``: component-wise refinement."""
    return (
        is_weightless_subtype(sub.wtype, sup.wtype)
        and sup.weight.contains_interval(sub.weight)
    )


def top_weightless(simple_type: SimpleType) -> IntervalType:
    """The largest interval type refining a given simple type.

    Used for the weak-completeness fallback (Proposition 5.2): every simply
    typed term admits this type.
    """
    if isinstance(simple_type, RealType):
        return BaseIType(Interval(-math.inf, math.inf))
    if isinstance(simple_type, FunType):
        return ArrowIType(top_weightless(simple_type.arg), top_weighted(simple_type.res))
    raise TypeError(f"unexpected simple type {simple_type!r}")


def top_weighted(simple_type: SimpleType) -> WeightedIType:
    return WeightedIType(top_weightless(simple_type), Interval(0.0, math.inf))
