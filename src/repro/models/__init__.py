"""Benchmark model suites used by the paper's evaluation."""

from .continuous_models import (
    binary_gmm_2d_log_density,
    binary_gmm_2d_program,
    binary_gmm_log_density,
    binary_gmm_program,
    binary_gmm_sbc_model,
    coin_bias_program,
    max_of_normals_program,
    neals_funnel_log_density,
    neals_funnel_program,
)
from .pedestrian import (
    pedestrian_bounded_program,
    pedestrian_program,
    pedestrian_sbc_model,
    simulate_pedestrian_distance,
)
from .probest_suite import ProbEstBenchmark, benchmark_by_name, probest_suite
from .psi_discrete import DiscreteBenchmark, discrete_benchmark_by_name, discrete_suite
from .recursive_models import (
    RecursiveBenchmark,
    add_uniform_with_counter,
    cav_example_5,
    cav_example_7,
    growing_walk,
    param_estimation_recursive,
    random_box_walk,
    recursive_suite,
)

__all__ = [
    "pedestrian_program",
    "pedestrian_bounded_program",
    "pedestrian_sbc_model",
    "simulate_pedestrian_distance",
    "ProbEstBenchmark",
    "probest_suite",
    "benchmark_by_name",
    "DiscreteBenchmark",
    "discrete_suite",
    "discrete_benchmark_by_name",
    "coin_bias_program",
    "max_of_normals_program",
    "binary_gmm_program",
    "binary_gmm_log_density",
    "binary_gmm_sbc_model",
    "binary_gmm_2d_program",
    "binary_gmm_2d_log_density",
    "neals_funnel_program",
    "neals_funnel_log_density",
    "RecursiveBenchmark",
    "recursive_suite",
    "cav_example_5",
    "cav_example_7",
    "add_uniform_with_counter",
    "random_box_walk",
    "growing_walk",
    "param_estimation_recursive",
]
