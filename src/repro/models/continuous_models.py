"""Non-recursive continuous models (paper Figure 5 and Table 3).

* ``coin_bias`` — a Beta prior on a coin's bias observed through repeated
  flips (Fig. 5a);
* ``max_of_normals`` — the maximum of two i.i.d. Gaussians (Fig. 5b);
* ``binary_gmm`` — a two-mode Gaussian mixture whose posterior is bimodal;
  gradient-based samplers typically find only one mode (Fig. 5c, Table 3);
* ``neals_funnel`` — Neal's funnel, where HMC misses probability mass around
  the neck (Fig. 5d).

Besides the SPCF programs, the module provides the closed-form log densities
used to drive the plain HMC baseline, and the SBC decompositions used by the
Table 3 benchmark.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..distributions import Beta, Normal
from ..inference.sbc import SBCModel
from ..lang import builder as b
from ..lang.ast import Sample, Term

__all__ = [
    "coin_bias_program",
    "max_of_normals_program",
    "binary_gmm_program",
    "binary_gmm_log_density",
    "binary_gmm_sbc_model",
    "binary_gmm_2d_program",
    "binary_gmm_2d_log_density",
    "neals_funnel_program",
    "neals_funnel_log_density",
]


# ----------------------------------------------------------------------
# coinBias (Fig. 5a)
# ----------------------------------------------------------------------

def coin_bias_program(flips: Sequence[int] = (1, 1, 0, 1, 0), alpha: float = 2.0, beta: float = 2.0) -> Term:
    """Beta prior on the bias of a coin, observed through Bernoulli flips."""
    bindings: list[tuple[str, Term]] = [("bias", Sample(Beta(alpha, beta)))]
    for index, flip in enumerate(flips):
        likelihood = b.var("bias") if flip else b.sub(1.0, b.var("bias"))
        bindings.append((f"_obs{index}", b.score(likelihood)))
    return b.let_many(bindings, b.var("bias"))


# ----------------------------------------------------------------------
# max of two normals (Fig. 5b)
# ----------------------------------------------------------------------

def max_of_normals_program(mean: float = 0.0, std: float = 1.0) -> Term:
    """The maximum of two i.i.d. normal draws."""
    return b.let(
        "first",
        Sample(Normal(mean, std)),
        b.let("second", Sample(Normal(mean, std)), b.maximum(b.var("first"), b.var("second"))),
    )


# ----------------------------------------------------------------------
# binary Gaussian mixture model (Fig. 5c, Table 3)
# ----------------------------------------------------------------------

def binary_gmm_program(observation: float = 0.6, component_std: float = 0.5, prior_std: float = 2.0) -> Term:
    """A binary GMM: ``μ ~ N(0, prior_std)``, data from ``½N(μ, σ) + ½N(−μ, σ)``.

    The posterior over ``μ`` is symmetric and bimodal; MCMC methods usually
    find only one of the modes (the paper's Fig. 5c observation).
    """
    mixture = b.add(
        b.mul(0.5, _normal_pdf_term(observation, component_std, b.var("mu"))),
        b.mul(0.5, _normal_pdf_term(observation, component_std, b.neg(b.var("mu")))),
    )
    return b.let(
        "mu",
        Sample(Normal(0.0, prior_std)),
        b.seq(b.score(mixture), b.var("mu")),
    )


def _normal_pdf_term(mean: float, std: float, value: Term) -> Term:
    """``normal_pdf(mean, std, value)`` as a primitive application."""
    from ..lang.ast import Prim

    return Prim("normal_pdf", (b.const(mean), b.const(std), value))


def binary_gmm_log_density(mu: float, observation: float = 0.6, component_std: float = 0.5, prior_std: float = 2.0) -> float:
    """Closed-form unnormalised log posterior density of the binary GMM."""
    prior = Normal(0.0, prior_std).log_pdf(mu)
    component1 = Normal(mu, component_std).pdf(observation)
    component2 = Normal(-mu, component_std).pdf(observation)
    likelihood = 0.5 * component1 + 0.5 * component2
    return prior + (math.log(likelihood) if likelihood > 0 else -math.inf)


def binary_gmm_sbc_model(component_std: float = 0.5, prior_std: float = 2.0) -> SBCModel:
    """The binary GMM in generative form for the SBC harness (Table 3)."""

    def prior(rng: np.random.Generator) -> float:
        return float(rng.normal(0.0, prior_std))

    def generate(mu: float, rng: np.random.Generator) -> Sequence[float]:
        sign = 1.0 if rng.random() < 0.5 else -1.0
        return [float(rng.normal(sign * mu, component_std))]

    def build(data: Sequence[float]) -> Term:
        return binary_gmm_program(observation=float(data[0]), component_std=component_std, prior_std=prior_std)

    return SBCModel(
        name="binary-gmm-1d",
        prior_sampler=prior,
        data_generator=generate,
        program_builder=build,
    )


def binary_gmm_2d_program(
    observations: Sequence[float] = (0.6, -0.4),
    component_std: float = 0.5,
    prior_std: float = 2.0,
) -> Term:
    """A two-dimensional binary GMM (one mean per coordinate); returns ``μ_1``."""
    bindings: list[tuple[str, Term]] = [
        ("mu1", Sample(Normal(0.0, prior_std))),
        ("mu2", Sample(Normal(0.0, prior_std))),
    ]
    for index, (observation, mean_var) in enumerate(zip(observations, ("mu1", "mu2"))):
        mixture = b.add(
            b.mul(0.5, _normal_pdf_term(observation, component_std, b.var(mean_var))),
            b.mul(0.5, _normal_pdf_term(observation, component_std, b.neg(b.var(mean_var)))),
        )
        bindings.append((f"_obs{index}", b.score(mixture)))
    return b.let_many(bindings, b.var("mu1"))


def binary_gmm_2d_log_density(
    mu: Sequence[float],
    observations: Sequence[float] = (0.6, -0.4),
    component_std: float = 0.5,
    prior_std: float = 2.0,
) -> float:
    total = 0.0
    for mean, observation in zip(mu, observations):
        total += binary_gmm_log_density(mean, observation, component_std, prior_std)
    return total


# ----------------------------------------------------------------------
# Neal's funnel (Fig. 5d)
# ----------------------------------------------------------------------

def neals_funnel_program(scale: float = 3.0) -> Term:
    """Neal's funnel: ``y ~ N(0, scale)``, ``x ~ N(0, exp(y/2))``; returns ``y``.

    The model has no observations, so the posterior over ``y`` is just its
    prior — but the joint geometry (the funnel neck at very negative ``y``)
    makes gradient-based samplers miss mass around 0 of the ``x`` marginal and
    the negative tail of ``y`` (Fig. 5d).
    """
    return b.let(
        "y",
        Sample(Normal(0.0, scale)),
        b.let(
            "x",
            b.mul(b.exp(b.mul(0.5, b.var("y"))), Sample(Normal(0.0, 1.0))),
            b.var("y"),
        ),
    )


def neals_funnel_log_density(state: Sequence[float], scale: float = 3.0) -> float:
    """Joint log density of Neal's funnel over ``(y, x)``."""
    y, x = float(state[0]), float(state[1])
    log_p_y = Normal(0.0, scale).log_pdf(y)
    std_x = math.exp(0.5 * y)
    log_p_x = Normal(0.0, std_x).log_pdf(x)
    return log_p_y + log_p_x
