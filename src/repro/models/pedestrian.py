"""The pedestrian example (paper Example 1.1).

A pedestrian starts a uniform random distance between 0 and 3 km from home and
repeatedly walks a uniform random distance of at most 1 km towards or away
from home (probability 1/2 each) until reaching home.  The total travelled
distance is observed to be 1.1 km with Gaussian noise (σ = 0.1); the posterior
of interest is over the starting point.

The model is nonparametric (the number of random variables is unbounded) and
has infinite expected running time, which makes it the paper's flagship
stress test: exact solvers cannot handle it, and fixed-dimension HMC produces
wrong samples (Figures 1 and 7).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..distributions import Normal
from ..inference.sbc import SBCModel
from ..lang import builder as b
from ..lang.ast import Term

__all__ = [
    "pedestrian_program",
    "pedestrian_bounded_program",
    "pedestrian_sbc_model",
    "simulate_pedestrian_distance",
]

OBSERVED_DISTANCE = 1.1
OBSERVATION_STD = 0.1


def _walk_fixpoint() -> Term:
    """``μ walk x. if x ≤ 0 then 0 else let step = sample in step + walk(x ± step)``."""
    return b.fix(
        "walk",
        "x",
        b.if_leq(
            b.var("x"),
            0.0,
            0.0,
            b.let(
                "step",
                b.sample(),
                b.choice(
                    0.5,
                    b.add(b.var("step"), b.app(b.var("walk"), b.add(b.var("x"), b.var("step")))),
                    b.add(b.var("step"), b.app(b.var("walk"), b.sub(b.var("x"), b.var("step")))),
                ),
            ),
        ),
    )


def pedestrian_program(
    observed: float = OBSERVED_DISTANCE, std: float = OBSERVATION_STD
) -> Term:
    """The pedestrian model of Example 1.1; returns the starting point."""
    return b.let(
        "start",
        b.mul(3.0, b.sample()),
        b.let(
            "distance",
            b.app(_walk_fixpoint(), b.var("start")),
            b.seq(b.observe_normal(observed, std, b.var("distance")), b.var("start")),
        ),
    )


def pedestrian_bounded_program(
    max_distance: float = 10.0,
    observed: float = OBSERVED_DISTANCE,
    std: float = OBSERVATION_STD,
) -> Term:
    """The variant with a stopping condition used for the HMC runs (Appendix F.1).

    The walk aborts once the cumulative distance exceeds ``max_distance``; as
    the appendix notes, this changes the posterior only by a negligible amount
    (the weight of such traces is below ``pdf_N(1.1, 0.1)(10) < 10^-1700``) but
    makes every execution finite.
    """
    walk = b.fix(
        "walk",
        "x",
        b.lam(
            "total",
            b.if_leq(
                b.var("x"),
                0.0,
                b.var("total"),
                b.if_leq(
                    max_distance,
                    b.var("total"),
                    b.var("total"),
                    b.let(
                        "step",
                        b.sample(),
                        b.choice(
                            0.5,
                            b.call(
                                b.var("walk"),
                                b.add(b.var("x"), b.var("step")),
                                b.add(b.var("total"), b.var("step")),
                            ),
                            b.call(
                                b.var("walk"),
                                b.sub(b.var("x"), b.var("step")),
                                b.add(b.var("total"), b.var("step")),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )
    return b.let(
        "start",
        b.mul(3.0, b.sample()),
        b.let(
            "distance",
            b.call(walk, b.var("start"), 0.0),
            b.seq(b.observe_normal(observed, std, b.var("distance")), b.var("start")),
        ),
    )


def simulate_pedestrian_distance(start: float, rng: np.random.Generator, cap: float = 10.0) -> float:
    """Forward-simulate the walk's total distance (used by the SBC harness)."""
    position = start
    total = 0.0
    while position > 0.0 and total < cap:
        step = float(rng.uniform(0.0, 1.0))
        total += step
        position += step if rng.random() < 0.5 else -step
    return total


def pedestrian_sbc_model(std: float = OBSERVATION_STD) -> SBCModel:
    """The pedestrian example in the generative form required by SBC (Table 3)."""

    def prior(rng: np.random.Generator) -> float:
        return float(rng.uniform(0.0, 3.0))

    def generate(start: float, rng: np.random.Generator) -> Sequence[float]:
        distance = simulate_pedestrian_distance(start, rng)
        observation = float(rng.normal(distance, std))
        return [observation]

    def build(data: Sequence[float]) -> Term:
        # Inference inside SBC runs the program many times; use the bounded
        # variant (negligible posterior difference, finite executions).
        return pedestrian_bounded_program(observed=float(data[0]), std=std)

    return SBCModel(
        name="pedestrian",
        prior_sampler=prior,
        data_generator=generate,
        program_builder=build,
    )
