"""Discrete benchmark programs (paper Table 2).

These are the finite discrete models from the PSI repository used in the
paper's exact-inference consistency check: Bayesian-network classics
(burglar alarm, sprinkler/grass, noisy-or, murder mystery, Bertrand's boxes,
...), written once in SPCF with native Bernoulli/categorical draws and *hard*
conditioning expressed as ``score(indicator)``.

Each program is consumed by two engines:

* the exact enumeration engine (:mod:`repro.exact`) — the PSI stand-in, and
* the GuBPI engine — whose box analyser resolves every finite discrete draw
  into point cells, so its bounds are tight and must agree with enumeration
  (that agreement is asserted by the Table 2 benchmark and the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..distributions import Bernoulli, Categorical
from ..intervals import Interval
from ..lang import builder as b
from ..lang.ast import Sample, Term

__all__ = ["DiscreteBenchmark", "discrete_suite", "discrete_benchmark_by_name"]


@dataclass(frozen=True)
class DiscreteBenchmark:
    """A finite discrete program plus the query the harness evaluates."""

    name: str
    description: str
    program: Term
    query_target: Interval
    query_description: str
    paper_time_psi: float
    paper_time_gubpi: float


def bernoulli(p: float) -> Term:
    """A native Bernoulli draw (returns 0.0 or 1.0)."""
    return Sample(Bernoulli(p))


def categorical(outcomes: list[float], probabilities: list[float]) -> Term:
    return Sample(Categorical(outcomes, probabilities))


def condition(indicator: Term) -> Term:
    """Hard conditioning: keep the execution only when ``indicator`` is 1."""
    return b.score(indicator)


def bool_and(left: Term, right: Term) -> Term:
    return b.mul(left, right)


def bool_or(left: Term, right: Term) -> Term:
    return b.maximum(left, right)


def bool_not(value: Term) -> Term:
    return b.sub(1.0, value)


def if_flag(flag: Term, then: Term, orelse: Term) -> Term:
    """Branch on a 0/1 flag (flags are ≤ 0 exactly when false)."""
    return b.if_leq(flag, 0.0, orelse, then)


# ----------------------------------------------------------------------
# Models
# ----------------------------------------------------------------------

def burglar_alarm() -> Term:
    """The classic burglary/earthquake/alarm network; posterior of burglary given a call."""
    return b.let_many(
        [
            ("burglary", bernoulli(0.001)),
            ("earthquake", bernoulli(0.002)),
            (
                "alarm",
                if_flag(
                    b.var("burglary"),
                    if_flag(b.var("earthquake"), bernoulli(0.95), bernoulli(0.94)),
                    if_flag(b.var("earthquake"), bernoulli(0.29), bernoulli(0.001)),
                ),
            ),
            ("john_calls", if_flag(b.var("alarm"), bernoulli(0.9), bernoulli(0.05))),
            ("_", condition(b.var("john_calls"))),
        ],
        b.var("burglary"),
    )


def two_coins() -> Term:
    """Two fair coins; observe that not both are heads; posterior of the first coin."""
    return b.let_many(
        [
            ("first", bernoulli(0.5)),
            ("second", bernoulli(0.5)),
            ("_", condition(bool_not(bool_and(b.var("first"), b.var("second"))))),
        ],
        b.var("first"),
    )


def coins() -> Term:
    """Two biased coins; observe at least one head; posterior of the first coin."""
    return b.let_many(
        [
            ("first", bernoulli(0.4)),
            ("second", bernoulli(0.7)),
            ("_", condition(bool_or(b.var("first"), b.var("second")))),
        ],
        b.var("first"),
    )


def grass_model() -> Term:
    """The sprinkler/rain/wet-grass network; posterior of rain given wet grass."""
    return b.let_many(
        [
            ("cloudy", bernoulli(0.5)),
            ("sprinkler", if_flag(b.var("cloudy"), bernoulli(0.1), bernoulli(0.5))),
            ("rain", if_flag(b.var("cloudy"), bernoulli(0.8), bernoulli(0.2))),
            (
                "wet",
                bool_or(
                    bool_and(b.var("sprinkler"), bernoulli(0.9)),
                    bool_and(b.var("rain"), bernoulli(0.9)),
                ),
            ),
            ("_", condition(b.var("wet"))),
        ],
        b.var("rain"),
    )


def noisy_or() -> Term:
    """A small noisy-or network; posterior of the first cause given the effect."""
    return b.let_many(
        [
            ("cause1", bernoulli(0.3)),
            ("cause2", bernoulli(0.2)),
            (
                "effect",
                bool_or(
                    bool_and(b.var("cause1"), bernoulli(0.8)),
                    bool_or(bool_and(b.var("cause2"), bernoulli(0.6)), bernoulli(0.05)),
                ),
            ),
            ("_", condition(b.var("effect"))),
        ],
        b.var("cause1"),
    )


def murder_mystery() -> Term:
    """The aunt/nephew murder mystery; posterior that the nephew did it given the evidence."""
    return b.let_many(
        [
            ("nephew", bernoulli(0.3)),
            (
                "gun_found",
                if_flag(b.var("nephew"), bernoulli(0.9), bernoulli(0.2)),
            ),
            ("_", condition(b.var("gun_found"))),
        ],
        b.var("nephew"),
    )


def bertrand() -> Term:
    """Bertrand's box paradox: posterior that the gold coin came from the gold-gold box."""
    return b.let_many(
        [
            ("box", categorical([0.0, 1.0, 2.0], [1.0, 1.0, 1.0])),
            (
                "coin_is_gold",
                b.if_leq(
                    b.var("box"),
                    0.0,
                    b.const(1.0),  # gold-gold box
                    b.if_leq(b.var("box"), 1.0, bernoulli(0.5), b.const(0.0)),
                ),
            ),
            ("_", condition(b.var("coin_is_gold"))),
        ],
        b.if_leq(b.var("box"), 0.0, 1.0, 0.0),
    )


def coin_bias_small() -> Term:
    """Discretised coin-bias estimation: categorical prior over the bias, three flips."""
    outcomes = [0.1, 0.3, 0.5, 0.7, 0.9]
    return b.let_many(
        [
            ("bias", categorical(outcomes, [1.0] * len(outcomes))),
            ("_1", b.score(b.var("bias"))),  # first flip: heads
            ("_2", b.score(b.var("bias"))),  # second flip: heads
            ("_3", b.score(b.sub(1.0, b.var("bias")))),  # third flip: tails
        ],
        b.var("bias"),
    )


def coin_pattern() -> Term:
    """Four fair flips; observe at least one 'heads, heads' adjacent pattern; return the first flip."""
    flips = [("c1", bernoulli(0.5)), ("c2", bernoulli(0.5)), ("c3", bernoulli(0.5)), ("c4", bernoulli(0.5))]
    pattern = bool_or(
        bool_and(b.var("c1"), b.var("c2")),
        bool_or(bool_and(b.var("c2"), b.var("c3")), bool_and(b.var("c3"), b.var("c4"))),
    )
    return b.let_many(flips + [("_", condition(pattern))], b.var("c1"))


def gossip() -> Term:
    """A tiny gossip network: posterior that A started the rumour given that C heard it."""
    return b.let_many(
        [
            ("a_started", bernoulli(0.3)),
            ("b_heard", if_flag(b.var("a_started"), bernoulli(0.8), bernoulli(0.1))),
            ("c_heard", if_flag(b.var("b_heard"), bernoulli(0.7), bernoulli(0.05))),
            ("_", condition(b.var("c_heard"))),
        ],
        b.var("a_started"),
    )


def evidence_model1() -> Term:
    """Evidence example 1: a coin observed through a noisy channel."""
    return b.let_many(
        [
            ("coin", bernoulli(0.5)),
            ("reading", if_flag(b.var("coin"), bernoulli(0.9), bernoulli(0.1))),
            ("_", condition(b.var("reading"))),
        ],
        b.var("coin"),
    )


def evidence_model2() -> Term:
    """Evidence example 2: two noisy readings of the same coin."""
    return b.let_many(
        [
            ("coin", bernoulli(0.5)),
            ("reading1", if_flag(b.var("coin"), bernoulli(0.9), bernoulli(0.1))),
            ("reading2", if_flag(b.var("coin"), bernoulli(0.9), bernoulli(0.1))),
            ("_", condition(bool_and(b.var("reading1"), bool_not(b.var("reading2"))))),
        ],
        b.var("coin"),
    )


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------

_TRUE = Interval(0.5, 1.5)


def discrete_suite() -> list[DiscreteBenchmark]:
    """All Table 2 benchmarks."""
    return [
        DiscreteBenchmark(
            "burglarAlarm", "burglary/earthquake/alarm network", burglar_alarm(), _TRUE,
            "P(burglary | John calls)", 0.06, 0.21,
        ),
        DiscreteBenchmark(
            "coins", "two biased coins, at least one head", coins(), _TRUE,
            "P(first coin heads | evidence)", 0.04, 0.18,
        ),
        DiscreteBenchmark(
            "twoCoins", "two fair coins, not both heads", two_coins(), _TRUE,
            "P(first coin heads | evidence)", 0.04, 0.21,
        ),
        DiscreteBenchmark(
            "ev-model1", "noisy reading of a coin", evidence_model1(), _TRUE,
            "P(coin heads | reading)", 0.04, 0.21,
        ),
        DiscreteBenchmark(
            "grass", "sprinkler / rain / wet grass", grass_model(), _TRUE,
            "P(rain | wet grass)", 0.06, 0.37,
        ),
        DiscreteBenchmark(
            "ev-model2", "two noisy readings of a coin", evidence_model2(), _TRUE,
            "P(coin heads | readings)", 0.04, 0.20,
        ),
        DiscreteBenchmark(
            "noisyOr", "noisy-or network", noisy_or(), _TRUE,
            "P(cause 1 | effect)", 0.14, 0.72,
        ),
        DiscreteBenchmark(
            "murderMystery", "aunt/nephew murder mystery", murder_mystery(), _TRUE,
            "P(nephew | gun found)", 0.04, 0.19,
        ),
        DiscreteBenchmark(
            "bertrand", "Bertrand's box paradox", bertrand(), _TRUE,
            "P(gold-gold box | gold coin)", 0.04, 0.22,
        ),
        DiscreteBenchmark(
            "coinBiasSmall", "discretised coin-bias estimation", coin_bias_small(),
            Interval(0.6, 1.0), "P(bias >= 0.7 | H, H, T)", 0.13, 1.92,
        ),
        DiscreteBenchmark(
            "coinPattern", "adjacent heads pattern in four flips", coin_pattern(), _TRUE,
            "P(first flip heads | pattern)", 0.04, 0.19,
        ),
        DiscreteBenchmark(
            "gossip", "rumour propagation", gossip(), _TRUE,
            "P(A started | C heard)", 0.08, 0.24,
        ),
    ]


def discrete_benchmark_by_name(name: str) -> DiscreteBenchmark:
    for benchmark in discrete_suite():
        if benchmark.name == name:
            return benchmark
    raise KeyError(f"unknown discrete benchmark {name!r}")
