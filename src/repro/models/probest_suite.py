"""Probability-estimation benchmark suite (paper Table 1 / Table 4).

The original suite comes from Sankaranarayanan et al. [56]; the exact sources
are not distributed with the paper, so the programs here are *faithful
reconstructions*: score-free models with uniform priors and (mostly) linear
guards matching the benchmark names and query shapes of Table 4.  Because the
sources differ in detail, the absolute probabilities do not have to coincide
with the paper's; what the Table 1 benchmark reproduces is the *relationship*
between the two analyses on every program — GuBPI's bounds are valid and
(much) tighter, the [56]-style baseline is faster but looser whenever its path
budget does not cover all of the probability mass.

Every benchmark carries the bounds reported in the paper (both for the tool of
[56] and for GuBPI) so the harness can print them side by side with ours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from ..intervals import Interval
from ..lang import builder as b
from ..lang.ast import Term

__all__ = ["ProbEstBenchmark", "probest_suite", "benchmark_by_name"]


@dataclass(frozen=True)
class ProbEstBenchmark:
    """One (program, query) pair of the Table 1 suite."""

    name: str
    query: str
    description: str
    program: Term
    target: Interval
    paper_tool56: tuple[float, float]
    paper_gubpi: tuple[float, float]

    @property
    def identifier(self) -> str:
        return f"{self.name}/{self.query}"


# ----------------------------------------------------------------------
# Individual models
# ----------------------------------------------------------------------

def _strength(name: str, scale: float, body: Term) -> Term:
    """A player's strength: a scaled uniform draw."""
    return b.let(name, b.mul(scale, b.sample()), body)


def _lazy_pull(strength_var: str, pull_name: str, body: Term) -> Term:
    """With probability 1/3 a player is lazy and pulls at half strength."""
    return b.let(
        pull_name,
        b.choice(1.0 / 3.0, b.mul(0.5, b.var(strength_var)), b.var(strength_var)),
        body,
    )


def tug_of_war_program(first_team: tuple[str, str], second_team: tuple[str, str]) -> Term:
    """Tug of war between two teams of two players; returns team1 − team2 pull."""
    players = {"alice": 1.20, "bob": 1.00, "tom": 1.00, "sally": 0.80}
    team1 = b.add(b.var(f"pull_{first_team[0]}"), b.var(f"pull_{first_team[1]}"))
    team2 = b.add(b.var(f"pull_{second_team[0]}"), b.var(f"pull_{second_team[1]}"))
    body: Term = b.sub(team1, team2)
    for name in reversed(list(players)):
        body = _lazy_pull(name, f"pull_{name}", body)
    for name, scale in reversed(list(players.items())):
        body = _strength(name, scale, body)
    return body


def beauquier3_program() -> Term:
    """A 3-process randomised self-stabilisation protocol (Beauquier et al. style).

    Each process initially holds a token with probability 1/2; in every round
    a coin decides whether two neighbouring tokens merge.  The program returns
    the number of rounds until exactly one token remains (capped at 3 rounds).
    """
    def round_(tokens_var: str, count_var: str, next_: Callable[[str, str], Term], level: int) -> Term:
        tokens = b.var(tokens_var)
        count = b.var(count_var)
        merged_tokens = f"tokens{level}"
        merged_count = f"count{level}"
        do_round = b.let(
            merged_tokens,
            b.choice(0.5, b.sub(tokens, 1.0), tokens),
            b.let(merged_count, b.add(count, 1.0), next_(merged_tokens, merged_count)),
        )
        # A round only happens while more than one token is present.
        return b.if_leq(tokens, 1.0, next_(tokens_var, count_var), do_round)

    def finish(tokens_var: str, count_var: str) -> Term:
        return b.var(count_var)

    body = round_(
        "tokens0",
        "count0",
        lambda t1, c1: round_(t1, c1, lambda t2, c2: round_(t2, c2, finish, 3), 2),
        1,
    )
    return b.let(
        "t1",
        b.flip(0.5),
        b.let(
            "t2",
            b.flip(0.5),
            b.let(
                "t3",
                b.flip(0.5),
                b.let(
                    "tokens0",
                    b.add(b.var("t1"), b.add(b.var("t2"), b.var("t3"))),
                    b.let("count0", 0.0, body),
                ),
            ),
        ),
    )


def counting_walk_program(threshold: float, step_scale: float, drift: float, max_steps: int) -> Term:
    """Count how many additive steps are needed to exceed ``threshold``.

    ``x`` starts at 0 and each step adds ``step_scale·U(0,1) − drift``; the
    program returns the number of steps taken before ``x > threshold`` (capped
    at ``max_steps``).  This is the shape of the ``example-book`` and
    ``example-cart`` benchmarks.
    """
    def step(level: int, position_var: str) -> Term:
        if level > max_steps:
            return b.const(float(max_steps))
        next_position = f"x{level}"
        return b.if_leq(
            threshold,
            b.var(position_var),
            b.const(float(level - 1)),
            b.let(
                next_position,
                b.add(b.var(position_var), b.sub(b.mul(step_scale, b.sample()), drift)),
                step(level + 1, next_position),
            ),
        )

    return b.let("x0", 0.0, step(1, "x0"))


def ckd_epi_program() -> Term:
    """A simplified CKD-EPI estimator with uncertain inputs (non-linear guards).

    Two log-scale eGFR estimates ``f1`` and ``f2`` are computed from an
    uncertain serum-creatinine measurement and an uncertain age; the program
    returns 1 when ``f1 ≤ 4.4`` and ``f2 ≥ 4.6`` (the conjunctive query of the
    original benchmark) and 0 otherwise.
    """
    scr = b.add(0.6, b.mul(0.2, b.sample()))  # serum creatinine in [0.6, 0.8]
    age = b.add(60.0, b.mul(10.0, b.sample()))  # age in [60, 70]
    f1 = b.add(
        4.50,
        b.sub(
            b.mul(-0.329, b.log(b.div(b.var("scr"), 0.7))),
            b.mul(0.012, b.sub(b.var("age"), 60.0)),
        ),
    )
    f2 = b.add(
        4.70,
        b.sub(
            b.mul(-0.411, b.log(b.div(b.var("scr"), 0.9))),
            b.mul(0.005, b.sub(b.var("age"), 60.0)),
        ),
    )
    inner = b.if_leq(
        b.var("f1"),
        4.4,
        b.if_leq(4.6, b.var("f2"), 1.0, 0.0),
        0.0,
    )
    return b.let("scr", scr, b.let("age", age, b.let("f1", f1, b.let("f2", f2, inner))))


def geometric_counter_program(stop_probability: float, max_rounds: int) -> Term:
    """Rounds until a uniform draw falls below ``stop_probability`` (recursive)."""
    loop = b.fix(
        "loop",
        "count",
        b.if_leq(
            float(max_rounds),
            b.var("count"),
            b.var("count"),
            b.if_leq(
                b.sample(),
                stop_probability,
                b.add(b.var("count"), 1.0),
                b.app(b.var("loop"), b.add(b.var("count"), 1.0)),
            ),
        ),
    )
    return b.app(loop, 0.0)


def sum_of_uniforms_program(scales: tuple[float, ...]) -> Term:
    """The sum of independently scaled uniform draws."""
    result: Term = b.const(0.0)
    for scale in scales:
        result = b.add(result, b.mul(scale, b.sample()))
    return result


def herman3_program() -> Term:
    """Herman's randomised self-stabilisation with 3 processes.

    The program returns the number of rounds until exactly one token remains;
    the initial configuration assigns a token to every process independently
    with probability 1/2.  (Stabilisation in zero rounds happens exactly when
    the initial configuration already has a single token, with probability
    3/8 = 0.375 — the value reported in the paper.)
    """
    def simulate_round(tokens_var: str, count_var: str, remaining: int) -> Term:
        if remaining == 0:
            return b.var(count_var)
        merged_tokens = f"h_tokens{remaining}"
        merged_count = f"h_count{remaining}"
        do_round = b.let(
            merged_tokens,
            b.choice(0.75, b.sub(b.var(tokens_var), 2.0), b.var(tokens_var)),
            b.let(
                merged_count,
                b.add(b.var(count_var), 1.0),
                simulate_round(merged_tokens, merged_count, remaining - 1),
            ),
        )
        # Stabilised exactly when a single token remains; zero tokens is a dead
        # configuration that never stabilises (return the round cap).
        return b.if_leq(
            b.var(tokens_var),
            1.0,
            b.if_leq(1.0, b.var(tokens_var), b.var(count_var), 3.0),
            do_round,
        )

    return b.let(
        "h1",
        b.flip(0.5),
        b.let(
            "h2",
            b.flip(0.5),
            b.let(
                "h3",
                b.flip(0.5),
                b.let(
                    "h_tokens0",
                    b.add(b.var("h1"), b.add(b.var("h2"), b.var("h3"))),
                    b.let("h_count0", 0.0, simulate_round("h_tokens0", "h_count0", 2)),
                ),
            ),
        ),
    )


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------

def probest_suite() -> list[ProbEstBenchmark]:
    """All Table 1 benchmarks (18 program/query pairs)."""
    below_zero = Interval(-math.inf, 0.0)
    suite: list[ProbEstBenchmark] = []

    tug_q1 = tug_of_war_program(("alice", "bob"), ("tom", "sally"))
    tug_q2 = tug_of_war_program(("alice", "sally"), ("bob", "tom"))
    suite.append(
        ProbEstBenchmark(
            name="tug-of-war",
            query="Q1",
            description="P(team tom/sally out-pulls team alice/bob)",
            program=tug_q1,
            target=Interval(0.0, math.inf),
            paper_tool56=(0.6126, 0.6227),
            paper_gubpi=(0.6134, 0.6135),
        )
    )
    suite.append(
        ProbEstBenchmark(
            name="tug-of-war",
            query="Q2",
            description="P(team bob/tom out-pulls team alice/sally)",
            program=tug_q2,
            target=Interval(0.0, math.inf),
            paper_tool56=(0.5973, 0.6266),
            paper_gubpi=(0.6134, 0.6135),
        )
    )
    suite.append(
        ProbEstBenchmark(
            name="beauquier-3",
            query="Q1",
            description="P(count < 1): protocol stabilises immediately",
            program=beauquier3_program(),
            target=Interval(-math.inf, 0.5),
            paper_tool56=(0.5000, 0.5261),
            paper_gubpi=(0.4999, 0.5001),
        )
    )
    book = counting_walk_program(threshold=0.5, step_scale=1.0, drift=0.0, max_steps=5)
    suite.append(
        ProbEstBenchmark(
            name="ex-book-s",
            query="Q1",
            description="P(count >= 2) for the additive counting walk",
            program=book,
            target=Interval(2.0, math.inf),
            paper_tool56=(0.6633, 0.7234),
            paper_gubpi=(0.7417, 0.7418),
        )
    )
    suite.append(
        ProbEstBenchmark(
            name="ex-book-s",
            query="Q2",
            description="P(count >= 4) for the additive counting walk",
            program=book,
            target=Interval(4.0, math.inf),
            paper_tool56=(0.3365, 0.3848),
            paper_gubpi=(0.4137, 0.4138),
        )
    )
    cart = counting_walk_program(threshold=1.0, step_scale=1.0, drift=0.3, max_steps=6)
    for query, target, tool56, gubpi in (
        ("Q1", Interval(1.0, math.inf), (0.8980, 1.1573), (0.9999, 1.0001)),
        ("Q2", Interval(2.0, math.inf), (0.8897, 1.1573), (0.9999, 1.0001)),
        ("Q3", Interval(4.0, math.inf), (0.0000, 0.1150), (0.0000, 0.0001)),
    ):
        suite.append(
            ProbEstBenchmark(
                name="ex-cart",
                query=query,
                description=f"P(count in {target!r}) for the drifting cart",
                program=cart,
                target=target,
                paper_tool56=tool56,
                paper_gubpi=gubpi,
            )
        )
    ckd = ckd_epi_program()
    suite.append(
        ProbEstBenchmark(
            name="ex-ckd-epi-s",
            query="Q1",
            description="P(f1 <= 4.4 and f2 >= 4.6) for the CKD-EPI estimator",
            program=ckd,
            target=Interval(0.5, 1.5),
            paper_tool56=(0.5515, 0.5632),
            paper_gubpi=(0.0003, 0.0004),
        )
    )
    ckd_q2 = ckd_epi_program()
    suite.append(
        ProbEstBenchmark(
            name="ex-ckd-epi-s",
            query="Q2",
            description="P(not (f1 <= 4.4 and f2 >= 4.6)) for the CKD-EPI estimator",
            program=ckd_q2,
            target=Interval(-0.5, 0.5),
            paper_tool56=(0.3019, 0.3149),
            paper_gubpi=(0.0003, 0.0004),
        )
    )
    fig6 = geometric_counter_program(stop_probability=0.25, max_rounds=12)
    for query, bound, tool56, gubpi in (
        ("Q1", 1.0, (0.1619, 0.7956), (0.1899, 0.1903)),
        ("Q2", 2.0, (0.2916, 1.0571), (0.3705, 0.3720)),
        ("Q3", 5.0, (0.4314, 2.0155), (0.7438, 0.7668)),
        ("Q4", 8.0, (0.4400, 3.0956), (0.8682, 0.9666)),
    ):
        suite.append(
            ProbEstBenchmark(
                name="ex-fig6",
                query=query,
                description=f"P(count <= {bound:g}) for the geometric counter",
                program=fig6,
                target=Interval(-math.inf, bound + 0.5),
                paper_tool56=tool56,
                paper_gubpi=gubpi,
            )
        )
    fig7 = sum_of_uniforms_program((500.0, 400.0, 200.0))
    suite.append(
        ProbEstBenchmark(
            name="ex-fig7",
            query="Q1",
            description="P(x <= 1000) for a sum of scaled uniforms",
            program=fig7,
            target=Interval(-math.inf, 1000.0),
            paper_tool56=(0.9921, 1.0000),
            paper_gubpi=(0.9980, 0.9981),
        )
    )
    example4 = b.sub(10.0, b.add(b.mul(10.0, b.sample()), b.mul(4.0, b.sample())))
    suite.append(
        ProbEstBenchmark(
            name="example4",
            query="Q1",
            description="P(x + y > 10), x ~ U(0,10), y ~ U(0,4)",
            program=example4,
            target=below_zero,
            paper_tool56=(0.1910, 0.1966),
            paper_gubpi=(0.1918, 0.1919),
        )
    )
    example5 = b.sub(
        b.add(b.mul(5.0, b.sample()), 10.0),
        b.add(b.mul(10.0, b.sample()), b.mul(10.0, b.sample())),
    )
    suite.append(
        ProbEstBenchmark(
            name="example5",
            query="Q1",
            description="P(x + y > z + 10), x, y ~ U(0,10), z ~ U(0,5)",
            program=example5,
            target=below_zero,
            paper_tool56=(0.4478, 0.4708),
            paper_gubpi=(0.4540, 0.4541),
        )
    )
    suite.append(
        ProbEstBenchmark(
            name="herman-3",
            query="Q1",
            description="P(count < 1): Herman's protocol stabilises immediately",
            program=herman3_program(),
            target=Interval(-math.inf, 0.5),
            paper_tool56=(0.3750, 0.4091),
            paper_gubpi=(0.3749, 0.3751),
        )
    )
    return suite


def benchmark_by_name(name: str, query: str) -> ProbEstBenchmark:
    """Look up a suite entry by benchmark name and query label."""
    for benchmark in probest_suite():
        if benchmark.name == name and benchmark.query == query:
            return benchmark
    raise KeyError(f"unknown benchmark {name}/{query}")
