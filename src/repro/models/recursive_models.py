"""Recursive models (paper Figure 6).

These programs use unbounded loops/recursion, which puts them outside the
scope of exact solvers such as PSI (which can only unroll them to a fixed
depth — visibly changing the posterior, Figs. 6a–6c).  GuBPI handles the
unbounded programs directly through its fixpoint summaries.

The six models mirror the six sub-figures:

* ``cav_example_7``     — geometric loop accumulating a value (PSI unrolls to depth 10);
* ``cav_example_5``     — an unbounded loop with soft conditioning;
* ``add_uniform_with_counter`` — accumulate uniforms until a threshold, return the counter;
* ``random_box_walk``   — cumulative distance of a biased random walk;
* ``growing_walk``      — a geometric random walk with growing steps, observed near 3;
* ``param_estimation_recursive`` — posterior over the step-direction bias of a walk
  observed to halt at location 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..intervals import Interval
from ..lang import builder as b
from ..lang.ast import Term

__all__ = [
    "RecursiveBenchmark",
    "cav_example_7",
    "cav_example_5",
    "add_uniform_with_counter",
    "random_box_walk",
    "growing_walk",
    "param_estimation_recursive",
    "recursive_suite",
]


@dataclass(frozen=True)
class RecursiveBenchmark:
    """A recursive model plus the histogram window used by the Fig. 6 harness."""

    name: str
    description: str
    program: Term
    histogram_low: float
    histogram_high: float
    buckets: int
    fixpoint_depth: int
    paper_seconds: float


def cav_example_7() -> Term:
    """A geometric loop that keeps adding 1 with probability 0.8 (unbounded).

    PSI analyses a version unrolled to a fixed depth, producing a spurious
    spike at the unrolling bound (Fig. 6a); the unbounded program's
    distribution is geometric.  The stopping decision is a native Bernoulli
    draw so that the very same program can also be fed to the exact
    enumeration engine (which then has to truncate the recursion, reproducing
    PSI's behaviour).
    """
    from ..distributions import Bernoulli
    from ..lang.ast import Sample

    loop = b.fix(
        "loop",
        "count",
        b.if_leq(
            Sample(Bernoulli(0.2)),
            0.0,
            b.app(b.var("loop"), b.add(b.var("count"), 1.0)),
            b.var("count"),
        ),
    )
    return b.app(loop, 0.0)


def cav_example_5() -> Term:
    """An unbounded loop with soft conditioning on the accumulated value.

    Each iteration adds a uniform step; the loop stops with probability 1/2
    per round; the accumulated value is observed near 1.5.  PSI cannot handle
    the unbounded loop at all (Fig. 6b).
    """
    loop = b.fix(
        "loop",
        "total",
        b.choice(
            0.5,
            b.var("total"),
            b.app(b.var("loop"), b.add(b.var("total"), b.sample())),
        ),
    )
    return b.let(
        "result",
        b.app(loop, 0.0),
        b.seq(b.observe_normal(1.5, 0.5, b.var("result")), b.var("result")),
    )


def add_uniform_with_counter(threshold: float = 2.0) -> Term:
    """Add uniform draws until their sum exceeds ``threshold``; return the counter.

    The PSI repository version bounds the loop; GuBPI analyses the unbounded
    program (Fig. 6c).
    """
    loop = b.fix(
        "loop",
        "total",
        b.lam(
            "count",
            b.if_leq(
                threshold,
                b.var("total"),
                b.var("count"),
                b.call(
                    b.var("loop"),
                    b.add(b.var("total"), b.sample()),
                    b.add(b.var("count"), 1.0),
                ),
            ),
        ),
    )
    return b.call(loop, 0.0, 0.0)


def random_box_walk(threshold: float = 1.0) -> Term:
    """Cumulative distance travelled by a biased random walk (Fig. 6d).

    A uniformly sampled step ``s`` moves left when ``s < 1/2`` and right
    otherwise; the walk stops once the position crosses ``threshold`` and the
    program returns the cumulative distance travelled.
    """
    loop = b.fix(
        "walk",
        "position",
        b.lam(
            "travelled",
            b.if_leq(
                threshold,
                b.var("position"),
                b.var("travelled"),
                b.let(
                    "step",
                    b.sample(),
                    b.if_leq(
                        b.var("step"),
                        0.5,
                        b.call(
                            b.var("walk"),
                            b.sub(b.var("position"), b.var("step")),
                            b.add(b.var("travelled"), b.var("step")),
                        ),
                        b.call(
                            b.var("walk"),
                            b.add(b.var("position"), b.var("step")),
                            b.add(b.var("travelled"), b.var("step")),
                        ),
                    ),
                ),
            ),
        ),
    )
    return b.call(loop, 0.0, 0.0)


def growing_walk(observed: float = 3.0, std: float = 0.5) -> Term:
    """A geometric random walk whose step size grows with the distance (Fig. 6e)."""
    loop = b.fix(
        "walk",
        "distance",
        b.choice(
            0.5,
            b.var("distance"),
            b.app(
                b.var("walk"),
                b.add(b.var("distance"), b.mul(b.add(1.0, b.mul(0.5, b.var("distance"))), b.sample())),
            ),
        ),
    )
    return b.let(
        "distance",
        b.app(loop, 0.0),
        b.seq(b.observe_normal(observed, std, b.var("distance")), b.var("distance")),
    )


def param_estimation_recursive(observed: float = 1.0, std: float = 0.5, max_position: float = 3.0) -> Term:
    """Posterior over the direction bias of a random walk observed to halt at 1 (Fig. 6f).

    A uniform prior ``p`` controls the probability of stepping left (towards
    0) versus right; the walk starts at 1 and halts when it reaches 0 or
    ``max_position``; the halting position is observed from a normal centred
    at ``observed``.
    """
    loop = b.fix(
        "walk",
        "position",
        b.if_leq(
            b.var("position"),
            0.0,
            b.var("position"),
            b.if_leq(
                max_position,
                b.var("position"),
                b.var("position"),
                b.if_leq(
                    b.sample(),
                    b.var("p"),
                    b.app(b.var("walk"), b.sub(b.var("position"), 1.0)),
                    b.app(b.var("walk"), b.add(b.var("position"), 1.0)),
                ),
            ),
        ),
    )
    return b.let(
        "p",
        b.sample(),
        b.let(
            "final",
            b.app(loop, 1.0),
            b.seq(b.observe_normal(observed, std, b.var("final")), b.var("p")),
        ),
    )


def recursive_suite() -> list[RecursiveBenchmark]:
    """The six Fig. 6 models with the harness parameters used to reproduce them."""
    return [
        RecursiveBenchmark(
            "cav-example-7", "geometric loop (PSI unrolls to depth 10)", cav_example_7(),
            0.0, 12.0, 12, 14, 112.0,
        ),
        RecursiveBenchmark(
            "cav-example-5", "unbounded loop with soft conditioning", cav_example_5(),
            0.0, 4.0, 8, 8, 192.0,
        ),
        RecursiveBenchmark(
            "add-uniform-with-counter", "uniform sum counter", add_uniform_with_counter(),
            0.0, 8.0, 8, 8, 21.0,
        ),
        RecursiveBenchmark(
            "random-box-walk", "cumulative distance of a biased walk", random_box_walk(),
            0.0, 4.0, 8, 6, 167.0,
        ),
        RecursiveBenchmark(
            "growing-walk", "geometric walk with growing steps", growing_walk(),
            0.0, 6.0, 8, 7, 67.0,
        ),
        RecursiveBenchmark(
            "param-estimation-recursive", "posterior over a walk's direction bias",
            param_estimation_recursive(), 0.0, 1.0, 8, 7, 162.0,
        ),
    ]
