"""Convex polytopes in halfspace representation.

The linear interval trace semantics (paper Section 6.4) reduces path
denotations to integrals over convex polytopes ``{α : A α ≤ b}``.  GuBPI uses
the external tools Vinci/LattE for exact volume computation and an LP solver
for bounding linear forms; this module provides both from scratch on top of
``scipy`` (with a pure-Python fallback for vertex enumeration):

* feasibility and Chebyshev centre via linear programming,
* exact bounds on a linear function over the polytope (:meth:`Polytope.bound_linear`),
* exact volume via halfspace intersection + convex hull, with sound
  ``[0, box volume]`` fallback bounds when the geometry degenerates.

All LPs run on the low-overhead HiGHS kernel (:mod:`repro.polytope.highs`)
when its binding is available: each polytope lazily prepares its constraint
system once and solves every objective (atom bounds, feasibility, Chebyshev)
against it.  The kernel is bit-identical to ``scipy.optimize.linprog`` by
construction, and ``linprog`` remains the automatic fallback.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy.optimize import linprog
from scipy.spatial import ConvexHull, HalfspaceIntersection, QhullError

from ..intervals import Interval
from . import highs as _highs

__all__ = ["Polytope", "PolytopeError"]

_FEASIBILITY_TOL = 1e-9


class PolytopeError(Exception):
    """Raised on malformed polytope operations."""


@dataclass(frozen=True)
class Polytope:
    """A polytope ``{x ∈ R^n : A x ≤ b}`` (always used with bounded boxes)."""

    a: np.ndarray
    b: np.ndarray

    def __post_init__(self) -> None:
        a = np.atleast_2d(np.asarray(self.a, dtype=float))
        b = np.asarray(self.b, dtype=float).reshape(-1)
        if a.shape[0] != b.shape[0]:
            raise PolytopeError("constraint matrix and right-hand side sizes differ")
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_box(bounds: Sequence[Interval]) -> "Polytope":
        """The axis-aligned box ``∏ [lo_i, hi_i]`` as a polytope."""
        dimension = len(bounds)
        rows: list[np.ndarray] = []
        rhs: list[float] = []
        for index, interval in enumerate(bounds):
            if interval.is_empty:
                # An empty box: encode an infeasible constraint 0 <= -1.
                rows.append(np.zeros(dimension))
                rhs.append(-1.0)
                continue
            if math.isfinite(interval.hi):
                row = np.zeros(dimension)
                row[index] = 1.0
                rows.append(row)
                rhs.append(interval.hi)
            if math.isfinite(interval.lo):
                row = np.zeros(dimension)
                row[index] = -1.0
                rows.append(row)
                rhs.append(-interval.lo)
        if not rows:
            rows.append(np.zeros(dimension))
            rhs.append(0.0)
        return Polytope(np.array(rows), np.array(rhs))

    def add_constraints(self, rows: Sequence[Sequence[float]], rhs: Sequence[float]) -> "Polytope":
        """A new polytope with additional constraints ``rows · x ≤ rhs``."""
        if len(rows) == 0:
            return self
        new_a = np.vstack([self.a, np.atleast_2d(np.asarray(rows, dtype=float))])
        new_b = np.concatenate([self.b, np.asarray(rhs, dtype=float).reshape(-1)])
        return Polytope(new_a, new_b)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self.a.shape[1]

    @property
    def constraint_count(self) -> int:
        return self.a.shape[0]

    def contains(self, point: Sequence[float], tolerance: float = 1e-9) -> bool:
        point = np.asarray(point, dtype=float)
        return bool(np.all(self.a @ point <= self.b + tolerance))

    def cache_key(self) -> tuple[bytes, bytes]:
        """The exact H-representation bytes ``(A.tobytes(), b.tobytes())``.

        Two polytopes share a key iff their float64 constraint data is
        bit-identical, which makes the key safe for cross-path geometry
        caches: every LP/Qhull computation on this class is a deterministic
        pure function of ``(A, b)``, so a cache hit returns the identical
        float64s a fresh computation would.  Memoised per instance.
        """
        key = self.__dict__.get("_cache_key")
        if key is None:
            key = (self.a.tobytes(), self.b.tobytes())
            object.__setattr__(self, "_cache_key", key)
        return key

    # ------------------------------------------------------------------
    # Linear programming
    # ------------------------------------------------------------------
    def bound_linear(self, coefficients: Sequence[float], constant: float = 0.0) -> Optional[Interval]:
        """Exact range of ``c·x + constant`` over the polytope (``None`` if empty)."""
        if self.dimension == 0:
            return None if self.is_empty() else Interval.point(constant)
        coefficients = np.asarray(coefficients, dtype=float)
        lower = self._optimise(coefficients, minimise=True)
        if lower is None:
            return None
        upper = self._optimise(coefficients, minimise=False)
        if upper is None:
            return None
        lo, hi = lower + constant, upper + constant
        if lo > hi:
            lo, hi = hi, lo
        return Interval(lo, hi)

    def prepared_lp(self) -> Optional["_highs.PreparedLP"]:
        """The polytope's constraint system, loaded into the HiGHS kernel once.

        ``None`` when the direct binding is unavailable (callers then take
        the ``linprog`` fallback).  Lazily built and memoised per instance,
        so every objective bounded over this polytope — atom sweeps,
        feasibility checks — shares one prepared model.
        """
        prepared = self.__dict__.get("_prepared_lp", False)
        if prepared is False:
            prepared = (
                _highs.PreparedLP(self.a, self.b) if _highs.kernel_available() else None
            )
            object.__setattr__(self, "_prepared_lp", prepared)
        return prepared

    def _optimise(self, coefficients: np.ndarray, minimise: bool) -> Optional[float]:
        sign = 1.0 if minimise else -1.0
        prepared = self.prepared_lp()
        if prepared is not None:
            fun = prepared.minimise(sign * coefficients)
            return None if fun is None else float(sign * fun)
        result = linprog(
            sign * coefficients,
            A_ub=self.a,
            b_ub=self.b,
            bounds=[(None, None)] * self.dimension,
            method="highs",
        )
        if result.status == 2:  # infeasible
            return None
        if not result.success:
            return None
        return float(sign * result.fun)

    def is_empty(self) -> bool:
        """Feasibility check via LP."""
        if self.dimension == 0:
            # A zero-dimensional polytope is the single point (); it is empty
            # exactly when some constraint ``0 <= b`` fails.
            return bool(np.any(self.b < 0.0))
        prepared = self.prepared_lp()
        if prepared is not None:
            status, _, _ = prepared.solve(np.zeros(self.dimension))
            return status == _highs.INFEASIBLE
        result = linprog(
            np.zeros(self.dimension),
            A_ub=self.a,
            b_ub=self.b,
            bounds=[(None, None)] * self.dimension,
            method="highs",
        )
        return result.status == 2

    def chebyshev_center(self) -> Optional[tuple[np.ndarray, float]]:
        """Centre and radius of the largest inscribed ball (``None`` if empty)."""
        if self.dimension == 0:
            return None if self.is_empty() else (np.zeros(0), math.inf)
        norms = np.linalg.norm(self.a, axis=1)
        objective = np.zeros(self.dimension + 1)
        objective[-1] = -1.0  # maximise the radius
        a_ub = np.hstack([self.a, norms.reshape(-1, 1)])
        if _highs.kernel_available():
            col_lower = np.concatenate([np.full(self.dimension, -np.inf), [0.0]])
            prepared = _highs.PreparedLP(a_ub, self.b, col_lower=col_lower)
            status, _, x = prepared.solve(objective)
            if status != _highs.OPTIMAL:
                return None
            x = np.asarray(x, dtype=float)
        else:
            result = linprog(
                objective,
                A_ub=a_ub,
                b_ub=self.b,
                bounds=[(None, None)] * self.dimension + [(0.0, None)],
                method="highs",
            )
            if not result.success:
                return None
            x = result.x
        center = np.asarray(x[:-1], dtype=float)
        radius = float(x[-1])
        return center, radius

    # ------------------------------------------------------------------
    # Volume
    # ------------------------------------------------------------------
    def vertices(
        self, center_radius: Optional[tuple[np.ndarray, float]] = None
    ) -> Optional[np.ndarray]:
        """Vertex enumeration via Qhull halfspace intersection (``None`` on failure).

        ``center_radius`` lets a caller that already solved the Chebyshev LP
        (e.g. :meth:`volume_bounds`) pass its result in instead of paying for
        the identical solve again.
        """
        if self.dimension == 0:
            return np.zeros((1, 0))
        if center_radius is None:
            center_radius = self.chebyshev_center()
        if center_radius is None:
            return None
        center, radius = center_radius
        if radius <= _FEASIBILITY_TOL:
            return None
        if self.dimension == 1:
            bound = self.bound_linear([1.0])
            if bound is None:
                return None
            return np.array([[bound.lo], [bound.hi]])
        halfspaces = np.hstack([self.a, -self.b.reshape(-1, 1)])
        try:
            intersection = HalfspaceIntersection(halfspaces, center)
            return np.asarray(intersection.intersections)
        except (QhullError, ValueError):
            return None

    def volume_bounds(self) -> Interval:
        """Sound bounds on the Lebesgue volume.

        The result is a point interval (the exact volume) in the regular case;
        when the polytope is lower-dimensional the volume is exactly 0; when
        Qhull fails on a genuinely full-dimensional polytope the fallback is
        ``[0, volume of the bounding box]``, which keeps every downstream
        bound sound (just less precise).
        """
        if self.dimension == 0:
            return Interval.point(0.0) if self.is_empty() else Interval.point(1.0)
        center_radius = self.chebyshev_center()
        if center_radius is None:
            return Interval.point(0.0)
        _, radius = center_radius
        if radius <= _FEASIBILITY_TOL:
            # Lower-dimensional (or empty): Lebesgue volume 0.
            return Interval.point(0.0)
        if self.dimension == 1:
            bound = self.bound_linear([1.0])
            if bound is None:
                return Interval.point(0.0)
            return Interval.point(bound.width)
        vertices = self.vertices(center_radius)
        if vertices is None or len(vertices) <= self.dimension:
            return Interval(0.0, self._bounding_box_volume())
        try:
            hull = ConvexHull(vertices, qhull_options="QJ")
            return Interval.point(float(hull.volume))
        except (QhullError, ValueError):
            return Interval(0.0, self._bounding_box_volume())

    def volume(self) -> float:
        """The exact volume when available, otherwise the sound upper bound."""
        return self.volume_bounds().hi

    def _bounding_box_volume(self) -> float:
        volume = 1.0
        for index in range(self.dimension):
            direction = np.zeros(self.dimension)
            direction[index] = 1.0
            bound = self.bound_linear(direction)
            if bound is None:
                return 0.0
            if not bound.is_bounded:
                return math.inf
            volume *= bound.width
        return volume
