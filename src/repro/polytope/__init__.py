"""Convex polytope substrate: feasibility, LP bounds and exact volumes."""

from .batch import BatchPolytope
from .highs import kernel_available
from .linear_bounds import bound_form, form_rows
from .polytope import Polytope, PolytopeError
from .vertex_enum import enumerate_vertices, volume_by_enumeration

__all__ = [
    "BatchPolytope",
    "Polytope",
    "PolytopeError",
    "enumerate_vertices",
    "volume_by_enumeration",
    "bound_form",
    "form_rows",
    "kernel_available",
]
