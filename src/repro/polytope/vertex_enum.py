"""Brute-force vertex enumeration and simplex-decomposition volume.

This is the pure-Python fallback / oracle for :class:`repro.polytope.Polytope`:
it enumerates all vertices of ``{x : A x ≤ b}`` by intersecting every choice of
``n`` constraint hyperplanes and keeping the feasible intersection points.
The cost is ``O(C(m, n) · n³)``, which is fine for the small path polytopes
used in tests but is not the production path (Qhull is).
"""

from __future__ import annotations

import itertools
import math
from typing import Optional

import numpy as np
from scipy.spatial import ConvexHull, QhullError

from .polytope import Polytope

__all__ = ["enumerate_vertices", "volume_by_enumeration"]


def enumerate_vertices(polytope: Polytope, tolerance: float = 1e-9) -> np.ndarray:
    """All vertices of the polytope (may be empty)."""
    dimension = polytope.dimension
    if dimension == 0:
        return np.zeros((0, 0))
    vertices: list[np.ndarray] = []
    rows = polytope.a
    rhs = polytope.b
    for subset in itertools.combinations(range(polytope.constraint_count), dimension):
        sub_a = rows[list(subset)]
        sub_b = rhs[list(subset)]
        if abs(np.linalg.det(sub_a)) < tolerance:
            continue
        point = np.linalg.solve(sub_a, sub_b)
        if polytope.contains(point, tolerance=1e-7):
            if not any(np.allclose(point, existing, atol=1e-7) for existing in vertices):
                vertices.append(point)
    if not vertices:
        return np.zeros((0, dimension))
    return np.vstack(vertices)


def volume_by_enumeration(polytope: Polytope) -> Optional[float]:
    """Exact volume via brute-force vertex enumeration (``None`` on failure)."""
    dimension = polytope.dimension
    vertices = enumerate_vertices(polytope)
    if len(vertices) == 0:
        return 0.0
    if dimension == 1:
        return float(vertices.max() - vertices.min())
    if len(vertices) <= dimension:
        return 0.0
    try:
        hull = ConvexHull(vertices, qhull_options="QJ")
    except (QhullError, ValueError):
        return None
    return float(hull.volume)
