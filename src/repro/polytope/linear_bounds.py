"""Bounding linear forms over polytopes.

The linear path analyser needs, for every linear score atom ``Z_j``, its range
over the path polytope (paper Section 6.4: "first computing a lower and upper
bound on each W_i over 𝔓 by solving a linear program").  This module bridges
between :class:`repro.symbolic.LinearForm` (sparse, interval constants) and the
dense LP interface of :class:`repro.polytope.Polytope`.
"""

from __future__ import annotations

from typing import Optional

from ..intervals import Interval
from ..symbolic.linear import LinearForm
from .polytope import Polytope

__all__ = ["bound_form", "form_rows"]


def bound_form(polytope: Polytope, form: LinearForm) -> Optional[Interval]:
    """The range of an interval-linear form over a polytope (``None`` if empty)."""
    base = polytope.bound_linear(form.as_dense(polytope.dimension))
    if base is None:
        return None
    return base + form.constant


def form_rows(
    form: LinearForm,
    dimension: int,
    upper: Optional[float] = None,
    lower: Optional[float] = None,
    for_lower_bound: bool = True,
) -> tuple[list[list[float]], list[float]]:
    """Constraint rows restricting a linear form to ``[lower, upper]``.

    ``for_lower_bound`` selects the universal reading (every point of the
    interval constant must satisfy the restriction — used for ``𝔓_lb``),
    otherwise the existential reading (``𝔓_ub``).  For a form
    ``w·α + [a, b]``:

    * universal  ``≤ u``: ``w·α + b ≤ u``;  existential ``≤ u``: ``w·α + a ≤ u``.
    * universal  ``≥ l``: ``w·α + a ≥ l``;  existential ``≥ l``: ``w·α + b ≥ l``.
    """
    rows: list[list[float]] = []
    rhs: list[float] = []
    dense = form.as_dense(dimension)
    constant_hi = form.constant.hi if for_lower_bound else form.constant.lo
    constant_lo = form.constant.lo if for_lower_bound else form.constant.hi
    if upper is not None:
        rows.append(list(dense))
        rhs.append(upper - constant_hi)
    if lower is not None:
        rows.append([-c for c in dense])
        rhs.append(constant_lo - lower)
    return rows, rhs
