"""Low-overhead deterministic LP kernel over scipy's vendored HiGHS.

Profiling the linear analyzer shows that ~80% of the time spent in
``scipy.optimize.linprog(method="highs")`` is Python wrapper overhead —
option validation, input cleaning and sparse re-construction — with only a
small fraction in the actual HiGHS solve.  The polytope substrate issues
thousands of small LPs per query (atom bounds, feasibility checks, Chebyshev
centres), so that overhead dominates the whole linear route.

This module drives the *same* vendored HiGHS binding that scipy ships
(``scipy.optimize._highspy``) directly:

* one ``_Highs`` solver instance per thread, with scipy's exact option set
  passed once (``presolve`` on, dual simplex, no logging) instead of being
  re-validated per call;
* a :class:`PreparedLP` per constraint system ``A x ≤ b``: the CSC structure
  is built once and many objectives are solved against it by mutating the
  model's cost vector and re-passing the model.

**Bit-identity contract**: every solve replaces the full model via
``passModel`` — exactly the cold-start path ``linprog`` takes — so the
returned objective values are bit-identical to ``linprog(c, A_ub=a, b_ub=b,
bounds=..., method="highs")``.  (Warm-starting via ``changeColsCost`` without
re-passing the model is measurably *not* bit-identical and is deliberately
not used.)  The contract is pinned by ``tests/test_linear_fast_path.py``.

When the private binding is unavailable (:func:`kernel_available` is false),
callers fall back to ``scipy.optimize.linprog`` — no new dependency is
introduced either way.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np
from scipy.sparse import csc_array

try:  # the binding is private to scipy; degrade gracefully if it moves
    import scipy.optimize._highspy._core as _core
    from scipy.optimize._highspy._core import simplex_constants as _simplex_constants
except ImportError:  # pragma: no cover - depends on the scipy build
    _core = None
    _simplex_constants = None

__all__ = ["PreparedLP", "kernel_available", "OPTIMAL", "INFEASIBLE", "FAILED"]

#: Solve outcomes, mirroring the scipy ``linprog`` status codes the polytope
#: layer branches on (0 = optimal, 2 = infeasible, 4 = anything else).
OPTIMAL = 0
INFEASIBLE = 2
FAILED = 4


def kernel_available() -> bool:
    """Whether the direct HiGHS binding can be used on this host."""
    return _core is not None


#: One solver instance per thread: the thread backend runs analyzers
#: concurrently and a ``_Highs`` object is not thread-safe, while per-thread
#: reuse keeps the option pass a one-time cost.
_STATE = threading.local()


def _highs_instance():
    highs = getattr(_STATE, "highs", None)
    if highs is None:
        options = _core.HighsOptions()
        # scipy's exact option set for linprog(method="highs") defaults —
        # matching it option-for-option is part of the bit-identity contract.
        options.presolve = "on"
        options.highs_debug_level = _core.HighsDebugLevel.kHighsDebugLevelNone
        options.log_to_console = False
        options.output_flag = False
        options.simplex_strategy = (
            _simplex_constants.SimplexStrategy.kSimplexStrategyDual
        )
        highs = _core._Highs()
        highs.passOptions(options)
        _STATE.highs = highs
    return highs


class PreparedLP:
    """A constraint system ``A x ≤ b`` loaded once, solved for many costs.

    The CSC encoding of ``A`` and the model skeleton (column/row bounds) are
    built once; :meth:`solve` swaps in an objective, re-passes the model to
    the per-thread solver and runs it.  Column bounds default to free
    variables (``linprog``'s ``bounds=[(None, None)] * n``); callers with
    partially bounded variables (e.g. the Chebyshev radius) pass explicit
    arrays.
    """

    __slots__ = ("_lp", "dimension")

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        col_lower: Optional[np.ndarray] = None,
        col_upper: Optional[np.ndarray] = None,
    ) -> None:
        a = np.atleast_2d(np.asarray(a, dtype=np.float64))
        b = np.asarray(b, dtype=np.float64).reshape(-1)
        rows, cols = a.shape
        sparse = csc_array(a)
        lp = _core.HighsLp()
        lp.num_col_ = cols
        lp.num_row_ = rows
        lp.a_matrix_.num_col_ = cols
        lp.a_matrix_.num_row_ = rows
        lp.a_matrix_.format_ = _core.MatrixFormat.kColwise
        lp.col_cost_ = np.zeros(cols)
        lp.col_lower_ = (
            np.full(cols, -np.inf) if col_lower is None
            else np.asarray(col_lower, dtype=np.float64)
        )
        lp.col_upper_ = (
            np.full(cols, np.inf) if col_upper is None
            else np.asarray(col_upper, dtype=np.float64)
        )
        lp.row_lower_ = np.full(rows, -np.inf)
        lp.row_upper_ = b
        lp.a_matrix_.start_ = sparse.indptr
        lp.a_matrix_.index_ = sparse.indices
        lp.a_matrix_.value_ = sparse.data
        self._lp = lp
        self.dimension = cols

    def solve(self, cost: np.ndarray):
        """Minimise ``cost · x`` subject to the prepared constraints.

        Returns ``(status, fun, x)``: the objective value and primal solution
        on :data:`OPTIMAL`, ``(status, None, None)`` otherwise.
        """
        highs = _highs_instance()
        lp = self._lp
        lp.col_cost_ = np.asarray(cost, dtype=np.float64)
        if highs.passModel(lp) == _core.HighsStatus.kError:
            return FAILED, None, None
        if highs.run() == _core.HighsStatus.kError:
            return FAILED, None, None
        status = highs.getModelStatus()
        if status == _core.HighsModelStatus.kInfeasible:
            return INFEASIBLE, None, None
        if status != _core.HighsModelStatus.kOptimal:
            return FAILED, None, None
        info = highs.getInfo()
        return OPTIMAL, info.objective_function_value, highs.getSolution().col_value

    def minimise(self, cost: np.ndarray) -> Optional[float]:
        """The minimum of ``cost · x``, or ``None`` when not optimal."""
        status, fun, _ = self.solve(cost)
        return None if status != OPTIMAL else fun
