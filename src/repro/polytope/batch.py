"""Batched LP bounding of many linear forms over one polytope.

The linear analyzer bounds every score atom over every target-restricted
polytope — 2 LPs per atom per polytope.  Issued through
``scipy.optimize.linprog`` each of those pays the full wrapper cost (option
validation, input cleaning, sparse construction); issued through
:class:`BatchPolytope` the polytope's constraint system is prepared once and
all objectives run against it on the direct HiGHS kernel
(:mod:`repro.polytope.highs`).

The results are bit-identical to calling :meth:`Polytope.bound_linear` per
form — :class:`BatchPolytope` goes through the exact same per-polytope
prepared model and result mapping, it just amortises the setup across the
batch.  When the kernel binding is unavailable every solve degrades to the
``linprog`` fallback inside :meth:`Polytope._optimise` automatically.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..intervals import Interval
from .polytope import Polytope

__all__ = ["BatchPolytope"]


class BatchPolytope:
    """Bounds many linear objectives over one polytope in one prepared sweep."""

    __slots__ = ("polytope",)

    def __init__(self, polytope: Polytope) -> None:
        self.polytope = polytope

    def bound_rows(
        self, rows: Sequence[Sequence[float]]
    ) -> list[Optional[Interval]]:
        """``[polytope.bound_linear(row) for row in rows]``, batched.

        One prepared model serves all ``2 * len(rows)`` solves.  Each entry
        is the exact range of ``row · x`` over the polytope, or ``None`` when
        the polytope is empty (every later entry is then ``None`` too, as an
        empty polytope bounds nothing).
        """
        polytope = self.polytope
        results: list[Optional[Interval]] = []
        infeasible = False
        for row in rows:
            if infeasible:
                results.append(None)
                continue
            bound = polytope.bound_linear(row)
            if bound is None:
                infeasible = True
            results.append(bound)
        return results

    def bound_rhs_variants(
        self,
        extra_rows: Sequence[Sequence[float]],
        rhs_variants: Sequence[Sequence[float]],
        cost: Sequence[float],
    ) -> list[Optional[Interval]]:
        """Range of ``cost · x`` over the polytope + ``extra_rows ≤ rhs`` per variant.

        All variants share one augmented constraint matrix — only the
        right-hand side differs — so each variant is a fresh
        :class:`Polytope` view over shared row structure.  Bit-identical to
        constructing and bounding each restricted polytope separately.
        """
        results: list[Optional[Interval]] = []
        for rhs in rhs_variants:
            restricted = (
                self.polytope.add_constraints(extra_rows, rhs)
                if len(extra_rows)
                else self.polytope
            )
            results.append(restricted.bound_linear(cost))
        return results

    def is_empty(self) -> bool:
        """Feasibility of the base polytope (shares the prepared model)."""
        return self.polytope.is_empty()

    def dense_objectives(self, forms, dimension: int) -> np.ndarray:
        """Dense ``(len(forms), dimension)`` objective matrix of linear forms."""
        out = np.zeros((len(forms), dimension))
        for index, form in enumerate(forms):
            for var, coeff in form.coeffs:
                if var >= dimension:
                    raise ValueError(
                        f"variable α_{var} outside dimension {dimension}"
                    )
                out[index, var] = coeff
        return out
