"""Symbolic (interval) paths — the output of symbolic execution.

A symbolic path ``Ψ = (V, n, Δ, Ξ)`` (paper Section 6.1) consists of the
symbolic result value ``V``, the number ``n`` of sample variables drawn along
the path, the branching constraints ``Δ`` and the symbolic score values ``Ξ``.
This reproduction additionally records, per sample variable, the primitive
distribution it was drawn from (``Uniform(0, 1)`` for a plain ``sample``),
which is how non-uniform samples are supported natively (Appendix E.1).

The path denotation ``⟦Ψ⟧(U)`` is the integral of the product of the scores
(times the priors of non-uniform samples) over the assignments that satisfy
the constraints and whose result lies in ``U``; its lower/upper variants
``⟦Ψ⟧_lb`` and ``⟦Ψ⟧_ub`` (Section 6.2) interpret interval constants
universally/existentially.  Those integrals are bounded by the analysers in
:mod:`repro.analysis`; this module only provides the data structure plus exact
*pointwise* evaluation, which the tests use to cross-check the bounds against
Monte Carlo estimates.

Paths are the unit of work of the parallel bound engine
(:mod:`repro.analysis.parallel`): every field is a plain immutable value
(symbolic expressions, distribution records, constraint tuples), so a
``SymbolicPath`` pickles losslessly into process-pool payloads.  Keep it that
way — never attach closures, environments or open resources to a path.
:meth:`SymbolicPath.analysis_cost_hint` provides the deterministic cost
estimate the engine uses to balance chunk boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..distributions import Distribution, Uniform
from ..intervals import Interval
from .linear import LinearForm, extract_linear
from .value import (
    SymExpr,
    evaluate,
    evaluate_interval,
    sample_variables,
    uses_variables_at_most_once,
)

__all__ = ["Relation", "SymConstraint", "SymbolicPath"]


class Relation:
    """Constraint relations against zero."""

    LEQ = "leq"  # expr <= 0
    LT = "lt"  # expr <  0
    GT = "gt"  # expr >  0
    GEQ = "geq"  # expr >= 0

    ALL = (LEQ, LT, GT, GEQ)


@dataclass(frozen=True)
class SymConstraint:
    """A branching constraint ``expr ⊲⊳ 0``."""

    expr: SymExpr
    relation: str

    def __post_init__(self) -> None:
        if self.relation not in Relation.ALL:
            raise ValueError(f"unknown relation {self.relation!r}")

    def holds(self, value: float) -> bool:
        if self.relation == Relation.LEQ:
            return value <= 0.0
        if self.relation == Relation.LT:
            return value < 0.0
        if self.relation == Relation.GT:
            return value > 0.0
        return value >= 0.0

    def holds_forall(self, values: Interval) -> bool:
        """``∀ t ∈ values. t ⊲⊳ 0`` (used by lower bounds)."""
        if values.is_empty:
            return False
        if self.relation == Relation.LEQ:
            return values.hi <= 0.0
        if self.relation == Relation.LT:
            return values.hi < 0.0
        if self.relation == Relation.GT:
            return values.lo > 0.0
        return values.lo >= 0.0

    def holds_exists(self, values: Interval) -> bool:
        """``∃ t ∈ values. t ⊲⊳ 0`` (used by upper bounds)."""
        if values.is_empty:
            return False
        if self.relation == Relation.LEQ:
            return values.lo <= 0.0
        if self.relation == Relation.LT:
            return values.lo < 0.0
        if self.relation == Relation.GT:
            return values.hi > 0.0
        return values.hi >= 0.0

    @property
    def upper_bounding(self) -> bool:
        """True for ``<=`` / ``<`` constraints (the expression is bounded above by 0)."""
        return self.relation in (Relation.LEQ, Relation.LT)


@dataclass(frozen=True)
class SymbolicPath:
    """One symbolic (interval) path through a program."""

    result: SymExpr
    variable_count: int
    distributions: tuple[Distribution, ...]
    constraints: tuple[SymConstraint, ...]
    scores: tuple[SymExpr, ...]
    truncated: bool = False

    def __post_init__(self) -> None:
        if len(self.distributions) != self.variable_count:
            raise ValueError("one distribution per sample variable is required")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def variable_domains(self) -> list[Interval]:
        """Support of every sample variable (the integration domain)."""
        return [dist.support() for dist in self.distributions]

    def non_uniform_variables(self) -> list[int]:
        """Indices of sample variables with a non-uniform(0,1) prior."""
        return [
            index
            for index, dist in enumerate(self.distributions)
            if not (isinstance(dist, Uniform) and dist.low == 0.0 and dist.high == 1.0)
        ]

    @property
    def is_linear(self) -> bool:
        """All constraints and the result value are interval-linear."""
        if extract_linear(self.result) is None:
            return False
        return all(extract_linear(c.expr) is not None for c in self.constraints)

    def linear_constraints(self) -> list[tuple[LinearForm, str]]:
        """The constraints as linear forms (requires :attr:`is_linear`)."""
        forms = []
        for constraint in self.constraints:
            form = extract_linear(constraint.expr)
            if form is None:
                raise ValueError("path has a non-linear constraint")
            forms.append((form, constraint.relation))
        return forms

    def expressions(self) -> tuple[SymExpr, ...]:
        """Every symbolic expression of the path, in canonical order.

        The order (result, constraint expressions, scores) matches the field
        order the arena encoder (:mod:`repro.symbolic.arena`) serialises, so
        structural walks over a path visit nodes in the same sequence the
        columnar encoding stores them.
        """
        return (self.result, *(c.expr for c in self.constraints), *self.scores)

    def satisfies_single_use_assumption(self) -> bool:
        """Completeness Assumption 1 (Appendix C.3) for this path."""
        return all(uses_variables_at_most_once(expr) for expr in self.expressions())

    def analysis_cost_hint(self) -> float:
        """A rough, deterministic estimate of this path's analysis cost.

        Used by :func:`repro.analysis.parallel.partition_paths` to balance
        chunk boundaries: box-grid analysis is exponential in the number of
        sample variables and linear in constraints and scores, so paths with
        many draws dominate a workload.  Only the *relative* magnitude
        matters; the estimate depends on nothing but the path structure, so
        every run partitions identically.
        """
        structure = 1.0 + len(self.constraints) + 2.0 * len(self.scores)
        return structure * (1.0 + float(self.variable_count) ** 2)

    # ------------------------------------------------------------------
    # Pointwise (concrete) evaluation — used for Monte Carlo cross-checks
    # ------------------------------------------------------------------
    def satisfied_by(self, assignment: Sequence[float]) -> bool:
        try:
            return all(c.holds(evaluate(c.expr, assignment)) for c in self.constraints)
        except ValueError:
            # Interval constants on a truncated path: pointwise evaluation is
            # undefined; such paths never count as concretely satisfied.
            return False

    def weight_at(self, assignment: Sequence[float]) -> float:
        weight = 1.0
        for score in self.scores:
            weight *= evaluate(score, assignment)
        return weight

    def prior_density_at(self, assignment: Sequence[float]) -> float:
        density = 1.0
        for value, dist in zip(assignment, self.distributions):
            density *= dist.pdf(value)
        return density

    def value_at(self, assignment: Sequence[float]) -> float:
        return evaluate(self.result, assignment)

    def integrand_at(self, assignment: Sequence[float], target: Optional[Interval] = None) -> float:
        """The path integrand at a point of the sample space."""
        if not self.satisfied_by(assignment):
            return 0.0
        if target is not None and self.value_at(assignment) not in target:
            return 0.0
        return self.weight_at(assignment) * self.prior_density_at(assignment)

    def monte_carlo_estimate(
        self,
        target: Optional[Interval],
        samples: int,
        rng: np.random.Generator,
    ) -> float:
        """A simple Monte Carlo estimate of ``⟦Ψ⟧(target)`` (testing aid)."""
        if self.variable_count == 0:
            return self.integrand_at((), target)
        total = 0.0
        for _ in range(samples):
            assignment = [dist.sample(rng) for dist in self.distributions]
            if not self.satisfied_by(assignment):
                continue
            if target is not None and self.value_at(assignment) not in target:
                continue
            total += self.weight_at(assignment)
        return total / samples

    # ------------------------------------------------------------------
    # Interval evaluation helpers
    # ------------------------------------------------------------------
    def result_interval(self, bounds: Optional[Sequence[Interval]] = None) -> Interval:
        bounds = list(bounds) if bounds is not None else self.variable_domains()
        return evaluate_interval(self.result, bounds)

    def describe(self) -> str:
        """A short human-readable summary (used in logs and examples)."""
        return (
            f"SymbolicPath(n={self.variable_count}, constraints={len(self.constraints)}, "
            f"scores={len(self.scores)}, linear={self.is_linear}, truncated={self.truncated})"
        )
