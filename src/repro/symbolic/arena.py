"""Columnar, zero-copy arena encoding of symbolic path sets.

Process workers of the parallel bound engine historically received every
chunk as a *pickled object graph*: structural interning
(:mod:`repro.symbolic.intern`) shrinks the payload ~3×, yet each query
re-serialises the same 50k-path workload chunk by chunk — pickling the same
expression trees again for every query on the cached worker pool.

This module replaces that object graph with a *flat arena*: the whole path
set is packed once into contiguous NumPy buffers —

* a **node table** for the expression DAG (kind / payload columns plus a
  flattened child-index table): structurally shared sub-expressions are
  stored once and referenced by node id, so the arena is never larger than
  an interned pickle and has no per-object pickling overhead;
* **per-path tables** (result node, flags, CSR-style offset spans for
  constraints, scores and sample-variable distributions);
* a tiny pickled **header** holding the buffer directory, the primitive-op
  name table and the (heavily shared, deduplicated) distribution records.

The byte image is position-independent: written once into a
``multiprocessing.shared_memory`` segment it can be attached by any worker
and decoded *lazily* — :meth:`PathArena.decode_range` materialises only the
paths of one chunk, memoising decoded nodes per attachment so consecutive
chunks of the same segment share their common sub-expressions for free.

Encoding and decoding are exact: every float travels as an IEEE-754 double
in a ``float64`` column, so a decode round-trip reproduces paths that
compare equal to the originals and the bound engine's results stay
**bit-identical** across transports.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..distributions import Distribution
from .intern import intern_paths
from .paths import Relation, SymConstraint, SymbolicPath
from .value import SAtom, SConst, SPrim, SVar, SymExpr
from ..intervals import Interval

__all__ = ["ArenaFormatError", "PathArena", "encode_paths", "estimate_arena_bytes"]

#: Bump when the buffer layout changes; decoders refuse other versions.
_ARENA_VERSION = 1

#: Expression node kinds (values of the ``node_kind`` column).
_KIND_VAR = 0
_KIND_CONST = 1
_KIND_ATOM = 2
_KIND_PRIM = 3

#: ``struct`` format of the fixed-size prelude: magic, version, header length.
_PRELUDE = struct.Struct("<4sIQ")
_MAGIC = b"RPA1"

#: The buffer directory: ``(name, dtype)`` in serialisation order.  Offsets
#: are computed from the lengths recorded in the header, so the layout stays
#: self-describing.
_BUFFERS = (
    ("node_kind", np.uint8),
    ("node_ia", np.int32),  # SVar/SAtom index, SPrim op id
    ("node_ib", np.int32),  # SPrim child-span start
    ("node_ic", np.int32),  # SPrim child count
    ("const_lo", np.float64),
    ("const_hi", np.float64),
    ("children", np.int32),
    ("path_result", np.int32),
    ("path_flags", np.uint8),
    ("dist_offsets", np.int64),  # len == path_count + 1
    ("dist_ids", np.int32),
    ("constraint_offsets", np.int64),  # len == path_count + 1
    ("constraint_exprs", np.int32),
    ("constraint_rels", np.uint8),
    ("score_offsets", np.int64),  # len == path_count + 1
    ("score_exprs", np.int32),
)

#: Rough per-record byte costs used by :func:`estimate_arena_bytes` — the
#: fixed-width columns above plus slack for the header pickle.  Only the
#: *relative* magnitude matters (the stream-cache budget check), so the
#: estimate deliberately rounds up.
_NODE_BYTES = 32
_CHILD_BYTES = 4
_PATH_BYTES = 64
_DIST_BYTES = 96


class ArenaFormatError(ValueError):
    """The byte image is not a valid (or compatible) path arena."""


def estimate_arena_bytes(node_count: int, path_count: int, child_count: int = 0) -> int:
    """An upper-ish estimate of the encoded size of a path set.

    Used by the streamed-query cache tee to enforce its memory budget
    *before* materialising anything: the caller tracks unique interned nodes
    and paths incrementally (see
    :class:`repro.symbolic.intern.PathInterner`) and abandons the tee when
    this estimate exceeds ``stream_cache_budget``.
    """
    return (
        node_count * _NODE_BYTES
        + child_count * _CHILD_BYTES
        + path_count * _PATH_BYTES
        + 4096
    )


class _ArenaWriter:
    """Accumulates the columnar tables while walking a path set."""

    def __init__(self) -> None:
        self.node_kind: list[int] = []
        self.node_ia: list[int] = []
        self.node_ib: list[int] = []
        self.node_ic: list[int] = []
        self.const_lo: list[float] = []
        self.const_hi: list[float] = []
        self.children: list[int] = []
        self.ops: list[str] = []
        self._op_ids: Dict[str, int] = {}
        self.dists: list[Distribution] = []
        self._dist_ids: Dict[Distribution, int] = {}
        #: id(interned node) -> node id.  Interning makes structurally equal
        #: expressions the same object, so identity hashing suffices and the
        #: arena inherits the full DAG sharing of the interned path set.
        self._node_ids: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def op_id(self, op: str) -> int:
        op_id = self._op_ids.get(op)
        if op_id is None:
            op_id = self._op_ids[op] = len(self.ops)
            self.ops.append(op)
        return op_id

    def dist_id(self, dist: Distribution) -> int:
        dist_id = self._dist_ids.get(dist)
        if dist_id is None:
            dist_id = self._dist_ids[dist] = len(self.dists)
            self.dists.append(dist)
        return dist_id

    def _emit(self, kind: int, ia: int, ib: int, ic: int, lo: float, hi: float) -> int:
        node_id = len(self.node_kind)
        self.node_kind.append(kind)
        self.node_ia.append(ia)
        self.node_ib.append(ib)
        self.node_ic.append(ic)
        self.const_lo.append(lo)
        self.const_hi.append(hi)
        return node_id

    def add_expr(self, expr: SymExpr) -> int:
        """The node id of ``expr``, emitting its subtree on first sight.

        Children are emitted before their parent (an explicit post-order
        stack, so recursion depth never limits expression depth); node ids
        therefore increase topologically, which is what lets the decoder
        rebuild nodes in one forward pass when it wants to.
        """
        top = self._node_ids.get(id(expr))
        if top is not None:
            return top
        stack: list[tuple[SymExpr, bool]] = [(expr, False)]
        while stack:
            node, expanded = stack.pop()
            node_id = self._node_ids.get(id(node))
            if node_id is not None:
                continue
            if isinstance(node, SPrim) and not expanded:
                stack.append((node, True))
                for arg in reversed(node.args):
                    stack.append((arg, False))
                continue
            if isinstance(node, SVar):
                node_id = self._emit(_KIND_VAR, node.index, 0, 0, 0.0, 0.0)
            elif isinstance(node, SConst):
                node_id = self._emit(
                    _KIND_CONST, 0, 0, 0, node.interval.lo, node.interval.hi
                )
            elif isinstance(node, SAtom):
                node_id = self._emit(_KIND_ATOM, node.index, 0, 0, 0.0, 0.0)
            elif isinstance(node, SPrim):
                child_ids = [self._node_ids[id(arg)] for arg in node.args]
                start = len(self.children)
                self.children.extend(child_ids)
                node_id = self._emit(
                    _KIND_PRIM, self.op_id(node.op), start, len(child_ids), 0.0, 0.0
                )
            else:
                raise TypeError(f"cannot encode symbolic expression {node!r}")
            self._node_ids[id(node)] = node_id
        return self._node_ids[id(expr)]


def encode_paths(paths: Sequence[SymbolicPath], intern: bool = True) -> bytes:
    """Pack ``paths`` into a flat arena byte image.

    ``intern`` (the default) structurally interns the paths first so that
    equal-but-distinct subtrees collapse into shared arena nodes; pass
    ``False`` when the paths are already interned against one memo (e.g. by
    the streamed-query cache tee).
    """
    if intern:
        paths = intern_paths(paths)
    writer = _ArenaWriter()
    path_result: list[int] = []
    path_flags: list[int] = []
    dist_offsets: list[int] = [0]
    dist_ids: list[int] = []
    constraint_offsets: list[int] = [0]
    constraint_exprs: list[int] = []
    constraint_rels: list[int] = []
    score_offsets: list[int] = [0]
    score_exprs: list[int] = []

    relation_ids = {relation: index for index, relation in enumerate(Relation.ALL)}
    for path in paths:
        path_result.append(writer.add_expr(path.result))
        path_flags.append(1 if path.truncated else 0)
        dist_ids.extend(writer.dist_id(dist) for dist in path.distributions)
        dist_offsets.append(len(dist_ids))
        for constraint in path.constraints:
            constraint_exprs.append(writer.add_expr(constraint.expr))
            constraint_rels.append(relation_ids[constraint.relation])
        constraint_offsets.append(len(constraint_exprs))
        score_exprs.extend(writer.add_expr(score) for score in path.scores)
        score_offsets.append(len(score_exprs))

    arrays = {
        "node_kind": writer.node_kind,
        "node_ia": writer.node_ia,
        "node_ib": writer.node_ib,
        "node_ic": writer.node_ic,
        "const_lo": writer.const_lo,
        "const_hi": writer.const_hi,
        "children": writer.children,
        "path_result": path_result,
        "path_flags": path_flags,
        "dist_offsets": dist_offsets,
        "dist_ids": dist_ids,
        "constraint_offsets": constraint_offsets,
        "constraint_exprs": constraint_exprs,
        "constraint_rels": constraint_rels,
        "score_offsets": score_offsets,
        "score_exprs": score_exprs,
    }
    buffers = [
        np.asarray(arrays[name], dtype=dtype) for name, dtype in _BUFFERS
    ]
    header = pickle.dumps(
        {
            "version": _ARENA_VERSION,
            "path_count": len(paths),
            "lengths": [len(buffer) for buffer in buffers],
            "ops": tuple(writer.ops),
            # Unique distribution records: heavily shared by construction
            # (branch states copy the *list*), so this pickles a handful of
            # parameter tuples, not a per-path graph.
            "dists": tuple(writer.dists),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    parts = [_PRELUDE.pack(_MAGIC, _ARENA_VERSION, len(header)), header]
    offset = _PRELUDE.size + len(header)
    for buffer in buffers:
        pad = (-offset) % 8
        parts.append(b"\0" * pad)
        data = buffer.tobytes()
        parts.append(data)
        offset += pad + len(data)
    return b"".join(parts)


@dataclass
class PathArena:
    """A decoded *view* of an arena byte image (zero-copy over the buffers).

    Construct with :meth:`from_buffer` over any buffer — typically the
    ``buf`` of an attached ``multiprocessing.shared_memory`` segment.  The
    NumPy columns are views into that buffer; nothing is copied until a
    path is actually decoded.  ``keep_alive`` pins the object owning the
    buffer (the ``SharedMemory`` handle) for the arena's lifetime;
    :meth:`release` drops every view so the segment can be closed safely.
    """

    path_count: int
    _columns: Dict[str, np.ndarray]
    _ops: tuple[str, ...]
    _dists: tuple[Distribution, ...]
    _keep_alive: object = None

    # Decoded-node memo: node id -> SymExpr, shared across decode calls so
    # chunks decoded from the same attachment share their sub-expressions.
    def __post_init__(self) -> None:
        self._nodes: Dict[int, SymExpr] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_buffer(cls, buffer, keep_alive: object = None) -> "PathArena":
        """Attach to an arena byte image without copying its buffers."""
        view = memoryview(buffer).cast("B")
        if len(view) < _PRELUDE.size:
            raise ArenaFormatError("buffer too small for a path arena")
        magic, version, header_len = _PRELUDE.unpack_from(view, 0)
        if magic != _MAGIC:
            raise ArenaFormatError("bad arena magic; not a path-arena image")
        if version != _ARENA_VERSION:
            raise ArenaFormatError(
                f"unsupported arena version {version} (expected {_ARENA_VERSION})"
            )
        header_end = _PRELUDE.size + header_len
        header = pickle.loads(bytes(view[_PRELUDE.size : header_end]))
        lengths = header["lengths"]
        if len(lengths) != len(_BUFFERS):
            raise ArenaFormatError("arena buffer directory length mismatch")
        columns: Dict[str, np.ndarray] = {}
        offset = header_end
        for (name, dtype), length in zip(_BUFFERS, lengths):
            offset += (-offset) % 8
            nbytes = int(length) * np.dtype(dtype).itemsize
            if offset + nbytes > len(view):
                raise ArenaFormatError("truncated arena buffer")
            columns[name] = np.frombuffer(view, dtype=dtype, count=length, offset=offset)
            offset += nbytes
        return cls(
            path_count=int(header["path_count"]),
            _columns=columns,
            _ops=tuple(header["ops"]),
            _dists=tuple(header["dists"]),
            _keep_alive=keep_alive,
        )

    def release(self) -> None:
        """Drop every buffer view (required before closing a shm segment)."""
        self._columns = {}
        self._nodes = {}
        self._keep_alive = None

    # ------------------------------------------------------------------
    def _decode_expr(self, node_id: int) -> SymExpr:
        memo = self._nodes
        done = memo.get(node_id)
        if done is not None:
            return done
        kind = self._columns["node_kind"]
        ia = self._columns["node_ia"]
        ib = self._columns["node_ib"]
        ic = self._columns["node_ic"]
        lo = self._columns["const_lo"]
        hi = self._columns["const_hi"]
        children = self._columns["children"]
        # Explicit post-order stack: children materialise before parents, so
        # expression depth never hits the interpreter recursion limit.
        stack: list[tuple[int, bool]] = [(node_id, False)]
        while stack:
            current, expanded = stack.pop()
            if current in memo:
                continue
            node_kind = int(kind[current])
            if node_kind == _KIND_PRIM and not expanded:
                stack.append((current, True))
                start = int(ib[current])
                for child in children[start : start + int(ic[current])]:
                    stack.append((int(child), False))
                continue
            if node_kind == _KIND_VAR:
                memo[current] = SVar(int(ia[current]))
            elif node_kind == _KIND_CONST:
                memo[current] = SConst(Interval(float(lo[current]), float(hi[current])))
            elif node_kind == _KIND_ATOM:
                memo[current] = SAtom(int(ia[current]))
            elif node_kind == _KIND_PRIM:
                start = int(ib[current])
                args = tuple(
                    memo[int(child)]
                    for child in children[start : start + int(ic[current])]
                )
                memo[current] = SPrim(self._ops[int(ia[current])], args)
            else:
                raise ArenaFormatError(f"unknown arena node kind {node_kind}")
        return memo[node_id]

    def decode_path(self, index: int) -> SymbolicPath:
        """Materialise one path from the arena tables."""
        if not 0 <= index < self.path_count:
            raise IndexError(f"path index {index} out of range [0, {self.path_count})")
        cols = self._columns
        dist_start = int(cols["dist_offsets"][index])
        dist_stop = int(cols["dist_offsets"][index + 1])
        distributions = tuple(
            self._dists[int(dist_id)] for dist_id in cols["dist_ids"][dist_start:dist_stop]
        )
        con_start = int(cols["constraint_offsets"][index])
        con_stop = int(cols["constraint_offsets"][index + 1])
        constraints = tuple(
            SymConstraint(
                self._decode_expr(int(expr_id)), Relation.ALL[int(relation_id)]
            )
            for expr_id, relation_id in zip(
                cols["constraint_exprs"][con_start:con_stop],
                cols["constraint_rels"][con_start:con_stop],
            )
        )
        score_start = int(cols["score_offsets"][index])
        score_stop = int(cols["score_offsets"][index + 1])
        scores = tuple(
            self._decode_expr(int(expr_id))
            for expr_id in cols["score_exprs"][score_start:score_stop]
        )
        return SymbolicPath(
            result=self._decode_expr(int(cols["path_result"][index])),
            variable_count=len(distributions),
            distributions=distributions,
            constraints=constraints,
            scores=scores,
            truncated=bool(cols["path_flags"][index]),
        )

    def decode_range(self, start: int, stop: Optional[int] = None) -> tuple[SymbolicPath, ...]:
        """Materialise the paths ``[start, stop)`` (a dispatch chunk)."""
        if stop is None:
            stop = self.path_count
        return tuple(self.decode_path(index) for index in range(start, stop))

    def decode_all(self) -> tuple[SymbolicPath, ...]:
        return self.decode_range(0, self.path_count)
