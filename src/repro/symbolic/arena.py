"""The columnar path-set core: ``PathTable`` and its incremental builder.

A **path table** is the canonical columnar representation of a symbolic
path set, used end to end by the bound engine:

* symbolic execution's collectors (the batch ``run()`` materialiser and the
  streamed-query cache tee) accumulate paths into a
  :class:`PathTableBuilder`, which interns every expression structurally as
  it arrives and grows the columns incrementally;
* the process dispatch transport serialises the same columns to a flat,
  position-independent byte image (:meth:`PathTable.to_bytes`) that a
  ``multiprocessing.shared_memory`` segment merely *backs* — the segment is
  one store for the bytes, not a separate format;
* analyzers with a columnar fast path (``analyze_table``) sweep the node
  and CSR arrays directly, never materialising ``SymbolicPath`` objects.

The columns are:

* a **node table** for the expression DAG (kind / payload columns plus a
  flattened child-index table): structurally shared sub-expressions are
  stored once and referenced by node id, so the table is never larger than
  an interned pickle and has no per-object pickling overhead;
* **per-path tables** (result node, flags, CSR-style offset spans for
  constraints, scores and sample-variable distributions);
* a tiny pickled **header** holding the buffer directory, the primitive-op
  name table and the (heavily shared, deduplicated) distribution records.

The byte image is position-independent: written once into a shared-memory
segment it can be attached by any worker and decoded *lazily* —
:meth:`PathTable.decode_range` materialises only the paths of one chunk,
memoising decoded nodes per attachment so consecutive chunks of the same
segment share their common sub-expressions for free.  ``PathTable.scratch``
additionally gives analyzers a per-table memo space (e.g. linear forms per
node id) that survives across chunks and queries of one attachment.

Encoding and decoding are exact: every float travels as an IEEE-754 double
in a ``float64`` column, so a decode round-trip reproduces paths that
compare equal to the originals and the bound engine's results stay
**bit-identical** across transports and analyzer fast paths.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..distributions import Distribution
from .intern import intern_path
from .paths import Relation, SymConstraint, SymbolicPath
from .value import SAtom, SConst, SPrim, SVar, SymExpr
from ..intervals import Interval

__all__ = [
    "ArenaFormatError",
    "KIND_ATOM",
    "KIND_CONST",
    "KIND_PRIM",
    "KIND_VAR",
    "PathArena",
    "PathTable",
    "PathTableBuilder",
    "encode_paths",
    "estimate_arena_bytes",
]

#: Bump when the buffer layout changes; decoders refuse other versions.
_ARENA_VERSION = 1

#: Expression node kinds (values of the ``node_kind`` column).  Public —
#: columnar consumers (:mod:`repro.analysis.vectorize`) walk the node table
#: directly.
KIND_VAR = 0
KIND_CONST = 1
KIND_ATOM = 2
KIND_PRIM = 3

# Internal aliases (the encoder/decoder below predates the public names).
_KIND_VAR = KIND_VAR
_KIND_CONST = KIND_CONST
_KIND_ATOM = KIND_ATOM
_KIND_PRIM = KIND_PRIM

#: ``struct`` format of the fixed-size prelude: magic, version, header length.
_PRELUDE = struct.Struct("<4sIQ")
_MAGIC = b"RPA1"

#: The buffer directory: ``(name, dtype)`` in serialisation order.  Offsets
#: are computed from the lengths recorded in the header, so the layout stays
#: self-describing.
_BUFFERS = (
    ("node_kind", np.uint8),
    ("node_ia", np.int32),  # SVar/SAtom index, SPrim op id
    ("node_ib", np.int32),  # SPrim child-span start
    ("node_ic", np.int32),  # SPrim child count
    ("const_lo", np.float64),
    ("const_hi", np.float64),
    ("children", np.int32),
    ("path_result", np.int32),
    ("path_flags", np.uint8),
    ("dist_offsets", np.int64),  # len == path_count + 1
    ("dist_ids", np.int32),
    ("constraint_offsets", np.int64),  # len == path_count + 1
    ("constraint_exprs", np.int32),
    ("constraint_rels", np.uint8),
    ("score_offsets", np.int64),  # len == path_count + 1
    ("score_exprs", np.int32),
)

#: Rough per-record byte costs used by :func:`estimate_arena_bytes` — the
#: fixed-width columns above plus slack for the header pickle.  Only the
#: *relative* magnitude matters (the stream-cache budget check), so the
#: estimate deliberately rounds up.
_NODE_BYTES = 32
_CHILD_BYTES = 4
_PATH_BYTES = 64
_DIST_BYTES = 96


class ArenaFormatError(ValueError):
    """The byte image is not a valid (or compatible) path table."""


def estimate_arena_bytes(node_count: int, path_count: int, child_count: int = 0) -> int:
    """An upper-ish estimate of the encoded size of a path set.

    Used by the streamed-query cache tee to enforce its memory budget
    *before* materialising anything: the caller tracks unique interned nodes
    and paths incrementally (see :class:`PathTableBuilder`) and abandons the
    tee when this estimate exceeds ``stream_cache_budget``.
    """
    return (
        node_count * _NODE_BYTES
        + child_count * _CHILD_BYTES
        + path_count * _PATH_BYTES
        + 4096
    )


class _ArenaWriter:
    """Accumulates the expression-DAG node tables while walking path sets."""

    def __init__(self) -> None:
        self.node_kind: list[int] = []
        self.node_ia: list[int] = []
        self.node_ib: list[int] = []
        self.node_ic: list[int] = []
        self.const_lo: list[float] = []
        self.const_hi: list[float] = []
        self.children: list[int] = []
        self.ops: list[str] = []
        self._op_ids: Dict[str, int] = {}
        self.dists: list[Distribution] = []
        self._dist_ids: Dict[Distribution, int] = {}
        #: id(interned node) -> node id.  Interning makes structurally equal
        #: expressions the same object, so identity hashing suffices and the
        #: table inherits the full DAG sharing of the interned path set.
        self._node_ids: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def op_id(self, op: str) -> int:
        op_id = self._op_ids.get(op)
        if op_id is None:
            op_id = self._op_ids[op] = len(self.ops)
            self.ops.append(op)
        return op_id

    def dist_id(self, dist: Distribution) -> int:
        dist_id = self._dist_ids.get(dist)
        if dist_id is None:
            dist_id = self._dist_ids[dist] = len(self.dists)
            self.dists.append(dist)
        return dist_id

    def _emit(self, kind: int, ia: int, ib: int, ic: int, lo: float, hi: float) -> int:
        node_id = len(self.node_kind)
        self.node_kind.append(kind)
        self.node_ia.append(ia)
        self.node_ib.append(ib)
        self.node_ic.append(ic)
        self.const_lo.append(lo)
        self.const_hi.append(hi)
        return node_id

    def add_expr(self, expr: SymExpr) -> int:
        """The node id of ``expr``, emitting its subtree on first sight.

        Children are emitted before their parent (an explicit post-order
        stack, so recursion depth never limits expression depth); node ids
        therefore increase topologically, which is what lets the decoder
        rebuild nodes in one forward pass when it wants to.
        """
        top = self._node_ids.get(id(expr))
        if top is not None:
            return top
        stack: list[tuple[SymExpr, bool]] = [(expr, False)]
        while stack:
            node, expanded = stack.pop()
            node_id = self._node_ids.get(id(node))
            if node_id is not None:
                continue
            if isinstance(node, SPrim) and not expanded:
                stack.append((node, True))
                for arg in reversed(node.args):
                    stack.append((arg, False))
                continue
            if isinstance(node, SVar):
                node_id = self._emit(_KIND_VAR, node.index, 0, 0, 0.0, 0.0)
            elif isinstance(node, SConst):
                node_id = self._emit(
                    _KIND_CONST, 0, 0, 0, node.interval.lo, node.interval.hi
                )
            elif isinstance(node, SAtom):
                node_id = self._emit(_KIND_ATOM, node.index, 0, 0, 0.0, 0.0)
            elif isinstance(node, SPrim):
                child_ids = [self._node_ids[id(arg)] for arg in node.args]
                start = len(self.children)
                self.children.extend(child_ids)
                node_id = self._emit(
                    _KIND_PRIM, self.op_id(node.op), start, len(child_ids), 0.0, 0.0
                )
            else:
                raise TypeError(f"cannot encode symbolic expression {node!r}")
            self._node_ids[id(node)] = node_id
        return self._node_ids[id(expr)]


_RELATION_IDS = {relation: index for index, relation in enumerate(Relation.ALL)}


class PathTableBuilder:
    """Incrementally collect symbolic paths into columnar ``PathTable`` form.

    This is the single collector behind every path-set producer: the batch
    materialiser, the streamed-query cache tee and the dispatch transport all
    funnel through it.  :meth:`append` structurally interns the path against
    one shared memo (so the collected set carries full DAG sharing) **and**
    grows the columnar tables in the same pass — finalising via
    :meth:`build` (an in-memory :class:`PathTable`) or :meth:`to_bytes` (the
    wire/shared-memory image) is then a plain list→array conversion with no
    further tree walks.

    ``to_bytes`` is byte-identical to encoding the same paths in one batch
    call (:func:`encode_paths`): interning per path against a shared memo
    visits nodes in the same canonical order as interning the whole batch.
    """

    def __init__(self) -> None:
        self._writer = _ArenaWriter()
        #: Structural-interning memo (expression/constraint -> canonical
        #: instance), shared by every appended path.
        self.memo: Dict[object, object] = {}
        #: The interned paths, in append order.
        self.paths: list[SymbolicPath] = []
        self._path_result: list[int] = []
        self._path_flags: list[int] = []
        self._dist_offsets: list[int] = [0]
        self._dist_ids: list[int] = []
        self._constraint_offsets: list[int] = [0]
        self._constraint_exprs: list[int] = []
        self._constraint_rels: list[int] = []
        self._score_offsets: list[int] = [0]
        self._score_exprs: list[int] = []

    def __len__(self) -> int:
        return len(self.paths)

    def append(self, path: SymbolicPath, intern: bool = True) -> SymbolicPath:
        """Intern ``path``, add it to the table and return the interned path.

        ``intern=False`` trusts the caller to have interned the path against
        a compatible memo already (expression identity is then used as-is).
        """
        if intern:
            path = intern_path(path, self.memo)
        writer = self._writer
        self._path_result.append(writer.add_expr(path.result))
        self._path_flags.append(1 if path.truncated else 0)
        self._dist_ids.extend(writer.dist_id(dist) for dist in path.distributions)
        self._dist_offsets.append(len(self._dist_ids))
        for constraint in path.constraints:
            self._constraint_exprs.append(writer.add_expr(constraint.expr))
            self._constraint_rels.append(_RELATION_IDS[constraint.relation])
        self._constraint_offsets.append(len(self._constraint_exprs))
        self._score_exprs.extend(writer.add_expr(score) for score in path.scores)
        self._score_offsets.append(len(self._score_exprs))
        self.paths.append(path)
        return path

    def extend(self, paths: Iterable[SymbolicPath], intern: bool = True) -> None:
        for path in paths:
            self.append(path, intern=intern)

    def clear(self) -> None:
        """Drop everything collected (the tee's budget-overflow action)."""
        self.__init__()

    @property
    def nbytes_estimate(self) -> int:
        """Estimated encoded size of the collected paths so far (monotone)."""
        return estimate_arena_bytes(
            len(self._writer.node_kind), len(self.paths), len(self._writer.children)
        )

    # ------------------------------------------------------------------
    def _columns(self) -> Dict[str, np.ndarray]:
        arrays = {
            "node_kind": self._writer.node_kind,
            "node_ia": self._writer.node_ia,
            "node_ib": self._writer.node_ib,
            "node_ic": self._writer.node_ic,
            "const_lo": self._writer.const_lo,
            "const_hi": self._writer.const_hi,
            "children": self._writer.children,
            "path_result": self._path_result,
            "path_flags": self._path_flags,
            "dist_offsets": self._dist_offsets,
            "dist_ids": self._dist_ids,
            "constraint_offsets": self._constraint_offsets,
            "constraint_exprs": self._constraint_exprs,
            "constraint_rels": self._constraint_rels,
            "score_offsets": self._score_offsets,
            "score_exprs": self._score_exprs,
        }
        return {
            name: np.asarray(arrays[name], dtype=dtype) for name, dtype in _BUFFERS
        }

    def build(self) -> "PathTable":
        """Finalise into an in-memory :class:`PathTable` (no byte image)."""
        return PathTable(
            path_count=len(self.paths),
            _columns=self._columns(),
            _ops=tuple(self._writer.ops),
            _dists=tuple(self._writer.dists),
        )

    def to_bytes(self) -> bytes:
        """Serialise the collected columns to the flat byte image."""
        return _image_from_columns(
            self._columns(), len(self.paths), tuple(self._writer.ops), tuple(self._writer.dists)
        )


def _image_from_columns(
    columns: Dict[str, np.ndarray],
    path_count: int,
    ops: tuple[str, ...],
    dists: tuple[Distribution, ...],
) -> bytes:
    """Pack columnar arrays into the position-independent byte image."""
    buffers = [columns[name] for name, _ in _BUFFERS]
    header = pickle.dumps(
        {
            "version": _ARENA_VERSION,
            "path_count": path_count,
            "lengths": [len(buffer) for buffer in buffers],
            "ops": ops,
            # Unique distribution records: heavily shared by construction
            # (branch states copy the *list*), so this pickles a handful of
            # parameter tuples, not a per-path graph.
            "dists": dists,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    parts = [_PRELUDE.pack(_MAGIC, _ARENA_VERSION, len(header)), header]
    offset = _PRELUDE.size + len(header)
    for buffer in buffers:
        pad = (-offset) % 8
        parts.append(b"\0" * pad)
        data = buffer.tobytes()
        parts.append(data)
        offset += pad + len(data)
    return b"".join(parts)


def encode_paths(paths: Sequence[SymbolicPath], intern: bool = True) -> bytes:
    """Pack ``paths`` into a flat path-table byte image.

    ``intern`` (the default) structurally interns the paths first so that
    equal-but-distinct subtrees collapse into shared table nodes; pass
    ``False`` when the paths are already interned against one memo (e.g. by
    the streamed-query cache tee).
    """
    builder = PathTableBuilder()
    builder.extend(paths, intern=intern)
    return builder.to_bytes()


@dataclass
class PathTable:
    """A columnar symbolic path set (zero-copy over its backing buffers).

    Construct with :meth:`from_paths` (in-memory, via the builder) or
    :meth:`from_buffer` over any byte image — typically the ``buf`` of an
    attached ``multiprocessing.shared_memory`` segment.  In the buffer case
    the NumPy columns are views into that buffer; nothing is copied until a
    path (or node) is actually decoded.  ``keep_alive`` pins the object
    owning the buffer (the ``SharedMemory`` handle) for the table's
    lifetime; :meth:`release` drops every view so the segment can be closed
    safely.

    Two memo spaces make the table cheap to analyse repeatedly:

    * the decoded-node memo behind :meth:`decode_expr` is shared across
      decode calls, so chunks decoded from the same attachment share their
      common sub-expressions;
    * :attr:`scratch` is a free-form per-table cache for analyzers' derived
      data (linear forms per node id, score decompositions, …), surviving
      across chunks and queries of one attachment.
    """

    path_count: int
    _columns: Dict[str, np.ndarray]
    _ops: tuple[str, ...]
    _dists: tuple[Distribution, ...]
    _keep_alive: object = None

    def __post_init__(self) -> None:
        # Decoded-node memo: node id -> SymExpr, shared across decode calls.
        self._nodes: Dict[int, SymExpr] = {}
        #: Per-table memo space for analyzers (cleared with release()).
        self.scratch: Dict[object, object] = {}

    def __len__(self) -> int:
        return self.path_count

    # ------------------------------------------------------------------
    @classmethod
    def from_paths(cls, paths: Sequence[SymbolicPath], intern: bool = True) -> "PathTable":
        """Build an in-memory table from materialised paths."""
        builder = PathTableBuilder()
        builder.extend(paths, intern=intern)
        return builder.build()

    @classmethod
    def from_buffer(cls, buffer, keep_alive: object = None) -> "PathTable":
        """Attach to a path-table byte image without copying its buffers."""
        view = memoryview(buffer).cast("B")
        if len(view) < _PRELUDE.size:
            raise ArenaFormatError("buffer too small for a path table")
        magic, version, header_len = _PRELUDE.unpack_from(view, 0)
        if magic != _MAGIC:
            raise ArenaFormatError("bad arena magic; not a path-table image")
        if version != _ARENA_VERSION:
            raise ArenaFormatError(
                f"unsupported arena version {version} (expected {_ARENA_VERSION})"
            )
        header_end = _PRELUDE.size + header_len
        header = pickle.loads(bytes(view[_PRELUDE.size : header_end]))
        lengths = header["lengths"]
        if len(lengths) != len(_BUFFERS):
            raise ArenaFormatError("arena buffer directory length mismatch")
        columns: Dict[str, np.ndarray] = {}
        offset = header_end
        for (name, dtype), length in zip(_BUFFERS, lengths):
            offset += (-offset) % 8
            nbytes = int(length) * np.dtype(dtype).itemsize
            if offset + nbytes > len(view):
                raise ArenaFormatError("truncated arena buffer")
            columns[name] = np.frombuffer(view, dtype=dtype, count=length, offset=offset)
            offset += nbytes
        return cls(
            path_count=int(header["path_count"]),
            _columns=columns,
            _ops=tuple(header["ops"]),
            _dists=tuple(header["dists"]),
            _keep_alive=keep_alive,
        )

    def to_bytes(self) -> bytes:
        """Serialise the table to its flat byte image (the wire format)."""
        return _image_from_columns(self._columns, self.path_count, self._ops, self._dists)

    def content_hash(self) -> str:
        """A digest of the byte image — the table's identity on the wire.

        The socket work queue ships a path table to each worker **once** and
        keys every subsequent chunk job on this digest, exactly like the
        shared-memory transport keys attachments on segment names.  Cached on
        first call (the table is immutable once built; ``release`` drops the
        cache along with the columns).
        """
        cached = getattr(self, "_content_hash", None)
        if cached is None:
            cached = hashlib.blake2b(self.to_bytes(), digest_size=16).hexdigest()
            self._content_hash = cached
        return cached

    def release(self) -> None:
        """Drop every buffer view (required before closing a shm segment)."""
        self._columns = {}
        self._nodes = {}
        self.scratch = {}
        self._keep_alive = None
        self._content_hash = None

    # ------------------------------------------------------------------
    # Columnar accessors (the analyzer fast-path surface)
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """One raw column (see the module-level buffer directory)."""
        return self._columns[name]

    @property
    def ops(self) -> tuple[str, ...]:
        """The primitive-op name table (``node_ia`` indexes it for SPrim nodes)."""
        return self._ops

    @property
    def distributions(self) -> tuple[Distribution, ...]:
        """The deduplicated distribution records (``dist_ids`` index it)."""
        return self._dists

    def result_id(self, index: int) -> int:
        """Node id of path ``index``'s result expression."""
        return int(self._columns["path_result"][index])

    def is_truncated(self, index: int) -> bool:
        return bool(self._columns["path_flags"][index])

    def variable_count(self, index: int) -> int:
        offsets = self._columns["dist_offsets"]
        return int(offsets[index + 1] - offsets[index])

    def path_dist_ids(self, index: int) -> np.ndarray:
        offsets = self._columns["dist_offsets"]
        return self._columns["dist_ids"][int(offsets[index]) : int(offsets[index + 1])]

    def path_distributions(self, index: int) -> tuple[Distribution, ...]:
        """The (shared) distribution records of path ``index``, in draw order."""
        return tuple(self._dists[int(dist_id)] for dist_id in self.path_dist_ids(index))

    def constraint_ids(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """``(expr node ids, relation ids)`` of path ``index``'s constraints."""
        offsets = self._columns["constraint_offsets"]
        start, stop = int(offsets[index]), int(offsets[index + 1])
        return (
            self._columns["constraint_exprs"][start:stop],
            self._columns["constraint_rels"][start:stop],
        )

    def score_ids(self, index: int) -> np.ndarray:
        """Expr node ids of path ``index``'s score values."""
        offsets = self._columns["score_offsets"]
        return self._columns["score_exprs"][int(offsets[index]) : int(offsets[index + 1])]

    # ------------------------------------------------------------------
    # Decoding (the materialised route)
    # ------------------------------------------------------------------
    def decode_expr(self, node_id: int) -> SymExpr:
        """Materialise one expression node (memoised per table)."""
        memo = self._nodes
        done = memo.get(node_id)
        if done is not None:
            return done
        kind = self._columns["node_kind"]
        ia = self._columns["node_ia"]
        ib = self._columns["node_ib"]
        ic = self._columns["node_ic"]
        lo = self._columns["const_lo"]
        hi = self._columns["const_hi"]
        children = self._columns["children"]
        # Explicit post-order stack: children materialise before parents, so
        # expression depth never hits the interpreter recursion limit.
        stack: list[tuple[int, bool]] = [(node_id, False)]
        while stack:
            current, expanded = stack.pop()
            if current in memo:
                continue
            node_kind = int(kind[current])
            if node_kind == _KIND_PRIM and not expanded:
                stack.append((current, True))
                start = int(ib[current])
                for child in children[start : start + int(ic[current])]:
                    stack.append((int(child), False))
                continue
            if node_kind == _KIND_VAR:
                memo[current] = SVar(int(ia[current]))
            elif node_kind == _KIND_CONST:
                memo[current] = SConst(Interval(float(lo[current]), float(hi[current])))
            elif node_kind == _KIND_ATOM:
                memo[current] = SAtom(int(ia[current]))
            elif node_kind == _KIND_PRIM:
                start = int(ib[current])
                args = tuple(
                    memo[int(child)]
                    for child in children[start : start + int(ic[current])]
                )
                memo[current] = SPrim(self._ops[int(ia[current])], args)
            else:
                raise ArenaFormatError(f"unknown arena node kind {node_kind}")
        return memo[node_id]

    # Backwards-compatible private alias (pre-PathTable name).
    _decode_expr = decode_expr

    def decode_path(self, index: int) -> SymbolicPath:
        """Materialise one path from the table columns."""
        if not 0 <= index < self.path_count:
            raise IndexError(f"path index {index} out of range [0, {self.path_count})")
        distributions = self.path_distributions(index)
        expr_ids, rel_ids = self.constraint_ids(index)
        constraints = tuple(
            SymConstraint(
                self.decode_expr(int(expr_id)), Relation.ALL[int(relation_id)]
            )
            for expr_id, relation_id in zip(expr_ids, rel_ids)
        )
        scores = tuple(
            self.decode_expr(int(expr_id)) for expr_id in self.score_ids(index)
        )
        return SymbolicPath(
            result=self.decode_expr(self.result_id(index)),
            variable_count=len(distributions),
            distributions=distributions,
            constraints=constraints,
            scores=scores,
            truncated=self.is_truncated(index),
        )

    def decode_range(self, start: int, stop: Optional[int] = None) -> tuple[SymbolicPath, ...]:
        """Materialise the paths ``[start, stop)`` (a dispatch chunk)."""
        if stop is None:
            stop = self.path_count
        return tuple(self.decode_path(index) for index in range(start, stop))

    def decode_all(self) -> tuple[SymbolicPath, ...]:
        return self.decode_range(0, self.path_count)


#: Historical name of :class:`PathTable` (the shared-memory transport view).
PathArena = PathTable
