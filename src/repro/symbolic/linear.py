"""Linear forms over sample variables and their extraction from symbolic values.

The optimised linear interval trace semantics (paper Section 6.4) applies when
path constraints and the return value are *interval linear* functions
``α ↦ wᵀα + [a, b]`` and every score value can be written as
``f(Z_1, ..., Z_m)`` with the ``Z_j`` linear (Appendix E.1).  This module
provides:

* :class:`LinearForm` — a sparse linear function of the sample variables with
  an interval constant part,
* :func:`extract_linear` — recognise a symbolic value as a linear form, and
* :func:`decompose_score` — rewrite an arbitrary symbolic value as a template
  over linear *atoms*, so that interval arithmetic on atom bounds yields sound
  bounds on the whole expression.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..intervals import Interval
from .value import SAtom, SConst, SPrim, SVar, SymExpr

__all__ = ["LinearForm", "extract_linear", "ScoreDecomposition", "decompose_score"]


@dataclass(frozen=True)
class LinearForm:
    """An interval-linear function ``α ↦ Σ_i coeffs[i]·α_i + constant``."""

    coeffs: tuple[tuple[int, float], ...]
    constant: Interval

    # -- constructors ----------------------------------------------------
    @staticmethod
    def from_dict(coeffs: Dict[int, float], constant: Interval) -> "LinearForm":
        cleaned = tuple(sorted((i, c) for i, c in coeffs.items() if c != 0.0))
        return LinearForm(cleaned, constant)

    @staticmethod
    def constant_form(constant: Interval) -> "LinearForm":
        return LinearForm((), constant)

    @staticmethod
    def variable(index: int) -> "LinearForm":
        return LinearForm(((index, 1.0),), Interval.point(0.0))

    # -- accessors -------------------------------------------------------
    @property
    def coefficient_dict(self) -> Dict[int, float]:
        return dict(self.coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    @property
    def has_interval_constant(self) -> bool:
        return not self.constant.is_point

    def variables(self) -> set[int]:
        return {index for index, _ in self.coeffs}

    # -- arithmetic ------------------------------------------------------
    def add(self, other: "LinearForm") -> "LinearForm":
        coeffs = self.coefficient_dict
        for index, coeff in other.coeffs:
            coeffs[index] = coeffs.get(index, 0.0) + coeff
        return LinearForm.from_dict(coeffs, self.constant + other.constant)

    def negate(self) -> "LinearForm":
        return LinearForm(tuple((i, -c) for i, c in self.coeffs), -self.constant)

    def subtract(self, other: "LinearForm") -> "LinearForm":
        return self.add(other.negate())

    def scale(self, factor: float) -> "LinearForm":
        return LinearForm(
            tuple((i, c * factor) for i, c in self.coeffs),
            self.constant * Interval.point(factor),
        )

    # -- evaluation ------------------------------------------------------
    def evaluate(self, assignment: Sequence[float]) -> float:
        """Concrete evaluation; requires a point constant part."""
        if not self.constant.is_point:
            raise ValueError("cannot concretely evaluate an interval-linear form")
        return self.constant.lo + sum(c * assignment[i] for i, c in self.coeffs)

    def evaluate_interval(self, bounds: Sequence[Interval]) -> Interval:
        result = self.constant
        for index, coeff in self.coeffs:
            result = result + bounds[index] * Interval.point(coeff)
        return result

    def as_dense(self, dimension: int) -> list[float]:
        """Dense coefficient vector of length ``dimension``."""
        row = [0.0] * dimension
        for index, coeff in self.coeffs:
            if index >= dimension:
                raise ValueError(f"variable α_{index} outside dimension {dimension}")
            row[index] = coeff
        return row

    def dense_row(self, dimension: int) -> list[float]:
        """:meth:`as_dense`, memoised per dimension.

        The linear analyzer densifies the same atom for every polytope it is
        bounded over; the form is immutable, so the row can be shared.  The
        returned list must be treated as read-only.
        """
        memo = self.__dict__.get("_dense_memo")
        if memo is None:
            memo = {}
            object.__setattr__(self, "_dense_memo", memo)
        row = memo.get(dimension)
        if row is None:
            row = memo[dimension] = self.as_dense(dimension)
        return row

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = " + ".join(f"{c:g}·α{i}" for i, c in self.coeffs)
        return f"LinearForm({terms or '0'} + {self.constant!r})"


def extract_linear(expr: SymExpr) -> Optional[LinearForm]:
    """Recognise a symbolic value as an interval-linear form, or ``None``."""
    if isinstance(expr, SVar):
        return LinearForm.variable(expr.index)
    if isinstance(expr, SConst):
        return LinearForm.constant_form(expr.interval)
    if isinstance(expr, SAtom):
        return None
    if isinstance(expr, SPrim):
        if expr.op == "add":
            parts = [extract_linear(arg) for arg in expr.args]
            if all(part is not None for part in parts):
                return parts[0].add(parts[1])  # type: ignore[union-attr]
            return None
        if expr.op == "sub":
            parts = [extract_linear(arg) for arg in expr.args]
            if all(part is not None for part in parts):
                return parts[0].subtract(parts[1])  # type: ignore[union-attr]
            return None
        if expr.op == "neg":
            inner = extract_linear(expr.args[0])
            return inner.negate() if inner is not None else None
        if expr.op == "mul":
            left = extract_linear(expr.args[0])
            right = extract_linear(expr.args[1])
            if left is None or right is None:
                return None
            if left.is_constant and left.constant.is_point:
                return right.scale(left.constant.lo)
            if right.is_constant and right.constant.is_point:
                return left.scale(right.constant.lo)
            if left.is_constant and right.is_constant:
                return LinearForm.constant_form(left.constant * right.constant)
            return None
        if expr.op == "div":
            left = extract_linear(expr.args[0])
            right = extract_linear(expr.args[1])
            if left is None or right is None:
                return None
            if right.is_constant and right.constant.is_point and right.constant.lo != 0.0:
                return left.scale(1.0 / right.constant.lo)
            if left.is_constant and right.is_constant:
                return LinearForm.constant_form(left.constant / right.constant)
            return None
        # Any other primitive applied to constants only is still a constant.
        parts = [extract_linear(arg) for arg in expr.args]
        if all(part is not None and part.is_constant for part in parts):
            from ..intervals import get_primitive

            primitive = get_primitive(expr.op)
            return LinearForm.constant_form(
                primitive.apply_interval(*(part.constant for part in parts))  # type: ignore[union-attr]
            )
        return None
    raise TypeError(f"unknown symbolic expression {expr!r}")


@dataclass(frozen=True)
class ScoreDecomposition:
    """A score value written as ``template(atom_1, ..., atom_k)``.

    ``template`` only mentions :class:`SAtom` leaves and constants; evaluating
    it with interval bounds on the atoms (via
    :func:`repro.symbolic.value.evaluate_with_atoms`) gives sound bounds on
    the original expression whenever the atom bounds are sound.
    """

    template: SymExpr
    atoms: tuple[LinearForm, ...]

    @property
    def is_linear(self) -> bool:
        return isinstance(self.template, SAtom) and len(self.atoms) == 1


def decompose_score(expr: SymExpr, atoms: Optional[list[LinearForm]] = None) -> ScoreDecomposition:
    """Decompose an arbitrary score value into a template over linear atoms.

    Maximal linear sub-expressions become atoms; everything above them is kept
    as a template evaluated in interval arithmetic (Appendix E.1).  Atoms are
    de-duplicated structurally so that the same linear form bounded once can
    be reused in several positions.
    """
    collected: list[LinearForm] = [] if atoms is None else atoms

    def atom_index(form: LinearForm) -> int:
        for index, existing in enumerate(collected):
            if existing == form:
                return index
        collected.append(form)
        return len(collected) - 1

    def rewrite(node: SymExpr) -> SymExpr:
        linear = extract_linear(node)
        if linear is not None:
            if linear.is_constant:
                return SConst(linear.constant)
            return SAtom(atom_index(linear))
        if isinstance(node, SPrim):
            return SPrim(node.op, tuple(rewrite(arg) for arg in node.args))
        # A bare sample variable or constant is always linear, so the only
        # remaining possibility is an atom placeholder that was already there.
        if isinstance(node, SAtom):
            return node
        raise TypeError(f"cannot decompose symbolic expression {node!r}")

    template = rewrite(expr)
    return ScoreDecomposition(template=template, atoms=tuple(collected))
