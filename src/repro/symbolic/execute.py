"""Stochastic symbolic execution with fixpoint over-approximation.

This is the entry point of the GuBPI analysis (paper Section 6.1, Appendix B,
Algorithm 1).  Programs are evaluated with

* every ``sample`` producing a fresh *sample variable*,
* both branches of every conditional explored (recording the guard as a
  symbolic constraint), and
* every ``score`` recorded symbolically.

Recursion is explored up to a configurable fixpoint depth ``D``; any further
application of a recursive function is replaced by its interval-type summary
(the ``approxFix`` operation): the call's result becomes an interval constant
and its weight contribution becomes an interval score.  The result is a
*finite* set of symbolic interval paths whose lower/upper denotations bracket
the program denotation (Theorem 6.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Union

from ..distributions import Distribution, Uniform
from ..intervals import Interval, get_primitive
from ..lang.ast import (
    App,
    Const,
    Fix,
    If,
    IntervalConst,
    Lam,
    Prim,
    Sample,
    Score,
    Term,
    Var,
    free_variables,
)
from ..typesystem import (
    ArrowIType,
    BaseIType,
    IntervalType,
    TypeInferenceError,
    WeightedIType,
    infer_weighted_type,
)
from .paths import Relation, SymConstraint, SymbolicPath
from .value import SConst, SPrim, SVar, SymExpr, evaluate_interval

__all__ = [
    "ExecutionLimits",
    "PathExplosionError",
    "SymbolicExecutionResult",
    "SymbolicExecutor",
    "symbolic_paths",
]

_UNIFORM01 = Uniform(0.0, 1.0)


class PathExplosionError(Exception):
    """Raised when symbolic execution produces more paths than allowed."""


@dataclass(frozen=True)
class ExecutionLimits:
    """Tunable limits of the symbolic exploration.

    ``max_fixpoint_depth`` is the depth limit ``D`` of Algorithm 1 (counted as
    the number of recursive-function applications along a path);
    ``max_paths`` aborts the analysis when the well-known path-explosion
    problem makes it infeasible (Section 7.5).
    """

    max_fixpoint_depth: int = 6
    max_paths: int = 50_000


@dataclass(frozen=True)
class _SClosure:
    param: str
    body: Term
    env: "._SEnv"


@dataclass(frozen=True)
class _SFixClosure:
    fname: str
    param: str
    body: Term
    env: "._SEnv"


@dataclass(frozen=True)
class _SSummaryClosure:
    """A function value produced by ``approxFix`` for higher-order fixpoints.

    Applying it does not evaluate any code: it emits the weight bound of the
    summarised call as an interval score and returns the summarised result
    (an interval constant, or another summary closure for curried functions).
    """

    itype: ArrowIType


SymValue = Union[SymExpr, _SClosure, _SFixClosure, _SSummaryClosure]


@dataclass(frozen=True)
class _SEnv:
    name: Optional[str] = None
    value: Optional[SymValue] = None
    parent: Optional["_SEnv"] = None

    def bind(self, name: str, value: SymValue) -> "_SEnv":
        return _SEnv(name, value, self)

    def lookup(self, name: str) -> SymValue:
        env: Optional[_SEnv] = self
        while env is not None:
            if env.name == name:
                assert env.value is not None
                return env.value
            env = env.parent
        raise KeyError(f"unbound variable {name!r}")


_EMPTY_SENV = _SEnv()


@dataclass
class _PathState:
    """Mutable per-path execution state (copied at branch points)."""

    distributions: list[Distribution] = field(default_factory=list)
    constraints: list[SymConstraint] = field(default_factory=list)
    scores: list[SymExpr] = field(default_factory=list)
    fix_depth: int = 0
    truncated: bool = False
    infeasible: bool = False

    def copy(self) -> "_PathState":
        return _PathState(
            distributions=list(self.distributions),
            constraints=list(self.constraints),
            scores=list(self.scores),
            fix_depth=self.fix_depth,
            truncated=self.truncated,
            infeasible=self.infeasible,
        )

    @property
    def variable_count(self) -> int:
        return len(self.distributions)

    def fresh_variable(self, dist: Distribution) -> SVar:
        self.distributions.append(dist)
        return SVar(len(self.distributions) - 1)

    def domains(self) -> list[Interval]:
        return [dist.support() for dist in self.distributions]


@dataclass(frozen=True)
class SymbolicExecutionResult:
    """All symbolic interval paths of a program plus exploration statistics.

    The result is immutable (paths are stored as a tuple) so it can be cached
    and shared between analysis queries — :class:`repro.Model` compiles a
    program once per :class:`ExecutionLimits` configuration and serves every
    downstream query from the cached result.
    """

    paths: tuple[SymbolicPath, ...]
    truncated_paths: int
    pruned_paths: int

    def __post_init__(self) -> None:
        if not isinstance(self.paths, tuple):
            object.__setattr__(self, "paths", tuple(self.paths))

    @property
    def path_count(self) -> int:
        return len(self.paths)

    @property
    def exact(self) -> bool:
        """True when no fixpoint had to be over-approximated."""
        return self.truncated_paths == 0


class SymbolicExecutor:
    """Explores all symbolic paths of a program (Algorithm 1, lines 2–11)."""

    def __init__(self, limits: ExecutionLimits | None = None) -> None:
        self.limits = limits or ExecutionLimits()
        self._pruned = 0

    # ------------------------------------------------------------------
    def run(self, term: Term) -> SymbolicExecutionResult:
        self._pruned = 0
        outcomes = self._eval(term, _EMPTY_SENV, _PathState())
        paths: list[SymbolicPath] = []
        truncated = 0
        for value, state in outcomes:
            if state.infeasible:
                self._pruned += 1
                continue
            if not isinstance(value, SymExpr):
                raise TypeError("program must return a ground (real-valued) result")
            path = SymbolicPath(
                result=value,
                variable_count=state.variable_count,
                distributions=tuple(state.distributions),
                constraints=tuple(state.constraints),
                scores=tuple(state.scores),
                truncated=state.truncated,
            )
            paths.append(path)
            truncated += int(state.truncated)
        return SymbolicExecutionResult(paths=paths, truncated_paths=truncated, pruned_paths=self._pruned)

    # ------------------------------------------------------------------
    # Core evaluation
    # ------------------------------------------------------------------
    def _eval(self, term: Term, env: _SEnv, state: _PathState) -> list[tuple[SymValue, _PathState]]:
        if isinstance(term, Var):
            return [(env.lookup(term.name), state)]
        if isinstance(term, Const):
            return [(SConst(Interval.point(term.value)), state)]
        if isinstance(term, IntervalConst):
            return [(SConst(term.interval), state)]
        if isinstance(term, Lam):
            return [(_SClosure(term.param, term.body, env), state)]
        if isinstance(term, Fix):
            return [(_SFixClosure(term.fname, term.param, term.body, env), state)]
        if isinstance(term, Sample):
            dist = term.dist if term.dist is not None else _UNIFORM01
            return [(state.fresh_variable(dist), state)]
        if isinstance(term, Score):
            outcomes = []
            for value, next_state in self._eval(term.arg, env, state):
                expr = self._expect_expr(value)
                outcomes.append((expr, self._record_score(expr, next_state)))
            return outcomes
        if isinstance(term, Prim):
            return self._eval_prim(term, env, state)
        if isinstance(term, If):
            return self._eval_if(term, env, state)
        if isinstance(term, App):
            return self._eval_app(term, env, state)
        raise TypeError(f"cannot symbolically evaluate {term!r}")

    def _eval_prim(self, term: Prim, env: _SEnv, state: _PathState) -> list[tuple[SymValue, _PathState]]:
        outcomes: list[tuple[list[SymExpr], _PathState]] = [([], state)]
        for arg in term.args:
            next_outcomes: list[tuple[list[SymExpr], _PathState]] = []
            for values, current in outcomes:
                for value, next_state in self._eval(arg, env, current):
                    next_outcomes.append((values + [self._expect_expr(value)], next_state))
            outcomes = next_outcomes
            self._check_budget(len(outcomes))
        results: list[tuple[SymValue, _PathState]] = []
        for values, current in outcomes:
            results.append((self._make_prim(term.op, values), current))
        return results

    def _eval_if(self, term: If, env: _SEnv, state: _PathState) -> list[tuple[SymValue, _PathState]]:
        results: list[tuple[SymValue, _PathState]] = []
        for guard_value, guard_state in self._eval(term.cond, env, state):
            guard = self._expect_expr(guard_value)
            if isinstance(guard, SConst):
                if guard.interval.hi <= 0.0:
                    results.extend(self._eval(term.then, env, guard_state))
                    continue
                if guard.interval.lo > 0.0:
                    results.extend(self._eval(term.orelse, env, guard_state))
                    continue
            then_state = guard_state.copy()
            then_state.constraints.append(SymConstraint(guard, Relation.LEQ))
            results.extend(self._eval(term.then, env, then_state))
            else_state = guard_state
            else_state.constraints.append(SymConstraint(guard, Relation.GT))
            results.extend(self._eval(term.orelse, env, else_state))
            self._check_budget(len(results))
        return results

    def _eval_app(self, term: App, env: _SEnv, state: _PathState) -> list[tuple[SymValue, _PathState]]:
        results: list[tuple[SymValue, _PathState]] = []
        for func_value, func_state in self._eval(term.func, env, state):
            for arg_value, arg_state in self._eval(term.arg, env, func_state):
                results.extend(self._apply(func_value, arg_value, arg_state))
                self._check_budget(len(results))
        return results

    def _apply(self, func: SymValue, argument: SymValue, state: _PathState) -> list[tuple[SymValue, _PathState]]:
        if isinstance(func, _SClosure):
            return self._eval(func.body, func.env.bind(func.param, argument), state)
        if isinstance(func, _SSummaryClosure):
            return [self._apply_summary(func.itype, state)]
        if isinstance(func, _SFixClosure):
            if state.fix_depth >= self.limits.max_fixpoint_depth:
                return [self._approx_fix(func, argument, state)]
            new_state = state
            new_state.fix_depth += 1
            env = func.env.bind(func.fname, func).bind(func.param, argument)
            return self._eval(func.body, env, new_state)
        raise TypeError(f"application of a non-function symbolic value {func!r}")

    # ------------------------------------------------------------------
    # approxFix: summarise a fixpoint via the interval type system
    # ------------------------------------------------------------------
    def _approx_fix(
        self, closure: _SFixClosure, argument: SymValue, state: _PathState
    ) -> tuple[SymValue, _PathState]:
        state.truncated = True
        weighted = self._summarise(closure, argument, state)
        return self._emit_summary(weighted, state)

    def _apply_summary(self, itype: ArrowIType, state: _PathState) -> tuple[SymValue, _PathState]:
        """Apply a summary closure: emit its weight bound and return its result."""
        state.truncated = True
        return self._emit_summary(itype.res, state)

    def _emit_summary(self, weighted: WeightedIType, state: _PathState) -> tuple[SymValue, _PathState]:
        result_state = state
        weight = weighted.weight.meet(Interval(0.0, math.inf))
        if weight.is_empty:
            weight = Interval(0.0, math.inf)
        if weight != Interval.point(1.0):
            result_state = self._record_score(SConst(weight), result_state)
        if isinstance(weighted.wtype, ArrowIType):
            return _SSummaryClosure(weighted.wtype), result_state
        if isinstance(weighted.wtype, BaseIType):
            return SConst(weighted.wtype.interval), result_state
        return SConst(Interval(-math.inf, math.inf)), result_state

    def _summarise(self, closure: _SFixClosure, argument: SymValue, state: _PathState) -> WeightedIType:
        conservative = WeightedIType(
            BaseIType(Interval(-math.inf, math.inf)), Interval(0.0, math.inf)
        )
        domains = state.domains()
        fix_term = Fix(closure.fname, closure.param, closure.body)
        try:
            if isinstance(argument, SymExpr):
                argument_term: Term = IntervalConst(evaluate_interval(argument, domains))
            else:
                # A function-valued argument: type the bare fixpoint and apply
                # its arrow type conservatively below.
                argument_term = None  # type: ignore[assignment]
            env_types = self._environment_types(fix_term, closure.env, domains, depth=2)
            if argument_term is None:
                weighted = infer_weighted_type(fix_term, env_types)
                if isinstance(weighted.wtype, ArrowIType):
                    return weighted.wtype.res
                return conservative
            return infer_weighted_type(App(fix_term, argument_term), env_types)
        except Exception:
            return conservative

    def _environment_types(
        self, term: Term, env: _SEnv, domains: list[Interval], depth: int
    ) -> Dict[str, IntervalType]:
        """Interval types for the free variables captured by a closure."""
        result: Dict[str, IntervalType] = {}
        for name in free_variables(term):
            value = env.lookup(name)
            result[name] = self._interval_type_of(value, domains, depth)
        return result

    def _interval_type_of(self, value: SymValue, domains: list[Interval], depth: int) -> IntervalType:
        if isinstance(value, SymExpr):
            return BaseIType(evaluate_interval(value, domains))
        if depth <= 0:
            raise TypeInferenceError("closure nesting too deep for approxFix summaries")
        if isinstance(value, _SClosure):
            inner_term: Term = Lam(value.param, value.body)
        else:
            inner_term = Fix(value.fname, value.param, value.body)
        env_types = self._environment_types(inner_term, value.env, domains, depth - 1)
        weighted = infer_weighted_type(inner_term, env_types)
        return weighted.wtype

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _record_score(self, expr: SymExpr, state: _PathState) -> _PathState:
        bounds = evaluate_interval(expr, state.domains())
        if bounds.hi <= 0.0:
            # Scoring a value that is certainly non-positive makes the weight
            # of every completion of this path zero (negative scores are
            # errors of weight zero), so the path contributes nothing.
            state.infeasible = True
            return state
        if isinstance(expr, SConst) and expr.interval == Interval.point(1.0):
            return state
        if not isinstance(expr, SConst) and bounds.lo < 0.0:
            # As in the paper, record that the score argument must be >= 0;
            # when the interval bound already proves non-negativity (the
            # common pdf case) the constraint is redundant and would only
            # spoil linearity of the path.
            state.constraints.append(SymConstraint(expr, Relation.GEQ))
        state.scores.append(expr)
        return state

    def _make_prim(self, op: str, args: list[SymExpr]) -> SymExpr:
        if all(isinstance(arg, SConst) for arg in args):
            primitive = get_primitive(op)
            folded = primitive.apply_interval(*(arg.interval for arg in args))  # type: ignore[union-attr]
            return SConst(folded)
        return _simplify_prim(op, args)

    def _expect_expr(self, value: SymValue) -> SymExpr:
        if isinstance(value, SymExpr):
            return value
        raise TypeError(f"expected a ground symbolic value, got {value!r}")

    def _check_budget(self, count: int) -> None:
        if count > self.limits.max_paths:
            raise PathExplosionError(
                f"symbolic execution exceeded {self.limits.max_paths} paths; "
                "reduce the fixpoint depth or simplify the program"
            )


def _is_zero(expr: SymExpr) -> bool:
    return isinstance(expr, SConst) and expr.interval == Interval.point(0.0)


def _is_one(expr: SymExpr) -> bool:
    return isinstance(expr, SConst) and expr.interval == Interval.point(1.0)


def _simplify_prim(op: str, args: list[SymExpr]) -> SymExpr:
    """Peephole simplification of postponed primitive applications.

    Keeping symbolic values small matters: it speeds up interval evaluation
    and helps the single-use side condition of the completeness theorem.
    """
    if op == "add":
        left, right = args
        if _is_zero(left):
            return right
        if _is_zero(right):
            return left
    elif op == "sub":
        left, right = args
        if _is_zero(right):
            return left
    elif op == "mul":
        left, right = args
        if _is_one(left):
            return right
        if _is_one(right):
            return left
        if _is_zero(left) or _is_zero(right):
            return SConst(Interval.point(0.0))
    elif op == "div":
        left, right = args
        if _is_one(right):
            return left
    return SPrim(op, tuple(args))


def symbolic_paths(term: Term, limits: ExecutionLimits | None = None) -> SymbolicExecutionResult:
    """Convenience wrapper: all symbolic interval paths of ``term``."""
    return SymbolicExecutor(limits).run(term)
