"""Stochastic symbolic execution with fixpoint over-approximation.

This is the entry point of the GuBPI analysis (paper Section 6.1, Appendix B,
Algorithm 1).  Programs are evaluated with

* every ``sample`` producing a fresh *sample variable*,
* both branches of every conditional explored (recording the guard as a
  symbolic constraint), and
* every ``score`` recorded symbolically.

Recursion is explored up to a configurable fixpoint depth ``D``; any further
application of a recursive function is replaced by its interval-type summary
(the ``approxFix`` operation): the call's result becomes an interval constant
and its weight contribution becomes an interval score.  The result is a
*finite* set of symbolic interval paths whose lower/upper denotations bracket
the program denotation (Theorem 6.2).

Exploration is *iterative*: an explicit worklist of machine states (a
CEK-style abstract machine — control term or value, environment,
continuation, per-path state) replaces the recursive ``_eval`` call tree.
Paths therefore complete one at a time, in canonical depth-first order, and
:meth:`SymbolicExecutor.iter_paths` exposes them as a generator so the
analysis phase can start consuming paths while exploration is still
enumerating (see :func:`repro.analysis.engine.analyze_path_stream`).
:meth:`SymbolicExecutor.run` is a thin wrapper that materialises the stream
into a :class:`SymbolicExecutionResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, Optional, Union

from ..distributions import Distribution, Uniform
from ..intervals import Interval, get_primitive
from ..lang.ast import (
    App,
    Const,
    Fix,
    If,
    IntervalConst,
    Lam,
    Prim,
    Sample,
    Score,
    Term,
    Var,
    free_variables,
)
from ..typesystem import (
    ArrowIType,
    BaseIType,
    IntervalType,
    TypeInferenceError,
    WeightedIType,
    infer_weighted_type,
)
from .paths import Relation, SymConstraint, SymbolicPath
from .value import SConst, SPrim, SVar, SymExpr, evaluate_interval

__all__ = [
    "ExecutionLimits",
    "PathExplosionError",
    "PathStream",
    "StreamStats",
    "SymbolicExecutionResult",
    "SymbolicExecutor",
    "stream_symbolic_paths",
    "symbolic_paths",
]

_UNIFORM01 = Uniform(0.0, 1.0)


class PathExplosionError(Exception):
    """Raised when symbolic execution produces more paths than allowed."""


@dataclass(frozen=True)
class ExecutionLimits:
    """Tunable limits of the symbolic exploration.

    ``max_fixpoint_depth`` is the depth limit ``D`` of Algorithm 1 (counted as
    the number of recursive-function applications along a path);
    ``max_paths`` aborts the analysis when the well-known path-explosion
    problem makes it infeasible (Section 7.5).
    """

    max_fixpoint_depth: int = 6
    max_paths: int = 50_000


@dataclass(frozen=True)
class _SClosure:
    param: str
    body: Term
    env: "._SEnv"


@dataclass(frozen=True)
class _SFixClosure:
    fname: str
    param: str
    body: Term
    env: "._SEnv"


@dataclass(frozen=True)
class _SSummaryClosure:
    """A function value produced by ``approxFix`` for higher-order fixpoints.

    Applying it does not evaluate any code: it emits the weight bound of the
    summarised call as an interval score and returns the summarised result
    (an interval constant, or another summary closure for curried functions).
    """

    itype: ArrowIType


SymValue = Union[SymExpr, _SClosure, _SFixClosure, _SSummaryClosure]


@dataclass(frozen=True)
class _SEnv:
    name: Optional[str] = None
    value: Optional[SymValue] = None
    parent: Optional["_SEnv"] = None

    def bind(self, name: str, value: SymValue) -> "_SEnv":
        return _SEnv(name, value, self)

    def lookup(self, name: str) -> SymValue:
        env: Optional[_SEnv] = self
        while env is not None:
            if env.name == name:
                assert env.value is not None
                return env.value
            env = env.parent
        raise KeyError(f"unbound variable {name!r}")


_EMPTY_SENV = _SEnv()


@dataclass
class _PathState:
    """Mutable per-path execution state (copied at branch points)."""

    distributions: list[Distribution] = field(default_factory=list)
    constraints: list[SymConstraint] = field(default_factory=list)
    scores: list[SymExpr] = field(default_factory=list)
    fix_depth: int = 0
    truncated: bool = False
    infeasible: bool = False

    def copy(self) -> "_PathState":
        return _PathState(
            distributions=list(self.distributions),
            constraints=list(self.constraints),
            scores=list(self.scores),
            fix_depth=self.fix_depth,
            truncated=self.truncated,
            infeasible=self.infeasible,
        )

    @property
    def variable_count(self) -> int:
        return len(self.distributions)

    def fresh_variable(self, dist: Distribution) -> SVar:
        self.distributions.append(dist)
        return SVar(len(self.distributions) - 1)

    def domains(self) -> list[Interval]:
        return [dist.support() for dist in self.distributions]


@dataclass(frozen=True)
class SymbolicExecutionResult:
    """All symbolic interval paths of a program plus exploration statistics.

    The result is immutable (paths are stored as a tuple) so it can be cached
    and shared between analysis queries — :class:`repro.Model` compiles a
    program once per :class:`ExecutionLimits` configuration and serves every
    downstream query from the cached result.
    """

    paths: tuple[SymbolicPath, ...]
    truncated_paths: int
    pruned_paths: int

    def __post_init__(self) -> None:
        if not isinstance(self.paths, tuple):
            object.__setattr__(self, "paths", tuple(self.paths))

    @property
    def path_count(self) -> int:
        return len(self.paths)

    @property
    def exact(self) -> bool:
        """True when no fixpoint had to be over-approximated."""
        return self.truncated_paths == 0

    # ------------------------------------------------------------------
    # Columnar view
    # ------------------------------------------------------------------
    def attach_table_source(self, builder) -> None:
        """Adopt a collector's :class:`~repro.symbolic.arena.PathTableBuilder`.

        The batch materialiser and the streamed-query cache tee both collect
        through a builder; handing it over lets :meth:`table` finalise the
        already-accumulated columns instead of re-walking the paths.
        """
        object.__setattr__(self, "_table_source", builder)

    def table(self):
        """The columnar :class:`~repro.symbolic.arena.PathTable` of this path set.

        Built lazily on first use and cached on the (immutable) result, so
        every consumer of one compiled program — the in-process columnar
        analyzers, the shared-memory dispatch transport — shares a single
        table.  When the result was produced by a builder-backed collector
        the cached columns are finalised directly; otherwise the paths are
        interned and packed on first call.
        """
        table = getattr(self, "_table", None)
        if table is None:
            source = getattr(self, "_table_source", None)
            if source is not None and len(source) == len(self.paths):
                table = source.build()
                object.__setattr__(self, "_table_source", None)
            else:
                from .arena import PathTable

                table = PathTable.from_paths(self.paths)
            object.__setattr__(self, "_table", table)
        return table


@dataclass
class StreamStats:
    """Exploration statistics of one streamed symbolic execution.

    The object is filled in *as the stream is consumed*: the counters are
    running totals and ``exhausted`` flips to True only once the generator
    has produced its last path.  A stream that raises mid-way (e.g. a
    :class:`PathExplosionError`) never exhausts — ``exhausted`` stays False
    and the counters cover the prefix produced so far.  After exhaustion the
    counters agree exactly with the fields of the
    :class:`SymbolicExecutionResult` a batch :meth:`SymbolicExecutor.run`
    would have returned.
    """

    emitted_paths: int = 0
    truncated_paths: int = 0
    pruned_paths: int = 0
    exhausted: bool = False


@dataclass
class PathStream:
    """A lazily-explored path set: a generator of paths plus live statistics.

    Iterating the stream drives the symbolic worklist; ``stats`` is updated
    in lock-step.  The stream is single-use (it wraps a generator).
    """

    paths: Iterator[SymbolicPath]
    stats: StreamStats
    limits: ExecutionLimits

    def __iter__(self) -> Iterator[SymbolicPath]:
        return self.paths


#: Worklist task modes: evaluate a term / deliver a value to a continuation.
_EVAL = 0
_DELIVER = 1

#: Continuation-frame tags (first element of each frame tuple).
_K_SCORE = "score"
_K_PRIM = "prim"
_K_IF = "if"
_K_APP_FUNC = "appf"
_K_APP_ARG = "appa"


class SymbolicExecutor:
    """Explores all symbolic paths of a program (Algorithm 1, lines 2–11).

    The exploration is an explicit-worklist abstract machine: every task is a
    ``(mode, item, env, kont, state)`` tuple — either *evaluate term ``item``*
    or *deliver value ``item`` to continuation ``kont``* — and branch points
    (symbolic conditionals) push both successor tasks instead of recursing.
    Because the worklist is a stack and the then-branch is pushed last,
    completed paths appear in exactly the depth-first, then-before-else order
    the historical recursive evaluator produced, which is the canonical path
    order the bound engine's bit-reproducible merge relies on.
    """

    def __init__(self, limits: ExecutionLimits | None = None) -> None:
        self.limits = limits or ExecutionLimits()
        self._pruned = 0

    # ------------------------------------------------------------------
    # Streaming exploration (the primary engine)
    # ------------------------------------------------------------------
    def iter_paths(self, term: Term, stats: Optional[StreamStats] = None) -> Iterator[SymbolicPath]:
        """Generate the symbolic paths of ``term`` one at a time.

        Paths are yielded in canonical depth-first order as soon as they
        complete — the whole path set is never materialised.  Infeasible
        paths (score certainly non-positive) are counted in ``stats`` but not
        yielded.  When the number of completed paths exceeds
        ``limits.max_paths`` a :class:`PathExplosionError` is raised
        *mid-stream*, after the paths within budget have been yielded.
        """
        stats = stats if stats is not None else StreamStats()
        self._pruned = 0
        max_paths = self.limits.max_paths
        completed = 0
        stack: list[tuple] = [(_EVAL, term, _EMPTY_SENV, None, _PathState())]
        while stack:
            mode, item, env, kont, state = stack.pop()

            if mode == _EVAL:
                if isinstance(item, Var):
                    stack.append((_DELIVER, env.lookup(item.name), None, kont, state))
                elif isinstance(item, Const):
                    stack.append((_DELIVER, SConst(Interval.point(item.value)), None, kont, state))
                elif isinstance(item, IntervalConst):
                    stack.append((_DELIVER, SConst(item.interval), None, kont, state))
                elif isinstance(item, Lam):
                    stack.append((_DELIVER, _SClosure(item.param, item.body, env), None, kont, state))
                elif isinstance(item, Fix):
                    stack.append(
                        (_DELIVER, _SFixClosure(item.fname, item.param, item.body, env), None, kont, state)
                    )
                elif isinstance(item, Sample):
                    dist = item.dist if item.dist is not None else _UNIFORM01
                    stack.append((_DELIVER, state.fresh_variable(dist), None, kont, state))
                elif isinstance(item, Score):
                    stack.append((_EVAL, item.arg, env, (_K_SCORE, kont), state))
                elif isinstance(item, Prim):
                    if not item.args:
                        stack.append((_DELIVER, self._make_prim(item.op, []), None, kont, state))
                    else:
                        frame = (_K_PRIM, item.op, (), tuple(item.args[1:]), env, kont)
                        stack.append((_EVAL, item.args[0], env, frame, state))
                elif isinstance(item, If):
                    stack.append((_EVAL, item.cond, env, (_K_IF, item.then, item.orelse, env, kont), state))
                elif isinstance(item, App):
                    stack.append((_EVAL, item.func, env, (_K_APP_FUNC, item.arg, env, kont), state))
                else:
                    raise TypeError(f"cannot symbolically evaluate {item!r}")
                continue

            # mode == _DELIVER: hand ``item`` (a SymValue) to the continuation.
            value = item
            if kont is None:
                completed += 1
                if completed > max_paths:
                    raise PathExplosionError(
                        f"symbolic execution exceeded {max_paths} paths; "
                        "reduce the fixpoint depth or simplify the program"
                    )
                if state.infeasible:
                    self._pruned += 1
                    stats.pruned_paths += 1
                    continue
                if not isinstance(value, SymExpr):
                    raise TypeError("program must return a ground (real-valued) result")
                stats.emitted_paths += 1
                stats.truncated_paths += int(state.truncated)
                yield SymbolicPath(
                    result=value,
                    variable_count=state.variable_count,
                    distributions=tuple(state.distributions),
                    constraints=tuple(state.constraints),
                    scores=tuple(state.scores),
                    truncated=state.truncated,
                )
                continue

            tag = kont[0]
            if tag == _K_SCORE:
                expr = self._expect_expr(value)
                stack.append((_DELIVER, expr, None, kont[1], self._record_score(expr, state)))
            elif tag == _K_PRIM:
                _, op, done, remaining, frame_env, parent = kont
                done = done + (self._expect_expr(value),)
                if remaining:
                    frame = (_K_PRIM, op, done, remaining[1:], frame_env, parent)
                    stack.append((_EVAL, remaining[0], frame_env, frame, state))
                else:
                    stack.append((_DELIVER, self._make_prim(op, list(done)), None, parent, state))
            elif tag == _K_IF:
                _, then_term, else_term, frame_env, parent = kont
                guard = self._expect_expr(value)
                if isinstance(guard, SConst) and guard.interval.hi <= 0.0:
                    stack.append((_EVAL, then_term, frame_env, parent, state))
                elif isinstance(guard, SConst) and guard.interval.lo > 0.0:
                    stack.append((_EVAL, else_term, frame_env, parent, state))
                else:
                    then_state = state.copy()
                    then_state.constraints.append(SymConstraint(guard, Relation.LEQ))
                    state.constraints.append(SymConstraint(guard, Relation.GT))
                    # Else first, then first-popped: canonical then-before-else order.
                    stack.append((_EVAL, else_term, frame_env, parent, state))
                    stack.append((_EVAL, then_term, frame_env, parent, then_state))
            elif tag == _K_APP_FUNC:
                _, arg_term, frame_env, parent = kont
                stack.append((_EVAL, arg_term, frame_env, (_K_APP_ARG, value, parent), state))
            elif tag == _K_APP_ARG:
                _, func, parent = kont
                if isinstance(func, _SClosure):
                    stack.append((_EVAL, func.body, func.env.bind(func.param, value), parent, state))
                elif isinstance(func, _SSummaryClosure):
                    summary, state = self._apply_summary(func.itype, state)
                    stack.append((_DELIVER, summary, None, parent, state))
                elif isinstance(func, _SFixClosure):
                    if state.fix_depth >= self.limits.max_fixpoint_depth:
                        summary, state = self._approx_fix(func, value, state)
                        stack.append((_DELIVER, summary, None, parent, state))
                    else:
                        state.fix_depth += 1
                        call_env = func.env.bind(func.fname, func).bind(func.param, value)
                        stack.append((_EVAL, func.body, call_env, parent, state))
                else:
                    raise TypeError(f"application of a non-function symbolic value {func!r}")
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown continuation frame {tag!r}")
        stats.exhausted = True

    def stream_run(self, term: Term) -> PathStream:
        """Start a streamed exploration: a path generator plus live stats."""
        stats = StreamStats()
        return PathStream(paths=self.iter_paths(term, stats), stats=stats, limits=self.limits)

    # ------------------------------------------------------------------
    def run(self, term: Term) -> SymbolicExecutionResult:
        """Materialise the full path set by collecting the stream columnar-first.

        The batch collector is a :class:`~repro.symbolic.arena.PathTableBuilder`:
        every completed path is structurally interned and appended to the
        columnar tables as it is produced, so the result's paths carry full
        DAG sharing and :meth:`SymbolicExecutionResult.table` finalises
        without another walk.
        """
        from .arena import PathTableBuilder

        stats = StreamStats()
        builder = PathTableBuilder()
        for path in self.iter_paths(term, stats):
            builder.append(path)
        result = SymbolicExecutionResult(
            paths=tuple(builder.paths),
            truncated_paths=stats.truncated_paths,
            pruned_paths=stats.pruned_paths,
        )
        result.attach_table_source(builder)
        return result

    # ------------------------------------------------------------------
    # approxFix: summarise a fixpoint via the interval type system
    # ------------------------------------------------------------------
    def _approx_fix(
        self, closure: _SFixClosure, argument: SymValue, state: _PathState
    ) -> tuple[SymValue, _PathState]:
        state.truncated = True
        weighted = self._summarise(closure, argument, state)
        return self._emit_summary(weighted, state)

    def _apply_summary(self, itype: ArrowIType, state: _PathState) -> tuple[SymValue, _PathState]:
        """Apply a summary closure: emit its weight bound and return its result."""
        state.truncated = True
        return self._emit_summary(itype.res, state)

    def _emit_summary(self, weighted: WeightedIType, state: _PathState) -> tuple[SymValue, _PathState]:
        result_state = state
        weight = weighted.weight.meet(Interval(0.0, math.inf))
        if weight.is_empty:
            weight = Interval(0.0, math.inf)
        if weight != Interval.point(1.0):
            result_state = self._record_score(SConst(weight), result_state)
        if isinstance(weighted.wtype, ArrowIType):
            return _SSummaryClosure(weighted.wtype), result_state
        if isinstance(weighted.wtype, BaseIType):
            return SConst(weighted.wtype.interval), result_state
        return SConst(Interval(-math.inf, math.inf)), result_state

    def _summarise(self, closure: _SFixClosure, argument: SymValue, state: _PathState) -> WeightedIType:
        conservative = WeightedIType(
            BaseIType(Interval(-math.inf, math.inf)), Interval(0.0, math.inf)
        )
        domains = state.domains()
        fix_term = Fix(closure.fname, closure.param, closure.body)
        try:
            if isinstance(argument, SymExpr):
                argument_term: Term = IntervalConst(evaluate_interval(argument, domains))
            else:
                # A function-valued argument: type the bare fixpoint and apply
                # its arrow type conservatively below.
                argument_term = None  # type: ignore[assignment]
            env_types = self._environment_types(fix_term, closure.env, domains, depth=2)
            if argument_term is None:
                weighted = infer_weighted_type(fix_term, env_types)
                if isinstance(weighted.wtype, ArrowIType):
                    return weighted.wtype.res
                return conservative
            return infer_weighted_type(App(fix_term, argument_term), env_types)
        except Exception:
            return conservative

    def _environment_types(
        self, term: Term, env: _SEnv, domains: list[Interval], depth: int
    ) -> Dict[str, IntervalType]:
        """Interval types for the free variables captured by a closure."""
        result: Dict[str, IntervalType] = {}
        for name in free_variables(term):
            value = env.lookup(name)
            result[name] = self._interval_type_of(value, domains, depth)
        return result

    def _interval_type_of(self, value: SymValue, domains: list[Interval], depth: int) -> IntervalType:
        if isinstance(value, SymExpr):
            return BaseIType(evaluate_interval(value, domains))
        if depth <= 0:
            raise TypeInferenceError("closure nesting too deep for approxFix summaries")
        if isinstance(value, _SClosure):
            inner_term: Term = Lam(value.param, value.body)
        else:
            inner_term = Fix(value.fname, value.param, value.body)
        env_types = self._environment_types(inner_term, value.env, domains, depth - 1)
        weighted = infer_weighted_type(inner_term, env_types)
        return weighted.wtype

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _record_score(self, expr: SymExpr, state: _PathState) -> _PathState:
        bounds = evaluate_interval(expr, state.domains())
        if bounds.hi <= 0.0:
            # Scoring a value that is certainly non-positive makes the weight
            # of every completion of this path zero (negative scores are
            # errors of weight zero), so the path contributes nothing.
            state.infeasible = True
            return state
        if isinstance(expr, SConst) and expr.interval == Interval.point(1.0):
            return state
        if not isinstance(expr, SConst) and bounds.lo < 0.0:
            # As in the paper, record that the score argument must be >= 0;
            # when the interval bound already proves non-negativity (the
            # common pdf case) the constraint is redundant and would only
            # spoil linearity of the path.
            state.constraints.append(SymConstraint(expr, Relation.GEQ))
        state.scores.append(expr)
        return state

    def _make_prim(self, op: str, args: list[SymExpr]) -> SymExpr:
        if all(isinstance(arg, SConst) for arg in args):
            primitive = get_primitive(op)
            folded = primitive.apply_interval(*(arg.interval for arg in args))  # type: ignore[union-attr]
            return SConst(folded)
        return _simplify_prim(op, args)

    def _expect_expr(self, value: SymValue) -> SymExpr:
        if isinstance(value, SymExpr):
            return value
        raise TypeError(f"expected a ground symbolic value, got {value!r}")


def _is_zero(expr: SymExpr) -> bool:
    return isinstance(expr, SConst) and expr.interval == Interval.point(0.0)


def _is_one(expr: SymExpr) -> bool:
    return isinstance(expr, SConst) and expr.interval == Interval.point(1.0)


def _simplify_prim(op: str, args: list[SymExpr]) -> SymExpr:
    """Peephole simplification of postponed primitive applications.

    Keeping symbolic values small matters: it speeds up interval evaluation
    and helps the single-use side condition of the completeness theorem.
    """
    if op == "add":
        left, right = args
        if _is_zero(left):
            return right
        if _is_zero(right):
            return left
    elif op == "sub":
        left, right = args
        if _is_zero(right):
            return left
    elif op == "mul":
        left, right = args
        if _is_one(left):
            return right
        if _is_one(right):
            return left
        if _is_zero(left) or _is_zero(right):
            return SConst(Interval.point(0.0))
    elif op == "div":
        left, right = args
        if _is_one(right):
            return left
    return SPrim(op, tuple(args))


def symbolic_paths(term: Term, limits: ExecutionLimits | None = None) -> SymbolicExecutionResult:
    """Convenience wrapper: all symbolic interval paths of ``term``."""
    return SymbolicExecutor(limits).run(term)


def stream_symbolic_paths(term: Term, limits: ExecutionLimits | None = None) -> PathStream:
    """Convenience wrapper: a lazily-explored :class:`PathStream` of ``term``.

    The returned stream yields exactly the paths :func:`symbolic_paths` would
    materialise, in the same canonical order, but one at a time — the
    streaming bound engine consumes it to overlap path analysis with
    exploration.
    """
    return SymbolicExecutor(limits).stream_run(term)
