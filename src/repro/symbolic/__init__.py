"""Symbolic execution: symbolic values, linear forms, paths and the executor."""

from .execute import (
    ExecutionLimits,
    PathExplosionError,
    SymbolicExecutionResult,
    SymbolicExecutor,
    symbolic_paths,
)
from .linear import LinearForm, ScoreDecomposition, decompose_score, extract_linear
from .paths import Relation, SymConstraint, SymbolicPath
from .value import (
    SAtom,
    SConst,
    SPrim,
    SVar,
    SymExpr,
    evaluate,
    evaluate_interval,
    evaluate_with_atoms,
    sample_variables,
    uses_variables_at_most_once,
)

__all__ = [
    "SymExpr",
    "SVar",
    "SConst",
    "SAtom",
    "SPrim",
    "evaluate",
    "evaluate_interval",
    "evaluate_with_atoms",
    "sample_variables",
    "uses_variables_at_most_once",
    "LinearForm",
    "extract_linear",
    "ScoreDecomposition",
    "decompose_score",
    "Relation",
    "SymConstraint",
    "SymbolicPath",
    "ExecutionLimits",
    "PathExplosionError",
    "SymbolicExecutor",
    "SymbolicExecutionResult",
    "symbolic_paths",
]
