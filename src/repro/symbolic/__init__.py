"""Symbolic execution: symbolic values, linear forms, paths and the executor."""

from .execute import (
    ExecutionLimits,
    PathExplosionError,
    PathStream,
    StreamStats,
    SymbolicExecutionResult,
    SymbolicExecutor,
    stream_symbolic_paths,
    symbolic_paths,
)
from .arena import (
    ArenaFormatError,
    PathArena,
    PathTable,
    PathTableBuilder,
    encode_paths,
    estimate_arena_bytes,
)
from .intern import PathInterner, intern_constraint, intern_expr, intern_path, intern_paths
from .linear import LinearForm, ScoreDecomposition, decompose_score, extract_linear
from .paths import Relation, SymConstraint, SymbolicPath
from .value import (
    SAtom,
    SConst,
    SPrim,
    SVar,
    SymExpr,
    evaluate,
    evaluate_interval,
    evaluate_with_atoms,
    sample_variables,
    uses_variables_at_most_once,
)

__all__ = [
    "SymExpr",
    "SVar",
    "SConst",
    "SAtom",
    "SPrim",
    "evaluate",
    "evaluate_interval",
    "evaluate_with_atoms",
    "sample_variables",
    "uses_variables_at_most_once",
    "LinearForm",
    "extract_linear",
    "ScoreDecomposition",
    "decompose_score",
    "Relation",
    "SymConstraint",
    "SymbolicPath",
    "ExecutionLimits",
    "PathExplosionError",
    "PathStream",
    "StreamStats",
    "SymbolicExecutor",
    "SymbolicExecutionResult",
    "stream_symbolic_paths",
    "symbolic_paths",
    "intern_constraint",
    "intern_expr",
    "intern_path",
    "intern_paths",
    "ArenaFormatError",
    "PathArena",
    "PathTable",
    "PathTableBuilder",
    "PathInterner",
    "encode_paths",
    "estimate_arena_bytes",
]
