"""Symbolic values produced by symbolic execution (paper Appendix B).

A symbolic value is a term built from

* *sample variables* ``α_i`` (one per ``sample`` evaluated on the path),
* constants — real numbers or intervals (interval literals appear once
  ``approxFix`` has summarised a fixpoint), and
* postponed primitive applications.

The module also provides concrete and interval evaluation of symbolic values
and the syntactic checks behind the completeness Assumption 1 (each sample
variable used at most once per guard / score / result).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, Sequence

from ..intervals import Interval, get_primitive

__all__ = [
    "SymExpr",
    "SVar",
    "SConst",
    "SAtom",
    "SPrim",
    "sym_const",
    "sym_point",
    "sample_variables",
    "evaluate",
    "evaluate_interval",
    "evaluate_with_atoms",
    "max_variable_index",
    "uses_variables_at_most_once",
    "substitute_atoms",
]


class SymExpr:
    """Base class of symbolic expressions."""

    def children(self) -> tuple["SymExpr", ...]:
        return ()


@dataclass(frozen=True)
class SVar(SymExpr):
    """The sample variable ``α_index`` (0-based)."""

    index: int


@dataclass(frozen=True)
class SConst(SymExpr):
    """A constant — possibly a proper interval (from ``approxFix``)."""

    interval: Interval

    @property
    def is_point(self) -> bool:
        return self.interval.is_point


@dataclass(frozen=True)
class SAtom(SymExpr):
    """A placeholder for an extracted linear sub-expression (Appendix E.1)."""

    index: int


@dataclass(frozen=True)
class SPrim(SymExpr):
    """A postponed primitive application ``op(args...)``."""

    op: str
    args: tuple[SymExpr, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))

    def children(self) -> tuple[SymExpr, ...]:
        return self.args


def sym_const(interval: Interval) -> SConst:
    return SConst(interval)


def sym_point(value: float) -> SConst:
    return SConst(Interval.point(value))


def _walk(expr: SymExpr) -> Iterator[SymExpr]:
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


def sample_variables(expr: SymExpr) -> set[int]:
    """Indices of sample variables occurring in the expression."""
    return {node.index for node in _walk(expr) if isinstance(node, SVar)}


def max_variable_index(expr: SymExpr) -> int:
    """Largest sample-variable index in the expression, or ``-1`` if none."""
    indices = sample_variables(expr)
    return max(indices) if indices else -1


def uses_variables_at_most_once(expr: SymExpr) -> bool:
    """Check the per-expression part of completeness Assumption 1."""
    seen: set[int] = set()
    for node in _walk(expr):
        if isinstance(node, SVar):
            if node.index in seen:
                return False
            seen.add(node.index)
    return True


def evaluate(expr: SymExpr, assignment: Sequence[float]) -> float:
    """Concrete evaluation ``expr[s / α]``; requires point constants."""
    if isinstance(expr, SVar):
        return float(assignment[expr.index])
    if isinstance(expr, SConst):
        if not expr.is_point:
            raise ValueError(f"cannot evaluate proper interval constant {expr.interval!r} concretely")
        return expr.interval.lo
    if isinstance(expr, SAtom):
        raise ValueError("cannot concretely evaluate a linear-atom placeholder")
    if isinstance(expr, SPrim):
        primitive = get_primitive(expr.op)
        return float(primitive(*(evaluate(arg, assignment) for arg in expr.args)))
    raise TypeError(f"unknown symbolic expression {expr!r}")


def evaluate_interval(expr: SymExpr, bounds: Sequence[Interval]) -> Interval:
    """Interval evaluation given per-sample-variable bounds."""
    if isinstance(expr, SVar):
        return bounds[expr.index]
    if isinstance(expr, SConst):
        return expr.interval
    if isinstance(expr, SAtom):
        raise ValueError("evaluate_interval does not accept atom placeholders; use evaluate_with_atoms")
    if isinstance(expr, SPrim):
        primitive = get_primitive(expr.op)
        return primitive.apply_interval(*(evaluate_interval(arg, bounds) for arg in expr.args))
    raise TypeError(f"unknown symbolic expression {expr!r}")


def evaluate_with_atoms(expr: SymExpr, atom_bounds: Sequence[Interval]) -> Interval:
    """Interval evaluation of a template whose leaves are atom placeholders."""
    if isinstance(expr, SAtom):
        return atom_bounds[expr.index]
    if isinstance(expr, SConst):
        return expr.interval
    if isinstance(expr, SVar):
        raise ValueError("template still contains a raw sample variable")
    if isinstance(expr, SPrim):
        primitive = get_primitive(expr.op)
        return primitive.apply_interval(*(evaluate_with_atoms(arg, atom_bounds) for arg in expr.args))
    raise TypeError(f"unknown symbolic expression {expr!r}")


def substitute_atoms(expr: SymExpr, replacements: Dict[int, SymExpr]) -> SymExpr:
    """Replace atom placeholders by expressions (used in tests)."""
    if isinstance(expr, SAtom):
        return replacements[expr.index]
    if isinstance(expr, (SVar, SConst)):
        return expr
    if isinstance(expr, SPrim):
        return SPrim(expr.op, tuple(substitute_atoms(arg, replacements) for arg in expr.args))
    raise TypeError(f"unknown symbolic expression {expr!r}")
